/**
 * @file
 * Ablation: critical-path attribution x execution mode.
 *
 * Runs the same machine (8-device MC-DLA(B)) through every execution
 * mode — dp/mp/pp training iterations, a seeded multi-job cluster run,
 * and a seeded serving run — with the CausalRecorder attached, then
 * extracts each run's simulated-time critical path and reports where
 * the makespan actually went: per wait-kind (compute, channel
 * occupancy, queueing, wire, scheduler, batching) and per subsystem
 * (main/collective/p2p/dma/cluster/serving). A what-if column shows
 * the predicted speedup from halving compute along the recorded DAG,
 * which is the number an optimization of the compute model could at
 * best deliver for that mode.
 *
 * Per-class rows (mode, group, class, wait_ms, share, edges) go to
 * --csv. --smoke runs the dp and serving points only (the CI canary).
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/mcdla.hh"
#include "core/options.hh"

using namespace mcdla;

namespace
{

/** One mode's recorded run, ready for analysis. */
struct ModeRun
{
    std::string mode;
    std::unique_ptr<CausalRecorder> recorder;
};

ModeRun
runTraining(const char *mode_token, ParallelMode mode)
{
    ModeRun run;
    run.mode = mode_token;
    run.recorder = std::make_unique<CausalRecorder>();
    Scenario sc;
    sc.workload = "AlexNet";
    sc.design = SystemDesign::McDlaB;
    sc.mode = mode;
    sc.globalBatch = 512;
    Simulator sim;
    Simulator::Hooks hooks;
    hooks.causal = run.recorder.get();
    sim.run(sc, hooks);
    return run;
}

ModeRun
runCluster()
{
    ModeRun run;
    run.mode = "cluster";
    run.recorder = std::make_unique<CausalRecorder>();
    ClusterConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.base.seed = 7;
    cfg.causal = run.recorder.get();
    Random rng(cfg.base.seed);
    std::vector<JobSpec> jobs = synthesizeJobs(
        4, /*arrival_rate=*/50.0, cfg.base.base.fabric.numDevices,
        rng);
    Cluster cluster(cfg, std::move(jobs));
    cluster.run();
    return run;
}

ModeRun
runServing()
{
    ModeRun run;
    run.mode = "serve";
    run.recorder = std::make_unique<CausalRecorder>();
    ServingConfig cfg;
    cfg.base.design = SystemDesign::McDlaB;
    cfg.base.workload = "AlexNet";
    cfg.base.serve = true;
    cfg.base.replicas = 2;
    cfg.base.globalBatch = 8;
    cfg.base.sloMs = 50.0;
    cfg.base.seed = 5;
    cfg.causal = run.recorder.get();
    Random rng(cfg.base.seed);
    std::vector<Request> stream = synthesizeRequests(
        20, /*rate=*/200.0, ArrivalKind::Poisson, rng);
    ServingCluster serving(cfg, std::move(stream));
    serving.run();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("abl_critical_path",
                      "Critical-path attribution across execution "
                      "modes");
    opts.addFlag("smoke", "run the dp and serving points only "
                          "(CI canary)");
    opts.addString("csv", "",
                   "write per-class attribution rows to this CSV file");
    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    LogConfig::verbose = false;
    const bool smoke = opts.getFlag("smoke");

    std::vector<ModeRun> runs;
    runs.push_back(runTraining("dp", ParallelMode::DataParallel));
    if (!smoke) {
        runs.push_back(runTraining("mp", ParallelMode::ModelParallel));
        runs.push_back(runTraining("pp", ParallelMode::Pipeline));
        runs.push_back(runCluster());
    }
    runs.push_back(runServing());

    std::cout << "=== Critical-path attribution: AlexNet on 8-device "
                 "MC-DLA(B) ===\n\n";

    std::vector<std::string> columns = {"mode"};
    ResultSet probe({"group", "class", "wait_ms", "share", "edges"});
    for (const std::string &column : probe.columns())
        columns.push_back(column);
    ResultSet rows(columns);

    TablePrinter table({"Mode", "Makespan(ms)", "PathEdges",
                        "TopKind", "TopSubsystem",
                        "Whatif compute:0.5"});
    for (const ModeRun &run : runs) {
        const CausalAnalysis analysis(*run.recorder);
        const double makespan_ms =
            ticksToSeconds(analysis.makespan()) * 1e3;

        // Name the dominant wait kind and subsystem on the path.
        WaitKind top_kind = WaitKind::Control;
        Tick top_kind_ticks = 0;
        for (std::size_t k = 0; k < kWaitKindCount; ++k) {
            const Tick t =
                analysis.pathKindTicks(static_cast<WaitKind>(k));
            if (t > top_kind_ticks) {
                top_kind_ticks = t;
                top_kind = static_cast<WaitKind>(k);
            }
        }
        CausalCtx top_ctx = CausalCtx::None;
        Tick top_ctx_ticks = 0;
        for (std::size_t c = 0; c < kCausalCtxCount; ++c) {
            const Tick t =
                analysis.pathCtxTicks(static_cast<CausalCtx>(c));
            if (t > top_ctx_ticks) {
                top_ctx_ticks = t;
                top_ctx = static_cast<CausalCtx>(c);
            }
        }

        const WhatIfResult whatif =
            analysis.whatIf({{"compute", 0.5}});

        table.addRow(
            {run.mode, TablePrinter::num(makespan_ms, 3),
             std::to_string(analysis.criticalPath().size()),
             waitKindToken(top_kind), causalCtxToken(top_ctx),
             TablePrinter::num(whatif.speedup(), 3) + "x"});

        const ResultSet attribution = analysis.attributionTable();
        for (std::size_t r = 0; r < attribution.rowCount(); ++r) {
            std::vector<ReportValue> row = {run.mode};
            for (std::size_t c = 0; c < attribution.columns().size();
                 ++c)
                row.push_back(attribution.cell(r, c));
            rows.addRow(std::move(row));
        }
    }
    table.print(std::cout);
    std::cout << "\n(what-if: predicted speedup from halving compute "
                 "along the recorded DAG;\n assumes the recorded "
                 "binding dependencies keep binding)\n";

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        rows.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << " ("
                  << rows.rowCount() << " rows)\n";
    }
    return 0;
}
