/**
 * @file
 * Figure 12 reproduction: CPU memory bandwidth usage per workload for
 * DC-DLA, HC-DLA, and MC-DLA — average while training data-parallel,
 * average model-parallel, and the peak windowed usage (both modes).
 * Values are per CPU socket (the paper's 300 GB/s HC-DLA ceiling is a
 * per-socket figure); system-wide totals are twice these with two
 * sockets.
 *
 * Paper shape: DC-DLA draws up to the PCIe aggregate; HC-DLA saturates
 * its provisioned socket bandwidth (average up to ~92% on some
 * workloads); MC-DLA uses none at all.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Figure 12: CPU memory bandwidth usage "
                 "(GB/s per socket, batch " << kDefaultBatch
              << ") ===\n\n";

    const SystemDesign designs[] = {SystemDesign::DcDla,
                                    SystemDesign::HcDla,
                                    SystemDesign::McDlaB};

    std::vector<Scenario> scenarios;
    for (SystemDesign design : designs)
        for (const BenchmarkInfo &info : benchmarkCatalog())
            for (ParallelMode mode : {ParallelMode::DataParallel,
                                      ParallelMode::ModelParallel}) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                sc.globalBatch = kDefaultBatch;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (SystemDesign design : designs) {
        TablePrinter table({"Workload", "avg(DP)", "avg(MP)",
                            "max(both)"});
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            double avg_dp = 0.0, avg_mp = 0.0, peak = 0.0;
            for (ParallelMode mode : {ParallelMode::DataParallel,
                                      ParallelMode::ModelParallel}) {
                const IterationResult &r =
                    cursor.next(info.name, design, mode);
                if (mode == ParallelMode::DataParallel)
                    avg_dp = r.hostAvgBwPerSocket;
                else
                    avg_mp = r.hostAvgBwPerSocket;
                peak = std::max(peak, r.hostPeakBwPerSocket);
            }
            table.addRow({info.name,
                          TablePrinter::num(avg_dp / kGB, 1),
                          TablePrinter::num(avg_mp / kGB, 1),
                          TablePrinter::num(peak / kGB, 1)});
        }
        std::cout << "-- " << systemDesignName(design) << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "HC-DLA provisioned socket bandwidth: 300 GB/s "
                 "(4 devices x 3 links x 25 GB/s).\n";
    return 0;
}
