/**
 * @file
 * Figure 13 reproduction: normalized performance of the six system
 * design points, data-parallel (a) and model-parallel (b), batch 512,
 * eight devices. Performance is iteration throughput normalized to the
 * best design per workload (the oracle), as in the paper's bars.
 *
 * Paper headline numbers (harmonic means): MC-DLA(B) achieves 3.5x (DP)
 * and 2.1x (MP) over DC-DLA — 2.8x overall; HC-DLA manages +32%/+38%;
 * MC-DLA(B) reaches 84-99% of the unbuildable oracle; MC-DLA(L) stays
 * within ~96% of MC-DLA(B); MC-DLA(S) loses 14% on average (24% max).
 */

#include <iostream>
#include <map>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::map<SystemDesign, std::vector<double>> speedups_all;

    // The full (mode x workload x design) grid as one declarative
    // sweep, executed across every core.
    std::vector<Scenario> scenarios;
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel})
        for (const BenchmarkInfo &info : benchmarkCatalog())
            for (SystemDesign design : kAllDesigns) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                sc.globalBatch = kDefaultBatch;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel}) {
        std::cout << "=== Figure 13("
                  << (mode == ParallelMode::DataParallel ? "a" : "b")
                  << "): normalized performance, "
                  << parallelModeName(mode) << ", batch "
                  << kDefaultBatch << " ===\n\n";

        TablePrinter table({"Workload", "DC-DLA", "HC-DLA", "MC-DLA(S)",
                            "MC-DLA(L)", "MC-DLA(B)", "DC-DLA(O)"});
        std::map<SystemDesign, std::vector<double>> speedups;

        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            std::map<SystemDesign, double> perf;
            double best = 0.0;
            for (SystemDesign design : kAllDesigns) {
                const IterationResult &r =
                    cursor.next(info.name, design, mode);
                perf[design] = r.performance();
                best = std::max(best, r.performance());
            }
            std::vector<std::string> row{info.name};
            for (SystemDesign design : kAllDesigns) {
                row.push_back(
                    TablePrinter::num(perf[design] / best, 3));
                const double speedup =
                    perf[design] / perf[SystemDesign::DcDla];
                speedups[design].push_back(speedup);
                speedups_all[design].push_back(speedup);
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);

        std::cout << "\nHarmonic-mean speedup over DC-DLA:\n";
        for (SystemDesign design : kAllDesigns) {
            std::cout << "  " << systemDesignName(design) << ": "
                      << TablePrinter::num(
                             harmonicMean(speedups[design]), 2)
                      << "x\n";
        }
        const double b = harmonicMean(speedups[SystemDesign::McDlaB]);
        const double o =
            harmonicMean(speedups[SystemDesign::DcDlaOracle]);
        const double s = harmonicMean(speedups[SystemDesign::McDlaS]);
        std::cout << "  MC-DLA(B) vs oracle: "
                  << TablePrinter::num(100.0 * b / o, 1)
                  << "% (paper: 84-99%, avg 95%)\n"
                  << "  MC-DLA(S) vs MC-DLA(B): "
                  << TablePrinter::num(100.0 * s / b, 1)
                  << "% (paper: -14% avg)\n\n";
    }

    std::cout << "=== Overall (both modes) ===\n";
    std::cout << "MC-DLA(B) harmonic-mean speedup over DC-DLA: "
              << TablePrinter::num(
                     harmonicMean(speedups_all[SystemDesign::McDlaB]),
                     2)
              << "x (paper: 2.8x)\n";
    return 0;
}
