/**
 * @file
 * Ablation: measured energy per iteration and performance-per-watt
 * (extends Section V-C from TDP bounds to activity-based energy).
 *
 * Paper reference: with Table IV TDPs, MC-DLA lands 2.1x-2.6x perf/W
 * over DC-DLA at its 2.8x speedup. Here power follows measured device
 * occupancy, DIMM-bus utilization, and link traffic instead of TDP.
 */

#include <iostream>

#include "core/mcdla.hh"
#include "system/energy_model.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Measured energy per iteration (data-parallel, "
                 "batch " << kDefaultBatch << ") ===\n\n";

    Simulator sim;
    std::vector<double> ppw_gain;
    for (const BenchmarkInfo &info : benchmarkCatalog()) {
        TablePrinter table({"Design", "Iter(ms)", "Energy(J)",
                            "AvgPower(W)", "Device(J)", "MemNode(J)",
                            "Link(J)", "Host(J)", "perf/W vs DC"});
        double dc_ppw = 0.0;
        for (SystemDesign design :
             {SystemDesign::DcDla, SystemDesign::HcDla,
              SystemDesign::McDlaB}) {
            Scenario sc;
            sc.design = design;
            sc.workload = info.name;
            sc.mode = ParallelMode::DataParallel;
            sc.globalBatch = kDefaultBatch;
            EnergyReport e;
            Simulator::Hooks hooks;
            hooks.postRun = [&](System &system,
                                const IterationResult &res) {
                e = estimateEnergy(system, res);
            };
            const IterationResult r = sim.run(sc, hooks);
            if (design == SystemDesign::DcDla)
                dc_ppw = e.perfPerWatt();
            if (design == SystemDesign::McDlaB)
                ppw_gain.push_back(e.perfPerWatt() / dc_ppw);
            table.addRow({
                systemDesignName(design),
                TablePrinter::num(r.iterationSeconds() * 1e3, 2),
                TablePrinter::num(e.totalJoules(), 1),
                TablePrinter::num(e.averageWatts(), 0),
                TablePrinter::num(e.deviceJoules, 1),
                TablePrinter::num(e.memNodeJoules, 1),
                TablePrinter::num(e.linkJoules, 2),
                TablePrinter::num(e.hostJoules, 1),
                TablePrinter::num(e.perfPerWatt() / dc_ppw, 2),
            });
        }
        std::cout << "-- " << info.name << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "MC-DLA(B) harmonic-mean perf/W gain over DC-DLA: "
              << TablePrinter::num(harmonicMean(ppw_gain), 2)
              << "x (paper's TDP-bound estimate at 2.8x speedup: "
                 "2.1x-2.6x)\n";
    return 0;
}
