/**
 * @file
 * Section V-D reproduction: multi-device performance scalability of the
 * four CNNs under data parallelism.
 *
 * Paper shape: with memory virtualization disabled (workloads sized to
 * fit), DC-DLA scales nearly perfectly (close to 4x/8x on 4/8 GPUs);
 * with virtualization enabled the host-device bottleneck caps DC-DLA at
 * ~1.3x/2.7x, while MC-DLA regains near-perfect scaling by hiding the
 * migration behind the device-side links.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

Simulator sim;

double
iterationSeconds(SystemDesign design, const std::string &workload,
                 int devices, std::int64_t batch)
{
    Scenario sc;
    sc.design = design;
    sc.workload = workload;
    sc.mode = ParallelMode::DataParallel;
    sc.globalBatch = batch;
    sc.base.fabric.numDevices = devices;
    // Section I's premise: the host-side interface is shared, so the
    // effective host-device bandwidth per device shrinks as devices
    // multiply. Model the shared PCIe root complex as a 16 GB/s socket
    // uplink (4 devices per switch group in a DGX-class chassis).
    sc.base.fabric.socketBandwidth = 16.0 * kGB;
    return sim.run(sc).iterationSeconds();
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    // Weak-scaling-free comparison: fixed global batch, so perfect
    // scaling halves the iteration time per device doubling.
    constexpr std::int64_t batch = 256;
    const int device_counts[] = {1, 2, 4, 8};

    std::cout << "=== Section V-D: data-parallel scalability "
                 "(speedup vs 1 device, batch " << batch << ") ===\n\n";

    for (const std::string &workload : cnnBenchmarkNames()) {
        TablePrinter table({"Devices", "DC-DLA (no virt)",
                            "DC-DLA (virt)", "MC-DLA(B)"});
        std::map<SystemDesign, double> base;
        for (int devices : device_counts) {
            std::vector<std::string> row{std::to_string(devices)};
            for (SystemDesign design :
                 {SystemDesign::DcDlaOracle, SystemDesign::DcDla,
                  SystemDesign::McDlaB}) {
                const double t =
                    iterationSeconds(design, workload, devices, batch);
                if (devices == 1)
                    base[design] = t;
                row.push_back(TablePrinter::num(base[design] / t, 2));
            }
            table.addRow(std::move(row));
        }
        std::cout << "-- " << workload << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Paper: virtualized DC-DLA reaches only ~1.3x/2.7x at "
                 "4/8 GPUs; MC-DLA restores near-linear scaling.\n";
    return 0;
}
