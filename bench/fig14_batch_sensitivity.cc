/**
 * @file
 * Figure 14 reproduction: MC-DLA(B) speedup over DC-DLA as a function of
 * the input batch size (128 / 256 / 1024 / 2048), per workload, for
 * data- and model-parallel training, with harmonic means.
 *
 * Paper shape: the speedup is robust across batch sizes (average 2.17x
 * over all batches).
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    const std::int64_t batches[] = {128, 256, 1024, 2048};

    std::cout << "=== Figure 14: MC-DLA(B) speedup over DC-DLA vs "
                 "batch size ===\n\n";

    Simulator sim;
    std::vector<double> all_speedups;
    for (std::int64_t batch : batches) {
        TablePrinter table({"Workload", "Data-parallel",
                            "Model-parallel"});
        std::vector<double> dp_speedups, mp_speedups;
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            std::vector<std::string> row{info.name};
            for (ParallelMode mode : {ParallelMode::DataParallel,
                                      ParallelMode::ModelParallel}) {
                double dc = 0.0, mc = 0.0;
                bool wall = false;
                LogConfig::throwOnError = true;
                try {
                    for (SystemDesign design :
                         {SystemDesign::DcDla, SystemDesign::McDlaB}) {
                        Scenario sc;
                        sc.design = design;
                        sc.workload = info.name;
                        sc.mode = mode;
                        sc.globalBatch = batch;
                        const IterationResult r = sim.run(sc);
                        (design == SystemDesign::DcDla ? dc : mc) =
                            r.iterationSeconds();
                    }
                } catch (const FatalError &) {
                    // Working set exceeds the 16 GiB device even with
                    // virtualization: the capacity wall.
                    wall = true;
                }
                LogConfig::throwOnError = false;
                if (wall) {
                    row.push_back("wall");
                    continue;
                }
                const double speedup = dc / mc;
                row.push_back(TablePrinter::num(speedup, 2));
                (mode == ParallelMode::DataParallel ? dp_speedups
                                                    : mp_speedups)
                    .push_back(speedup);
                all_speedups.push_back(speedup);
            }
            table.addRow(std::move(row));
        }
        std::cout << "-- Batch " << batch << " --\n";
        table.print(std::cout);
        std::cout << "HarMean: DP "
                  << TablePrinter::num(harmonicMean(dp_speedups), 2)
                  << "x, MP "
                  << TablePrinter::num(harmonicMean(mp_speedups), 2)
                  << "x\n\n";
    }
    std::cout << "Average speedup across all batch sizes: "
              << TablePrinter::num(harmonicMean(all_speedups), 2)
              << "x (paper: 2.17x)\n";
    return 0;
}
