/**
 * @file
 * Ablation: the Fig 15 / Section VI scale-out direction.
 *
 * Compares the direct-ring MC-DLA(B) against the switched MC-DLA(X)
 * (NVSwitch-class planes) at 8 devices — quantifying the switch's
 * latency cost — and then scales MC-DLA(X) to 16 and 32 devices, which
 * the fixed cube-mesh cannot reach, against a PCIe-bound DC-DLA at the
 * same scale. Weak scaling: 64 samples per device.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

Simulator sim;

IterationResult
run(SystemDesign design, const std::string &workload, int devices,
    ParallelMode mode)
{
    Scenario sc;
    sc.design = design;
    sc.workload = workload;
    sc.mode = mode;
    sc.globalBatch = 64LL * devices; // weak scaling
    sc.base.fabric.numDevices = devices;
    sc.base.fabric.switchRadix = 2 * devices; // provision the radix
    return sim.run(sc);
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;

    std::cout << "=== Switch cost at 8 devices (direct ring vs "
                 "switched planes) ===\n\n";
    TablePrinter head({"Workload", "MC-DLA(B) ms", "MC-DLA(X) ms",
                       "switch cost"});
    for (const char *workload : {"AlexNet", "VGG-E", "RNN-LSTM-1"}) {
        const double b =
            run(SystemDesign::McDlaB, workload, 8,
                ParallelMode::DataParallel).iterationSeconds();
        const double x =
            run(SystemDesign::McDlaX, workload, 8,
                ParallelMode::DataParallel).iterationSeconds();
        head.addRow({workload, TablePrinter::num(b * 1e3, 2),
                     TablePrinter::num(x * 1e3, 2),
                     TablePrinter::num(100.0 * (x / b - 1.0), 1)
                         + "%"});
    }
    head.print(std::cout);

    std::cout << "\n=== Scale-out: switched MC-DLA vs DC-DLA "
                 "(ResNet, data-parallel, 64 samples/device) ===\n\n";
    TablePrinter table({"Devices", "Plane radix", "DC-DLA(ms)",
                        "MC-DLA(X)(ms)", "Speedup", "Pool(TB)"});
    for (int devices : {8, 16, 32}) {
        const IterationResult dc =
            run(SystemDesign::DcDla, "ResNet", devices,
                ParallelMode::DataParallel);
        const IterationResult mc =
            run(SystemDesign::McDlaX, "ResNet", devices,
                ParallelMode::DataParallel);
        MemoryNodeConfig node;
        table.addRow({std::to_string(devices),
                      std::to_string(2 * devices),
                      TablePrinter::num(dc.iterationSeconds() * 1e3, 2),
                      TablePrinter::num(mc.iterationSeconds() * 1e3, 2),
                      TablePrinter::num(dc.iterationSeconds()
                                            / mc.iterationSeconds(),
                                        2),
                      TablePrinter::num(
                          static_cast<double>(node.capacity())
                              * devices / kTB,
                          1)});
    }
    table.print(std::cout);
    std::cout << "\nThe memory-centric advantage persists as the "
                 "device-side plane scales out (Section VI): every "
                 "added device brings its own memory-node, while the "
                 "host interface stays fixed.\n";
    return 0;
}
