/**
 * @file
 * Ablation: serving batch policy x offered load x training co-location.
 *
 * Two sweeps over one shared eight-device MC-DLA(B) machine serving
 * VGG-E replicas, both replaying the same seeded Poisson request
 * stream per load point so policies are compared on identical work:
 *
 *  - batching: static / dynamic / continuous coalescing at a moderate
 *    and a near-saturation offered load. Static's full-batch rule
 *    idles the replica while a partial batch waits for stragglers, so
 *    its queueing delay explodes at high load; continuous batching
 *    launches whatever is queued the moment the replica idles and
 *    holds the p99 tail near the bare service time;
 *
 *  - co-location: round-robin / least-loaded / SLO-aware routing at
 *    the near-saturation load while a data-parallel VGG-E training
 *    job occupies the other four devices. The training gang's paging
 *    and collective traffic slows the replicas unevenly (the replicas
 *    bordering the gang share memory-node DIMM buses with it), which
 *    the SLO-aware router's observed-service-rate predictions price
 *    in and queue-depth balancing cannot.
 *
 * Per-request rows (queue/service/latency breakdowns, batch size, SLO
 * verdict) go to --csv. --smoke shrinks both sweeps to a CI canary.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "core/mcdla.hh"
#include "core/options.hh"

using namespace mcdla;

namespace
{

Scenario
baseScenario(std::uint64_t seed)
{
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "VGG-E";
    sc.serve = true;
    sc.replicas = 4;
    sc.globalBatch = 32; // max coalesced batch
    sc.sloMs = 50.0;
    sc.seed = seed;
    return sc;
}

JobSpec
trainingJob(int iterations)
{
    JobSpec job;
    job.name = "train0";
    job.workload = "VGG-E";
    job.mode = ParallelMode::DataParallel;
    job.batch = 256;
    job.devices = 4;
    job.iterations = iterations;
    job.arrivalSec = 0.0;
    return job;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("abl_serving",
                      "Serving ablation: batch policy x load x "
                      "co-location");
    opts.addFlag("smoke", "run shrunk sweeps (CI canary)");
    opts.addString("csv", "", "write per-request rows to this CSV file");
    opts.addInt("requests", 0,
                "requests per load point (0 = 4096, smoke 512)");
    opts.addInt("seed", 2, "request-stream RNG seed");
    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    LogConfig::verbose = false;
    const bool smoke = opts.getFlag("smoke");
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed"));
    const int num_requests = opts.getInt("requests") > 0
        ? static_cast<int>(opts.getInt("requests"))
        : (smoke ? 512 : 4096);
    // Near-saturation for 4 VGG-E replicas at max batch 32: continuous
    // batches grow to absorb the load while static queues blow up.
    const double high_rate = 5300.0;
    const std::vector<double> rates = smoke
        ? std::vector<double>{high_rate}
        : std::vector<double>{2000.0, high_rate};
    // The co-located job must outlive the request stream so every
    // request is served under interference.
    const int training_iterations = smoke ? 5 : 60;

    std::cout << "=== Serving ablation: " << num_requests
              << " requests on one 8-device MC-DLA(B) machine, 4 "
                 "VGG-E replicas, seed "
              << seed << " ===\n\n";

    std::vector<std::string> columns = {"sweep", "batch_policy",
                                        "router", "request_rate",
                                        "colocated"};
    for (const std::string &column : ServingReport::requestColumns())
        columns.push_back(column);
    ResultSet rows(columns);

    const double slo_sec = baseScenario(seed).sloMs / 1e3;
    auto emit = [&](const char *sweep, const ServingReport &report,
                    double rate, bool colocated) {
        for (const RequestOutcome &outcome : report.requests) {
            std::vector<ReportValue> row = {
                std::string(sweep),
                std::string(batchPolicyToken(report.batchPolicy)),
                std::string(routerToken(report.router)), rate,
                static_cast<std::int64_t>(colocated ? 1 : 0)};
            for (ReportValue &value :
                 ServingReport::requestRow(outcome, slo_sec))
                row.push_back(std::move(value));
            rows.addRow(std::move(row));
        }
    };

    // -- Sweep 1: batch policy x offered load (no co-location) --
    double static_p99 = 0.0;
    double continuous_p99 = 0.0;
    for (double rate : rates) {
        Random rng(seed);
        const std::vector<Request> stream = synthesizeRequests(
            num_requests, rate, ArrivalKind::Poisson, rng);

        TablePrinter table({"Policy", "MeanBatch", "Mean(ms)",
                            "P50(ms)", "P95(ms)", "P99(ms)", "SLOVio%",
                            "Thru(req/s)"});
        for (BatchPolicyKind policy : allBatchPolicies()) {
            ServingConfig cfg;
            cfg.base = baseScenario(seed);
            cfg.base.requestRate = rate;
            cfg.base.batchPolicy = policy;
            ServingCluster serving(cfg, stream);
            const ServingReport report = serving.run();

            if (rate == high_rate
                && policy == BatchPolicyKind::Static)
                static_p99 = report.latencyPercentileMs(99.0);
            if (rate == high_rate
                && policy == BatchPolicyKind::Continuous)
                continuous_p99 = report.latencyPercentileMs(99.0);

            table.addRow(
                {batchPolicyToken(policy),
                 TablePrinter::num(report.meanBatchSamples(), 2),
                 TablePrinter::num(report.meanLatencyMs(), 2),
                 TablePrinter::num(report.latencyPercentileMs(50.0),
                                   2),
                 TablePrinter::num(report.latencyPercentileMs(95.0),
                                   2),
                 TablePrinter::num(report.latencyPercentileMs(99.0),
                                   2),
                 TablePrinter::num(report.sloViolationRate() * 100.0,
                                   1),
                 TablePrinter::num(report.throughputRps(), 1)});
            emit("batching", report, rate, false);
        }
        std::cout << "-- offered load: " << rate << " req/s --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    // -- Sweep 2: router x co-location at the near-saturation load --
    double rr_p99 = 0.0;
    double least_loaded_p99 = 0.0;
    double slo_p99 = 0.0;
    {
        Random rng(seed);
        const std::vector<Request> stream = synthesizeRequests(
            num_requests, high_rate, ArrivalKind::Poisson, rng);

        TablePrinter table({"Router", "Mean(ms)", "P50(ms)", "P95(ms)",
                            "P99(ms)", "SLOVio%", "TrainJCT(s)"});
        for (RouterKind router : allRouters()) {
            ServingConfig cfg;
            cfg.base = baseScenario(seed);
            cfg.base.requestRate = high_rate;
            cfg.base.router = router;
            cfg.trainingJobs = {trainingJob(training_iterations)};
            ServingCluster serving(cfg, stream);
            const ServingReport report = serving.run();

            const double p99 = report.latencyPercentileMs(99.0);
            if (router == RouterKind::RoundRobin)
                rr_p99 = p99;
            if (router == RouterKind::LeastLoaded)
                least_loaded_p99 = p99;
            if (router == RouterKind::SloAware)
                slo_p99 = p99;

            table.addRow(
                {routerToken(router),
                 TablePrinter::num(report.meanLatencyMs(), 2),
                 TablePrinter::num(report.latencyPercentileMs(50.0),
                                   2),
                 TablePrinter::num(report.latencyPercentileMs(95.0),
                                   2),
                 TablePrinter::num(p99, 2),
                 TablePrinter::num(report.sloViolationRate() * 100.0,
                                   1),
                 TablePrinter::num(
                     report.trainingJobs.empty()
                             || !report.trainingJobs[0].completed
                         ? 0.0
                         : report.trainingJobs[0].jctSec(),
                     3)});
            emit("colocation", report, high_rate, true);
        }
        std::cout << "-- routers under a co-located 4-device VGG-E "
                     "training job, "
                  << high_rate << " req/s --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "continuous batching p99 "
              << (static_p99 > 0.0 ? continuous_p99 / static_p99 : 0.0)
              << "x static at " << high_rate
              << " req/s: the full-batch rule idles the replica while "
                 "partial batches\nwait for stragglers. SLO-aware "
                 "routing p99 "
              << (least_loaded_p99 > 0.0
                      ? slo_p99 / least_loaded_p99
                      : 0.0)
              << "x least-loaded and "
              << (rr_p99 > 0.0 ? slo_p99 / rr_p99 : 0.0)
              << "x round-robin under co-located training: observed "
                 "service rates price in\nthe replicas the training "
                 "gang's paging slows, queue depths cannot.\n";

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        rows.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    return 0;
}
