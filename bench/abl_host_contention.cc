/**
 * @file
 * Ablation: relaxing the paper's conservative host assumption.
 *
 * The paper deliberately lets DC-DLA/HC-DLA draw host bandwidth without
 * contention ("for a conservative evaluation, we assume that HC-DLA's
 * CPU memory bandwidth usage has no effect on system performance").
 * Real sockets provide ~80 GB/s (Xeon) to ~120 GB/s (Power9). This
 * bench applies those caps, showing the host-centric designs degrade
 * further while MC-DLA is untouched — strengthening the paper's
 * argument.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Host socket-bandwidth contention ablation "
                 "(data-parallel, batch " << kDefaultBatch
              << ") ===\n\n";

    struct Cap
    {
        const char *name;
        double bw;
    };
    // The default resolves to the saturation rate of the attached
    // links (DC-DLA: 4 x 13 GB/s; HC-DLA: 300 GB/s) — the paper's
    // never-throttles assumption. Realistic socket caps bite HC-DLA
    // hard and leave PCIe-bound DC-DLA nearly untouched.
    const Cap caps[] = {
        {"paper default", 0.0},
        {"Power9-class 120 GB/s", 120.0 * kGB},
        {"Xeon-class 80 GB/s", 80.0 * kGB},
    };

    std::vector<Scenario> scenarios;
    for (SystemDesign design :
         {SystemDesign::DcDla, SystemDesign::HcDla})
        for (const BenchmarkInfo &info : benchmarkCatalog())
            for (const Cap &cap : caps) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.base.fabric.socketBandwidth = cap.bw;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (SystemDesign design :
         {SystemDesign::DcDla, SystemDesign::HcDla}) {
        TablePrinter table({"Workload", caps[0].name, caps[1].name,
                            caps[2].name});
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            std::vector<std::string> row{info.name};
            for (const Cap &cap : caps) {
                if (cursor.peek().base.fabric.socketBandwidth
                    != cap.bw)
                    panic("cap axis drifted from the sweep order");
                const IterationResult &r = cursor.next(
                    info.name, design, ParallelMode::DataParallel);
                row.push_back(
                    TablePrinter::num(r.iterationSeconds() * 1e3, 2));
            }
            table.addRow(std::move(row));
        }
        std::cout << "-- " << systemDesignName(design)
                  << " iteration time (ms) --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "MC-DLA designs bypass the host entirely and are "
                 "unaffected by socket caps.\n";
    return 0;
}
