/**
 * @file
 * Ablation: pipeline stages x microbatches x design.
 *
 * Sweeps GPipe-style pipeline parallelism over stage counts and
 * microbatch counts on the device-centric and memory-centric designs,
 * reporting the DES iteration time against the pipeline-aware analytic
 * lower/upper bounds:
 *
 *  - more stages shrink per-stage memory pressure but lengthen the
 *    fill/drain bubble and multiply boundary transfers;
 *  - more microbatches amortize the bubble but shrink the per-wave
 *    batch, and every stashed tensor pages once per microbatch;
 *  - the boundary transfers share fabric channels with paging DMA, so
 *    the design's interconnect decides how much of the bubble is
 *    hidden.
 *
 * Options: --smoke runs a single configuration (CI keeps it per-PR as
 * a perf canary), --csv writes the result rows for regression diffing,
 * --jobs sets the sweep thread count.
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "core/mcdla.hh"
#include "core/options.hh"

using namespace mcdla;

namespace
{

constexpr std::int64_t kBatch = 256;

struct GridPoint
{
    std::string workload;
    SystemDesign design;
    int stages;
    int microbatches;
};

Scenario
makeScenario(const GridPoint &point)
{
    Scenario sc;
    sc.design = point.design;
    sc.workload = point.workload;
    sc.mode = ParallelMode::Pipeline;
    sc.globalBatch = kBatch;
    sc.pipelineStages = point.stages;
    sc.microbatches = point.microbatches;
    return sc;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("abl_pipeline",
                      "Pipeline-parallelism ablation: stages x "
                      "microbatches x design");
    opts.addFlag("smoke", "run a single configuration (CI canary)");
    opts.addString("csv", "", "write result rows to this CSV file");
    opts.addInt("jobs", 0,
                "sweep worker threads (0 = hardware concurrency)");
    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    LogConfig::verbose = false;
    const bool smoke = opts.getFlag("smoke");

    const std::vector<std::string> workloads =
        smoke ? std::vector<std::string>{"ResNet"}
              : std::vector<std::string>{"ResNet", "RNN-GEMV"};
    const std::vector<SystemDesign> designs =
        smoke ? std::vector<SystemDesign>{SystemDesign::McDlaB}
              : std::vector<SystemDesign>{SystemDesign::DcDla,
                                          SystemDesign::McDlaB};
    const std::vector<int> stage_counts =
        smoke ? std::vector<int>{4} : std::vector<int>{2, 4, 8};
    const std::vector<int> microbatch_counts =
        smoke ? std::vector<int>{8} : std::vector<int>{4, 8, 16};

    std::vector<GridPoint> grid;
    std::vector<Scenario> scenarios;
    for (const std::string &workload : workloads)
        for (SystemDesign design : designs)
            for (int stages : stage_counts)
                for (int microbatches : microbatch_counts) {
                    grid.push_back(GridPoint{workload, design, stages,
                                             microbatches});
                    scenarios.push_back(makeScenario(grid.back()));
                }

    SweepRunner runner(SweepConfig{
        static_cast<int>(opts.getInt("jobs")), /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);
    SweepCursor cursor(scenarios, results);

    std::cout << "=== Pipeline-parallelism ablation: batch " << kBatch
              << ", GPipe schedule ===\n\n";

    ResultSet table_rows({"workload", "design", "stages", "microbatches",
                          "iteration_ms", "compute_ms", "sync_ms",
                          "vmem_ms", "analytic_lower_ms",
                          "analytic_upper_ms", "events"});
    for (const std::string &workload : workloads) {
        TablePrinter table({"Design", "Stages", "uBatches", "Iter(ms)",
                            "Compute(ms)", "P2P(ms)", "Vmem(ms)",
                            "Lower(ms)", "Upper(ms)"});
        for (SystemDesign design : designs) {
            for (int stages : stage_counts) {
                for (int microbatches : microbatch_counts) {
                    const Scenario &sc = cursor.peek();
                    if (sc.pipelineStages != stages
                        || sc.microbatches != microbatches)
                        panic("sweep cursor misaligned on the "
                              "pipeline grid");
                    const IterationResult &r = cursor.next(
                        workload, design, ParallelMode::Pipeline);
                    const AnalyticEstimate est = estimateIteration(
                        sc.config(),
                        *runner.simulator().network(workload),
                        ParallelMode::Pipeline, kBatch, stages,
                        microbatches);
                    table.addRow(
                        {systemDesignToken(design),
                         std::to_string(stages),
                         std::to_string(microbatches),
                         TablePrinter::num(
                             r.iterationSeconds() * 1e3, 2),
                         TablePrinter::num(
                             r.breakdown.computeSec * 1e3, 2),
                         TablePrinter::num(
                             r.breakdown.syncSec * 1e3, 2),
                         TablePrinter::num(
                             r.breakdown.vmemSec * 1e3, 2),
                         TablePrinter::num(
                             est.lowerBoundSec() * 1e3, 2),
                         TablePrinter::num(
                             est.upperBoundSec() * 1e3, 2)});
                    table_rows.addRow(
                        {workload,
                         std::string(systemDesignToken(design)),
                         static_cast<std::int64_t>(stages),
                         static_cast<std::int64_t>(microbatches),
                         r.iterationSeconds() * 1e3,
                         r.breakdown.computeSec * 1e3,
                         r.breakdown.syncSec * 1e3,
                         r.breakdown.vmemSec * 1e3,
                         est.lowerBoundSec() * 1e3,
                         est.upperBoundSec() * 1e3,
                         static_cast<std::int64_t>(
                             r.eventsExecuted)});
                }
            }
        }
        std::cout << "-- " << workload << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "more microbatches amortize the fill/drain bubble but "
                 "page every stash once\nper microbatch; the "
                 "memory-centric designs hide the extra traffic on "
                 "their\nrings while DC-DLA serializes it behind "
                 "PCIe.\n";

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        table_rows.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    return 0;
}
