/**
 * @file
 * Figure 11 reproduction: per-category latency breakdown (computation /
 * synchronization / memory virtualization) for all six designs and all
 * eight workloads, batch 512, data-parallel (a) and model-parallel (b).
 * Each design's three bars are normalized to the tallest stacked bar of
 * its workload, as in the paper.
 *
 * Paper shape: DC-DLA spends the least time on synchronization but
 * memory virtualization bottlenecks it on most entries; HC-DLA cuts
 * virtualization (~88%) while nearly doubling synchronization; the
 * MC-DLA family gets both right; the oracle has no virtualization bar.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;

    std::vector<Scenario> scenarios;
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel})
        for (const BenchmarkInfo &info : benchmarkCatalog())
            for (SystemDesign design : kAllDesigns) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                sc.globalBatch = kDefaultBatch;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel}) {
        std::cout << "=== Figure 11("
                  << (mode == ParallelMode::DataParallel ? "a" : "b")
                  << "): latency breakdown, " << parallelModeName(mode)
                  << ", batch " << kDefaultBatch << " ===\n\n";

        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            TablePrinter table({"Design", "Compute", "Sync", "Vmem",
                                "Total", "Compute(ms)", "Sync(ms)",
                                "Vmem(ms)"});
            std::vector<LatencyBreakdown> rows;
            double tallest = 0.0;
            for (SystemDesign design : kAllDesigns) {
                const IterationResult &r =
                    cursor.next(info.name, design, mode);
                rows.push_back(r.breakdown);
                tallest = std::max(tallest, r.breakdown.total());
            }
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const LatencyBreakdown &b = rows[i];
                table.addRow({
                    systemDesignName(kAllDesigns[i]),
                    TablePrinter::num(b.computeSec / tallest, 3),
                    TablePrinter::num(b.syncSec / tallest, 3),
                    TablePrinter::num(b.vmemSec / tallest, 3),
                    TablePrinter::num(b.total() / tallest, 3),
                    TablePrinter::num(b.computeSec * 1e3, 2),
                    TablePrinter::num(b.syncSec * 1e3, 2),
                    TablePrinter::num(b.vmemSec * 1e3, 2),
                });
            }
            std::cout << "-- " << info.name << " --\n";
            table.print(std::cout);
            std::cout << '\n';
        }
    }
    return 0;
}
