/**
 * @file
 * Table IV reproduction: memory-node power consumption for each
 * DDR4-2400 module option, plus the Section V-C power-efficiency
 * headline: MC-DLA adds 7% (8 GB RDIMM) to 31% (128 GB LRDIMM) to a
 * 3,200 W DGX-class system while expanding the pool by up to 10.4 TB,
 * landing 2.1x-2.6x performance per watt at the paper's 2.8x speedup.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    std::cout << "=== Table IV: memory-node power consumption "
                 "(DDR4-2400, 10 DIMMs per node) ===\n\n";

    TablePrinter table({"DDR4 module", "DIMM TDP(W)", "Node TDP(W)",
                        "GB/W", "Node capacity", "SysPower(+%)",
                        "Pool(TB)", "Perf/W @2.8x"});
    SystemPowerModel power;
    for (const DimmSpec &dimm : dimmCatalog()) {
        MemoryNodeConfig node;
        node.dimm = dimm;
        table.addRow({
            dimm.name,
            TablePrinter::num(dimm.tdpWatts, 1),
            TablePrinter::num(node.tdpWatts(), 0),
            TablePrinter::num(node.gbPerWatt(), 1),
            formatBytes(static_cast<double>(node.capacity())),
            TablePrinter::num(100.0 * power.powerOverhead(node), 1),
            TablePrinter::num(
                static_cast<double>(power.pooledCapacity(node)) / kTB,
                2),
            TablePrinter::num(power.perfPerWattGain(node, 2.8), 2),
        });
    }
    table.print(std::cout);

    std::cout << "\nPaper GB/W column: 2.8 / 2.4 / 3.7 / 6.3 / 10.1\n";
    std::cout << "Paper system-power overhead: +7% (8GB RDIMM) to +31% "
                 "(128GB LRDIMM); perf/W 2.6x to 2.1x at 2.8x "
                 "speedup.\n";

    std::cout << "\n=== Operating power vs utilization (Micron-style "
                 "model) ===\n\n";
    TablePrinter op({"DDR4 module", "idle(W)", "50%(W)", "100%(W)"});
    for (const DimmSpec &dimm : dimmCatalog()) {
        MemoryNodeConfig node;
        node.dimm = dimm;
        op.addRow({dimm.name,
                   TablePrinter::num(node.operatingWatts(0.0), 1),
                   TablePrinter::num(node.operatingWatts(0.5), 1),
                   TablePrinter::num(node.operatingWatts(1.0), 1)});
    }
    op.print(std::cout);
    return 0;
}
