/**
 * @file
 * Section V-B sensitivity studies:
 *
 *  1. DC-DLA with PCIe gen4 (2x link bandwidth): the paper reports +38%
 *     DC-DLA performance, narrowing MC-DLA(B)'s gap from 2.8x to 2.1x
 *     at the cost of doubled CPU bandwidth draw.
 *  2. TPUv2-class (faster) device-nodes: gap widens to 3.2x.
 *  3. DGX-2-class scaled-up node (16 devices): gap 2.9x.
 *  4. cDMA-style activation compression (2.6x) on the four CNNs:
 *     gap narrows to 2.3x.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

struct Variant
{
    std::string name;
    SystemConfig base;
    bool cnnsOnly = false;
    std::int64_t batch = kDefaultBatch;
};

Simulator sim;

double
mcdlaSpeedup(const Variant &variant, std::ostream &os)
{
    std::vector<double> speedups;
    os << "-- " << variant.name << " --\n";
    TablePrinter table({"Workload", "DC-DLA(ms)", "MC-DLA(B)(ms)",
                        "Speedup"});
    for (const BenchmarkInfo &info : benchmarkCatalog()) {
        if (variant.cnnsOnly && info.recurrent)
            continue;
        double dc = 0.0, mc = 0.0;
        for (ParallelMode mode : {ParallelMode::DataParallel,
                                  ParallelMode::ModelParallel}) {
            for (SystemDesign design :
                 {SystemDesign::DcDla, SystemDesign::McDlaB}) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                sc.base = variant.base;
                sc.globalBatch = variant.batch;
                const IterationResult r = sim.run(sc);
                (design == SystemDesign::DcDla ? dc : mc) +=
                    r.iterationSeconds();
            }
        }
        speedups.push_back(dc / mc);
        table.addRow({info.name, TablePrinter::num(dc * 1e3, 1),
                      TablePrinter::num(mc * 1e3, 1),
                      TablePrinter::num(dc / mc, 2)});
    }
    table.print(os);
    const double mean = harmonicMean(speedups);
    os << "HarMean MC-DLA(B) speedup: " << TablePrinter::num(mean, 2)
       << "x\n\n";
    return mean;
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Section V-B sensitivity studies (batch "
              << kDefaultBatch << ", both parallel modes summed) "
                 "===\n\n";

    Variant baseline{"Baseline (PCIe gen3, V100-class)", {}, false};
    const double base_speedup = mcdlaSpeedup(baseline, std::cout);

    Variant gen4{"DC-DLA with PCIe gen4 (32 GB/s raw)", {}, false};
    gen4.base.fabric.pcieRawBandwidth = 32.0 * kGB;
    const double gen4_speedup = mcdlaSpeedup(gen4, std::cout);

    // "Faster device-node configuration" (the paper's TPUv2-class
    // point): twice the baseline compute and memory bandwidth.
    Variant fast{"Faster device-node (2x compute/bandwidth)", {},
                 false};
    fast.base.device.macsPerPe = 250;
    fast.base.device.memBandwidth = 1800.0 * kGB;
    mcdlaSpeedup(fast, std::cout);

    Variant dgx2{"DGX-2-class node (16 devices, batch 1024)", {},
                 false};
    dgx2.base.fabric.numDevices = 16;
    dgx2.batch = 1024;
    mcdlaSpeedup(dgx2, std::cout);

    Variant cdma{"cDMA compression 2.6x (CNNs only)", {}, true};
    cdma.base.dmaCompressionRatio = 2.6;
    mcdlaSpeedup(cdma, std::cout);

    std::cout << "Paper reference points: baseline 2.8x; PCIe gen4 "
                 "narrows to 2.1x; a faster device widens to 3.2x; "
                 "DGX-2 class 2.9x; cDMA narrows the CNN gap to "
                 "2.3x.\n";
    std::cout << "PCIe gen4 DC-DLA improvement observed: "
              << TablePrinter::num(
                     100.0 * (base_speedup / gen4_speedup - 1.0), 1)
              << "% narrower gap (paper: DC-DLA +38%).\n";
    return 0;
}
