/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event-queue
 * throughput, channel transfer processing, collective execution, and a
 * full training-iteration simulation. These document the cost of the
 * simulation infrastructure (not the modelled system).
 */

#include <benchmark/benchmark.h>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            eq.schedule(i * 10, [&sum] { ++sum; });
        eq.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_ChannelChunkStream(benchmark::State &state)
{
    const auto chunks = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        Channel ch(eq, "c", 25.0 * kGB, 500 * ticksPerNs);
        for (std::uint64_t i = 0; i < chunks; ++i)
            ch.submit(512e3, nullptr);
        eq.run();
        benchmark::DoNotOptimize(ch.bytesTransferred());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * chunks));
}
BENCHMARK(BM_ChannelChunkStream)->Arg(1000)->Arg(10000);

void
BM_RingAllReduce(benchmark::State &state)
{
    const int stages = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        Fabric fab(eq, "bench");
        RingPath ring;
        for (int i = 0; i < stages; ++i) {
            ring.stages.push_back(RingStage{true, i});
            Channel &ch = fab.makeChannel("h" + std::to_string(i),
                                          25.0 * kGB, 0);
            ring.hops.push_back(Route{{&ch}});
        }
        fab.addRing(std::move(ring));
        CollectiveEngine engine(eq, "nccl", fab);
        engine.launch(CollectiveKind::AllReduce, 64e6, nullptr);
        eq.run();
        benchmark::DoNotOptimize(engine.opsCompleted());
    }
}
BENCHMARK(BM_RingAllReduce)->Arg(8)->Arg(16)->Arg(32);

void
BM_NetworkBuild(benchmark::State &state)
{
    for (auto _ : state) {
        const Network net = builders::buildResNet34();
        benchmark::DoNotOptimize(net.totalParams());
    }
}
BENCHMARK(BM_NetworkBuild);

void
BM_TrainingIteration(benchmark::State &state)
{
    LogConfig::verbose = false;
    Simulator sim;
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = "AlexNet";
    sc.mode = ParallelMode::DataParallel;
    sc.globalBatch = 512;
    for (auto _ : state) {
        const IterationResult r = sim.run(sc);
        benchmark::DoNotOptimize(r.makespan);
        state.counters["sim_events"] =
            static_cast<double>(r.eventsExecuted);
    }
}
BENCHMARK(BM_TrainingIteration)->Unit(benchmark::kMillisecond);

void
BM_SweepRunner(benchmark::State &state)
{
    LogConfig::verbose = false;
    const int threads = static_cast<int>(state.range(0));
    std::vector<Scenario> scenarios;
    for (SystemDesign design : allSystemDesigns()) {
        Scenario sc;
        sc.design = design;
        sc.workload = "AlexNet";
        sc.globalBatch = 512;
        scenarios.push_back(std::move(sc));
    }
    for (auto _ : state) {
        SweepRunner runner(SweepConfig{threads, /*progress=*/false});
        const auto results = runner.run(scenarios);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * scenarios.size()));
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
