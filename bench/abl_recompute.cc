/**
 * @file
 * Ablation: the recompute-cheap-layers optimization (paper footnote 4,
 * adopted from MXNet for a conservative evaluation).
 *
 * Disabling it migrates activation/pool/normalization outputs too,
 * inflating virtualization traffic; the paper keeps it on so DC-DLA is
 * not unfairly penalized. This bench quantifies both the traffic and
 * the iteration-time impact on DC-DLA and MC-DLA(B).
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Footnote-4 ablation: recompute cheap layers "
                 "on/off (data-parallel, batch " << kDefaultBatch
              << ") ===\n\n";

    Simulator sim;
    for (SystemDesign design :
         {SystemDesign::DcDla, SystemDesign::McDlaB}) {
        TablePrinter table({"Workload", "on(ms)", "off(ms)",
                            "slowdown", "traffic on(GB)",
                            "traffic off(GB)"});
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            if (info.recurrent)
                continue; // recompute matters for CNN activations
            double t_on = 0.0, t_off = 0.0;
            double traffic_on = 0.0, traffic_off = 0.0;
            for (bool recompute : {true, false}) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.base.recomputeCheapLayers = recompute;
                const IterationResult r = sim.run(sc);
                (recompute ? t_on : t_off) = r.iterationSeconds();
                (recompute ? traffic_on : traffic_off) =
                    r.offloadBytesPerDevice;
            }
            table.addRow({info.name, TablePrinter::num(t_on * 1e3, 2),
                          TablePrinter::num(t_off * 1e3, 2),
                          TablePrinter::num(t_off / t_on, 2),
                          TablePrinter::num(traffic_on / 1e9, 2),
                          TablePrinter::num(traffic_off / 1e9, 2)});
        }
        std::cout << "-- " << systemDesignName(design) << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
