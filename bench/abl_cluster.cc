/**
 * @file
 * Ablation: cluster scheduler x pool allocator x offered load.
 *
 * Replays the same seeded synthetic job stream (Poisson arrivals over
 * the job-mix catalog) through every scheduler/allocator pairing at
 * several offered loads, on one shared eight-device machine:
 *
 *  - FIFO suffers head-of-line blocking when a whole-machine job
 *    queues behind a long half-machine run; memory-aware backfill
 *    slots the small jobs into the leftover devices, cutting mean JCT;
 *  - SJF reorders by the AnalyticEstimate service-time oracle, helping
 *    when long jobs arrive first;
 *  - the allocators differ in placement discipline: buddy trades
 *    internal rounding waste for cheap coalescing, first-fit keeps
 *    byte-exact blocks but can fragment the pool.
 *
 * Per-job rows (queueing delay, service, JCT, slowdown) and the pool
 * occupancy/fragmentation timeline go to --csv / --pool-csv. --smoke
 * runs a single load with FIFO vs backfill (the CI canary).
 */

#include <fstream>
#include <iostream>
#include <vector>

#include "core/mcdla.hh"
#include "core/options.hh"

using namespace mcdla;

int
main(int argc, char **argv)
{
    OptionParser opts("abl_cluster",
                      "Cluster ablation: scheduler x allocator x load");
    opts.addFlag("smoke", "run a single load point (CI canary)");
    opts.addString("csv", "", "write per-job rows to this CSV file");
    opts.addString("pool-csv", "",
                   "write pool timeline rows to this CSV file");
    opts.addInt("num-jobs", 0,
                "synthetic jobs per load point (0 = 24, smoke 16)");
    opts.addInt("seed", 42, "job-stream RNG seed");
    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    LogConfig::verbose = false;
    const bool smoke = opts.getFlag("smoke");
    const auto seed =
        static_cast<std::uint64_t>(opts.getInt("seed"));
    const int num_jobs = opts.getInt("num-jobs") > 0
        ? static_cast<int>(opts.getInt("num-jobs"))
        : (smoke ? 16 : 24);

    const std::vector<double> rates =
        smoke ? std::vector<double>{120.0}
              : std::vector<double>{20.0, 60.0, 120.0};
    const std::vector<SchedulerKind> schedulers =
        smoke ? std::vector<SchedulerKind>{SchedulerKind::Fifo,
                                           SchedulerKind::Backfill}
              : std::vector<SchedulerKind>{SchedulerKind::Fifo,
                                           SchedulerKind::Sjf,
                                           SchedulerKind::Backfill};
    const std::vector<PoolAllocatorKind> allocators =
        smoke ? std::vector<PoolAllocatorKind>{
                    PoolAllocatorKind::FirstFit}
              : std::vector<PoolAllocatorKind>{
                    PoolAllocatorKind::FirstFit,
                    PoolAllocatorKind::Buddy};

    std::cout << "=== Cluster ablation: " << num_jobs
              << " jobs on one 8-device MC-DLA(B) machine, seed "
              << seed << " ===\n\n";

    std::vector<std::string> job_columns = {"arrival_rate", "scheduler",
                                            "allocator"};
    for (const std::string &column : ClusterReport::jobColumns())
        job_columns.push_back(column);
    ResultSet job_rows(job_columns);

    std::vector<std::string> pool_columns = {"arrival_rate",
                                             "scheduler", "allocator"};
    for (const std::string &column : ClusterReport::poolColumns())
        pool_columns.push_back(column);
    ResultSet pool_rows(pool_columns);

    double fifo_mean_jct = 0.0;
    double backfill_mean_jct = 0.0;

    for (double rate : rates) {
        // One job stream per load point, shared by every policy pair:
        // the same seed draws the same shapes, so policies are
        // compared on identical work.
        Random rng(seed);
        const std::vector<JobSpec> jobs =
            synthesizeJobs(num_jobs, rate, 8, rng);

        TablePrinter table({"Scheduler", "Allocator", "MeanJCT(s)",
                            "P99JCT(s)", "MeanQueue(s)",
                            "MeanSlowdown", "Makespan(s)", "PoolPeak%",
                            "Frag", "AllocFails"});
        for (SchedulerKind scheduler : schedulers) {
            for (PoolAllocatorKind allocator : allocators) {
                ClusterConfig cfg;
                cfg.base.design = SystemDesign::McDlaB;
                cfg.base.seed = seed;
                cfg.scheduler = scheduler;
                cfg.allocator = allocator;
                Cluster cluster(cfg, jobs);
                const ClusterReport report = cluster.run();

                if (scheduler == SchedulerKind::Fifo
                    && allocator == PoolAllocatorKind::FirstFit)
                    fifo_mean_jct = report.meanJctSec();
                if (scheduler == SchedulerKind::Backfill
                    && allocator == PoolAllocatorKind::FirstFit)
                    backfill_mean_jct = report.meanJctSec();

                table.addRow(
                    {schedulerToken(scheduler),
                     poolAllocatorToken(allocator),
                     TablePrinter::num(report.meanJctSec(), 4),
                     TablePrinter::num(
                         report.jctPercentileSec(99.0), 4),
                     TablePrinter::num(report.meanQueueSec(), 4),
                     TablePrinter::num(report.meanSlowdown(), 2),
                     TablePrinter::num(report.makespanSec, 4),
                     TablePrinter::num(
                         report.peakPoolUtilization() * 100.0, 2),
                     TablePrinter::num(report.meanFragmentation(), 3),
                     std::to_string(report.allocationFailures)});

                for (const JobOutcome &job : report.jobs) {
                    std::vector<ReportValue> row = {
                        rate, std::string(schedulerToken(scheduler)),
                        std::string(poolAllocatorToken(allocator))};
                    for (ReportValue &value :
                         ClusterReport::jobRow(job))
                        row.push_back(std::move(value));
                    job_rows.addRow(std::move(row));
                }
                const ResultSet pool = report.poolTable();
                for (std::size_t s = 0;
                     s < report.timeline.size(); ++s) {
                    std::vector<ReportValue> row = {
                        rate, std::string(schedulerToken(scheduler)),
                        std::string(poolAllocatorToken(allocator))};
                    for (std::size_t c = 0;
                         c < ClusterReport::poolColumns().size(); ++c)
                        row.push_back(pool.cell(s, c));
                    pool_rows.addRow(std::move(row));
                }
            }
        }
        std::cout << "-- offered load: " << rate << " jobs/s --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "backfill mean JCT "
              << (fifo_mean_jct > 0.0
                      ? backfill_mean_jct / fifo_mean_jct
                      : 0.0)
              << "x FIFO at the last load point: small jobs slot into "
                 "the devices a blocked\nwhole-machine job cannot use, "
                 "while the shared fabric prices in their contention.\n";

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        job_rows.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    if (!opts.getString("pool-csv").empty()) {
        std::ofstream out(opts.getString("pool-csv"));
        pool_rows.writeCsv(out);
        std::cout << "wrote " << opts.getString("pool-csv") << '\n';
    }
    return 0;
}
