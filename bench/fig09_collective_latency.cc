/**
 * @file
 * Figure 9 reproduction: ring-collective latency as a function of ring
 * size (2..36 nodes), normalized to a 2-node ring. Links carry
 * 50 GB/s bidirectional (25 GB/s per direction), messages are 4 KB, and
 * the target synchronization size is 8 MB — the paper's parameters.
 *
 * Paper shape: broadcast is nearly flat; all-gather/all-reduce trend to
 * 2x as (n-1)/n saturates; the 8->16 node step (DC-DLA vs MC-DLA ring)
 * costs ~7% for all-reduce.
 */

#include <iostream>
#include <memory>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

constexpr double kSyncBytes = 8.0 * 1024 * 1024; // 8 MB target
constexpr double kMessageBytes = 4096.0;         // 4 KB messages
constexpr double kLinkBw = 25.0 * kGB;           // per direction
constexpr Tick kHopLatency = 500 * ticksPerNs;

std::unique_ptr<Fabric>
uniformRing(EventQueue &eq, int stages)
{
    auto fab = std::make_unique<Fabric>(eq, "fig9");
    RingPath ring;
    for (int i = 0; i < stages; ++i) {
        ring.stages.push_back(RingStage{true, i});
        Channel &ch = fab->makeChannel("hop" + std::to_string(i),
                                       kLinkBw, kHopLatency);
        ring.hops.push_back(Route{{&ch}});
    }
    fab->addRing(std::move(ring));
    return fab;
}

Tick
measure(CollectiveKind kind, int stages)
{
    EventQueue eq;
    auto fab = uniformRing(eq, stages);
    CollectiveConfig cfg;
    cfg.chunkBytes = kMessageBytes;
    CollectiveEngine engine(eq, "nccl", *fab, cfg);
    Tick done = 0;
    engine.launch(kind, kSyncBytes, [&] { done = eq.now(); });
    eq.run();
    return done;
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Figure 9: collective latency vs ring size "
                 "(normalized to 2 nodes; 4 KB messages, 8 MB sync, "
                 "50 GB/s bidirectional links) ===\n\n";

    const CollectiveKind kinds[] = {CollectiveKind::Broadcast,
                                    CollectiveKind::AllGather,
                                    CollectiveKind::AllReduce};

    TablePrinter table({"Nodes", "broadcast", "all-gather",
                        "all-reduce"});
    double base[3] = {0, 0, 0};
    double at8 = 0.0, at16 = 0.0;
    for (int nodes = 2; nodes <= 36; nodes += 2) {
        std::vector<std::string> row{std::to_string(nodes)};
        for (int k = 0; k < 3; ++k) {
            const Tick t = measure(kinds[k], nodes);
            if (nodes == 2)
                base[k] = static_cast<double>(t);
            const double norm = static_cast<double>(t) / base[k];
            row.push_back(TablePrinter::num(norm, 3));
            if (kinds[k] == CollectiveKind::AllReduce) {
                if (nodes == 8)
                    at8 = static_cast<double>(t);
                if (nodes == 16)
                    at16 = static_cast<double>(t);
            }
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nall-reduce, DC-DLA (8 nodes) -> MC-DLA (16 nodes): +"
              << TablePrinter::num(100.0 * (at16 / at8 - 1.0), 1)
              << "% (paper: ~7%)\n";
    return 0;
}
