/**
 * @file
 * Ablation: LOCAL vs BW_AWARE page placement (Fig 10, MC-DLA(L) vs
 * MC-DLA(B)).
 *
 * The raw DMA latency of a LOCAL allocation is 2x that of a BW_AWARE
 * one (D/(N*B/2) vs D/(N*B)); at the system level the ring interconnect
 * hides most of that difference (the paper reports MC-DLA(L) within 96%
 * of MC-DLA(B)), which is exactly what this ablation quantifies.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;

    // Part 1: raw Fig 10 DMA latency relation.
    {
        EventQueue eq;
        auto fabric = buildMcdlaRingFabric(eq, FabricConfig{});
        DmaEngine dma(eq, "dma0", fabric->vmemPaths(0));
        const double bytes = 256e6;

        Tick t_aware = 0;
        dma.transfer(bytes, DmaDirection::LocalToRemote,
                     {0.5, 0.5}, [&] { t_aware = eq.now(); });
        eq.run();
        const Tick mark = eq.now();
        Tick t_local = 0;
        dma.transfer(bytes, DmaDirection::LocalToRemote,
                     {1.0, 0.0}, [&] { t_local = eq.now() - mark; });
        eq.run();

        std::cout << "=== Fig 10 check: 256 MB offload latency ===\n";
        std::cout << "BW_AWARE (all N links):  "
                  << formatTime(t_aware) << '\n';
        std::cout << "LOCAL (N/2 links):       "
                  << formatTime(t_local) << '\n';
        std::cout << "ratio: "
                  << TablePrinter::num(
                         static_cast<double>(t_local)
                             / static_cast<double>(t_aware),
                         2)
                  << "x (ideal: 2.0x)\n\n";
    }

    // Part 2: end-to-end MC-DLA(L) vs MC-DLA(B).
    std::cout << "=== System-level: MC-DLA(L) vs MC-DLA(B), batch "
              << kDefaultBatch << " ===\n\n";
    Simulator sim;
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel}) {
        TablePrinter table({"Workload", "L(ms)", "B(ms)", "L/B perf"});
        std::vector<double> ratios;
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            double tl = 0.0, tb = 0.0;
            for (SystemDesign design :
                 {SystemDesign::McDlaL, SystemDesign::McDlaB}) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                const IterationResult r = sim.run(sc);
                (design == SystemDesign::McDlaL ? tl : tb) =
                    r.iterationSeconds();
            }
            ratios.push_back(tb / tl);
            table.addRow({info.name, TablePrinter::num(tl * 1e3, 2),
                          TablePrinter::num(tb * 1e3, 2),
                          TablePrinter::num(tb / tl, 3)});
        }
        std::cout << "-- " << parallelModeName(mode) << " --\n";
        table.print(std::cout);
        std::cout << "HarMean L/B performance: "
                  << TablePrinter::num(harmonicMean(ratios), 3)
                  << " (paper: ~0.96)\n\n";
    }
    return 0;
}
