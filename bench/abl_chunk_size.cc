/**
 * @file
 * Ablation: DMA/collective chunking granularity.
 *
 * The simulator moves bulk traffic in chunks so concurrent flows
 * interleave on shared channels. This bench verifies the reported
 * results are insensitive to the chosen granularity (a modelling
 * robustness check), and reports the event-count cost of finer chunks.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Chunk-granularity sensitivity (VGG-E + "
                 "RNN-LSTM-1, MC-DLA(B) and DC-DLA) ===\n\n";

    const double chunks[] = {64e3, 256e3, 512e3, 2e6};

    std::vector<Scenario> scenarios;
    for (const char *workload : {"VGG-E", "RNN-LSTM-1"})
        for (double chunk : chunks)
            for (SystemDesign design :
                 {SystemDesign::DcDla, SystemDesign::McDlaB}) {
                Scenario sc;
                sc.design = design;
                sc.workload = workload;
                sc.base.dmaChunkBytes = chunk;
                sc.base.collectiveChunkBytes = chunk / 2.0;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (const char *workload : {"VGG-E", "RNN-LSTM-1"}) {
        TablePrinter table({"Chunk(KiB)", "DC-DLA(ms)", "MC-DLA(B)(ms)",
                            "events(DC)", "events(MC)"});
        for (double chunk : chunks) {
            std::vector<std::string> row{
                TablePrinter::num(chunk / 1024.0, 0)};
            std::vector<std::string> events;
            for (SystemDesign design :
                 {SystemDesign::DcDla, SystemDesign::McDlaB}) {
                if (cursor.peek().base.dmaChunkBytes != chunk)
                    panic("chunk axis drifted from the sweep order");
                const IterationResult &r = cursor.next(
                    workload, design, ParallelMode::DataParallel);
                row.push_back(
                    TablePrinter::num(r.iterationSeconds() * 1e3, 2));
                events.push_back(
                    std::to_string(r.eventsExecuted / 1000) + "k");
            }
            row.insert(row.end(), events.begin(), events.end());
            table.addRow(std::move(row));
        }
        std::cout << "-- " << workload << " (data-parallel, batch "
                  << kDefaultBatch << ") --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
