/**
 * @file
 * Figure 2 reproduction: single-device CNN training time across five
 * accelerator generations (normalized to Kepler, left axis) and the
 * memory-virtualization overhead over a fixed PCIe gen3 host interface
 * (right axis).
 *
 * Paper shape: times drop 20-34x from Kepler to Volta/TPUv2 while the
 * virtualization overhead percentage grows steadily, because device
 * compute scaled ~30x over five years while PCIe gen3 stayed flat.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

/** Batch sized to fit the 12 GB Kepler-generation card. */
constexpr std::int64_t kBatch = 256;

struct Cell
{
    double deviceSeconds = 0.0; ///< Raw execution time (left axis).
    double virtSeconds = 0.0;   ///< With PCIe gen3 virtualization.
    double overheadPct = 0.0;   ///< Right axis.
};

Simulator sim;

Cell
evaluate(const std::string &workload, const DeviceConfig &device)
{
    Cell cell;
    for (bool virtualized : {true, false}) {
        Scenario sc;
        sc.design = virtualized ? SystemDesign::DcDla
                                : SystemDesign::DcDlaOracle;
        sc.workload = workload;
        sc.mode = ParallelMode::DataParallel;
        sc.globalBatch = kBatch;
        sc.base.device = device;
        sc.base.fabric.numDevices = 1;
        sc.base.fabric.numSockets = 1;
        const IterationResult r = sim.run(sc);
        (virtualized ? cell.virtSeconds : cell.deviceSeconds) =
            r.iterationSeconds();
    }
    // overhead = (T_virt - T_device) / T_virt.
    cell.overheadPct = 100.0
        * (cell.virtSeconds - cell.deviceSeconds) / cell.virtSeconds;
    return cell;
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Figure 2: execution time across device "
                 "generations (batch " << kBatch
              << ", single device, PCIe gen3 vmem) ===\n\n";

    const auto generations = deviceGenerationCatalog();

    for (const std::string &workload : cnnBenchmarkNames()) {
        TablePrinter table({"Generation", "DeviceTime(ms)",
                            "Time(norm)", "WithVirt(ms)",
                            "VirtOverhead(%)"});
        double kepler_seconds = 0.0;
        double best_seconds = 1e30;
        for (const DeviceGeneration &gen : generations) {
            const Cell cell = evaluate(workload, gen.config);
            if (gen.name == "Kepler")
                kepler_seconds = cell.deviceSeconds;
            best_seconds = std::min(best_seconds, cell.deviceSeconds);
            table.addRow({gen.name,
                          TablePrinter::num(
                              cell.deviceSeconds * 1e3, 2),
                          TablePrinter::num(
                              cell.deviceSeconds / kepler_seconds, 3),
                          TablePrinter::num(cell.virtSeconds * 1e3, 2),
                          TablePrinter::num(cell.overheadPct, 1)});
        }
        std::cout << "-- " << workload << " --\n";
        table.print(std::cout);
        std::cout << "Kepler -> newest device-time reduction: "
                  << TablePrinter::num(kepler_seconds / best_seconds, 1)
                  << "x (paper band: 20-34x)\n\n";
    }
    return 0;
}
