/**
 * @file
 * Ablation: prefetch policy x HBM capacity x workload.
 *
 * Sweeps the paged device-memory subsystem's policies over a range of
 * device HBM capacities on MC-DLA(B):
 *
 *  - static-plan reproduces the paper's vDNN schedule and is
 *    capacity-insensitive by construction (it migrates everything,
 *    always);
 *  - on-demand pays a fault stall for every stash that capacity
 *    pressure pushed out, so it degrades as HBM shrinks but moves no
 *    bytes at all when the stash fits;
 *  - history behaves like on-demand in its first (recording)
 *    iteration and then prefetches ahead of the recorded access
 *    sequence, recovering the hit rate without static-plan's
 *    unconditional traffic.
 *
 * Two iterations are simulated per point so history reaches steady
 * state; the reported metrics are the second iteration's.
 */

#include <iostream>
#include <vector>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

constexpr std::int64_t kBatch = 256;

const std::vector<double> kHbmGib = {3.0, 4.0, 6.0, 16.0};

const std::vector<PrefetchPolicyKind> kPolicies = {
    PrefetchPolicyKind::StaticPlan,
    PrefetchPolicyKind::OnDemand,
    PrefetchPolicyKind::History,
};

const std::vector<std::string> kWorkloads = {"AlexNet", "GoogLeNet",
                                             "VGG-E"};

Scenario
makeScenario(const std::string &workload, PrefetchPolicyKind policy,
             double hbm_gib)
{
    Scenario sc;
    sc.design = SystemDesign::McDlaB;
    sc.workload = workload;
    sc.mode = ParallelMode::DataParallel;
    sc.globalBatch = kBatch;
    sc.iterations = 2;
    sc.base.paging.prefetch = policy;
    sc.base.device.memCapacity =
        static_cast<std::uint64_t>(hbm_gib * kGiB);
    return sc;
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;

    std::vector<Scenario> scenarios;
    for (const std::string &workload : kWorkloads)
        for (double gib : kHbmGib)
            for (PrefetchPolicyKind policy : kPolicies)
                scenarios.push_back(makeScenario(workload, policy, gib));

    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);
    SweepCursor cursor(scenarios, results);

    std::cout << "=== Prefetch-policy ablation: MC-DLA(B), dp, batch "
              << kBatch << ", steady-state iteration ===\n\n";

    for (const std::string &workload : kWorkloads) {
        TablePrinter table({"HBM", "Policy", "Iter(ms)", "Vmem(ms)",
                            "Stall(ms)", "Hit%", "Fills", "WBs",
                            "Early"});
        double static_ms = 0.0;
        for (double gib : kHbmGib) {
            for (PrefetchPolicyKind policy : kPolicies) {
                const Scenario &sc = cursor.peek();
                if (sc.base.paging.prefetch != policy)
                    panic("sweep cursor misaligned on policy");
                const IterationResult &r = cursor.next(
                    workload, SystemDesign::McDlaB,
                    ParallelMode::DataParallel);
                if (policy == PrefetchPolicyKind::StaticPlan) {
                    if (static_ms == 0.0)
                        static_ms = r.iterationSeconds();
                    else if (r.iterationSeconds() != static_ms)
                        warn("%s: static-plan time varies with HBM "
                             "capacity",
                             workload.c_str());
                }
                table.addRow(
                    {TablePrinter::num(gib, 0) + " GiB",
                     prefetchPolicyToken(policy),
                     TablePrinter::num(r.iterationSeconds() * 1e3, 2),
                     TablePrinter::num(r.breakdown.vmemSec * 1e3, 2),
                     TablePrinter::num(r.paging.stallSec * 1e3, 2),
                     TablePrinter::num(r.paging.hitRate() * 100.0, 1),
                     std::to_string(r.paging.fills),
                     std::to_string(r.paging.writebacks),
                     std::to_string(r.paging.earlyEvictions)});
            }
        }
        std::cout << "-- " << workload << " --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout
        << "static-plan is capacity-insensitive (it always migrates "
           "the full stash);\non-demand trades traffic for fault "
           "stalls as HBM shrinks; history removes\nthe stalls again "
           "once its recorded sequence warms up.\n";
    return 0;
}
