/**
 * @file
 * Ablation: interconnect topology x collective algorithm x payload.
 *
 * Sweeps the generic Topology generators (ring, fully-connected
 * switch, 2-D mesh, 2-D torus, fat-tree) against the collective
 * algorithm families (ring, tree, hierarchical) across all-reduce
 * payload sizes — the axis the paper fixes by assumption. The numbers
 * reproduce the classic trade-offs:
 *
 *  - ring all-reduce is bandwidth-optimal but pays (stages-1)
 *    serialized steps, so small payloads are latency-bound;
 *  - tree all-reduce finishes in O(log n) rounds and wins small
 *    payloads, but moves the full payload per hop and loses at
 *    bandwidth saturation;
 *  - hierarchical (intra-board reduce + inter-board exchange) splits
 *    the difference on switched scale-out fabrics, where the flat
 *    ring's 2n stages are mostly switch latency;
 *  - the per-link bottleneck utilization names the limiting channel.
 *
 * Options: --smoke runs a single configuration (CI keeps it per-PR as
 * a canary with the CSV as an artifact), --csv writes the result rows
 * for regression diffing, --devices scales the node count.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/mcdla.hh"
#include "core/options.hh"

using namespace mcdla;

namespace
{

struct RunResult
{
    Tick latency = 0;
    std::string bottleneck;
    double bottleneckUtil = 0.0;
};

/** One all-reduce of @p bytes on a fresh fabric of @p kind. */
RunResult
runPoint(TopologyKind kind, CollectiveAlgorithm algo, double bytes,
         int devices)
{
    EventQueue eq;
    FabricConfig cfg;
    cfg.numDevices = devices;
    // radix = 2 * devices seats every node on a full-switch plane
    // exactly, and gives the fat-tree leaf slots for half the nodes —
    // two leaves plus a spine layer — whenever devices >= 2.
    cfg.switchRadix = std::max(4, 2 * devices);
    auto fabric = buildTopologyFabric(eq, cfg, kind);

    CollectiveConfig ccfg;
    ccfg.algorithm = algo;
    CollectiveEngine engine(eq, "abl.nccl", *fabric, ccfg);

    RunResult out;
    engine.launch(CollectiveKind::AllReduce, bytes,
                  [&] { out.latency = eq.now(); });
    eq.run();

    for (Channel *ch : fabric->channels()) {
        const double util = ch->utilization(out.latency);
        if (util > out.bottleneckUtil) {
            out.bottleneckUtil = util;
            out.bottleneck = ch->name();
        }
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    OptionParser opts("abl_topology",
                      "Interconnect ablation: topology x collective "
                      "algorithm x payload");
    opts.addFlag("smoke", "run a single configuration (CI canary)");
    opts.addString("csv", "", "write result rows to this CSV file");
    opts.addInt("devices", 16, "device-node count");
    if (!opts.parse(argc, argv, std::cerr))
        return 1;

    LogConfig::verbose = false;
    const bool smoke = opts.getFlag("smoke");
    const int devices = static_cast<int>(opts.getInt("devices"));

    const std::vector<TopologyKind> topologies = smoke
        ? std::vector<TopologyKind>{TopologyKind::Ring}
        : std::vector<TopologyKind>{
              TopologyKind::Ring, TopologyKind::FullSwitch,
              TopologyKind::Mesh2d, TopologyKind::Torus2d,
              TopologyKind::FatTree};
    const std::vector<CollectiveAlgorithm> algorithms = smoke
        ? std::vector<CollectiveAlgorithm>{CollectiveAlgorithm::Ring,
                                           CollectiveAlgorithm::Tree}
        : std::vector<CollectiveAlgorithm>{
              CollectiveAlgorithm::Ring, CollectiveAlgorithm::Tree,
              CollectiveAlgorithm::Hierarchical};
    const std::vector<double> payloads = smoke
        ? std::vector<double>{4e6}
        : std::vector<double>{64e3, 1e6, 16e6, 256e6};

    std::cout << "=== Topology x collective x payload all-reduce ("
              << devices << " devices) ===\n\n";

    ResultSet rows({"topology", "collective", "payload_mb",
                    "latency_us", "algbw_gbps", "bottleneck_channel",
                    "bottleneck_util"});
    for (double payload : payloads) {
        TablePrinter table({"Topology", "Collective", "Latency(us)",
                            "AlgBW(GB/s)", "Bottleneck link",
                            "Util"});
        for (TopologyKind kind : topologies) {
            for (CollectiveAlgorithm algo : algorithms) {
                const RunResult r =
                    runPoint(kind, algo, payload, devices);
                const double us =
                    ticksToSeconds(r.latency) * 1e6;
                const double algbw = us > 0.0
                    ? payload / (us * 1e-6) / 1e9
                    : 0.0;
                table.addRow(
                    {topologyKindToken(kind),
                     collectiveAlgorithmToken(algo),
                     TablePrinter::num(us, 1),
                     TablePrinter::num(algbw, 2), r.bottleneck,
                     TablePrinter::num(r.bottleneckUtil, 3)});
                rows.addRow(
                    {std::string(topologyKindToken(kind)),
                     std::string(collectiveAlgorithmToken(algo)),
                     payload / 1e6, us, algbw, r.bottleneck,
                     r.bottleneckUtil});
            }
        }
        std::cout << "-- " << payload / 1e6
                  << " MB all-reduce --\n";
        table.print(std::cout);
        std::cout << '\n';
    }

    std::cout << "Ring collectives saturate bandwidth for large "
                 "payloads; trees win the latency-bound small ones; "
                 "hierarchical splits the difference on switched "
                 "fabrics.\n";

    if (!opts.getString("csv").empty()) {
        std::ofstream out(opts.getString("csv"));
        rows.writeCsv(out);
        std::cout << "\nwrote " << opts.getString("csv") << '\n';
    }
    return 0;
}
