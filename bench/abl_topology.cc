/**
 * @file
 * Ablation: the three MC-DLA interconnect candidates of Section III-B —
 * the naive Fig 7(a) derivative (star-A: 8/8/24-hop rings), the folded
 * Fig 7(b) design (star: 8/12/20-hop rings, the evaluated MC-DLA(S)),
 * and the proposed Fig 7(c) ring (16/16/16 stages, MC-DLA(B)).
 *
 * This quantifies the paper's design-space narrative: balanced rings
 * plus full link utilization for virtualization win.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;
    std::cout << "=== Section III-B topology ablation (batch "
              << kDefaultBatch << ") ===\n\n";

    const SystemDesign designs[] = {SystemDesign::McDlaSA,
                                    SystemDesign::McDlaS,
                                    SystemDesign::McDlaB};

    std::vector<Scenario> scenarios;
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel})
        for (const BenchmarkInfo &info : benchmarkCatalog())
            for (SystemDesign design : designs) {
                Scenario sc;
                sc.design = design;
                sc.workload = info.name;
                sc.mode = mode;
                scenarios.push_back(std::move(sc));
            }
    SweepRunner runner(SweepConfig{/*threads=*/0, /*progress=*/false});
    const std::vector<IterationResult> results = runner.run(scenarios);

    SweepCursor cursor(scenarios, results);
    for (ParallelMode mode : {ParallelMode::DataParallel,
                              ParallelMode::ModelParallel}) {
        TablePrinter table({"Workload", "Fig7a 8/8/24", "Fig7b 8/12/20",
                            "Fig7c ring (B)"});
        std::map<SystemDesign, std::vector<double>> perf;
        for (const BenchmarkInfo &info : benchmarkCatalog()) {
            std::vector<std::string> row{info.name};
            double best = 0.0;
            std::map<SystemDesign, double> t;
            for (SystemDesign design : designs) {
                const IterationResult &r =
                    cursor.next(info.name, design, mode);
                t[design] = r.performance();
                best = std::max(best, r.performance());
            }
            for (SystemDesign design : designs) {
                row.push_back(TablePrinter::num(t[design] / best, 3));
                perf[design].push_back(t[design]);
            }
            table.addRow(std::move(row));
        }
        std::cout << "-- " << parallelModeName(mode)
                  << " (normalized performance) --\n";
        table.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "Paper: the ring design maximizes vmem bandwidth "
                 "(150 GB/s vs 50 GB/s) while keeping balanced rings; "
                 "Fig 7(a)'s 24-hop ring and idle memory-ring links "
                 "waste resources.\n";
    return 0;
}
