/**
 * @file
 * Device-node configuration (paper Table II) and the accelerator
 * generation catalog used by the Figure 2 study.
 */

#ifndef MCDLA_DEVICE_DEVICE_CONFIG_HH
#define MCDLA_DEVICE_DEVICE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/**
 * Abstract DL accelerator configuration.
 *
 * Defaults reproduce Table II's device-node row (a V100-class device:
 * 1024 PEs x 125 MACs @ 1 GHz, 32 KB SRAM per PE, 900 GB/s HBM, 100-cycle
 * access latency, 6 links x 25 GB/s).
 */
struct DeviceConfig
{
    std::string name = "volta-class";

    /// @name PE array (Table II)
    /// @{
    std::int64_t numPes = 1024;
    std::int64_t macsPerPe = 125;
    double freqGhz = 1.0;
    std::uint64_t sramPerPe = 32 * kKiB;
    /// @}

    /// @name Local (devicelocal) memory
    /// @{
    double memBandwidth = 900.0 * kGB;   ///< HBM bandwidth (bytes/sec).
    std::int64_t memLatencyCycles = 100; ///< Access latency (cycles).
    std::uint64_t memCapacity = 16 * kGiB;
    /// @}

    /// @name Device-side interconnect interface
    /// @{
    int numLinks = 6;                 ///< N high-bandwidth links.
    double linkBandwidth = 25.0 * kGB; ///< B per direction (bytes/sec).
    /// @}

    /**
     * Fixed per-layer issue overhead (kernel launch + descriptor setup),
     * dominating only for very small layers (GoogLeNet 1x1 reduces,
     * small-batch RNN cells).
     */
    Tick launchOverhead = 2 * ticksPerUs;

    /**
     * Achieved fraction of peak MACs on dense GEMM work beyond the
     * PE-grid/K-lane quantization the model already applies: covers
     * dataflow inefficiency (tile fills/drains of the double-buffered
     * SRAM, edge tiles, im2col overheads). Calibrated so single-device
     * iteration times and the compute-vs-PCIe balance land in the
     * paper's reported bands (Fig 2, Fig 11).
     */
    double dataflowEfficiency = 0.42;

    /** Peak multiply-accumulate throughput (MAC/s). */
    double
    peakMacsPerSec() const
    {
        return static_cast<double>(numPes) * static_cast<double>(macsPerPe)
            * freqGhz * 1e9;
    }

    /** Memory access latency in ticks. */
    Tick
    memLatency() const
    {
        return secondsToTicks(static_cast<double>(memLatencyCycles)
                              / (freqGhz * 1e9));
    }
};

/**
 * One accelerator generation for the Figure 2 trend study.
 *
 * The catalog is calibrated so the Kepler -> Volta/TPUv2 single-device
 * training-time reduction lands in the paper's reported 20-34x band while
 * PCIe gen3 stays fixed, which is what produces Fig 2's growing
 * virtualization overhead.
 */
struct DeviceGeneration
{
    std::string name;
    DeviceConfig config;
};

/** The five generations of Figure 2, oldest first. */
std::vector<DeviceGeneration> deviceGenerationCatalog();

/** Look up a generation by name; fatal if unknown. */
const DeviceConfig &deviceGeneration(const std::string &name);

} // namespace mcdla

#endif // MCDLA_DEVICE_DEVICE_CONFIG_HH
