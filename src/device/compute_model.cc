/**
 * @file
 * ComputeModel implementation.
 */

#include "device/compute_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // anonymous namespace

std::int64_t
ComputeModel::gemmCycles(std::int64_t m, std::int64_t n,
                         std::int64_t k) const
{
    if (m <= 0 || n <= 0 || k <= 0)
        return 0;
    // Output-stationary mapping: the M x N output tile is spread across
    // the PE grid; each PE reduces up to macsPerPe operands per cycle
    // along K. Both dimensions quantize.
    const std::int64_t output_waves = ceilDiv(m * n, _cfg.numPes);
    const std::int64_t k_waves = ceilDiv(k, _cfg.macsPerPe);
    const double ideal = static_cast<double>(output_waves)
        * static_cast<double>(k_waves);
    return static_cast<std::int64_t>(
        std::ceil(ideal / _cfg.dataflowEfficiency));
}

Tick
ComputeModel::gemmComputeTime(const GemmShape &gemm,
                              const LayerScaling &scaling) const
{
    const std::int64_t m = ceilDiv(gemm.m, scaling.modelShards);
    const std::int64_t n = gemm.nPerSample * scaling.batch;
    const std::int64_t cycles = gemmCycles(m, n, gemm.k);
    return secondsToTicks(static_cast<double>(cycles)
                          / (_cfg.freqGhz * 1e9));
}

double
ComputeModel::gemmUtilization(const GemmShape &gemm,
                              const LayerScaling &scaling) const
{
    const std::int64_t m = ceilDiv(gemm.m, scaling.modelShards);
    const std::int64_t n = gemm.nPerSample * scaling.batch;
    const std::int64_t cycles = gemmCycles(m, n, gemm.k);
    if (cycles == 0)
        return 0.0;
    const double ideal = static_cast<double>(m) * static_cast<double>(n)
        * static_cast<double>(gemm.k);
    const double issued = static_cast<double>(cycles)
        * static_cast<double>(_cfg.numPes)
        * static_cast<double>(_cfg.macsPerPe);
    return ideal / issued;
}

double
ComputeModel::forwardMemBytes(const Layer &layer,
                              const LayerScaling &scaling) const
{
    const double shard = 1.0 / static_cast<double>(scaling.modelShards);
    const double batch = static_cast<double>(scaling.batch);
    // Weights stream in once per layer execution (model-parallel shards
    // stream only their slice); activations stream in/out per sample.
    double bytes = static_cast<double>(layer.weightBytes()) * shard;
    bytes += static_cast<double>(layer.inBytesPerSample()) * batch;
    bytes += (static_cast<double>(layer.outBytesPerSample()) * shard
              + static_cast<double>(layer.auxStashBytesPerSample()) * shard)
        * batch;
    return bytes;
}

LayerTiming
ComputeModel::layerTiming(const Layer &layer,
                          const LayerScaling &scaling) const
{
    if (scaling.batch <= 0 || scaling.modelShards <= 0)
        fatal("layer '%s': invalid scaling (batch=%lld shards=%lld)",
              layer.name().c_str(),
              static_cast<long long>(scaling.batch),
              static_cast<long long>(scaling.modelShards));

    LayerTiming t;
    if (layer.kind() == LayerKind::Input)
        return t;

    // MAC-limited side: GEMMs plus element-wise work at peak lane rate.
    Tick mac_time = 0;
    double weighted_util = 0.0;
    double total_macs = 0.0;
    for (const GemmShape &g : layer.gemms()) {
        mac_time += gemmComputeTime(g, scaling);
        const double macs = static_cast<double>(g.macs(scaling.batch))
            / static_cast<double>(scaling.modelShards);
        weighted_util += gemmUtilization(g, scaling) * macs;
        total_macs += macs;
    }
    const double elt_ops =
        static_cast<double>(layer.fwdEltOpsPerSample())
        * static_cast<double>(scaling.batch)
        / static_cast<double>(scaling.modelShards);
    if (elt_ops > 0.0)
        mac_time += secondsToTicks(elt_ops / _cfg.peakMacsPerSec());

    // Memory-limited side.
    const double mem_bytes = forwardMemBytes(layer, scaling);
    const Tick mem_time = secondsToTicks(mem_bytes / _cfg.memBandwidth);

    const Tick body = std::max(mac_time, mem_time);
    t.memoryBound = mem_time > mac_time;
    t.forward = body + _cfg.launchOverhead + _cfg.memLatency();
    t.fwdUtilization = total_macs > 0.0 ? weighted_util / total_macs : 0.0;

    // Backward: dX and dW GEMMs (2x forward for weighted layers); the
    // memory side scales the same way. Launch overhead charged once.
    const double bwd_factor = layer.bwdMacFactor();
    if (bwd_factor > 0.0) {
        t.backward = static_cast<Tick>(static_cast<double>(body)
                                       * bwd_factor)
            + _cfg.launchOverhead + _cfg.memLatency();
    }

    // Weight update: read W and dW, write W (3x weight bytes), purely
    // bandwidth-bound. Model-parallel shards update only their slice.
    if (layer.hasWeights()) {
        const double w_bytes = 3.0
            * static_cast<double>(layer.weightBytes())
            / static_cast<double>(scaling.modelShards);
        t.weightUpdate = secondsToTicks(w_bytes / _cfg.memBandwidth)
            + _cfg.launchOverhead;
    }
    return t;
}

} // namespace mcdla
