/**
 * @file
 * DeviceNode: one accelerator inside the system simulation.
 *
 * A device-node couples a DeviceConfig, its ComputeModel, and bookkeeping
 * for local memory capacity. Its serial compute engine is driven by the
 * TrainingSession (system library); this class tracks occupancy so an
 * iteration can report per-device compute-busy statistics.
 */

#ifndef MCDLA_DEVICE_DEVICE_NODE_HH
#define MCDLA_DEVICE_DEVICE_NODE_HH

#include <algorithm>
#include <cstdint>

#include "device/compute_model.hh"
#include "device/device_config.hh"
#include "sim/sim_object.hh"

namespace mcdla
{

/** One accelerator device (GPU/TPU class) in the simulated node. */
class DeviceNode : public SimObject
{
  public:
    /**
     * @param eq Driving event queue.
     * @param name Instance name (e.g. "sys.dev3").
     * @param cfg Device configuration.
     */
    DeviceNode(EventQueue &eq, std::string name, const DeviceConfig &cfg)
        : SimObject(eq, std::move(name)), _cfg(cfg), _model(cfg),
          _busyUntil(0)
    {
        stats().scalar("compute_busy_ticks",
                       "total ticks the compute engine was busy");
        stats().scalar("ops_executed", "layer passes executed");
    }

    const DeviceConfig &config() const { return _cfg; }
    const ComputeModel &computeModel() const { return _model; }

    /** Local memory capacity in bytes. */
    std::uint64_t memCapacity() const { return _cfg.memCapacity; }

    /**
     * Reserve the serial compute engine for @p duration starting no
     * earlier than @p earliest, returning the completion tick. The engine
     * executes strictly in call order (one CUDA-stream semantics).
     */
    Tick
    occupyCompute(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, _busyUntil);
        _busyUntil = start + duration;
        stats().scalar("compute_busy_ticks")
            += static_cast<double>(duration);
        ++stats().scalar("ops_executed");
        return _busyUntil;
    }

    /** Next tick at which the compute engine is free. */
    Tick computeFreeAt() const { return _busyUntil; }

    /** Clear occupancy between iterations. */
    void
    resetOccupancy()
    {
        _busyUntil = 0;
    }

  private:
    DeviceConfig _cfg;
    ComputeModel _model;
    Tick _busyUntil;
};

} // namespace mcdla

#endif // MCDLA_DEVICE_DEVICE_NODE_HH
