/**
 * @file
 * Per-layer execution-time model of the abstract DL accelerator.
 *
 * The model follows the paper's methodology (Section IV): an
 * output-stationary spatial PE array with double-buffered SRAM, a
 * fixed-bandwidth/fixed-latency local memory, and coarse-grain layer
 * execution. Per layer, the time is the roofline maximum of
 *
 *   - MAC-limited time: GEMM cycles with PE-grid and K-lane quantization
 *     (outputs are tiled across 1024 PEs; each PE reduces 125 MACs/cycle),
 *   - memory-limited time: weight + activation traffic at HBM bandwidth,
 *
 * plus a fixed launch overhead and one memory-latency fill. Backward is
 * scaled by the layer's dX+dW MAC factor; weight update is pure bandwidth.
 */

#ifndef MCDLA_DEVICE_COMPUTE_MODEL_HH
#define MCDLA_DEVICE_COMPUTE_MODEL_HH

#include <cstdint>

#include "device/device_config.hh"
#include "dnn/layer.hh"
#include "sim/units.hh"

namespace mcdla
{

/**
 * Workload scaling applied by a parallelization strategy: output-dimension
 * split (model parallel divides every GEMM's M) and per-device batch.
 */
struct LayerScaling
{
    std::int64_t batch = 1;     ///< Per-device batch (N multiplier).
    std::int64_t modelShards = 1; ///< M divided across this many devices.
};

/** Per-layer timing estimates for one execution on one device. */
struct LayerTiming
{
    Tick forward = 0;        ///< Forward-pass time.
    Tick backward = 0;       ///< Backward-pass time (dX + dW).
    Tick weightUpdate = 0;   ///< Optimizer step time.
    double fwdUtilization = 0.0; ///< Achieved/peak MAC ratio (forward).
    bool memoryBound = false;    ///< Forward limited by HBM bandwidth.
};

/** Stateless timing model bound to one device configuration. */
class ComputeModel
{
  public:
    explicit ComputeModel(const DeviceConfig &cfg) : _cfg(cfg) {}

    const DeviceConfig &config() const { return _cfg; }

    /** Full timing for one layer under @p scaling. */
    LayerTiming layerTiming(const Layer &layer,
                            const LayerScaling &scaling) const;

    /** Forward-only convenience. */
    Tick
    forwardTime(const Layer &layer, const LayerScaling &scaling) const
    {
        return layerTiming(layer, scaling).forward;
    }

    /**
     * MAC-limited time of a single GEMM on the PE array (exposed for
     * validation tests).
     */
    Tick gemmComputeTime(const GemmShape &gemm,
                         const LayerScaling &scaling) const;

    /** Achieved utilization of a single GEMM in [0, 1]. */
    double gemmUtilization(const GemmShape &gemm,
                           const LayerScaling &scaling) const;

  private:
    /** Quantized PE-array cycle count for an M x N x K GEMM. */
    std::int64_t gemmCycles(std::int64_t m, std::int64_t n,
                            std::int64_t k) const;

    /** Bytes moved to/from local memory by one forward execution. */
    double forwardMemBytes(const Layer &layer,
                           const LayerScaling &scaling) const;

    DeviceConfig _cfg;
};

} // namespace mcdla

#endif // MCDLA_DEVICE_COMPUTE_MODEL_HH
