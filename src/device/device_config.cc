/**
 * @file
 * Accelerator generation catalog.
 *
 * Peak throughput and memory bandwidth are scaled from public datasheet
 * figures (K40, M40, P100 fp16, V100 tensor-core, TPUv2 per-chip), mapped
 * onto the paper's abstract 1024-PE array by varying MACs-per-PE. Absolute
 * values are intentionally approximate; the Fig 2 experiment only needs
 * the relative compute-vs-PCIe scaling trend.
 */

#include "device/device_config.hh"

#include "sim/logging.hh"

namespace mcdla
{

std::vector<DeviceGeneration>
deviceGenerationCatalog()
{
    std::vector<DeviceGeneration> catalog;

    auto make = [](std::string name, std::int64_t macs_per_pe,
                   double mem_bw_gb, std::uint64_t capacity) {
        DeviceGeneration gen;
        gen.name = name;
        gen.config.name = std::move(name);
        gen.config.macsPerPe = macs_per_pe;
        gen.config.memBandwidth = mem_bw_gb * kGB;
        gen.config.memCapacity = capacity;
        return gen;
    };

    // name, MACs/PE, HBM/GDDR GB/s, capacity.
    catalog.push_back(make("Kepler", 4, 288.0, 12 * kGiB));
    catalog.push_back(make("Maxwell", 6, 288.0, 24 * kGiB));
    catalog.push_back(make("Pascal", 24, 732.0, 16 * kGiB));
    catalog.push_back(make("Volta", 125, 900.0, 16 * kGiB));
    catalog.push_back(make("TPUv2", 96, 600.0, 16 * kGiB));
    return catalog;
}

const DeviceConfig &
deviceGeneration(const std::string &name)
{
    static const std::vector<DeviceGeneration> catalog =
        deviceGenerationCatalog();
    for (const auto &gen : catalog)
        if (gen.name == name)
            return gen.config;
    fatal("unknown device generation '%s'", name.c_str());
}

} // namespace mcdla
