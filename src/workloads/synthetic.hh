/**
 * @file
 * Synthetic workload generation.
 *
 * Deterministic, seeded random DNNs exercising every structural feature
 * the scheduler must handle — branching (inception-style concat),
 * residual adds, cheap-layer chains, mixed CNN/recurrent tails — used
 * by the property/fuzz test suite to check that arbitrary valid DAGs
 * simulate to completion with consistent accounting on every design
 * point.
 */

#ifndef MCDLA_WORKLOADS_SYNTHETIC_HH
#define MCDLA_WORKLOADS_SYNTHETIC_HH

#include <cstdint>

#include "dnn/network.hh"
#include "sim/random.hh"

namespace mcdla
{

/** Generation knobs. */
struct SyntheticSpec
{
    /** Approximate depth in structural segments. */
    int segments = 6;
    /** Input spatial resolution (square). */
    std::int64_t inputSize = 64;
    /** Initial channel count; grows stochastically with depth. */
    std::int64_t channels = 16;
    /** Probability of an inception-style branch segment (percent). */
    int branchPct = 30;
    /** Probability of a residual segment (percent). */
    int residualPct = 30;
    /** Append a recurrent tail with this many timesteps (0 = none). */
    std::int64_t recurrentTail = 0;
};

/**
 * Generate a random valid network.
 *
 * @param rng Seeded generator; equal seeds yield equal networks.
 * @param spec Shape knobs.
 */
Network buildSyntheticNetwork(Random &rng, const SyntheticSpec &spec);

} // namespace mcdla

#endif // MCDLA_WORKLOADS_SYNTHETIC_HH
