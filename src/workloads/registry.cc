/**
 * @file
 * Workload registry implementation.
 */

#include "workloads/registry.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(WorkloadInfo info)
{
    if (info.name.empty())
        fatal("cannot register a workload without a name");
    if (!info.build)
        fatal("workload '%s' registered without a build function",
              info.name.c_str());
    if (find(info.name) != nullptr)
        fatal("workload '%s' registered twice", info.name.c_str());
    _entries.push_back(std::move(info));
}

const WorkloadInfo *
WorkloadRegistry::find(const std::string &name) const
{
    for (const WorkloadInfo &info : _entries)
        if (info.name == name)
            return &info;
    return nullptr;
}

const WorkloadInfo &
WorkloadRegistry::at(const std::string &name) const
{
    if (const WorkloadInfo *info = find(name))
        return *info;
    std::string known;
    for (const std::string &n : names()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    fatal("unknown workload '%s' (known: %s)", name.c_str(),
          known.c_str());
}

std::vector<const WorkloadInfo *>
WorkloadRegistry::all() const
{
    std::vector<const WorkloadInfo *> sorted;
    sorted.reserve(_entries.size());
    for (const WorkloadInfo &info : _entries)
        sorted.push_back(&info);
    std::sort(sorted.begin(), sorted.end(),
              [](const WorkloadInfo *a, const WorkloadInfo *b) {
                  if (a->catalogOrder != b->catalogOrder)
                      return a->catalogOrder < b->catalogOrder;
                  return a->name < b->name;
              });
    return sorted;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> names;
    names.reserve(_entries.size());
    for (const WorkloadInfo *info : all())
        names.push_back(info->name);
    return names;
}

WorkloadRegistrar::WorkloadRegistrar(WorkloadInfo info)
{
    WorkloadRegistry::instance().add(std::move(info));
}

} // namespace mcdla
