/**
 * @file
 * Benchmark catalog implementation.
 */

#include "workloads/benchmarks.hh"

#include "sim/logging.hh"

namespace mcdla
{

const std::vector<BenchmarkInfo> &
benchmarkCatalog()
{
    static const std::vector<BenchmarkInfo> catalog = {
        {"AlexNet", "Image recognition", 8, false,
         [] { return builders::buildAlexNet(); }},
        {"GoogLeNet", "Image recognition", 58, false,
         [] { return builders::buildGoogLeNet(); }},
        {"VGG-E", "Image recognition", 19, false,
         [] { return builders::buildVggE(); }},
        {"ResNet", "Image recognition", 34, false,
         [] { return builders::buildResNet34(); }},
        {"RNN-GEMV", "Speech recognition", 50, true,
         [] { return builders::buildRnnGemv(); }},
        {"RNN-LSTM-1", "Machine translation", 25, true,
         [] { return builders::buildRnnLstm1(); }},
        {"RNN-LSTM-2", "Language modeling", 25, true,
         [] { return builders::buildRnnLstm2(); }},
        {"RNN-GRU", "Speech recognition", 187, true,
         [] { return builders::buildRnnGru(); }},
    };
    return catalog;
}

std::vector<std::string>
cnnBenchmarkNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkCatalog())
        if (!info.recurrent)
            names.push_back(info.name);
    return names;
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkCatalog())
        names.push_back(info.name);
    return names;
}

const BenchmarkInfo &
benchmarkInfo(const std::string &name)
{
    for (const BenchmarkInfo &info : benchmarkCatalog())
        if (info.name == name)
            return info;
    fatal("unknown benchmark '%s' (see Table III)", name.c_str());
}

Network
buildBenchmark(const std::string &name)
{
    return benchmarkInfo(name).build();
}

} // namespace mcdla
