/**
 * @file
 * Benchmark catalog implementation: thin views over the registry.
 */

#include "workloads/benchmarks.hh"

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Table III rows register with catalogOrder 0-7. */
constexpr int kTableRows = 8;

} // anonymous namespace

const std::vector<BenchmarkInfo> &
benchmarkCatalog()
{
    static const std::vector<BenchmarkInfo> catalog = [] {
        std::vector<BenchmarkInfo> rows;
        for (const WorkloadInfo *info :
             WorkloadRegistry::instance().all())
            if (info->catalogOrder < kTableRows)
                rows.push_back(*info);
        if (rows.size() != kTableRows)
            panic("expected %d Table III workloads, found %zu "
                  "(builder registration missing from the link?)",
                  kTableRows, rows.size());
        return rows;
    }();
    return catalog;
}

std::vector<std::string>
cnnBenchmarkNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkCatalog())
        if (!info.recurrent)
            names.push_back(info.name);
    return names;
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkCatalog())
        names.push_back(info.name);
    return names;
}

const BenchmarkInfo &
benchmarkInfo(const std::string &name)
{
    return WorkloadRegistry::instance().at(name);
}

Network
buildBenchmark(const std::string &name)
{
    return benchmarkInfo(name).build();
}

} // namespace mcdla
