/**
 * @file
 * Job-mix catalog for cluster-level workload generation.
 *
 * The synthetic arrival process samples job shapes from this weighted
 * catalog: a long tail of small single-device fine-tuning-style jobs,
 * a middle of half-machine training runs, and occasional whole-machine
 * jobs — the mix that makes scheduler/allocator policy differences
 * visible (backfill needs small jobs to slot around blocked big ones).
 */

#ifndef MCDLA_WORKLOADS_JOB_MIX_HH
#define MCDLA_WORKLOADS_JOB_MIX_HH

#include <cstdint>
#include <vector>

#include "parallel/strategy.hh"
#include "sim/random.hh"

namespace mcdla
{

/** One job shape of the mix, with its sampling weight. */
struct JobTemplate
{
    const char *workload;
    ParallelMode mode;
    std::int64_t batch;
    int devices;
    int iterations;
    double weight;
};

/**
 * The default catalog. Workload names reference the Table III
 * registry; device counts assume the paper's eight-device node and are
 * clamped by the sampler when the cluster is smaller.
 */
const std::vector<JobTemplate> &defaultJobMix();

/**
 * Draw one template, weight-proportionally, from @p mix using @p rng
 * (the run's single seeded RNG, so job streams reproduce).
 */
const JobTemplate &sampleJobMix(const std::vector<JobTemplate> &mix,
                                Random &rng);

/** One inference request size of the mix, with its sampling weight. */
struct RequestTemplate
{
    /** Samples the request carries (a client-side micro-batch). */
    int samples;
    double weight;
};

/**
 * The default inference request-size catalog: mostly single-sample
 * queries with a tail of small client-side micro-batches, the shape
 * that makes server-side batch coalescing worth measuring.
 */
const std::vector<RequestTemplate> &defaultRequestMix();

/** Draw one request template, weight-proportionally, from @p mix. */
const RequestTemplate &
sampleRequestMix(const std::vector<RequestTemplate> &mix, Random &rng);

} // namespace mcdla

#endif // MCDLA_WORKLOADS_JOB_MIX_HH
