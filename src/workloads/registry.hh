/**
 * @file
 * Self-registering workload registry.
 *
 * Every network builder translation unit registers its workloads with a
 * file-scope WorkloadRegistrar, so new networks plug into the catalog —
 * and therefore into `mcdla_sim --workload`, the benches, and the sweep
 * runner — without editing any central list. Table III rows carry their
 * paper ordering so catalog iteration stays in plotting order no matter
 * which translation unit initializes first.
 */

#ifndef MCDLA_WORKLOADS_REGISTRY_HH
#define MCDLA_WORKLOADS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "dnn/network.hh"

namespace mcdla
{

/** Default minibatch of the evaluation (Section IV). */
constexpr std::int64_t kDefaultBatch = 512;

/** One registered workload (a Table III row or an extension). */
struct WorkloadInfo
{
    std::string name;        ///< Lookup name (Table III network name).
    std::string application; ///< Application domain.
    std::int64_t depth;      ///< Weighted layers (CNN) or timesteps (RNN).
    bool recurrent = false;
    /**
     * Catalog sort key: Table III rows use their row number (0-7);
     * extensions register with >= 100 and sort after them by name.
     */
    int catalogOrder = 100;
    std::function<Network()> build;
};

/** Process-wide workload catalog. */
class WorkloadRegistry
{
  public:
    static WorkloadRegistry &instance();

    /** Register a workload; fatal on a duplicate or unbuildable entry. */
    void add(WorkloadInfo info);

    /** Look up by name; nullptr when unknown. */
    const WorkloadInfo *find(const std::string &name) const;

    /** Look up by name; fatal (listing known names) when unknown. */
    const WorkloadInfo &at(const std::string &name) const;

    /** Every entry, catalog-ordered (Table III first). */
    std::vector<const WorkloadInfo *> all() const;

    /** Every name, catalog-ordered. */
    std::vector<std::string> names() const;

    std::size_t size() const { return _entries.size(); }

  private:
    WorkloadRegistry() = default;

    /// Deque: references handed out by find()/at() stay valid when
    /// later registrations grow the catalog.
    std::deque<WorkloadInfo> _entries;
};

/**
 * File-scope self-registration hook:
 *
 *     namespace {
 *     const WorkloadRegistrar registrar{{"MyNet", "Domain", 12, false,
 *                                        100, [] { return build(); }}};
 *     } // anonymous namespace
 */
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(WorkloadInfo info);
};

} // namespace mcdla

#endif // MCDLA_WORKLOADS_REGISTRY_HH
