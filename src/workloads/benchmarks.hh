/**
 * @file
 * Benchmark catalog (paper Table III).
 *
 * Four CNNs (AlexNet, GoogLeNet, VGG-E, ResNet — ImageNet classifiers)
 * and four RNNs from the DeepBench suite (vanilla GEMV speech model, two
 * LSTMs, one GRU). The default evaluation batch size is 512.
 */

#ifndef MCDLA_WORKLOADS_BENCHMARKS_HH
#define MCDLA_WORKLOADS_BENCHMARKS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dnn/builders.hh"

namespace mcdla
{

/** Default minibatch of the evaluation (Section IV). */
constexpr std::int64_t kDefaultBatch = 512;

/** One Table III row. */
struct BenchmarkInfo
{
    std::string name;        ///< Table III network name.
    std::string application; ///< Application domain.
    std::int64_t depth;      ///< Weighted layers (CNN) or timesteps (RNN).
    bool recurrent;
    std::function<Network()> build;
};

/** All eight Table III benchmarks, CNNs first. */
const std::vector<BenchmarkInfo> &benchmarkCatalog();

/** The four CNN names. */
std::vector<std::string> cnnBenchmarkNames();

/** All eight names in Table III order. */
std::vector<std::string> benchmarkNames();

/** Build a benchmark network by Table III name; fatal if unknown. */
Network buildBenchmark(const std::string &name);

/** Catalog row by name; fatal if unknown. */
const BenchmarkInfo &benchmarkInfo(const std::string &name);

} // namespace mcdla

#endif // MCDLA_WORKLOADS_BENCHMARKS_HH
