/**
 * @file
 * Benchmark catalog (paper Table III), backed by the workload registry.
 *
 * Four CNNs (AlexNet, GoogLeNet, VGG-E, ResNet — ImageNet classifiers)
 * and four RNNs from the DeepBench suite (vanilla GEMV speech model, two
 * LSTMs, one GRU) register themselves from their builder translation
 * units (see workloads/registry.hh). The default evaluation batch size
 * is 512.
 */

#ifndef MCDLA_WORKLOADS_BENCHMARKS_HH
#define MCDLA_WORKLOADS_BENCHMARKS_HH

#include <string>
#include <vector>

#include "dnn/builders.hh"
#include "workloads/registry.hh"

namespace mcdla
{

/** One Table III row. */
using BenchmarkInfo = WorkloadInfo;

/** All eight Table III benchmarks, CNNs first. */
const std::vector<BenchmarkInfo> &benchmarkCatalog();

/** The four CNN names. */
std::vector<std::string> cnnBenchmarkNames();

/** All eight names in Table III order. */
std::vector<std::string> benchmarkNames();

/** Build a registered workload by name; fatal if unknown. */
Network buildBenchmark(const std::string &name);

/** Registry entry by name; fatal if unknown. */
const BenchmarkInfo &benchmarkInfo(const std::string &name);

} // namespace mcdla

#endif // MCDLA_WORKLOADS_BENCHMARKS_HH
