/**
 * @file
 * Default job-mix catalog.
 */

#include "workloads/job_mix.hh"

#include "sim/logging.hh"

namespace mcdla
{

const std::vector<JobTemplate> &
defaultJobMix()
{
    // Weights follow production DL cluster traces (Philly-style): most
    // jobs are small and short, a minority are gang-scheduled
    // multi-device runs, and the occasional whole-machine job causes
    // head-of-line blocking under FIFO.
    static const std::vector<JobTemplate> mix = {
        // Small fine-tuning-class jobs.
        {"AlexNet", ParallelMode::DataParallel, 128, 1, 1, 3.0},
        {"RNN-GEMV", ParallelMode::DataParallel, 128, 1, 1, 2.0},
        {"GoogLeNet", ParallelMode::DataParallel, 128, 2, 1, 2.0},
        // Half-machine training runs.
        {"ResNet", ParallelMode::DataParallel, 256, 4, 1, 1.5},
        {"RNN-LSTM-1", ParallelMode::ModelParallel, 256, 4, 1, 1.0},
        // Whole-machine heavyweights.
        {"VGG-E", ParallelMode::DataParallel, 512, 8, 1, 0.75},
        {"ResNet", ParallelMode::DataParallel, 512, 8, 2, 0.5},
    };
    return mix;
}

const JobTemplate &
sampleJobMix(const std::vector<JobTemplate> &mix, Random &rng)
{
    if (mix.empty())
        fatal("job mix catalog is empty");
    double total = 0.0;
    for (const JobTemplate &t : mix)
        total += t.weight;
    double draw = rng.uniform() * total;
    for (const JobTemplate &t : mix) {
        draw -= t.weight;
        if (draw <= 0.0)
            return t;
    }
    return mix.back();
}

const std::vector<RequestTemplate> &
defaultRequestMix()
{
    // Online-inference size distribution: interactive traffic is
    // dominated by single-sample queries; a minority of clients ship
    // small micro-batches (speculative decoding, ensemble front-ends).
    static const std::vector<RequestTemplate> mix = {
        {1, 8.0},
        {2, 2.0},
        {4, 1.0},
    };
    return mix;
}

const RequestTemplate &
sampleRequestMix(const std::vector<RequestTemplate> &mix, Random &rng)
{
    if (mix.empty())
        fatal("request mix catalog is empty");
    double total = 0.0;
    for (const RequestTemplate &t : mix)
        total += t.weight;
    double draw = rng.uniform() * total;
    for (const RequestTemplate &t : mix) {
        draw -= t.weight;
        if (draw <= 0.0)
            return t;
    }
    return mix.back();
}

} // namespace mcdla
