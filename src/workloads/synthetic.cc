/**
 * @file
 * Synthetic network generator implementation.
 */

#include "workloads/synthetic.hh"

#include <string>

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Append a cheap layer at random (activation / bn / lrn / dropout). */
LayerId
addRandomCheap(Network &net, Random &rng, LayerId in,
               const TensorShape &shape, const std::string &name)
{
    switch (rng.below(4)) {
      case 0:
        return net.addAfter(Layer::activation(name + "/act", shape),
                            in);
      case 1:
        return net.addAfter(Layer::batchNorm(name + "/bn", shape), in);
      case 2:
        return net.addAfter(Layer::lrn(name + "/lrn", shape), in);
      default:
        return net.addAfter(Layer::dropout(name + "/drop", shape), in);
    }
}

} // anonymous namespace

Network
buildSyntheticNetwork(Random &rng, const SyntheticSpec &spec)
{
    Network net("synthetic");

    TensorShape shape =
        TensorShape::chw(3, spec.inputSize, spec.inputSize);
    LayerId x = net.addLayer(Layer::input("data", shape));
    std::int64_t channels = spec.channels;

    for (int seg = 0; seg < spec.segments; ++seg) {
        const std::string p = "seg" + std::to_string(seg);
        const auto roll = static_cast<int>(rng.below(100));

        if (roll < spec.branchPct && shape.dim(1) >= 4) {
            // Inception-style branch: 1x1 / 3x3 / pool-projection.
            const std::int64_t c1 = channels / 2 + 1;
            const std::int64_t c3 = channels / 2 + 1;
            const std::int64_t cp = channels / 4 + 1;
            LayerId b1 = net.addAfter(
                Layer::conv2d(p + "/b1x1", shape, c1, 1, 1, 0), x);
            LayerId b3 = net.addAfter(
                Layer::conv2d(p + "/b3x3", shape, c3, 3, 1, 1), x);
            LayerId bp = net.addAfter(
                Layer::pool(p + "/bpool", shape, 3, 1, 1), x);
            bp = net.addAfter(
                Layer::conv2d(p + "/bproj",
                              net.layer(bp).outShape(), cp, 1, 1, 0),
                bp);
            channels = c1 + c3 + cp;
            x = net.addLayer(
                Layer::concat(p + "/concat", channels, shape.dim(1),
                              shape.dim(2)),
                {b1, b3, bp});
            shape = net.layer(x).outShape();
        } else if (roll < spec.branchPct + spec.residualPct
                   && shape.dim(1) >= 4) {
            // Residual block.
            LayerId shortcut = x;
            LayerId y = net.addAfter(
                Layer::conv2d(p + "/conv1", shape, channels, 3, 1, 1),
                x);
            y = addRandomCheap(net, rng, y, net.layer(y).outShape(),
                               p + "/mid");
            y = net.addAfter(
                Layer::conv2d(p + "/conv2", net.layer(y).outShape(),
                              channels, 3, 1, 1),
                y);
            x = net.addLayer(
                Layer::eltwiseAdd(p + "/add", net.layer(y).outShape()),
                {y, shortcut});
            shape = net.layer(x).outShape();
        } else {
            // Plain conv (+ optional cheap chain, + optional pool).
            const std::int64_t out_c =
                channels + static_cast<std::int64_t>(rng.below(
                    static_cast<std::uint64_t>(channels) + 1));
            x = net.addAfter(
                Layer::conv2d(p + "/conv", shape, out_c, 3, 1, 1), x);
            channels = out_c;
            shape = net.layer(x).outShape();
            if (rng.below(2) == 0)
                x = addRandomCheap(net, rng, x, shape, p);
            if (rng.below(2) == 0 && shape.dim(1) >= 8) {
                x = net.addAfter(Layer::pool(p + "/pool", shape, 2, 2),
                                 x);
                shape = net.layer(x).outShape();
            }
        }
    }

    // Classifier head, optionally preceded by a recurrent tail.
    x = net.addAfter(Layer::globalPool("gap", shape), x);
    std::int64_t features = net.layer(x).outShape().elems();

    if (spec.recurrentTail > 0) {
        const std::int64_t hidden = features;
        // One cell type per network: tied weights must share a shape.
        const bool lstm = rng.below(2) == 0;
        LayerId h = x;
        LayerId owner = invalidLayerId;
        for (std::int64_t t = 0; t < spec.recurrentTail; ++t) {
            Layer cell = lstm
                ? Layer::lstmCell("t" + std::to_string(t), hidden)
                : Layer::gruCell("t" + std::to_string(t), hidden);
            if (t > 0)
                cell.markWeightsTied(owner);
            std::vector<LayerId> inputs{x};
            if (t > 0)
                inputs.push_back(h);
            h = net.addLayer(std::move(cell), std::move(inputs));
            if (t == 0)
                owner = h;
        }
        x = h;
    }

    x = net.addAfter(Layer::fullyConnected("fc", features, 100), x);
    net.addAfter(Layer::softmaxLoss("loss", 100), x);
    net.validate();
    return net;
}

} // namespace mcdla
