/**
 * @file
 * Scenario implementation: the string round-trip tables and the CLI
 * resolution shared by every driver.
 */

#include "core/scenario.hh"

#include <cmath>
#include <sstream>

#include "core/options.hh"
#include "device/device_config.hh"
#include "interconnect/topology.hh"
#include "memory/dimm.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

struct DesignToken
{
    SystemDesign design;
    const char *token;
};

/** The one table both directions of the round-trip read. */
constexpr DesignToken kDesignTokens[] = {
    {SystemDesign::DcDla, "dc"},
    {SystemDesign::HcDla, "hc"},
    {SystemDesign::McDlaS, "mc-s"},
    {SystemDesign::McDlaL, "mc-l"},
    {SystemDesign::McDlaB, "mc-b"},
    {SystemDesign::DcDlaOracle, "oracle"},
    {SystemDesign::McDlaSA, "mc-sa"},
    {SystemDesign::McDlaX, "mc-x"},
};

} // anonymous namespace

SystemDesign
parseSystemDesign(const std::string &name)
{
    for (const DesignToken &entry : kDesignTokens)
        if (name == entry.token || name == systemDesignName(entry.design))
            return entry.design;
    fatal("unknown design '%s' (%s)", name.c_str(),
          systemDesignTokenList().c_str());
}

const char *
systemDesignToken(SystemDesign design)
{
    for (const DesignToken &entry : kDesignTokens)
        if (entry.design == design)
            return entry.token;
    panic("design %d has no token", static_cast<int>(design));
}

const std::vector<SystemDesign> &
allSystemDesigns()
{
    static const std::vector<SystemDesign> designs = [] {
        std::vector<SystemDesign> all;
        for (const DesignToken &entry : kDesignTokens)
            all.push_back(entry.design);
        return all;
    }();
    return designs;
}

const std::string &
systemDesignTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (const DesignToken &entry : kDesignTokens) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += entry.token;
        }
        return tokens;
    }();
    return list;
}

ParallelMode
parseParallelMode(const std::string &name)
{
    if (name == "dp" || name == "data" || name == "data-parallel")
        return ParallelMode::DataParallel;
    if (name == "mp" || name == "model" || name == "model-parallel")
        return ParallelMode::ModelParallel;
    if (name == "pp" || name == "pipeline"
        || name == "pipeline-parallel")
        return ParallelMode::Pipeline;
    fatal("unknown mode '%s' (%s)", name.c_str(),
          parallelModeTokenList().c_str());
}

const char *
parallelModeToken(ParallelMode mode)
{
    switch (mode) {
      case ParallelMode::DataParallel: return "dp";
      case ParallelMode::ModelParallel: return "mp";
      case ParallelMode::Pipeline: return "pp";
    }
    panic("mode %d has no token", static_cast<int>(mode));
}

const std::vector<ParallelMode> &
allParallelModes()
{
    static const std::vector<ParallelMode> modes = {
        ParallelMode::DataParallel,
        ParallelMode::ModelParallel,
        ParallelMode::Pipeline,
    };
    return modes;
}

const std::string &
parallelModeTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (ParallelMode mode : allParallelModes()) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += parallelModeToken(mode);
        }
        return tokens;
    }();
    return list;
}

double
pcieRawBandwidthForGen(std::int64_t gen)
{
    if (gen < 1 || gen > 6)
        fatal("unsupported --pcie-gen %lld (supported: 1-6)",
              static_cast<long long>(gen));
    // gen3 x16 = 16 GB/s per direction; each generation doubles.
    return 16.0 * kGB * std::ldexp(1.0, static_cast<int>(gen) - 3);
}

SystemConfig
Scenario::config() const
{
    SystemConfig cfg = base;
    cfg.design = design;
    return cfg;
}

std::string
Scenario::label() const
{
    std::ostringstream os;
    os << workload << '/' << systemDesignToken(design) << '/'
       << parallelModeToken(mode) << "/b" << globalBatch;
    if (mode == ParallelMode::Pipeline) {
        os << "/s"
           << (pipelineStages > 0 ? pipelineStages
                                  : base.fabric.numDevices)
           << "/mb" << microbatches;
    }
    // Interconnect overrides only mark scenarios off the design's own
    // wiring/algorithm; default labels stay stable for existing
    // tooling.
    if (base.fabric.topology != TopologyKind::Design)
        os << '/' << topologyKindToken(base.fabric.topology);
    if (base.collectiveAlgorithm != CollectiveAlgorithm::Ring)
        os << '/'
           << collectiveAlgorithmToken(base.collectiveAlgorithm);
    // The event-queue backend cannot change results (both backends
    // order identically), but a non-default run is still labelled so
    // perf comparisons name what they measured.
    if (base.eventQueueBackend != EventQueueBackendKind::Heap)
        os << '/' << eventQueueBackendToken(base.eventQueueBackend);
    // Paging knobs only distinguish scenarios off the default policy;
    // default labels stay stable for existing tooling.
    if (base.paging.prefetch != PrefetchPolicyKind::StaticPlan) {
        os << '/' << prefetchPolicyToken(base.paging.prefetch) << "/hbm"
           << (static_cast<double>(base.device.memCapacity)
               / static_cast<double>(kGiB))
           << 'g';
    }
    // Serving scenarios carry the replica/policy/SLO grid; training
    // labels stay untouched so existing tooling keys keep matching.
    if (serve) {
        os << "/serve/r" << replicas << '/'
           << batchPolicyToken(batchPolicy) << '/' << routerToken(router)
           << "/slo" << sloMs << "/rps" << requestRate;
        if (arrivals != ArrivalKind::Poisson)
            os << '/' << arrivalKindToken(arrivals);
    }
    // Stochastic runs carry their seed so the label reproduces them.
    if (seed != 0)
        os << "/seed" << seed;
    return os.str();
}

void
Scenario::addOptions(OptionParser &opts)
{
    opts.addString("design", "mc-b",
                   "system design: " + systemDesignTokenList());
    opts.addString("workload", "ResNet",
                   "registered workload name, or 'all'");
    opts.addString("mode", "dp",
                   "parallelization: " + parallelModeTokenList());
    opts.addInt("batch", kDefaultBatch, "global minibatch size");
    opts.addInt("pipeline-stages", 0,
                "pipeline stage count (--mode pp; 0 = one per device)");
    opts.addInt("microbatches", 4,
                "GPipe microbatches per iteration (--mode pp)");
    opts.addInt("devices", 8, "device-node count");
    opts.addString("topology", "design",
                   "interconnect wiring: " + topologyKindTokenList());
    opts.addString("collective", "ring",
                   "collective algorithm: "
                       + collectiveAlgorithmTokenList());
    opts.addInt("board-devices", 8,
                "devices per board (hierarchical collectives)");
    opts.addInt("switch-radix", 18,
                "ports per switch plane / fat-tree radix (mc-x, "
                "--topology full-switch/fat-tree)");
    opts.addString("device-gen", "Volta",
                   "device generation (Kepler..TPUv2)");
    opts.addInt("pcie-gen", 3, "PCIe generation for the host link");
    opts.addDouble("link-gbps", 25.0,
                   "device-side link bandwidth, GB/s per direction");
    opts.addInt("dimm-gib", 128,
                "memory-node DIMM capacity (8/16/32/64/128 GiB)");
    opts.addDouble("socket-gbps", 0.0,
                   "host socket bandwidth cap, GB/s (0 = uncapped)");
    opts.addDouble("compression", 1.0, "cDMA compression ratio");
    opts.addDouble("compute-scale", 1.0,
                   "uniform scale on per-layer compute times "
                   "(what-if validation)");
    opts.addInt("iterations", 1, "training iterations to simulate");
    opts.addFlag("no-recompute", "disable the footnote-4 optimization");
    opts.addString("prefetch-policy", "static-plan",
                   "stash paging policy: " + prefetchPolicyTokenList());
    opts.addInt("prefetch-lookahead", 8,
                "prefetch window in ops (static-plan and history)");
    opts.addString("eviction-policy", "last-fwd-use",
                   "paged eviction policy: "
                       + evictionPolicyTokenList());
    opts.addDouble("hbm-capacity", 0.0,
                   "device HBM capacity in GiB (0 = device default)");
    opts.addInt("seed", 0,
                "RNG seed for stochastic components (0 = default)");
    opts.addString("event-queue", "heap",
                   "DES priority structure: "
                       + eventQueueBackendTokenList());
    opts.addFlag("serve",
                 "inference-serving mode: replicas + request stream "
                 "(--batch caps each coalesced batch)");
    opts.addInt("replicas", 2,
                "serving replicas, one device each (--serve)");
    opts.addInt("requests", 256,
                "synthetic request count (--serve)");
    opts.addDouble("request-rate", 200.0,
                   "mean request arrival rate, req/s (--serve)");
    opts.addDouble("slo-ms", 50.0,
                   "request tail-latency objective, ms (--serve)");
    opts.addString("batch-policy", "continuous",
                   "serving batch coalescing: " + batchPolicyTokenList());
    opts.addDouble("batch-timeout-ms", 5.0,
                   "dynamic batch policy's queueing-wait bound, ms");
    opts.addString("arrivals", "poisson",
                   "synthetic arrival process: " + arrivalKindTokenList());
    opts.addString("router", "slo",
                   "request-to-replica routing: " + routerTokenList());
}

Scenario
Scenario::fromOptions(const OptionParser &opts)
{
    Scenario sc;
    sc.design = parseSystemDesign(opts.getString("design"));
    sc.workload = opts.getString("workload");
    sc.mode = parseParallelMode(opts.getString("mode"));
    sc.globalBatch = opts.getInt("batch");
    if (sc.globalBatch < 1)
        fatal("--batch must be positive (got %lld)",
              static_cast<long long>(sc.globalBatch));
    sc.iterations = static_cast<int>(opts.getInt("iterations"));
    if (sc.iterations < 1)
        fatal("--iterations must be positive (got %lld)",
              static_cast<long long>(opts.getInt("iterations")));
    sc.pipelineStages =
        static_cast<int>(opts.getInt("pipeline-stages"));
    if (sc.pipelineStages < 0)
        fatal("--pipeline-stages must be >= 0 (got %lld)",
              static_cast<long long>(opts.getInt("pipeline-stages")));
    sc.microbatches = static_cast<int>(opts.getInt("microbatches"));
    if (sc.microbatches < 1)
        fatal("--microbatches must be positive (got %lld)",
              static_cast<long long>(opts.getInt("microbatches")));
    if (sc.mode == ParallelMode::Pipeline) {
        if (sc.globalBatch % sc.microbatches != 0)
            fatal("--batch %lld is not divisible by --microbatches %d",
                  static_cast<long long>(sc.globalBatch),
                  sc.microbatches);
    }

    sc.base.device = deviceGeneration(opts.getString("device-gen"));
    sc.base.device.linkBandwidth = opts.getDouble("link-gbps") * kGB;
    sc.base.fabric.numDevices =
        static_cast<int>(opts.getInt("devices"));
    sc.base.fabric.topology =
        parseTopologyKind(opts.getString("topology"));
    sc.base.collectiveAlgorithm =
        parseCollectiveAlgorithm(opts.getString("collective"));
    sc.base.collectiveBoardDevices =
        static_cast<int>(opts.getInt("board-devices"));
    if (sc.base.collectiveBoardDevices < 1)
        fatal("--board-devices must be positive (got %lld)",
              static_cast<long long>(opts.getInt("board-devices")));
    sc.base.fabric.switchRadix =
        static_cast<int>(opts.getInt("switch-radix"));
    if (sc.base.fabric.switchRadix < 2)
        fatal("--switch-radix must be at least 2 (got %lld)",
              static_cast<long long>(opts.getInt("switch-radix")));
    sc.base.fabric.pcieRawBandwidth =
        pcieRawBandwidthForGen(opts.getInt("pcie-gen"));
    sc.base.fabric.socketBandwidth =
        opts.getDouble("socket-gbps") * kGB;
    sc.base.memNode.dimm = dimmByCapacityGib(
        static_cast<unsigned>(opts.getInt("dimm-gib")));
    sc.base.dmaCompressionRatio = opts.getDouble("compression");
    sc.base.computeTimeScale = opts.getDouble("compute-scale");
    if (sc.base.computeTimeScale <= 0.0)
        fatal("--compute-scale must be positive (got %g)",
              sc.base.computeTimeScale);
    sc.base.recomputeCheapLayers = !opts.getFlag("no-recompute");

    sc.base.paging.prefetch =
        parsePrefetchPolicy(opts.getString("prefetch-policy"));
    sc.base.paging.eviction =
        parseEvictionPolicy(opts.getString("eviction-policy"));
    // A zero window silently degrades static-plan/history into a
    // never-prefetching no-op; reject it like the other capacity knobs.
    const std::int64_t lookahead = opts.getInt("prefetch-lookahead");
    if (lookahead < 1)
        fatal("--prefetch-lookahead must be positive (got %lld)",
              static_cast<long long>(lookahead));
    sc.base.paging.lookahead = static_cast<std::size_t>(lookahead);
    const double hbm_gib = opts.getDouble("hbm-capacity");
    if (hbm_gib < 0.0)
        fatal("--hbm-capacity must be >= 0 GiB (got %g)", hbm_gib);
    if (hbm_gib > 0.0) {
        sc.base.device.memCapacity =
            static_cast<std::uint64_t>(hbm_gib * kGiB);
    }
    const std::int64_t seed = opts.getInt("seed");
    if (seed < 0)
        fatal("--seed must be >= 0 (got %lld)",
              static_cast<long long>(seed));
    sc.seed = static_cast<std::uint64_t>(seed);
    sc.base.eventQueueBackend =
        parseEventQueueBackendKind(opts.getString("event-queue"));

    // Serving knobs are validated unconditionally, like the paging
    // knobs above: a bad value is a configuration error even when
    // --serve is off.
    sc.serve = opts.getFlag("serve");
    sc.replicas = static_cast<int>(opts.getInt("replicas"));
    if (sc.replicas < 1)
        fatal("--replicas must be positive (got %lld)",
              static_cast<long long>(opts.getInt("replicas")));
    sc.requests = static_cast<int>(opts.getInt("requests"));
    if (sc.requests < 1)
        fatal("--requests must be positive (got %lld)",
              static_cast<long long>(opts.getInt("requests")));
    sc.requestRate = opts.getDouble("request-rate");
    if (sc.requestRate <= 0.0)
        fatal("--request-rate must be positive (got %g)",
              sc.requestRate);
    sc.sloMs = opts.getDouble("slo-ms");
    if (sc.sloMs <= 0.0)
        fatal("--slo-ms must be positive (got %g)", sc.sloMs);
    sc.batchPolicy = parseBatchPolicy(opts.getString("batch-policy"));
    sc.batchTimeoutMs = opts.getDouble("batch-timeout-ms");
    if (sc.batchTimeoutMs < 0.0)
        fatal("--batch-timeout-ms must be >= 0 (got %g)",
              sc.batchTimeoutMs);
    sc.arrivals = parseArrivalKind(opts.getString("arrivals"));
    sc.router = parseRouter(opts.getString("router"));
    return sc;
}

} // namespace mcdla
