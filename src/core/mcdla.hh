/**
 * @file
 * Umbrella public header of the mcdla-sim library.
 *
 * Including this header gives access to the full public API:
 *
 *  - mcdla::builders — the eight Table III benchmark networks;
 *  - mcdla::SystemConfig / System — the six design points of Figure 13;
 *  - mcdla::TrainingSession — event-driven training-iteration simulation
 *    with latency breakdowns, host-bandwidth, and makespan metrics;
 *  - mcdla::ParallelStrategy / PipelinePartition — data-, model-, and
 *    GPipe-style pipeline-parallel training strategies;
 *  - mcdla::VmemRuntime — the Table I cudaMallocRemote /
 *    cudaFreeRemote / cudaMemcpyAsync(LocalToRemote|RemoteToLocal) API;
 *  - mcdla::DevicePager / PageTable / PrefetchPolicy / EvictionPolicy —
 *    the paged device-memory subsystem (static-plan, on-demand, and
 *    history prefetching over a capacity-tracked HBM frame budget);
 *  - mcdla::Topology / Router — the interconnect graph layer: typed
 *    nodes and channel-owning links, generic generators (ring, switch,
 *    mesh, torus, fat-tree), and shortest-path/ECMP routing tables;
 *  - mcdla::CollectiveEngine — topology-aware collectives with
 *    selectable algorithms (ring / tree / hierarchical);
 *  - mcdla::Scenario / Simulator / SweepRunner — declarative run
 *    descriptions, one-call execution, and parallel sweeps;
 *  - mcdla::Cluster / JobScheduler / MemoryPoolAllocator — multi-job
 *    scheduling over a shared machine with a disaggregated memory
 *    pool (FIFO/SJF/backfill x first-fit/buddy, ClusterReport);
 *  - mcdla::ServingCluster / BatchPolicy / ReplicaRouter — inference
 *    serving: open-loop request streams (Poisson/bursty/diurnal),
 *    static/dynamic/continuous batch coalescing, SLO-aware replica
 *    routing and admission, co-located with training (ServingReport
 *    p50/p95/p99 request tails);
 *  - experiment helpers (harmonicMean, TablePrinter).
 */

#ifndef MCDLA_CORE_MCDLA_HH
#define MCDLA_CORE_MCDLA_HH

#include "cluster/cluster.hh"
#include "cluster/job.hh"
#include "cluster/pool_allocator.hh"
#include "cluster/scheduler.hh"
#include "collective/ring_collective.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "device/compute_model.hh"
#include "device/device_config.hh"
#include "device/device_node.hh"
#include "dnn/builders.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "dnn/pipeline.hh"
#include "dnn/tensor.hh"
#include "interconnect/channel.hh"
#include "interconnect/fabric.hh"
#include "interconnect/fabrics.hh"
#include "interconnect/flow.hh"
#include "interconnect/router.hh"
#include "interconnect/topology.hh"
#include "memory/address_map.hh"
#include "memory/dimm.hh"
#include "memory/memory_node.hh"
#include "parallel/strategy.hh"
#include "serving/batch_policy.hh"
#include "serving/request.hh"
#include "serving/router.hh"
#include "serving/serving.hh"
#include "sim/causal.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/units.hh"
#include "system/analytic_model.hh"
#include "system/energy_model.hh"
#include "system/system.hh"
#include "system/system_config.hh"
#include "system/training_session.hh"
#include "vmem/dma_engine.hh"
#include "vmem/offload_plan.hh"
#include "vmem/paging/eviction_policy.hh"
#include "vmem/paging/fault_handler.hh"
#include "vmem/paging/page_table.hh"
#include "vmem/paging/pager.hh"
#include "vmem/paging/paging_config.hh"
#include "vmem/paging/prefetch_policy.hh"
#include "vmem/runtime.hh"
#include "workloads/benchmarks.hh"
#include "workloads/job_mix.hh"
#include "workloads/registry.hh"
#include "workloads/synthetic.hh"

#endif // MCDLA_CORE_MCDLA_HH
