/**
 * @file
 * Simulator facade and parallel sweep runner.
 *
 * Simulator turns a Scenario into an IterationResult with one call,
 * caching built networks by workload name so design/mode/batch grids
 * pay the network-construction cost once. SweepRunner executes a
 * scenario list across a thread pool — every scenario owns its private
 * EventQueue/System, so runs are independent — and returns results in
 * scenario order regardless of thread count, making parallel sweeps
 * bit-identical to serial ones.
 */

#ifndef MCDLA_CORE_SIMULATOR_HH
#define MCDLA_CORE_SIMULATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/scenario.hh"
#include "sim/metrics.hh"
#include "sim/profiler.hh"
#include "system/training_session.hh"

namespace mcdla
{

class CausalRecorder;

/**
 * Register the standard machine-level gauges on @p metrics: one
 * "chan.<name>.util" utilization gauge per fabric channel (fraction of
 * the sampling period the link was busy, via busy-tick deltas) and a
 * "sim.pending_events" queue-depth gauge. Subsystems layer their own
 * gauges (pool occupancy, HBM residency, serving queues) on top.
 */
void registerSystemMetrics(MetricRegistry &metrics, System &system);

/** One-call scenario execution with workload caching. */
class Simulator
{
  public:
    /** Optional per-run observers. */
    struct Hooks
    {
        TraceSink *trace = nullptr;   ///< Chrome-tracing sink.
        std::ostream *stats = nullptr; ///< gem5-style stats dump.
        /**
         * Metric time-series: registerSystemMetrics() gauges are added
         * and periodic sampling runs for the whole scenario.
         */
        MetricRegistry *metrics = nullptr;
        /** DES wall-clock profiler attached to the run's EventQueue. */
        DesProfiler *profiler = nullptr;
        /**
         * Event-provenance recorder attached to the run's EventQueue
         * (attached before the System is built so construction-time
         * schedules are captured). Observation-only: execution order
         * and results are identical with or without it.
         */
        CausalRecorder *causal = nullptr;
        /** Inspect the live System after the last iteration. */
        std::function<void(System &, const IterationResult &)> postRun;
    };

    /** Run one scenario on its registered workload. */
    IterationResult run(const Scenario &scenario);
    IterationResult run(const Scenario &scenario, const Hooks &hooks);

    /** Run one scenario on an externally built network. */
    IterationResult run(const Scenario &scenario,
                        const Network &net) const;
    IterationResult run(const Scenario &scenario, const Network &net,
                        const Hooks &hooks) const;

    /**
     * The cached network of a registered workload (built on first
     * use). Thread-safe; the returned pointer stays valid for the
     * simulator's lifetime.
     */
    std::shared_ptr<const Network> network(const std::string &workload);

  private:
    std::mutex _mutex;
    std::map<std::string, std::shared_ptr<const Network>> _networks;
};

/** Sweep execution parameters. */
struct SweepConfig
{
    /** Worker threads; <= 0 selects the hardware concurrency. */
    int threads = 1;
    /** Emit an inform() line as each scenario completes. */
    bool progress = false;
};

/** Deterministic multi-threaded execution of a scenario list. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepConfig cfg = {});

    /**
     * Run every scenario; results arrive in scenario order no matter
     * how many threads execute. An error in any scenario (with
     * LogConfig::throwOnError) is rethrown after the pool drains,
     * lowest scenario index first.
     */
    std::vector<IterationResult>
    run(const std::vector<Scenario> &scenarios);

    /** Run and collect into the standard result table. */
    ResultSet runToResults(const std::vector<Scenario> &scenarios);

    /** Columns of runToResults() rows. */
    static const std::vector<std::string> &resultColumns();

    /** One standard result row. */
    static std::vector<ReportValue>
    resultRow(const Scenario &scenario, const IterationResult &result);

    /** The shared simulator (exposes the network cache). */
    Simulator &simulator() { return _sim; }

  private:
    SweepConfig _cfg;
    Simulator _sim;
};

/**
 * Checked sequential reader pairing sweep results with the grid loops
 * that consume them. Reporting code that replays the scenario-building
 * loops calls next() with its loop variables; the cursor panics the
 * moment the build and consume loops drift apart, instead of silently
 * attributing results to the wrong grid cell.
 */
class SweepCursor
{
  public:
    /** Both containers must outlive the cursor. */
    SweepCursor(const std::vector<Scenario> &scenarios,
                const std::vector<IterationResult> &results);

    /**
     * Scenario about to be consumed; panics past the end. Lets knob
     * sweeps (chunk size, socket caps, ...) verify the axes next()
     * does not compare before taking the result.
     */
    const Scenario &peek() const;

    /** Next result; panics unless workload/design/mode all match. */
    const IterationResult &next(const std::string &workload,
                                SystemDesign design, ParallelMode mode);

  private:
    const std::vector<Scenario> &_scenarios;
    const std::vector<IterationResult> &_results;
    std::size_t _idx = 0;
};

} // namespace mcdla

#endif // MCDLA_CORE_SIMULATOR_HH
