/**
 * @file
 * OptionParser implementation.
 */

#include "core/options.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace mcdla
{

OptionParser::OptionParser(std::string program, std::string description)
    : _program(std::move(program)), _description(std::move(description))
{}

void
OptionParser::addString(const std::string &name, std::string def,
                        std::string help)
{
    _order.push_back(name);
    _specs[name] = Spec{Kind::String, std::move(help), std::move(def)};
}

void
OptionParser::addInt(const std::string &name, std::int64_t def,
                     std::string help)
{
    _order.push_back(name);
    _specs[name] =
        Spec{Kind::Int, std::move(help), std::to_string(def)};
}

void
OptionParser::addDouble(const std::string &name, double def,
                        std::string help)
{
    _order.push_back(name);
    _specs[name] =
        Spec{Kind::Double, std::move(help), std::to_string(def)};
}

void
OptionParser::addFlag(const std::string &name, std::string help)
{
    _order.push_back(name);
    _specs[name] = Spec{Kind::Flag, std::move(help), "0"};
}

OptionParser::Spec &
OptionParser::lookup(const std::string &name, Kind kind)
{
    auto it = _specs.find(name);
    if (it == _specs.end())
        panic("unknown option '--%s'", name.c_str());
    if (it->second.kind != kind)
        panic("option '--%s' accessed with the wrong type",
              name.c_str());
    return it->second;
}

const OptionParser::Spec &
OptionParser::lookup(const std::string &name, Kind kind) const
{
    return const_cast<OptionParser *>(this)->lookup(name, kind);
}

bool
OptionParser::parse(int argc, const char *const *argv, std::ostream &err)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printUsage(err);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        auto it = _specs.find(name);
        if (it == _specs.end()) {
            err << _program << ": unknown option '--" << name << "'\n";
            printUsage(err);
            return false;
        }
        Spec &spec = it->second;
        if (spec.kind == Kind::Flag) {
            spec.value = have_value ? value : "1";
            spec.set = true;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc) {
                err << _program << ": option '--" << name
                    << "' needs a value\n";
                return false;
            }
            value = argv[++i];
        }
        // Validate numeric options eagerly.
        if (spec.kind == Kind::Int || spec.kind == Kind::Double) {
            char *end = nullptr;
            std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                err << _program << ": option '--" << name
                    << "' expects a number, got '" << value << "'\n";
                return false;
            }
        }
        spec.value = std::move(value);
        spec.set = true;
    }
    return true;
}

const std::string &
OptionParser::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

std::int64_t
OptionParser::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Kind::Int).value.c_str(), nullptr,
                        10);
}

double
OptionParser::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(),
                       nullptr);
}

bool
OptionParser::getFlag(const std::string &name) const
{
    return lookup(name, Kind::Flag).value == "1";
}

bool
OptionParser::wasSet(const std::string &name) const
{
    auto it = _specs.find(name);
    if (it == _specs.end())
        panic("unknown option '--%s'", name.c_str());
    return it->second.set;
}

void
OptionParser::printUsage(std::ostream &os) const
{
    os << _description << "\n\nUsage: " << _program
       << " [options]\n\nOptions:\n";
    for (const std::string &name : _order) {
        const Spec &spec = _specs.at(name);
        std::string left = "  --" + name;
        if (spec.kind != Kind::Flag)
            left += " <" + std::string(
                spec.kind == Kind::String
                    ? "str"
                    : (spec.kind == Kind::Int ? "int" : "num"))
                + ">";
        os << left;
        for (std::size_t pad = left.size(); pad < 26; ++pad)
            os << ' ';
        os << spec.help;
        if (spec.kind != Kind::Flag && !spec.value.empty())
            os << " [default: " << spec.value << "]";
        os << '\n';
    }
}

} // namespace mcdla
