/**
 * @file
 * Experiment helpers shared by the benchmark harness and examples:
 * one-call "simulate design X on workload W" plumbing, means, and
 * fixed-width table printing matching the paper's reporting style.
 */

#ifndef MCDLA_CORE_EXPERIMENT_HH
#define MCDLA_CORE_EXPERIMENT_HH

#include <ostream>
#include <string>
#include <vector>

#include "system/training_session.hh"
#include "workloads/benchmarks.hh"

namespace mcdla
{

/** Parameters of one simulation run. */
struct RunSpec
{
    SystemDesign design = SystemDesign::McDlaB;
    std::string workload = "ResNet";
    ParallelMode mode = ParallelMode::DataParallel;
    std::int64_t globalBatch = kDefaultBatch;
    /** Base configuration; design/topology fields are overridden. */
    SystemConfig base;
};

/** Simulate one training iteration for a run spec. */
IterationResult simulateIteration(const RunSpec &spec);

/** Simulate with an already-built network (avoids rebuild cost). */
IterationResult simulateIteration(const RunSpec &spec,
                                  const Network &net);

/** Harmonic mean (the paper's averaging convention, Section V). */
double harmonicMean(const std::vector<double> &values);

/** Geometric mean. */
double geometricMean(const std::vector<double> &values);

/** Simple fixed-width text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 3);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace mcdla

#endif // MCDLA_CORE_EXPERIMENT_HH
