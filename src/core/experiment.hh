/**
 * @file
 * Experiment helpers shared by the benchmark harness and examples:
 * means and fixed-width table printing matching the paper's reporting
 * style. (One-call scenario execution lives in core/simulator.hh.)
 */

#ifndef MCDLA_CORE_EXPERIMENT_HH
#define MCDLA_CORE_EXPERIMENT_HH

#include <ostream>
#include <string>
#include <vector>

namespace mcdla
{

/** Harmonic mean (the paper's averaging convention, Section V). */
double harmonicMean(const std::vector<double> &values);

/** Geometric mean. */
double geometricMean(const std::vector<double> &values);

/** Simple fixed-width text table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 3);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace mcdla

#endif // MCDLA_CORE_EXPERIMENT_HH
