/**
 * @file
 * Minimal command-line option parser for the driver tools.
 *
 * Supports `--name value`, `--name=value`, and boolean switches, with
 * typed accessors, defaults, and generated --help text. Deliberately
 * dependency-free (the simulator builds offline).
 */

#ifndef MCDLA_CORE_OPTIONS_HH
#define MCDLA_CORE_OPTIONS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace mcdla
{

/** Declarative command-line options with typed access. */
class OptionParser
{
  public:
    OptionParser(std::string program, std::string description);

    /// @name Option declaration (call before parse())
    /// @{
    void addString(const std::string &name, std::string def,
                   std::string help);
    void addInt(const std::string &name, std::int64_t def,
                std::string help);
    void addDouble(const std::string &name, double def,
                   std::string help);
    void addFlag(const std::string &name, std::string help);
    /// @}

    /**
     * Parse argv.
     *
     * @return false if --help was requested or an error occurred (the
     *         message/usage is printed to @p err); callers should exit.
     */
    bool parse(int argc, const char *const *argv, std::ostream &err);

    /// @name Typed accessors (fatal on unknown names)
    /// @{
    const std::string &getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;
    /// @}

    /** Whether the user supplied the option explicitly. */
    bool wasSet(const std::string &name) const;

    /** Positional (non-option) arguments. */
    const std::vector<std::string> &positional() const
    {
        return _positional;
    }

    void printUsage(std::ostream &os) const;

  private:
    enum class Kind { String, Int, Double, Flag };

    struct Spec
    {
        Kind kind;
        std::string help;
        std::string value; // canonical textual value
        bool set = false;
    };

    Spec &lookup(const std::string &name, Kind kind);
    const Spec &lookup(const std::string &name, Kind kind) const;

    std::string _program;
    std::string _description;
    std::vector<std::string> _order;
    std::map<std::string, Spec> _specs;
    std::vector<std::string> _positional;
};

} // namespace mcdla

#endif // MCDLA_CORE_OPTIONS_HH
