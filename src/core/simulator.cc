/**
 * @file
 * Simulator facade and sweep runner implementation.
 */

#include "core/simulator.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <set>
#include <thread>

#include "interconnect/channel.hh"
#include "sim/causal.hh"
#include "sim/logging.hh"
#include "system/system.hh"

namespace mcdla
{

void
registerSystemMetrics(MetricRegistry &metrics, System &system)
{
    const double period_sec = ticksToSeconds(metrics.period());
    for (Channel *ch : system.fabric().channels()) {
        // Utilization of the sampling period via busy-tick deltas.
        auto prev = std::make_shared<Tick>(ch->busyTicks());
        metrics.add("chan." + ch->name() + ".util",
                    [ch, prev, period_sec] {
                        const Tick busy = ch->busyTicks();
                        const Tick delta = busy - *prev;
                        *prev = busy;
                        return period_sec > 0.0
                            ? ticksToSeconds(delta) / period_sec
                            : 0.0;
                    });
    }
    EventQueue &eq = system.eventQueue();
    metrics.add("sim.pending_events",
                [&eq] { return static_cast<double>(eq.pendingCount()); });
}

std::shared_ptr<const Network>
Simulator::network(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _networks.find(workload);
    if (it != _networks.end())
        return it->second;
    auto net = std::make_shared<const Network>(
        WorkloadRegistry::instance().at(workload).build());
    _networks.emplace(workload, net);
    return net;
}

IterationResult
Simulator::run(const Scenario &scenario)
{
    return run(scenario, Hooks{});
}

IterationResult
Simulator::run(const Scenario &scenario, const Hooks &hooks)
{
    return run(scenario, *network(scenario.workload), hooks);
}

IterationResult
Simulator::run(const Scenario &scenario, const Network &net) const
{
    return run(scenario, net, Hooks{});
}

IterationResult
Simulator::run(const Scenario &scenario, const Network &net,
               const Hooks &hooks) const
{
    EventQueue eq(scenario.base.eventQueueBackend);
    // The recorder attaches before the System exists so that
    // construction-time schedules land in the provenance DAG too.
    if (hooks.causal != nullptr)
        eq.setCausalRecorder(hooks.causal);
    System system(eq, scenario.config());
    TrainingSession session(system, net, scenario.mode,
                            scenario.globalBatch,
                            scenario.pipelineStages,
                            scenario.microbatches);
    if (hooks.trace != nullptr) {
        session.setTraceSink(hooks.trace);
        system.collectives().setTraceSink(hooks.trace);
    }
    if (hooks.profiler != nullptr)
        eq.setProfiler(hooks.profiler);
    if (hooks.metrics != nullptr) {
        registerSystemMetrics(*hooks.metrics, system);
        hooks.metrics->add("hbm.resident_gib", [&session] {
            return static_cast<double>(session.hbmResidentBytes())
                / (1024.0 * 1024.0 * 1024.0);
        });
    }

    IterationResult result;
    for (int i = 0; i < scenario.iterations; ++i) {
        // Arm (or re-arm) periodic sampling: the weak sampler event is
        // discarded at every iteration's drain.
        if (hooks.metrics != nullptr)
            hooks.metrics->start(eq);
        result = session.run();
    }
    if (hooks.stats != nullptr) {
        dumpSystemStats(system, *hooks.stats);
        session.dumpPagingStats(*hooks.stats);
    }
    if (hooks.postRun)
        hooks.postRun(system, result);
    return result;
}

SweepRunner::SweepRunner(SweepConfig cfg) : _cfg(cfg) {}

std::vector<IterationResult>
SweepRunner::run(const std::vector<Scenario> &scenarios)
{
    std::vector<IterationResult> results(scenarios.size());
    if (scenarios.empty())
        return results;

    // Build every distinct workload up front, serially: worker threads
    // then only read the cache, and the build order is deterministic.
    std::set<std::string> workloads;
    for (const Scenario &sc : scenarios)
        if (workloads.insert(sc.workload).second)
            _sim.network(sc.workload);

    int threads = _cfg.threads;
    if (threads <= 0)
        threads = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    threads = std::min<int>(threads,
                            static_cast<int>(scenarios.size()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::vector<std::exception_ptr> errors(scenarios.size());

    auto worker = [&] {
        for (std::size_t i = next.fetch_add(1); i < scenarios.size();
             i = next.fetch_add(1)) {
            try {
                results[i] = _sim.run(scenarios[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            const std::size_t done = completed.fetch_add(1) + 1;
            if (_cfg.progress)
                inform("sweep %zu/%zu: %s", done, scenarios.size(),
                       scenarios[i].label().c_str());
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    for (const std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

const std::vector<std::string> &
SweepRunner::resultColumns()
{
    static const std::vector<std::string> columns = {
        "workload", "design", "mode", "batch", "iteration_ms",
        "compute_ms", "sync_ms", "vmem_ms", "host_gb",
        "host_peak_gbps", "events"};
    return columns;
}

std::vector<ReportValue>
SweepRunner::resultRow(const Scenario &scenario,
                       const IterationResult &result)
{
    return {scenario.workload,
            std::string(systemDesignName(scenario.design)),
            std::string(parallelModeName(scenario.mode)),
            scenario.globalBatch,
            result.iterationSeconds() * 1e3,
            result.breakdown.computeSec * 1e3,
            result.breakdown.syncSec * 1e3,
            result.breakdown.vmemSec * 1e3,
            result.hostBytes / 1e9,
            result.hostPeakBwPerSocket / kGB,
            static_cast<std::int64_t>(result.eventsExecuted)};
}

SweepCursor::SweepCursor(const std::vector<Scenario> &scenarios,
                         const std::vector<IterationResult> &results)
    : _scenarios(scenarios), _results(results)
{
    if (scenarios.size() != results.size())
        panic("sweep cursor over %zu scenarios but %zu results",
              scenarios.size(), results.size());
}

const Scenario &
SweepCursor::peek() const
{
    if (_idx >= _scenarios.size())
        panic("sweep cursor ran past its %zu scenarios",
              _scenarios.size());
    return _scenarios[_idx];
}

const IterationResult &
SweepCursor::next(const std::string &workload, SystemDesign design,
                  ParallelMode mode)
{
    const Scenario &sc = peek();
    if (sc.workload != workload || sc.design != design
        || sc.mode != mode)
        panic("sweep cursor misaligned at %zu: consuming %s/%s/%s but "
              "the sweep ran %s",
              _idx, workload.c_str(), systemDesignToken(design),
              parallelModeToken(mode), sc.label().c_str());
    return _results[_idx++];
}

ResultSet
SweepRunner::runToResults(const std::vector<Scenario> &scenarios)
{
    const std::vector<IterationResult> results = run(scenarios);
    ResultSet table(resultColumns());
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        table.addRow(resultRow(scenarios[i], results[i]));
    return table;
}

} // namespace mcdla
