/**
 * @file
 * Declarative description of one simulation run.
 *
 * A Scenario names everything the simulator needs — design point,
 * workload, parallelization, batch, and a SystemConfig carrying any
 * device/fabric/memory overrides — so drivers, benches, and sweeps can
 * be written as plain data. The string round-trip helpers
 * (parseSystemDesign / systemDesignToken, parseParallelMode /
 * parallelModeToken) are the single source of truth for the CLI
 * vocabulary; no per-tool parsers exist anymore.
 */

#ifndef MCDLA_CORE_SCENARIO_HH
#define MCDLA_CORE_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/strategy.hh"
#include "serving/batch_policy.hh"
#include "serving/request.hh"
#include "serving/router.hh"
#include "system/system_config.hh"
#include "workloads/registry.hh"

namespace mcdla
{

class OptionParser;

/// @name Design/mode string round-trips
/// @{

/** Parse a design token ("dc", "hc", "mc-s", ...); fatal if unknown. */
SystemDesign parseSystemDesign(const std::string &name);

/** Canonical CLI token of a design ("mc-b", "oracle", ...). */
const char *systemDesignToken(SystemDesign design);

/** Parse a parallelization token ("dp"/"mp"/"pp", long forms ok);
    fatal. */
ParallelMode parseParallelMode(const std::string &name);

/** Canonical CLI token of a mode ("dp" / "mp" / "pp"). */
const char *parallelModeToken(ParallelMode mode);

/** Every mode the parser accepts. */
const std::vector<ParallelMode> &allParallelModes();

/** Comma-separated list of accepted mode tokens (for help text). */
const std::string &parallelModeTokenList();

/** Every design the parser accepts (evaluation set plus extras). */
const std::vector<SystemDesign> &allSystemDesigns();

/** Comma-separated list of accepted design tokens (for help text). */
const std::string &systemDesignTokenList();

/// @}

/**
 * Raw per-direction x16 PCIe bandwidth of @p gen (bytes/s).
 *
 * Generations 1-6 are accepted (gen3 = 16 GB/s, halving/doubling per
 * step); anything else is a fatal configuration error. This replaces
 * the former `1LL << (gen - 3)` expression whose negative shift was
 * undefined behavior for gen 1-2.
 */
double pcieRawBandwidthForGen(std::int64_t gen);

/** Full description of one simulation run. */
struct Scenario
{
    SystemDesign design = SystemDesign::McDlaB;
    std::string workload = "ResNet";
    ParallelMode mode = ParallelMode::DataParallel;
    std::int64_t globalBatch = kDefaultBatch;
    /** Pipeline stage count (--mode pp; 0 = one stage per device). */
    int pipelineStages = 0;
    /** GPipe microbatches per iteration (--mode pp only). */
    int microbatches = 4;
    /** Training iterations to simulate (metrics are the last one's). */
    int iterations = 1;
    /**
     * Seed of the run's single sim/random.hh RNG. Stochastic components
     * (the cluster's synthetic job-arrival process, randomized policies)
     * draw from one Random seeded here, so a scenario label fully
     * reproduces a run. 0 (the default) keeps labels of deterministic
     * runs unchanged.
     */
    std::uint64_t seed = 0;

    /// @name Inference-serving knobs (--serve runs; defaults off)
    /// @{
    /** Serving mode: replicas + request stream instead of training. */
    bool serve = false;
    /** Model replicas (one device each, devices 0..replicas-1). */
    int replicas = 2;
    /** Synthetic request count (ignored with a request trace). */
    int requests = 256;
    /** Mean request arrival rate, requests/sec. */
    double requestRate = 200.0;
    /** Tail-latency objective, milliseconds. */
    double sloMs = 50.0;
    /** Server-side coalescing policy; globalBatch caps each batch. */
    BatchPolicyKind batchPolicy = BatchPolicyKind::Continuous;
    /** Dynamic policy's queueing-wait bound, milliseconds. */
    double batchTimeoutMs = 5.0;
    /** Synthetic arrival process. */
    ArrivalKind arrivals = ArrivalKind::Poisson;
    /** Request-to-replica routing policy. */
    RouterKind router = RouterKind::SloAware;
    /// @}

    /** Base configuration; the design field is stamped by config(). */
    SystemConfig base;

    /** The effective SystemConfig (base with design applied). */
    SystemConfig config() const;

    /**
     * Compact identity, e.g. "ResNet/mc-b/dp/b512"; pipeline scenarios
     * append the stage/microbatch grid, e.g.
     * "ResNet/mc-b/pp/b512/s4/mb8"; interconnect overrides append the
     * topology/collective tokens (e.g. ".../torus2d/tree"); serving
     * scenarios append the replica/policy/SLO grid (e.g.
     * ".../serve/r4/continuous/slo/slo50/rps200"); seeded scenarios
     * append "/seed<N>".
     */
    std::string label() const;

    /**
     * Declare the shared simulation knobs (--design, --workload,
     * --mode, --batch, --devices, --topology, --collective,
     * --board-devices, --switch-radix, --device-gen, --pcie-gen,
     * --link-gbps,
     * --dimm-gib, --socket-gbps, --compression, --iterations,
     * --no-recompute, --prefetch-policy, --prefetch-lookahead,
     * --eviction-policy, --hbm-capacity, --pipeline-stages,
     * --microbatches, --seed, --event-queue, and the serving set:
     * --serve,
     * --replicas, --requests, --request-rate, --slo-ms,
     * --batch-policy, --batch-timeout-ms, --arrivals, --router) on
     * @p opts.
     */
    static void addOptions(OptionParser &opts);

    /**
     * Resolve a parsed option set (declared via addOptions) into a
     * scenario; fatal on invalid values. The workload name is taken
     * verbatim — drivers expand aggregates like "all" themselves.
     */
    static Scenario fromOptions(const OptionParser &opts);
};

} // namespace mcdla

#endif // MCDLA_CORE_SCENARIO_HH
