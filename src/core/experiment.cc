/**
 * @file
 * Experiment helper implementation.
 */

#include "core/experiment.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace mcdla
{

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double denom = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        panic("table row has %zu cells, expected %zu", cells.size(),
              _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit(_headers);
    std::vector<std::string> rule;
    for (std::size_t w : widths)
        rule.push_back(std::string(w, '-'));
    emit(rule);
    for (const auto &row : _rows)
        emit(row);
}

} // namespace mcdla
