/**
 * @file
 * Result-reporting backends: CSV and JSON writers for experiment
 * sweeps and a system-wide statistics dump. The Chrome-tracing sink
 * lives in sim/trace.hh so lower layers can emit events.
 *
 * Every bench binary prints human-readable tables; these writers give
 * downstream users machine-readable output and visual timelines for
 * debugging schedules.
 */

#ifndef MCDLA_CORE_REPORT_HH
#define MCDLA_CORE_REPORT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "sim/metrics.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

namespace mcdla
{

class System;
struct IterationResult;

/** A heterogeneous table cell. */
using ReportValue = std::variant<std::string, double, std::int64_t>;

/**
 * The @p p -th percentile (0..100) of @p values under linear
 * interpolation between closest ranks — the shared tail-statistic
 * helper behind ServingReport's p50/p95/p99 request latencies and
 * ClusterReport's JCT/slowdown tails. Takes its argument by value (it
 * sorts a copy); returns 0 on an empty sample.
 */
double percentile(std::vector<double> values, double p);

/**
 * A rectangular result set with named columns, writable as CSV or a
 * JSON array of row objects.
 */
class ResultSet
{
  public:
    explicit ResultSet(std::vector<std::string> columns);

    const std::vector<std::string> &columns() const { return _columns; }
    std::size_t rowCount() const { return _rows.size(); }

    /** Append one row; must match the column count. */
    void addRow(std::vector<ReportValue> row);

    /** RFC-4180-style CSV with a header row. */
    void writeCsv(std::ostream &os) const;

    /** JSON array of objects keyed by column name. */
    void writeJson(std::ostream &os) const;

    /** Fetch a cell (row-major); panics when out of range. */
    const ReportValue &cell(std::size_t row, std::size_t col) const;

  private:
    static void emitCsvField(std::ostream &os, const ReportValue &v);
    static void emitJsonValue(std::ostream &os, const ReportValue &v);

    std::vector<std::string> _columns;
    std::vector<std::vector<ReportValue>> _rows;
};

/**
 * Dump the statistics of every component of a system (devices, DMA
 * engines, channels, collective engine) in gem5-style text form.
 */
void dumpSystemStats(System &system, std::ostream &os);

/// @name Per-channel utilization emission
/// @{

/**
 * Columns of per-channel link-utilization rows: scenario label,
 * channel name, gigabytes moved, busy milliseconds, utilization of
 * the iteration, and the peak FIFO backlog — enough to name the
 * bottleneck *link* of a run, which the per-stage latency breakdown
 * cannot see.
 */
const std::vector<std::string> &channelUsageColumns();

/** Append @p result's per-channel rows, labeled @p label. */
void appendChannelUsageRows(ResultSet &table, const std::string &label,
                            const IterationResult &result);

/// @}

/**
 * The MetricRegistry time-series as a ResultSet: a "time_s" column
 * followed by one column per registered metric, one row per sample —
 * the `--metrics-csv/--metrics-json` payload.
 */
ResultSet metricsTable(const MetricRegistry &metrics);

} // namespace mcdla

#endif // MCDLA_CORE_REPORT_HH
