/**
 * @file
 * Reporting backends implementation.
 */

#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "system/training_session.hh"

namespace mcdla
{

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        panic("percentile %g outside [0, 100]", p);
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0
        * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= values.size())
        return values.back();
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

ResultSet::ResultSet(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
    if (_columns.empty())
        panic("result set requires at least one column");
}

void
ResultSet::addRow(std::vector<ReportValue> row)
{
    if (row.size() != _columns.size())
        panic("result row has %zu cells, expected %zu", row.size(),
              _columns.size());
    _rows.push_back(std::move(row));
}

const ReportValue &
ResultSet::cell(std::size_t row, std::size_t col) const
{
    if (row >= _rows.size() || col >= _columns.size())
        panic("result cell (%zu, %zu) out of range", row, col);
    return _rows[row][col];
}

void
ResultSet::emitCsvField(std::ostream &os, const ReportValue &v)
{
    if (std::holds_alternative<std::string>(v)) {
        // RFC 4180: fields containing separators, quotes, or line
        // breaks (LF or CR) are quoted, with embedded quotes doubled.
        const std::string &s = std::get<std::string>(v);
        const bool quote =
            s.find_first_of(",\"\n\r") != std::string::npos;
        if (!quote) {
            os << s;
            return;
        }
        os << '"';
        for (char c : s) {
            if (c == '"')
                os << '"';
            os << c;
        }
        os << '"';
    } else if (std::holds_alternative<double>(v)) {
        os << std::setprecision(10) << std::get<double>(v);
    } else {
        os << std::get<std::int64_t>(v);
    }
}

void
ResultSet::writeCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < _columns.size(); ++c) {
        if (c)
            os << ',';
        emitCsvField(os, ReportValue{_columns[c]});
    }
    os << '\n';
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            emitCsvField(os, row[c]);
        }
        os << '\n';
    }
}

void
ResultSet::emitJsonValue(std::ostream &os, const ReportValue &v)
{
    if (std::holds_alternative<std::string>(v)) {
        jsonString(os, std::get<std::string>(v));
    } else if (std::holds_alternative<double>(v)) {
        const double d = std::get<double>(v);
        // JSON has no NaN/Infinity literals; emit null (RFC 8259).
        if (!std::isfinite(d))
            os << "null";
        else
            os << std::setprecision(10) << d;
    } else {
        os << std::get<std::int64_t>(v);
    }
}

void
ResultSet::writeJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < _columns.size(); ++c) {
            if (c)
                os << ", ";
            emitJsonValue(os, ReportValue{_columns[c]});
            os << ": ";
            emitJsonValue(os, _rows[r][c]);
        }
        os << '}' << (r + 1 < _rows.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
dumpSystemStats(System &system, std::ostream &os)
{
    os << "---------- Begin Simulation Statistics ----------\n";
    for (int d = 0; d < system.numDevices(); ++d) {
        system.device(d).stats().dump(os);
        system.dma(d).stats().dump(os);
    }
    system.collectives().stats().dump(os);
    for (Channel *ch : system.fabric().channels())
        ch->stats().dump(os);
    os << "---------- End Simulation Statistics ----------\n";
}

const std::vector<std::string> &
channelUsageColumns()
{
    // peak_queue_since_reset is named for its window: unlike the
    // per-iteration byte/busy deltas, a max cannot be delta'd, so it
    // covers everything since the last stats reset (the iteration for
    // standalone runs, the machine's lifetime under multi-tenancy).
    static const std::vector<std::string> columns = {
        "scenario", "channel",     "gigabytes",
        "busy_ms",  "utilization", "peak_queue_since_reset"};
    return columns;
}

void
appendChannelUsageRows(ResultSet &table, const std::string &label,
                       const IterationResult &result)
{
    for (const ChannelUsage &usage : result.channels) {
        table.addRow({label,
                      usage.channel,
                      usage.bytes / 1e9,
                      usage.busySec * 1e3,
                      usage.utilization,
                      static_cast<std::int64_t>(
                          usage.peakQueueDepth)});
    }
}

ResultSet
metricsTable(const MetricRegistry &metrics)
{
    std::vector<std::string> columns;
    columns.reserve(metrics.names().size() + 1);
    columns.push_back("time_s");
    for (const std::string &name : metrics.names())
        columns.push_back(name);
    ResultSet table(std::move(columns));
    for (const MetricRegistry::Sample &sample : metrics.samples()) {
        std::vector<ReportValue> row;
        row.reserve(sample.values.size() + 1);
        row.emplace_back(ticksToSeconds(sample.at));
        for (const double v : sample.values)
            row.emplace_back(v);
        table.addRow(std::move(row));
    }
    return table;
}

} // namespace mcdla
