/**
 * @file
 * Layer descriptor for DNN training simulation.
 *
 * A Layer carries everything the timing and memory models need:
 *  - the GEMM decomposition of its forward pass (M, K, and per-sample N),
 *  - parameter (weight) footprint,
 *  - per-sample output and auxiliary stash footprints,
 *  - a cost class driving the vDNN offload-vs-recompute policy.
 *
 * Layers are created through named constructors (Layer::conv2d, ...);
 * the Network owns them and wires the DAG.
 */

#ifndef MCDLA_DNN_LAYER_HH
#define MCDLA_DNN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/tensor.hh"

namespace mcdla
{

/** Dense layer identifier within one Network. */
using LayerId = std::int32_t;
constexpr LayerId invalidLayerId = -1;

/** Layer taxonomy. */
enum class LayerKind
{
    Input,          ///< Source of training samples.
    Conv2D,         ///< Convolution (optionally grouped), bias+ReLU fused.
    FullyConnected, ///< Dense GEMM layer, bias+ReLU fused.
    Pool,           ///< Max/avg pooling.
    Activation,     ///< Standalone activation (ReLU/tanh/sigmoid).
    LRN,            ///< Local response normalization (AlexNet/GoogLeNet).
    BatchNorm,      ///< Batch normalization (ResNet).
    Concat,         ///< Channel concatenation (GoogLeNet inception).
    EltwiseAdd,     ///< Residual addition (ResNet).
    Dropout,        ///< Dropout (mask stored as recomputable state).
    RnnCell,        ///< Vanilla recurrent cell (one timestep).
    LstmCell,       ///< LSTM cell (one timestep).
    GruCell,        ///< GRU cell (one timestep).
    SoftmaxLoss,    ///< Classifier + loss.
};

/** Human-readable kind name. */
const char *layerKindName(LayerKind kind);

/**
 * Cost class controlling the vDNN memory-overlaying policy
 * (Section IV of the paper, footnote 4).
 */
enum class CostClass
{
    /**
     * Convolution/GEMM/recurrent layers: stash-for-backward tensors are
     * offloaded to the backing store after their last forward use.
     */
    Heavy,
    /**
     * Activation/pool/normalization layers: cheaper to recompute during
     * backprop than to migrate (the MXNet-style optimization the paper
     * adopts), so they generate no virtualization traffic.
     */
    Cheap,
    /** Zero-cost graph structure (input, concat views). */
    Structural,
};

/** One forward-pass GEMM: out[M x N] += W[M x K] * in[K x N]. */
struct GemmShape
{
    std::int64_t m = 0;          ///< Output rows (output channels/units).
    std::int64_t k = 0;          ///< Reduction depth.
    std::int64_t nPerSample = 1; ///< N contribution per batch sample.

    /** Forward multiply-accumulates for a given batch size. */
    std::int64_t
    macs(std::int64_t batch) const
    {
        return m * k * nPerSample * batch;
    }

    /** Weight parameter count (excludes bias). */
    std::int64_t params() const { return m * k; }
};

/** A single layer of a Network. */
class Layer
{
  public:
    /// @name Named constructors
    /// @{
    static Layer input(std::string name, TensorShape out);

    /**
     * 2-D convolution with fused bias + ReLU.
     *
     * @param in Input feature-map shape {C,H,W}.
     * @param out_c Output channels.
     * @param kernel Square kernel size.
     * @param stride Stride.
     * @param pad Zero padding.
     * @param groups Filter groups (AlexNet uses 2).
     */
    static Layer conv2d(std::string name, const TensorShape &in,
                        std::int64_t out_c, std::int64_t kernel,
                        std::int64_t stride, std::int64_t pad,
                        std::int64_t groups = 1);

    static Layer fullyConnected(std::string name, std::int64_t in_f,
                                std::int64_t out_f);

    static Layer pool(std::string name, const TensorShape &in,
                      std::int64_t kernel, std::int64_t stride,
                      std::int64_t pad = 0);

    /** Global average pool collapsing HxW to 1x1. */
    static Layer globalPool(std::string name, const TensorShape &in);

    static Layer activation(std::string name, const TensorShape &in);
    static Layer lrn(std::string name, const TensorShape &in);
    static Layer batchNorm(std::string name, const TensorShape &in);
    static Layer dropout(std::string name, const TensorShape &in);

    /** Channel concat of @p channel_sums inputs (shapes share HxW). */
    static Layer concat(std::string name, std::int64_t out_c,
                        std::int64_t h, std::int64_t w);

    static Layer eltwiseAdd(std::string name, const TensorShape &in);

    /**
     * Vanilla RNN cell: h_t = act(W x_t + U h_{t-1}).
     * Input and hidden width are both @p hidden (DeepBench convention).
     */
    static Layer rnnCell(std::string name, std::int64_t hidden);

    /** LSTM cell: 4 gates, 2 GEMMs of M=4H. */
    static Layer lstmCell(std::string name, std::int64_t hidden);

    /** GRU cell: 3 gates, 2 GEMMs of M=3H. */
    static Layer gruCell(std::string name, std::int64_t hidden);

    static Layer softmaxLoss(std::string name, std::int64_t classes);
    /// @}

    LayerKind kind() const { return _kind; }
    const std::string &name() const { return _name; }
    CostClass costClass() const { return _costClass; }
    const TensorShape &outShape() const { return _outShape; }
    const std::vector<GemmShape> &gemms() const { return _gemms; }

    /** Whether this layer counts toward the paper's Table III depth. */
    bool countsTowardDepth() const { return _countsTowardDepth; }
    Layer &setCountsTowardDepth(bool v) { _countsTowardDepth = v;
                                          return *this; }

    /**
     * Weight tying: unrolled recurrent cells share one weight tensor.
     * Tied layers still *read* the shared weights every execution, but
     * contribute no extra model storage, no extra dW synchronization,
     * and no extra optimizer work. @p owner names the untied layer
     * that owns the shared tensor (drives pipeline-parallel tie-group
     * analysis).
     */
    bool weightsTied() const { return _weightsTied; }
    Layer &
    markWeightsTied(LayerId owner)
    {
        _weightsTied = true;
        _tiedOwner = owner;
        return *this;
    }

    /** Owning layer of a tied weight tensor; invalid when untied. */
    LayerId tiedOwner() const { return _tiedOwner; }

    /** Weight parameter count (including bias terms). */
    std::int64_t paramCount() const { return _paramCount; }

    /** Weight bytes. */
    std::uint64_t
    weightBytes() const
    {
        return static_cast<std::uint64_t>(_paramCount) * kElemBytes;
    }

    /** Forward MACs for @p batch samples. */
    std::int64_t
    fwdMacs(std::int64_t batch) const
    {
        std::int64_t total = 0;
        for (const auto &g : _gemms)
            total += g.macs(batch);
        return total + _fwdEltOpsPerSample * batch;
    }

    /**
     * Backward-pass MAC multiplier relative to forward. Weighted layers
     * run both the dX and dW GEMMs (2x); the input layer has no dX (1x);
     * element-wise layers roughly mirror their forward cost (1x).
     */
    double bwdMacFactor() const { return _bwdMacFactor; }

    /** Per-sample bytes of the output tensor. */
    std::uint64_t outBytesPerSample() const { return _outShape.bytes(); }

    /** Per-sample bytes read from input tensors during forward. */
    std::uint64_t inBytesPerSample() const { return _inBytes; }

    /**
     * Per-sample bytes of *internal* tensors saved for backward on top of
     * the output (e.g. LSTM gate activations and cell state).
     */
    std::uint64_t auxStashBytesPerSample() const { return _auxStash; }

    /** Element-wise forward ops per sample (cheap layers). */
    std::int64_t fwdEltOpsPerSample() const { return _fwdEltOpsPerSample; }

    /** Whether the layer owns trainable parameters. */
    bool hasWeights() const { return _paramCount > 0; }

    /** Recurrent cells process one timestep each. */
    bool
    isRecurrent() const
    {
        return _kind == LayerKind::RnnCell || _kind == LayerKind::LstmCell
            || _kind == LayerKind::GruCell;
    }

  private:
    Layer(LayerKind kind, std::string name, CostClass cost_class,
          TensorShape out_shape)
        : _kind(kind), _name(std::move(name)), _costClass(cost_class),
          _outShape(std::move(out_shape))
    {}

    LayerKind _kind;
    std::string _name;
    CostClass _costClass;
    TensorShape _outShape;
    std::vector<GemmShape> _gemms;
    std::int64_t _paramCount = 0;
    std::int64_t _fwdEltOpsPerSample = 0;
    std::uint64_t _inBytes = 0;
    std::uint64_t _auxStash = 0;
    double _bwdMacFactor = 2.0;
    bool _countsTowardDepth = false;
    bool _weightsTied = false;
    LayerId _tiedOwner = invalidLayerId;
};

} // namespace mcdla

#endif // MCDLA_DNN_LAYER_HH
