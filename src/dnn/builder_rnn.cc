/**
 * @file
 * Recurrent-network builders (Table III rows 5-8).
 *
 * Each network is the full unrolled sequence: one cell layer per timestep
 * chained through the hidden state, bracketed by an input layer and a
 * softmax classifier. Hidden sizes follow Baidu DeepBench entries; the
 * timestep counts are the ones printed in Table III (50 / 25 / 25 / 187).
 * Inputs are hidden-width vectors (DeepBench convention), so x_t and
 * h_{t-1} GEMMs share dimensions.
 */

#include "dnn/builders.hh"

#include "workloads/registry.hh"

#include <functional>

#include "sim/logging.hh"

namespace mcdla::builders
{

namespace
{

using CellFactory =
    std::function<Layer(const std::string &, std::int64_t)>;

/**
 * Build an unrolled single-layer recurrent network.
 *
 * @param name Network name (Table III).
 * @param timesteps Sequence length.
 * @param hidden Hidden width.
 * @param make_cell Factory producing one cell layer per timestep.
 */
Network
buildUnrolled(const std::string &name, std::int64_t timesteps,
              std::int64_t hidden, const CellFactory &make_cell)
{
    if (timesteps <= 0)
        fatal("recurrent network '%s' needs at least one timestep",
              name.c_str());
    Network net(name);
    net.setTimesteps(timesteps);

    // The whole input sequence arrives at once (timesteps x hidden).
    LayerId seq_in = net.addLayer(
        Layer::input("sequence", TensorShape{timesteps, hidden}));

    LayerId h = seq_in;
    LayerId owner = invalidLayerId; // t0 owns the shared weights
    for (std::int64_t t = 0; t < timesteps; ++t) {
        const std::string cell_name = "t" + std::to_string(t);
        Layer cell = make_cell(cell_name, hidden);
        if (t > 0)
            cell.markWeightsTied(owner); // one weight tensor, T readers
        // Every cell consumes the input sequence and (after t=0) the
        // previous hidden state.
        std::vector<LayerId> inputs{seq_in};
        if (t > 0)
            inputs.push_back(h);
        h = net.addLayer(std::move(cell), std::move(inputs));
        if (t == 0)
            owner = h;
    }

    LayerId fc = net.addAfter(
        Layer::fullyConnected("classifier", hidden, hidden), h);
    net.layer(fc).setCountsTowardDepth(false);
    net.addAfter(Layer::softmaxLoss("loss", hidden), fc);

    net.validate();
    return net;
}

} // anonymous namespace

Network
buildRnnGemv(std::int64_t timesteps, std::int64_t hidden)
{
    return buildUnrolled("RNN-GEMV", timesteps, hidden,
                         [](const std::string &n, std::int64_t h) {
                             return Layer::rnnCell(n, h);
                         });
}

Network
buildRnnLstm1(std::int64_t timesteps, std::int64_t hidden)
{
    return buildUnrolled("RNN-LSTM-1", timesteps, hidden,
                         [](const std::string &n, std::int64_t h) {
                             return Layer::lstmCell(n, h);
                         });
}

Network
buildRnnLstm2(std::int64_t timesteps, std::int64_t hidden)
{
    return buildUnrolled("RNN-LSTM-2", timesteps, hidden,
                         [](const std::string &n, std::int64_t h) {
                             return Layer::lstmCell(n, h);
                         });
}

Network
buildRnnGru(std::int64_t timesteps, std::int64_t hidden)
{
    return buildUnrolled("RNN-GRU", timesteps, hidden,
                         [](const std::string &n, std::int64_t h) {
                             return Layer::gruCell(n, h);
                         });
}

} // namespace mcdla::builders

namespace mcdla
{
namespace
{

const WorkloadRegistrar gemv{
    {"RNN-GEMV", "Speech recognition", 50, true, 4,
     [] { return builders::buildRnnGemv(); }}};
const WorkloadRegistrar lstm1{
    {"RNN-LSTM-1", "Machine translation", 25, true, 5,
     [] { return builders::buildRnnLstm1(); }}};
const WorkloadRegistrar lstm2{
    {"RNN-LSTM-2", "Language modeling", 25, true, 6,
     [] { return builders::buildRnnLstm2(); }}};
const WorkloadRegistrar gru{
    {"RNN-GRU", "Speech recognition", 187, true, 7,
     [] { return builders::buildRnnGru(); }}};

} // anonymous namespace
} // namespace mcdla
