/**
 * @file
 * PipelinePartition: split a Network into balanced pipeline stages.
 *
 * GPipe-style pipeline parallelism assigns a contiguous slice of the
 * topological layer order to each of P stage devices; microbatches
 * stream through the stages, so the iteration time is governed by the
 * most expensive stage (plus the fill/drain bubble). The partitioner
 * therefore solves the classic contiguous min-max partition problem:
 * choose P-1 cut points in the topological order that minimize the
 * maximum per-stage cost, where the per-layer cost is supplied by the
 * caller (the parallel strategy feeds roofline forward+backward
 * timings from the ComputeModel, keeping this layer free of device
 * dependencies).
 *
 * The exact optimum is found by dynamic programming (O(P * n^2), with
 * n the layer count — negligible against simulation time) with
 * deterministic tie-breaking, so partitions are stable across runs.
 */

#ifndef MCDLA_DNN_PIPELINE_HH
#define MCDLA_DNN_PIPELINE_HH

#include <vector>

#include "dnn/network.hh"

namespace mcdla
{

/** One pipeline stage: a contiguous slice of the topological order. */
struct PipelineStage
{
    /** Member layers in topological order. */
    std::vector<LayerId> layers;
    /** Sum of the members' costs. */
    double cost = 0.0;
};

/** A balanced contiguous partition of a network's topological order. */
class PipelinePartition
{
  public:
    PipelinePartition() = default;

    /**
     * Partition @p net into @p num_stages stages minimizing the
     * maximum stage cost.
     *
     * @param net Workload network.
     * @param cost Per-layer cost, indexed by LayerId (any non-negative
     *        unit; relative magnitudes drive the balance).
     * @param num_stages Stage count; must be in [1, net.size()].
     */
    PipelinePartition(const Network &net, const std::vector<double> &cost,
                      int num_stages);

    int numStages() const { return static_cast<int>(_stages.size()); }
    const std::vector<PipelineStage> &stages() const { return _stages; }
    const PipelineStage &stage(int s) const;

    /** Stage owning @p id; panics on an unknown layer. */
    int stageOf(LayerId id) const;

    double totalCost() const { return _totalCost; }
    double maxStageCost() const { return _maxStageCost; }

    /**
     * Load imbalance: maxStageCost / (totalCost / numStages).
     * 1.0 is a perfect split; the optimal contiguous partition is
     * bounded by avg + max single-layer cost.
     */
    double imbalance() const;

  private:
    std::vector<PipelineStage> _stages;
    /** Stage index per layer, indexed by LayerId. */
    std::vector<int> _stageOf;
    double _totalCost = 0.0;
    double _maxStageCost = 0.0;
};

} // namespace mcdla

#endif // MCDLA_DNN_PIPELINE_HH
