/**
 * @file
 * ResNet-34 builder (He et al., CVPR 2016).
 *
 * conv1 (7x7/2) + four stages of basic blocks {3,4,6,3} (two 3x3 convs
 * each) + FC classifier = 1 + 32 + 1 = 34 weighted layers. Projection
 * shortcuts (1x1, stride 2) are modelled but excluded from the depth count
 * to match the paper's "34". Batch norms are modelled as cheap
 * (recomputable) layers after every convolution.
 */

#include "dnn/builders.hh"

#include "workloads/registry.hh"

#include <array>

#include "sim/logging.hh"

namespace mcdla::builders
{

namespace
{

/**
 * Emit one basic residual block.
 *
 * @param net Target network.
 * @param in Producer layer id.
 * @param s In/out: running feature-map shape.
 * @param channels Block width.
 * @param stride Stride of the first conv (2 on stage transitions).
 * @param name Block name prefix.
 * @return Final (post-add) layer id.
 */
LayerId
addBasicBlock(Network &net, LayerId in, TensorShape &s,
              std::int64_t channels, std::int64_t stride,
              const std::string &name)
{
    LayerId shortcut = in;

    LayerId x = net.addAfter(
        Layer::conv2d(name + "/conv1", s, channels, 3, stride, 1), in);
    TensorShape mid = net.layer(x).outShape();
    x = net.addAfter(Layer::batchNorm(name + "/bn1", mid), x);
    x = net.addAfter(
        Layer::conv2d(name + "/conv2", mid, channels, 3, 1, 1), x);
    mid = net.layer(x).outShape();
    x = net.addAfter(Layer::batchNorm(name + "/bn2", mid), x);

    if (stride != 1 || s.dim(0) != channels) {
        // Projection shortcut; weighted but not part of the canonical
        // depth count.
        LayerId proj = net.addAfter(
            Layer::conv2d(name + "/proj", s, channels, 1, stride, 0)
                .setCountsTowardDepth(false),
            shortcut);
        shortcut = net.addAfter(
            Layer::batchNorm(name + "/proj_bn",
                             net.layer(proj).outShape()),
            proj);
    }

    x = net.addLayer(Layer::eltwiseAdd(name + "/add", mid), {x, shortcut});
    s = mid;
    return x;
}

} // anonymous namespace

Network
buildResNet34()
{
    Network net("ResNet");

    const auto in_shape = TensorShape::chw(3, 224, 224);
    LayerId x = net.addLayer(Layer::input("data", in_shape));

    x = net.addAfter(Layer::conv2d("conv1", in_shape, 64, 7, 2, 3), x);
    TensorShape s = net.layer(x).outShape(); // 64x112x112
    x = net.addAfter(Layer::batchNorm("bn1", s), x);
    x = net.addAfter(Layer::pool("pool1", s, 3, 2, 1), x);
    s = net.layer(x).outShape(); // 64x56x56

    struct Stage { std::int64_t channels; int blocks; };
    constexpr std::array<Stage, 4> stages{{
        {64, 3}, {128, 4}, {256, 6}, {512, 3},
    }};

    for (std::size_t stage = 0; stage < stages.size(); ++stage) {
        for (int b = 0; b < stages[stage].blocks; ++b) {
            const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
            const std::string name = "layer" + std::to_string(stage + 1)
                + "." + std::to_string(b);
            x = addBasicBlock(net, x, s, stages[stage].channels, stride,
                              name);
        }
    }

    x = net.addAfter(Layer::globalPool("avgpool", s), x);
    x = net.addAfter(Layer::fullyConnected("fc", 512, 1000), x);
    net.addAfter(Layer::softmaxLoss("loss", 1000), x);

    net.validate();
    if (net.weightedLayerCount() != 34)
        panic("ResNet-34 builder produced %lld weighted layers, expected "
              "34",
              static_cast<long long>(net.weightedLayerCount()));
    return net;
}

} // namespace mcdla::builders

namespace mcdla
{
namespace
{

const WorkloadRegistrar registrar{
    {"ResNet", "Image recognition", 34, false, 3,
     [] { return builders::buildResNet34(); }}};

} // anonymous namespace
} // namespace mcdla
