/**
 * @file
 * Network implementation.
 */

#include "dnn/network.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace mcdla
{

LayerId
Network::addLayer(Layer layer, std::vector<LayerId> inputs)
{
    const LayerId id = static_cast<LayerId>(_layers.size());
    for (LayerId in : inputs) {
        if (in < 0 || in >= id)
            fatal("network '%s': layer '%s' consumes layer %d which does "
                  "not precede it", _name.c_str(), layer.name().c_str(),
                  in);
        _consumers[static_cast<std::size_t>(in)].push_back(id);
    }
    _layers.push_back(std::move(layer));
    _inputs.push_back(std::move(inputs));
    _consumers.emplace_back();
    _topo.push_back(id);
    return id;
}

const Layer &
Network::layer(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= _layers.size())
        panic("network '%s': layer id %d out of range", _name.c_str(), id);
    return _layers[static_cast<std::size_t>(id)];
}

Layer &
Network::layer(LayerId id)
{
    return const_cast<Layer &>(
        static_cast<const Network *>(this)->layer(id));
}

const std::vector<LayerId> &
Network::inputsOf(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= _inputs.size())
        panic("network '%s': layer id %d out of range", _name.c_str(), id);
    return _inputs[static_cast<std::size_t>(id)];
}

std::vector<LayerId>
Network::effectiveProducers(LayerId id) const
{
    std::vector<LayerId> out;
    std::vector<LayerId> work(inputsOf(id));
    while (!work.empty()) {
        const LayerId p = work.back();
        work.pop_back();
        const Layer &l = layer(p);
        if (l.costClass() == CostClass::Structural
            && l.kind() != LayerKind::Input) {
            for (LayerId pp : inputsOf(p))
                work.push_back(pp);
        } else {
            out.push_back(p);
        }
    }
    return out;
}

std::vector<LayerId>
Network::effectiveConsumers(LayerId id) const
{
    std::vector<LayerId> out;
    std::vector<LayerId> work(consumersOf(id));
    while (!work.empty()) {
        const LayerId c = work.back();
        work.pop_back();
        const Layer &l = layer(c);
        if (l.costClass() == CostClass::Structural
            && l.kind() != LayerKind::Input) {
            for (LayerId cc : consumersOf(c))
                work.push_back(cc);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

const std::vector<LayerId> &
Network::consumersOf(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= _consumers.size())
        panic("network '%s': layer id %d out of range", _name.c_str(), id);
    return _consumers[static_cast<std::size_t>(id)];
}

void
Network::validate() const
{
    if (_layers.empty())
        fatal("network '%s' is empty", _name.c_str());
    bool have_input = false;
    for (std::size_t i = 0; i < _layers.size(); ++i) {
        const Layer &l = _layers[i];
        if (l.kind() == LayerKind::Input) {
            have_input = true;
            if (!_inputs[i].empty())
                fatal("network '%s': input layer '%s' has producers",
                      _name.c_str(), l.name().c_str());
        } else if (_inputs[i].empty()) {
            fatal("network '%s': non-input layer '%s' has no producers",
                  _name.c_str(), l.name().c_str());
        }
    }
    if (!have_input)
        fatal("network '%s' has no input layer", _name.c_str());
}

std::int64_t
Network::weightedLayerCount() const
{
    std::int64_t n = 0;
    for (const Layer &l : _layers)
        if (l.countsTowardDepth())
            ++n;
    return n;
}

std::int64_t
Network::totalParams() const
{
    std::int64_t n = 0;
    for (const Layer &l : _layers)
        if (!l.weightsTied())
            n += l.paramCount();
    return n;
}

std::uint64_t
Network::totalWeightBytes() const
{
    std::uint64_t n = 0;
    for (const Layer &l : _layers)
        if (!l.weightsTied())
            n += l.weightBytes();
    return n;
}

std::int64_t
Network::fwdMacs(std::int64_t batch) const
{
    std::int64_t n = 0;
    for (const Layer &l : _layers)
        n += l.fwdMacs(batch);
    return n;
}

bool
Network::outputStashedForBackward(LayerId id) const
{
    const Layer &l = layer(id);
    // Recurrent inputs are stashed slice-by-slice as part of each cell's
    // auxiliary state, not as one monolithic tensor.
    if (l.kind() == LayerKind::Input && isRecurrent())
        return false;
    if (l.costClass() == CostClass::Heavy)
        return true;
    for (LayerId c : consumersOf(id)) {
        if (layer(c).costClass() == CostClass::Heavy)
            return true;
    }
    return false;
}

std::uint64_t
Network::stashBytesPerSample() const
{
    std::uint64_t total = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(_layers.size()); ++id) {
        const Layer &l = layer(id);
        if (outputStashedForBackward(id)
            && l.costClass() != CostClass::Structural) {
            total += l.outBytesPerSample();
        }
        total += l.auxStashBytesPerSample();
    }
    return total;
}

std::uint64_t
Network::residentFeatureBytesPerSample() const
{
    // Every layer's output lives until its backward pass touches it, so
    // without offloading the footprint is the sum of all outputs + stash.
    std::uint64_t total = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(_layers.size()); ++id) {
        const Layer &l = layer(id);
        if (l.costClass() == CostClass::Structural
            && l.kind() != LayerKind::Input) {
            continue; // views, no storage
        }
        total += l.outBytesPerSample() + l.auxStashBytesPerSample();
    }
    return total;
}

std::string
Network::summary() const
{
    std::ostringstream os;
    os << "network " << _name << ": " << _layers.size() << " nodes, "
       << weightedLayerCount() << " weighted layers, "
       << totalParams() << " params ("
       << formatBytes(static_cast<double>(totalWeightBytes())) << ")";
    if (isRecurrent())
        os << ", " << _timesteps << " timesteps";
    os << '\n';
    for (LayerId id : _topo) {
        const Layer &l = layer(id);
        os << "  [" << id << "] " << layerKindName(l.kind()) << ' '
           << l.name() << " -> " << l.outShape().str();
        if (l.hasWeights())
            os << " (params " << l.paramCount() << ")";
        os << '\n';
    }
    return os.str();
}

} // namespace mcdla
