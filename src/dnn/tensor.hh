/**
 * @file
 * Tensor shape descriptor.
 *
 * Shapes describe a *per-sample* tensor: the batch dimension is never part
 * of a TensorShape. All batch scaling is applied by the parallelization
 * strategy and the training session, which lets one Network instance serve
 * every batch size and partitioning in the evaluation.
 */

#ifndef MCDLA_DNN_TENSOR_HH
#define MCDLA_DNN_TENSOR_HH

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace mcdla
{

/** Bytes per element for the single supported datatype (fp32 training). */
constexpr std::uint64_t kElemBytes = 4;

/** A per-sample tensor shape (e.g. {C,H,W} for images, {H} for vectors). */
class TensorShape
{
  public:
    TensorShape() = default;
    TensorShape(std::initializer_list<std::int64_t> dims) : _dims(dims) {}
    explicit TensorShape(std::vector<std::int64_t> dims)
        : _dims(std::move(dims))
    {}

    /** Convenience for CHW feature maps. */
    static TensorShape
    chw(std::int64_t c, std::int64_t h, std::int64_t w)
    {
        return TensorShape{c, h, w};
    }

    /** Convenience for flat vectors. */
    static TensorShape vec(std::int64_t n) { return TensorShape{n}; }

    const std::vector<std::int64_t> &dims() const { return _dims; }
    std::size_t rank() const { return _dims.size(); }
    std::int64_t dim(std::size_t i) const { return _dims.at(i); }

    /** Number of elements per sample. */
    std::int64_t
    elems() const
    {
        if (_dims.empty())
            return 0;
        return std::accumulate(_dims.begin(), _dims.end(),
                               std::int64_t{1},
                               [](auto a, auto b) { return a * b; });
    }

    /** Bytes per sample. */
    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(elems()) * kElemBytes;
    }

    bool operator==(const TensorShape &o) const { return _dims == o._dims; }
    bool operator!=(const TensorShape &o) const { return !(*this == o); }

    /** "64x56x56"-style rendering. */
    std::string
    str() const
    {
        std::string out;
        for (std::size_t i = 0; i < _dims.size(); ++i) {
            if (i)
                out += 'x';
            out += std::to_string(_dims[i]);
        }
        return out.empty() ? "scalar" : out;
    }

  private:
    std::vector<std::int64_t> _dims;
};

} // namespace mcdla

#endif // MCDLA_DNN_TENSOR_HH
