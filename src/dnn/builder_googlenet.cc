/**
 * @file
 * GoogLeNet builder (Szegedy et al., CVPR 2015).
 *
 * Stem (conv7x7, conv1x1, conv3x3) + nine inception modules + classifier
 * FC. Each inception module contributes six convolutions (1x1, 3x3-reduce,
 * 3x3, 5x5-reduce, 5x5, pool-projection): 3 + 9*6 + 1 = 58 weighted
 * layers, matching Table III. The auxiliary classifiers used only during
 * early training are omitted, as is conventional for performance studies.
 */

#include "dnn/builders.hh"

#include "workloads/registry.hh"

#include <array>

#include "sim/logging.hh"

namespace mcdla::builders
{

namespace
{

/** Channel plan of one inception module. */
struct InceptionCfg
{
    const char *name;
    std::int64_t c1;      ///< #1x1
    std::int64_t r3;      ///< #3x3 reduce
    std::int64_t c3;      ///< #3x3
    std::int64_t r5;      ///< #5x5 reduce
    std::int64_t c5;      ///< #5x5
    std::int64_t pp;      ///< pool projection
};

/** Emit one inception module; returns the concat layer id. */
LayerId
addInception(Network &net, LayerId in, const TensorShape &s,
             const InceptionCfg &cfg)
{
    const std::string p = cfg.name;
    const std::int64_t h = s.dim(1);
    const std::int64_t w = s.dim(2);

    // Branch 1: 1x1.
    LayerId b1 = net.addAfter(
        Layer::conv2d(p + "/1x1", s, cfg.c1, 1, 1, 0), in);

    // Branch 2: 1x1 reduce -> 3x3.
    LayerId b2 = net.addAfter(
        Layer::conv2d(p + "/3x3_reduce", s, cfg.r3, 1, 1, 0), in);
    b2 = net.addAfter(
        Layer::conv2d(p + "/3x3", net.layer(b2).outShape(), cfg.c3, 3, 1,
                      1), b2);

    // Branch 3: 1x1 reduce -> 5x5.
    LayerId b3 = net.addAfter(
        Layer::conv2d(p + "/5x5_reduce", s, cfg.r5, 1, 1, 0), in);
    b3 = net.addAfter(
        Layer::conv2d(p + "/5x5", net.layer(b3).outShape(), cfg.c5, 5, 1,
                      2), b3);

    // Branch 4: 3x3 max pool -> 1x1 projection.
    LayerId b4 = net.addAfter(Layer::pool(p + "/pool", s, 3, 1, 1), in);
    b4 = net.addAfter(
        Layer::conv2d(p + "/pool_proj", net.layer(b4).outShape(), cfg.pp,
                      1, 1, 0), b4);

    const std::int64_t out_c = cfg.c1 + cfg.c3 + cfg.c5 + cfg.pp;
    return net.addLayer(Layer::concat(p + "/concat", out_c, h, w),
                        {b1, b2, b3, b4});
}

} // anonymous namespace

Network
buildGoogLeNet()
{
    Network net("GoogLeNet");

    const auto in_shape = TensorShape::chw(3, 224, 224);
    LayerId x = net.addLayer(Layer::input("data", in_shape));

    // Stem.
    x = net.addAfter(Layer::conv2d("conv1/7x7_s2", in_shape, 64, 7, 2, 3),
                     x);
    TensorShape s = net.layer(x).outShape(); // 64x112x112
    x = net.addAfter(Layer::pool("pool1/3x3_s2", s, 3, 2, 1), x);
    s = net.layer(x).outShape(); // 64x56x56
    x = net.addAfter(Layer::lrn("pool1/norm1", s), x);
    x = net.addAfter(Layer::conv2d("conv2/3x3_reduce", s, 64, 1, 1, 0), x);
    s = net.layer(x).outShape();
    x = net.addAfter(Layer::conv2d("conv2/3x3", s, 192, 3, 1, 1), x);
    s = net.layer(x).outShape(); // 192x56x56
    x = net.addAfter(Layer::lrn("conv2/norm2", s), x);
    x = net.addAfter(Layer::pool("pool2/3x3_s2", s, 3, 2, 1), x);
    s = net.layer(x).outShape(); // 192x28x28

    // Inception 3a/3b @28x28.
    constexpr std::array<InceptionCfg, 9> cfgs{{
        {"inception_3a", 64, 96, 128, 16, 32, 32},
        {"inception_3b", 128, 128, 192, 32, 96, 64},
        {"inception_4a", 192, 96, 208, 16, 48, 64},
        {"inception_4b", 160, 112, 224, 24, 64, 64},
        {"inception_4c", 128, 128, 256, 24, 64, 64},
        {"inception_4d", 112, 144, 288, 32, 64, 64},
        {"inception_4e", 256, 160, 320, 32, 128, 128},
        {"inception_5a", 256, 160, 320, 32, 128, 128},
        {"inception_5b", 384, 192, 384, 48, 128, 128},
    }};

    x = addInception(net, x, s, cfgs[0]);
    s = net.layer(x).outShape(); // 256x28x28
    x = addInception(net, x, s, cfgs[1]);
    s = net.layer(x).outShape(); // 480x28x28
    x = net.addAfter(Layer::pool("pool3/3x3_s2", s, 3, 2, 1), x);
    s = net.layer(x).outShape(); // 480x14x14

    for (int i = 2; i <= 6; ++i) {
        x = addInception(net, x, s, cfgs[static_cast<std::size_t>(i)]);
        s = net.layer(x).outShape();
    }
    // 832x14x14 after 4e.
    x = net.addAfter(Layer::pool("pool4/3x3_s2", s, 3, 2, 1), x);
    s = net.layer(x).outShape(); // 832x7x7

    x = addInception(net, x, s, cfgs[7]);
    s = net.layer(x).outShape();
    x = addInception(net, x, s, cfgs[8]);
    s = net.layer(x).outShape(); // 1024x7x7

    x = net.addAfter(Layer::globalPool("pool5/7x7_s1", s), x);
    x = net.addAfter(Layer::dropout("pool5/drop", net.layer(x).outShape()),
                     x);
    x = net.addAfter(Layer::fullyConnected("loss3/classifier", 1024, 1000),
                     x);
    net.addAfter(Layer::softmaxLoss("loss", 1000), x);

    net.validate();
    if (net.weightedLayerCount() != 58)
        panic("GoogLeNet builder produced %lld weighted layers, expected "
              "58",
              static_cast<long long>(net.weightedLayerCount()));
    return net;
}

} // namespace mcdla::builders

namespace mcdla
{
namespace
{

const WorkloadRegistrar registrar{
    {"GoogLeNet", "Image recognition", 58, false, 1,
     [] { return builders::buildGoogLeNet(); }}};

} // anonymous namespace
} // namespace mcdla
