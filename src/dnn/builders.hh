/**
 * @file
 * Builders for the eight benchmark networks of Table III.
 *
 * CNN topologies follow the original publications:
 *  - AlexNet (Krizhevsky et al., NIPS 2012): 5 conv + 3 FC, grouped
 *    conv2/4/5, LRN after conv1/conv2.
 *  - VGG-E (Simonyan & Zisserman, ICLR 2015, configuration E = VGG-19):
 *    16 conv + 3 FC.
 *  - GoogLeNet (Szegedy et al., CVPR 2015): 3-conv stem + 9 inception
 *    modules + 1 FC = 58 weighted layers.
 *  - ResNet (He et al., CVPR 2016, ResNet-34): 1 conv + 32 block convs +
 *    1 FC = 34 weighted layers (projection shortcuts excluded from the
 *    depth count, as in the original paper).
 *
 * RNN workloads mirror Baidu DeepBench entries (Table III rows 5-8):
 * timestep counts are the ones Table III prints (50/25/25/187); hidden
 * widths are drawn from the DeepBench training-suite range (1024-1760)
 * and calibrated so the virtualization-traffic-to-compute balance of the
 * RNN rows matches the paper's Figure 11 shape (see DESIGN.md).
 */

#ifndef MCDLA_DNN_BUILDERS_HH
#define MCDLA_DNN_BUILDERS_HH

#include <cstdint>

#include "dnn/network.hh"

namespace mcdla::builders
{

/** AlexNet for 227x227x3 ImageNet inputs. 8 weighted layers. */
Network buildAlexNet();

/** VGG-E (VGG-19) for 224x224x3 inputs. 19 weighted layers. */
Network buildVggE();

/** GoogLeNet (inception v1) for 224x224x3 inputs. 58 weighted layers. */
Network buildGoogLeNet();

/** ResNet-34 for 224x224x3 inputs. 34 weighted layers. */
Network buildResNet34();

/**
 * Vanilla RNN (speech recognition), GEMV-bound when the per-device batch
 * is small. DeepBench-style hidden=1760.
 *
 * @param timesteps Unrolled sequence length (Table III: 50).
 * @param hidden Hidden/input width (default 1760).
 */
Network buildRnnGemv(std::int64_t timesteps = 50,
                     std::int64_t hidden = 1760);

/** LSTM for machine translation (Table III: 25 steps; hidden 1024). */
Network buildRnnLstm1(std::int64_t timesteps = 25,
                      std::int64_t hidden = 1024);

/** LSTM for language modeling (Table III: 25 steps; hidden 1536). */
Network buildRnnLstm2(std::int64_t timesteps = 25,
                      std::int64_t hidden = 1536);

/** GRU for speech recognition (Table III: 187 steps; hidden 1536). */
Network buildRnnGru(std::int64_t timesteps = 187,
                    std::int64_t hidden = 1536);

} // namespace mcdla::builders

#endif // MCDLA_DNN_BUILDERS_HH
