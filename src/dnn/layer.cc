/**
 * @file
 * Layer named constructors and derived-quantity computation.
 */

#include "dnn/layer.hh"

#include "sim/logging.hh"

namespace mcdla
{

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Input: return "input";
      case LayerKind::Conv2D: return "conv2d";
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::Pool: return "pool";
      case LayerKind::Activation: return "activation";
      case LayerKind::LRN: return "lrn";
      case LayerKind::BatchNorm: return "batchnorm";
      case LayerKind::Concat: return "concat";
      case LayerKind::EltwiseAdd: return "add";
      case LayerKind::Dropout: return "dropout";
      case LayerKind::RnnCell: return "rnn_cell";
      case LayerKind::LstmCell: return "lstm_cell";
      case LayerKind::GruCell: return "gru_cell";
      case LayerKind::SoftmaxLoss: return "softmax_loss";
    }
    return "unknown";
}

namespace
{

/** Output spatial size of a strided window op. */
std::int64_t
convOutDim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
           std::int64_t pad)
{
    const std::int64_t out = (in + 2 * pad - kernel) / stride + 1;
    if (out <= 0)
        fatal("window op produces non-positive output dim "
              "(in=%lld k=%lld s=%lld p=%lld)",
              static_cast<long long>(in), static_cast<long long>(kernel),
              static_cast<long long>(stride), static_cast<long long>(pad));
    return out;
}

} // anonymous namespace

Layer
Layer::input(std::string name, TensorShape out)
{
    Layer l(LayerKind::Input, std::move(name), CostClass::Structural,
            std::move(out));
    l._bwdMacFactor = 0.0;
    return l;
}

Layer
Layer::conv2d(std::string name, const TensorShape &in, std::int64_t out_c,
              std::int64_t kernel, std::int64_t stride, std::int64_t pad,
              std::int64_t groups)
{
    if (in.rank() != 3)
        fatal("conv2d '%s' requires a CHW input, got %s", name.c_str(),
              in.str().c_str());
    const std::int64_t in_c = in.dim(0);
    if (in_c % groups != 0 || out_c % groups != 0)
        fatal("conv2d '%s': channels (%lld->%lld) not divisible by "
              "groups (%lld)", name.c_str(),
              static_cast<long long>(in_c),
              static_cast<long long>(out_c),
              static_cast<long long>(groups));
    const std::int64_t out_h = convOutDim(in.dim(1), kernel, stride, pad);
    const std::int64_t out_w = convOutDim(in.dim(2), kernel, stride, pad);

    Layer l(LayerKind::Conv2D, std::move(name), CostClass::Heavy,
            TensorShape::chw(out_c, out_h, out_w));
    // Lowered GEMM view: M=out_c, K=(in_c/groups)*k*k, N=out_h*out_w*batch.
    GemmShape g;
    g.m = out_c;
    g.k = (in_c / groups) * kernel * kernel;
    g.nPerSample = out_h * out_w;
    l._gemms.push_back(g);
    l._paramCount = g.params() + out_c; // + bias
    l._inBytes = in.bytes();
    l._countsTowardDepth = true;
    return l;
}

Layer
Layer::fullyConnected(std::string name, std::int64_t in_f,
                      std::int64_t out_f)
{
    Layer l(LayerKind::FullyConnected, std::move(name), CostClass::Heavy,
            TensorShape::vec(out_f));
    GemmShape g;
    g.m = out_f;
    g.k = in_f;
    g.nPerSample = 1;
    l._gemms.push_back(g);
    l._paramCount = g.params() + out_f;
    l._inBytes = static_cast<std::uint64_t>(in_f) * kElemBytes;
    l._countsTowardDepth = true;
    return l;
}

Layer
Layer::pool(std::string name, const TensorShape &in, std::int64_t kernel,
            std::int64_t stride, std::int64_t pad)
{
    if (in.rank() != 3)
        fatal("pool '%s' requires a CHW input", name.c_str());
    const std::int64_t out_h = convOutDim(in.dim(1), kernel, stride, pad);
    const std::int64_t out_w = convOutDim(in.dim(2), kernel, stride, pad);
    Layer l(LayerKind::Pool, std::move(name), CostClass::Cheap,
            TensorShape::chw(in.dim(0), out_h, out_w));
    l._fwdEltOpsPerSample = l._outShape.elems() * kernel * kernel;
    l._inBytes = in.bytes();
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::globalPool(std::string name, const TensorShape &in)
{
    if (in.rank() != 3)
        fatal("globalPool '%s' requires a CHW input", name.c_str());
    Layer l(LayerKind::Pool, std::move(name), CostClass::Cheap,
            TensorShape::vec(in.dim(0)));
    l._fwdEltOpsPerSample = in.elems();
    l._inBytes = in.bytes();
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::activation(std::string name, const TensorShape &in)
{
    Layer l(LayerKind::Activation, std::move(name), CostClass::Cheap, in);
    l._fwdEltOpsPerSample = in.elems();
    l._inBytes = in.bytes();
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::lrn(std::string name, const TensorShape &in)
{
    Layer l(LayerKind::LRN, std::move(name), CostClass::Cheap, in);
    // Cross-channel normalization touches a 5-wide channel window.
    l._fwdEltOpsPerSample = in.elems() * 5;
    l._inBytes = in.bytes();
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::batchNorm(std::string name, const TensorShape &in)
{
    Layer l(LayerKind::BatchNorm, std::move(name), CostClass::Cheap, in);
    l._fwdEltOpsPerSample = in.elems() * 2;
    l._inBytes = in.bytes();
    l._paramCount = in.rank() == 3 ? in.dim(0) * 2 : in.elems() * 2;
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::dropout(std::string name, const TensorShape &in)
{
    Layer l(LayerKind::Dropout, std::move(name), CostClass::Cheap, in);
    l._fwdEltOpsPerSample = in.elems();
    l._inBytes = in.bytes();
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::concat(std::string name, std::int64_t out_c, std::int64_t h,
              std::int64_t w)
{
    Layer l(LayerKind::Concat, std::move(name), CostClass::Structural,
            TensorShape::chw(out_c, h, w));
    l._bwdMacFactor = 0.0;
    return l;
}

Layer
Layer::eltwiseAdd(std::string name, const TensorShape &in)
{
    Layer l(LayerKind::EltwiseAdd, std::move(name), CostClass::Cheap, in);
    l._fwdEltOpsPerSample = in.elems();
    l._inBytes = in.bytes() * 2;
    l._bwdMacFactor = 1.0;
    return l;
}

Layer
Layer::rnnCell(std::string name, std::int64_t hidden)
{
    Layer l(LayerKind::RnnCell, std::move(name), CostClass::Heavy,
            TensorShape::vec(hidden));
    l._gemms.push_back(GemmShape{hidden, hidden, 1}); // W x_t
    l._gemms.push_back(GemmShape{hidden, hidden, 1}); // U h_{t-1}
    l._paramCount = 2 * hidden * hidden + hidden;
    l._inBytes = static_cast<std::uint64_t>(2 * hidden) * kElemBytes;
    // Pre-activation plus the x_t input slice saved for backward.
    l._auxStash = static_cast<std::uint64_t>(2 * hidden) * kElemBytes;
    return l;
}

Layer
Layer::lstmCell(std::string name, std::int64_t hidden)
{
    Layer l(LayerKind::LstmCell, std::move(name), CostClass::Heavy,
            TensorShape::vec(hidden));
    l._gemms.push_back(GemmShape{4 * hidden, hidden, 1}); // W [i,f,o,g] x_t
    l._gemms.push_back(GemmShape{4 * hidden, hidden, 1}); // U [..] h_{t-1}
    l._paramCount = 8 * hidden * hidden + 4 * hidden;
    l._inBytes = static_cast<std::uint64_t>(3 * hidden) * kElemBytes;
    // Saved for backward: gate activations i,f,o,g (4H), cell states
    // c_{t-1} and c_t (2H), tanh(c_t) (1H), and the x_t slice (1H).
    l._auxStash = static_cast<std::uint64_t>(8 * hidden) * kElemBytes;
    return l;
}

Layer
Layer::gruCell(std::string name, std::int64_t hidden)
{
    Layer l(LayerKind::GruCell, std::move(name), CostClass::Heavy,
            TensorShape::vec(hidden));
    l._gemms.push_back(GemmShape{3 * hidden, hidden, 1}); // W [r,z,n] x_t
    l._gemms.push_back(GemmShape{3 * hidden, hidden, 1}); // U [..] h_{t-1}
    l._paramCount = 6 * hidden * hidden + 3 * hidden;
    l._inBytes = static_cast<std::uint64_t>(2 * hidden) * kElemBytes;
    // Saved for backward: gate activations r,z,n (3H), the candidate
    // pre-activation (1H), and the x_t slice (1H).
    l._auxStash = static_cast<std::uint64_t>(5 * hidden) * kElemBytes;
    return l;
}

Layer
Layer::softmaxLoss(std::string name, std::int64_t classes)
{
    Layer l(LayerKind::SoftmaxLoss, std::move(name), CostClass::Cheap,
            TensorShape::vec(classes));
    l._fwdEltOpsPerSample = classes * 3;
    l._inBytes = static_cast<std::uint64_t>(classes) * kElemBytes;
    l._bwdMacFactor = 1.0;
    return l;
}

} // namespace mcdla
