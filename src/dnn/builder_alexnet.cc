/**
 * @file
 * AlexNet builder (Krizhevsky et al., NIPS 2012).
 *
 * Layer dimensions follow the single-tower formulation with the original
 * two-tower grouping preserved as grouped convolutions on conv2/4/5,
 * yielding the canonical ~61M parameters.
 */

#include "dnn/builders.hh"

#include "workloads/registry.hh"

namespace mcdla::builders
{

Network
buildAlexNet()
{
    Network net("AlexNet");

    const auto in_shape = TensorShape::chw(3, 227, 227);
    LayerId x = net.addLayer(Layer::input("data", in_shape));

    // conv1: 96 x 11x11 / 4.
    x = net.addAfter(Layer::conv2d("conv1", in_shape, 96, 11, 4, 0), x);
    TensorShape s = net.layer(x).outShape(); // 96x55x55
    x = net.addAfter(Layer::lrn("norm1", s), x);
    x = net.addAfter(Layer::pool("pool1", s, 3, 2), x);
    s = net.layer(x).outShape(); // 96x27x27

    // conv2: 256 x 5x5, pad 2, groups 2.
    x = net.addAfter(Layer::conv2d("conv2", s, 256, 5, 1, 2, 2), x);
    s = net.layer(x).outShape(); // 256x27x27
    x = net.addAfter(Layer::lrn("norm2", s), x);
    x = net.addAfter(Layer::pool("pool2", s, 3, 2), x);
    s = net.layer(x).outShape(); // 256x13x13

    // conv3/4/5: 3x3 stack.
    x = net.addAfter(Layer::conv2d("conv3", s, 384, 3, 1, 1), x);
    s = net.layer(x).outShape(); // 384x13x13
    x = net.addAfter(Layer::conv2d("conv4", s, 384, 3, 1, 1, 2), x);
    s = net.layer(x).outShape();
    x = net.addAfter(Layer::conv2d("conv5", s, 256, 3, 1, 1, 2), x);
    s = net.layer(x).outShape(); // 256x13x13
    x = net.addAfter(Layer::pool("pool5", s, 3, 2), x);
    s = net.layer(x).outShape(); // 256x6x6

    // Classifier.
    x = net.addAfter(Layer::fullyConnected("fc6", s.elems(), 4096), x);
    x = net.addAfter(Layer::dropout("drop6", net.layer(x).outShape()), x);
    x = net.addAfter(Layer::fullyConnected("fc7", 4096, 4096), x);
    x = net.addAfter(Layer::dropout("drop7", net.layer(x).outShape()), x);
    x = net.addAfter(Layer::fullyConnected("fc8", 4096, 1000), x);
    net.addAfter(Layer::softmaxLoss("loss", 1000), x);

    net.validate();
    return net;
}

} // namespace mcdla::builders

namespace mcdla
{
namespace
{

const WorkloadRegistrar registrar{{"AlexNet", "Image recognition", 8,
                                   false, 0,
                                   [] { return builders::buildAlexNet(); }}};

} // anonymous namespace
} // namespace mcdla
