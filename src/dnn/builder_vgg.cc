/**
 * @file
 * VGG-E builder (Simonyan & Zisserman, ICLR 2015, configuration E).
 *
 * 16 convolution layers in five 3x3 stacks separated by 2x2 max pools,
 * followed by the standard 4096-4096-1000 classifier: 19 weighted layers
 * and ~143.7M parameters.
 */

#include "dnn/builders.hh"

#include "workloads/registry.hh"

#include <array>

#include "sim/logging.hh"

namespace mcdla::builders
{

Network
buildVggE()
{
    Network net("VGG-E");

    // {channels, convs-in-stage} for the five stages of configuration E.
    struct Stage { std::int64_t channels; int convs; };
    constexpr std::array<Stage, 5> stages{{
        {64, 2}, {128, 2}, {256, 4}, {512, 4}, {512, 4},
    }};

    const auto in_shape = TensorShape::chw(3, 224, 224);
    LayerId x = net.addLayer(Layer::input("data", in_shape));
    TensorShape s = in_shape;

    int conv_idx = 0;
    for (std::size_t stage = 0; stage < stages.size(); ++stage) {
        for (int c = 0; c < stages[stage].convs; ++c) {
            const std::string name = "conv" + std::to_string(stage + 1)
                + "_" + std::to_string(c + 1);
            x = net.addAfter(
                Layer::conv2d(name, s, stages[stage].channels, 3, 1, 1),
                x);
            s = net.layer(x).outShape();
            ++conv_idx;
        }
        x = net.addAfter(
            Layer::pool("pool" + std::to_string(stage + 1), s, 2, 2), x);
        s = net.layer(x).outShape();
    }
    if (conv_idx != 16)
        panic("VGG-E builder produced %d convs, expected 16", conv_idx);

    x = net.addAfter(Layer::fullyConnected("fc6", s.elems(), 4096), x);
    x = net.addAfter(Layer::dropout("drop6", net.layer(x).outShape()), x);
    x = net.addAfter(Layer::fullyConnected("fc7", 4096, 4096), x);
    x = net.addAfter(Layer::dropout("drop7", net.layer(x).outShape()), x);
    x = net.addAfter(Layer::fullyConnected("fc8", 4096, 1000), x);
    net.addAfter(Layer::softmaxLoss("loss", 1000), x);

    net.validate();
    return net;
}

} // namespace mcdla::builders

namespace mcdla
{
namespace
{

const WorkloadRegistrar registrar{{"VGG-E", "Image recognition", 19,
                                   false, 2,
                                   [] { return builders::buildVggE(); }}};

} // anonymous namespace
} // namespace mcdla
