/**
 * @file
 * Network: a DAG of layers plus aggregate model/memory queries.
 *
 * The network is built once per benchmark (batch-agnostic); the training
 * session and parallelization strategy scale per-sample quantities by the
 * per-device batch. The DAG (not just a chain) matters: GoogLeNet's
 * inception branches and ResNet's skip connections change tensor liveness,
 * which drives the vDNN offload schedule.
 */

#ifndef MCDLA_DNN_NETWORK_HH
#define MCDLA_DNN_NETWORK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace mcdla
{

/** A directed acyclic graph of layers. */
class Network
{
  public:
    explicit Network(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }

    /**
     * Add a layer fed by @p inputs (already-added layer ids).
     *
     * @return The new layer's id.
     */
    LayerId addLayer(Layer layer, std::vector<LayerId> inputs = {});

    /** Convenience: add a layer fed by a single producer. */
    LayerId
    addAfter(Layer layer, LayerId input)
    {
        return addLayer(std::move(layer), {input});
    }

    std::size_t size() const { return _layers.size(); }
    const Layer &layer(LayerId id) const;
    Layer &layer(LayerId id);

    const std::vector<LayerId> &inputsOf(LayerId id) const;
    const std::vector<LayerId> &consumersOf(LayerId id) const;

    /**
     * Producers whose outputs @p id's backward pass reads, looking
     * through structural views (concat): the non-structural layers
     * reached by walking input edges across structural nodes.
     */
    std::vector<LayerId> effectiveProducers(LayerId id) const;

    /** Consumers of @p id's output, looking through structural views. */
    std::vector<LayerId> effectiveConsumers(LayerId id) const;

    /**
     * Layers in a deterministic topological order (insertion order is
     * required to already be topological; this is validated).
     */
    const std::vector<LayerId> &topoOrder() const { return _topo; }

    /** Verify DAG consistency; fatal on dangling edges. */
    void validate() const;

    /// @name Aggregate model queries
    /// @{

    /** Layers counting toward the paper's Table III depth. */
    std::int64_t weightedLayerCount() const;

    /** Total trainable parameters. */
    std::int64_t totalParams() const;

    /** Total weight bytes (model size). */
    std::uint64_t totalWeightBytes() const;

    /** Forward MACs for @p batch samples. */
    std::int64_t fwdMacs(std::int64_t batch) const;

    /**
     * Bytes per sample of every tensor a training pass must keep until
     * backward (heavy-layer outputs feeding heavy consumers plus internal
     * stash); this is the traffic base for vDNN offloading.
     */
    std::uint64_t stashBytesPerSample() const;

    /**
     * Peak per-sample feature-map footprint if *nothing* is offloaded,
     * i.e. every stashed tensor resident simultaneously (the O(N) memory
     * cost of training in Section II-B).
     */
    std::uint64_t residentFeatureBytesPerSample() const;
    /// @}

    /// @name Recurrent metadata
    /// @{
    void setTimesteps(std::int64_t t) { _timesteps = t; }
    std::int64_t timesteps() const { return _timesteps; }
    bool isRecurrent() const { return _timesteps > 0; }
    /// @}

    /**
     * Whether @p id's output must be stashed for the backward pass: true
     * when the layer is Heavy (its own backward needs saved state) or when
     * any consumer is Heavy (dW of the consumer needs this tensor).
     */
    bool outputStashedForBackward(LayerId id) const;

    /** Single-line per-layer summary (debugging/reporting). */
    std::string summary() const;

  private:
    std::string _name;
    std::vector<Layer> _layers;
    std::vector<std::vector<LayerId>> _inputs;
    std::vector<std::vector<LayerId>> _consumers;
    std::vector<LayerId> _topo;
    std::int64_t _timesteps = 0;
};

} // namespace mcdla

#endif // MCDLA_DNN_NETWORK_HH
