/**
 * @file
 * PipelinePartition implementation.
 */

#include "dnn/pipeline.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace mcdla
{

PipelinePartition::PipelinePartition(const Network &net,
                                     const std::vector<double> &cost,
                                     int num_stages)
{
    const std::size_t n = net.size();
    if (cost.size() != n)
        fatal("pipeline partition: %zu costs for %zu layers",
              cost.size(), n);
    if (num_stages < 1)
        fatal("pipeline partition requires at least one stage (got %d)",
              num_stages);
    if (static_cast<std::size_t>(num_stages) > n)
        fatal("pipeline partition: %d stages exceed the %zu layers of "
              "%s",
              num_stages, n, net.name().c_str());

    const std::vector<LayerId> &topo = net.topoOrder();
    const auto P = static_cast<std::size_t>(num_stages);

    // Prefix sums over the topological order.
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double c = cost[static_cast<std::size_t>(topo[i])];
        if (c < 0.0)
            fatal("pipeline partition: negative cost for layer %d",
                  topo[i]);
        prefix[i + 1] = prefix[i] + c;
    }
    auto span = [&](std::size_t lo, std::size_t hi) {
        return prefix[hi] - prefix[lo];
    };

    // best[k][i]: minimal max-stage cost of splitting the first i
    // layers into k+1 stages (each non-empty); cut[k][i] reconstructs
    // the last cut point. Ties take the earliest cut so earlier stages
    // never grow without improving the bottleneck — deterministic.
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> best(
        P, std::vector<double>(n + 1, inf));
    std::vector<std::vector<std::size_t>> cut(
        P, std::vector<std::size_t>(n + 1, 0));
    for (std::size_t i = 1; i <= n; ++i)
        best[0][i] = span(0, i);
    for (std::size_t k = 1; k < P; ++k) {
        for (std::size_t i = k + 1; i <= n; ++i) {
            for (std::size_t j = k; j < i; ++j) {
                const double candidate =
                    std::max(best[k - 1][j], span(j, i));
                if (candidate < best[k][i]) {
                    best[k][i] = candidate;
                    cut[k][i] = j;
                }
            }
        }
    }

    // Reconstruct stage boundaries.
    std::vector<std::size_t> bounds(P + 1, 0);
    bounds[P] = n;
    for (std::size_t k = P; k-- > 1;)
        bounds[k] = cut[k][bounds[k + 1]];

    _stages.resize(P);
    _stageOf.assign(n, 0);
    for (std::size_t s = 0; s < P; ++s) {
        PipelineStage &stage = _stages[s];
        for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i) {
            stage.layers.push_back(topo[i]);
            _stageOf[static_cast<std::size_t>(topo[i])] =
                static_cast<int>(s);
        }
        stage.cost = span(bounds[s], bounds[s + 1]);
        _maxStageCost = std::max(_maxStageCost, stage.cost);
    }
    _totalCost = prefix[n];
}

const PipelineStage &
PipelinePartition::stage(int s) const
{
    if (s < 0 || s >= numStages())
        panic("pipeline stage %d out of range [0, %d)", s, numStages());
    return _stages[static_cast<std::size_t>(s)];
}

int
PipelinePartition::stageOf(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= _stageOf.size())
        panic("pipeline partition: unknown layer %d", id);
    return _stageOf[static_cast<std::size_t>(id)];
}

double
PipelinePartition::imbalance() const
{
    if (_totalCost <= 0.0 || _stages.empty())
        return 1.0;
    return _maxStageCost
        / (_totalCost / static_cast<double>(_stages.size()));
}

} // namespace mcdla
