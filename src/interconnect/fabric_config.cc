/**
 * @file
 * FabricConfig sanity checking, mirroring MemoryNodeConfig::validate().
 */

#include "interconnect/fabric_config.hh"

#include "sim/logging.hh"

namespace mcdla
{

void
FabricConfig::validate() const
{
    if (numDevices < 1)
        fatal("fabric requires at least one device (got %d)",
              numDevices);
    if (numRings < 1)
        fatal("fabric requires at least one ring pair per device "
              "(got %d)", numRings);
    if (numSockets < 1)
        fatal("fabric requires at least one host socket (got %d)",
              numSockets);
    if (linkBandwidth <= 0.0)
        fatal("device link bandwidth must be positive (got %g B/s)",
              linkBandwidth);
    if (pcieRawBandwidth <= 0.0)
        fatal("PCIe bandwidth must be positive (got %g B/s)",
              pcieRawBandwidth);
    if (pcieEfficiency <= 0.0 || pcieEfficiency > 1.0)
        fatal("PCIe efficiency must be in (0, 1] (got %g)",
              pcieEfficiency);
    if (memNodeBandwidth <= 0.0)
        fatal("memory-node bandwidth must be positive (got %g B/s)",
              memNodeBandwidth);
    if (socketBandwidth < 0.0)
        fatal("socket bandwidth cap must be >= 0 (got %g B/s)",
              socketBandwidth);
    if (peakWindow == 0)
        fatal("peak-bandwidth averaging window must be positive");
    if (switchRadix < 2)
        fatal("switch radix must be at least 2 (got %d)", switchRadix);
}

} // namespace mcdla
