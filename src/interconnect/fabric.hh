/**
 * @file
 * Fabric: the device-side interconnect of one system design point.
 *
 * A Fabric owns all channels (link directions, memory-node DIMM buses,
 * PCIe lanes, host-socket DRAM interfaces) and publishes two views the
 * system layer consumes:
 *
 *  - collective rings: logical unidirectional rings over the device-nodes
 *    (a hop may traverse several channels when memory-nodes sit between
 *    devices, as in MC-DLA),
 *  - per-device vmem paths: parallel routes to each backing-store target
 *    (a neighbor memory-node, or the host socket).
 *
 * Ring hops and vmem routes may share physical channels; contention is
 * resolved by channel FIFO queueing during simulation.
 */

#ifndef MCDLA_INTERCONNECT_FABRIC_HH
#define MCDLA_INTERCONNECT_FABRIC_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interconnect/channel.hh"
#include "interconnect/flow.hh"
#include "interconnect/router.hh"
#include "interconnect/topology.hh"

namespace mcdla
{

/** One position around a logical ring. */
struct RingStage
{
    bool isDevice = true; ///< Device-node or memory-node stage.
    int index = 0;        ///< Node index within its kind.
};

/**
 * One logical unidirectional ring used by collectives.
 *
 * Every stage — device-node or memory-node — is a full ring-algorithm
 * participant (the memory-node protocol engine stores-and-forwards ring
 * blocks), which is what produces the paper's Figure 9 cost model: a
 * 16-stage MC-DLA ring pays the (n-1)/n bandwidth factor of n=16, ~7%
 * above DC-DLA's n=8. A node may appear as more than one stage (the
 * Fig 7a black ring visits each memory-node twice).
 */
struct RingPath
{
    /** Stages in ring order. */
    std::vector<RingStage> stages;
    /** hops[i] routes stages[i] -> stages[(i+1) % stageCount()]. */
    std::vector<Route> hops;

    int stageCount() const { return static_cast<int>(stages.size()); }

    /** Total physical channel traversals around the ring. */
    int
    physicalHopCount() const
    {
        int n = 0;
        for (const Route &hop : hops)
            n += static_cast<int>(hop.hops.size());
        return n;
    }

    /** Device indices in ring order (duplicates removed in order). */
    std::vector<int>
    deviceMembers() const
    {
        std::vector<int> out;
        for (const RingStage &s : stages)
            if (s.isDevice)
                out.push_back(s.index);
        return out;
    }

    /** First stage position occupied by @p device; -1 if absent. */
    int
    stageOfDevice(int device) const
    {
        for (std::size_t i = 0; i < stages.size(); ++i)
            if (stages[i].isDevice && stages[i].index == device)
                return static_cast<int>(i);
        return -1;
    }
};

/** Backing-store attachment of one device. */
struct VmemPath
{
    /** Memory-node index, or -1 when the target is host DRAM. */
    int targetIndex = -1;
    /** Parallel device -> storage routes (writes/offload). */
    std::vector<Route> writeRoutes;
    /** Parallel storage -> device routes (reads/prefetch). */
    std::vector<Route> readRoutes;
};

/**
 * Restrict a logical ring to a subset of device-nodes (cluster
 * multi-tenancy): device stages outside @p devices are demoted to
 * store-and-forward hops — their adjacent routes concatenate — while
 * memory-node stages stay full ring-algorithm participants, exactly as
 * they do for whole-machine collectives. The restricted ring still
 * traverses every physical channel of the original loop, so a job's
 * collectives contend with co-located jobs' traffic on the shared
 * links. Returns a ring with no stages when fewer than two of
 * @p devices appear in @p ring.
 */
RingPath restrictRingToDevices(const RingPath &ring,
                               const std::vector<int> &devices);

/** The interconnect of one simulated system. */
class Fabric
{
  public:
    Fabric(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name)), _topology(*this)
    {}

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() { return _eq; }

    /** The interconnect graph (populated by topology-aware builders). */
    Topology &topology() { return _topology; }
    const Topology &topology() const { return _topology; }

    /**
     * The routing tables over the topology graph, built on first use
     * (after construction completes). Fatal when the fabric was
     * hand-assembled without a graph.
     */
    const Router &router() const;

    /** Create and own a channel. */
    Channel &
    makeChannel(const std::string &name, double bandwidth, Tick latency)
    {
        _channels.push_back(std::make_unique<Channel>(
            _eq, _name + "." + name, bandwidth, latency));
        return *_channels.back();
    }

    /// @name Construction API (used by fabric builders)
    /// @{
    void addRing(RingPath ring) { _rings.push_back(std::move(ring)); }

    void
    setVmemPaths(int device, std::vector<VmemPath> paths)
    {
        _vmemPaths[device] = std::move(paths);
    }

    /** Register a host-socket DRAM channel (Figure 12 accounting). */
    void
    registerSocketChannel(Channel *ch)
    {
        _socketChannels.push_back(ch);
    }

    /** Register a memory-node DIMM-bus channel. */
    void
    registerMemNodeChannel(int mem_index, Channel *ch)
    {
        _memNodeChannels[mem_index] = ch;
    }
    /// @}

    /// @name Simulation-time queries
    /// @{
    const std::vector<RingPath> &rings() const { return _rings; }

    /**
     * A point-to-point channel route from device @p src to device
     * @p dst in the fewest physical channel traversals (memory-nodes
     * and switches along the way store-and-forward): the Router's
     * precomputed shortest path over the topology graph wherever that
     * is strictly shorter than — or the only alternative to — the
     * legacy ring walk; equal-cost ties keep the ring walk's
     * deterministic choice so pre-Topology simulations stay
     * bit-reproducible. Used for pipeline-parallel boundary
     * transfers, which thereby contend with paging DMA and collective
     * chunks on the shared channels. Returns an invalid (empty) route
     * when no path connects the two devices.
     */
    Route deviceRoute(int src, int dst) const;

    /**
     * Shortest device-to-device distance in physical channel
     * traversals (the cluster's placement cost); -1 when unreachable.
     */
    int deviceHopCount(int src, int dst) const;

    /** Paths to this device's backing store; empty if it has none. */
    const std::vector<VmemPath> &
    vmemPaths(int device) const
    {
        static const std::vector<VmemPath> none;
        auto it = _vmemPaths.find(device);
        return it == _vmemPaths.end() ? none : it->second;
    }

    const std::vector<Channel *> &
    socketChannels() const
    {
        return _socketChannels;
    }

    const std::map<int, Channel *> &
    memNodeChannels() const
    {
        return _memNodeChannels;
    }

    /** All owned channels (stats enumeration). */
    std::vector<Channel *>
    channels() const
    {
        std::vector<Channel *> out;
        out.reserve(_channels.size());
        for (const auto &ch : _channels)
            out.push_back(ch.get());
        return out;
    }

    /** Total bytes that crossed host-socket DRAM channels. */
    double
    hostBytes() const
    {
        double total = 0.0;
        for (const Channel *ch : _socketChannels)
            total += ch->bytesTransferred();
        return total;
    }

    /** Peak windowed host-socket bandwidth across sockets (bytes/s). */
    double
    hostPeakBandwidth() const
    {
        double peak = 0.0;
        for (const Channel *ch : _socketChannels)
            peak = std::max(peak, ch->peakBandwidth());
        return peak;
    }

    /** Reset statistics on every channel. */
    void
    resetStats()
    {
        for (const auto &ch : _channels)
            ch->resetStats();
    }
    /// @}

  private:
    /** Legacy ring-walk routing (hand-assembled fabrics only). */
    Route ringWalkRoute(int src, int dst) const;

    EventQueue &_eq;
    std::string _name;
    Topology _topology;
    /** Routing tables, built lazily once the graph is complete. */
    mutable std::unique_ptr<Router> _router;
    /** Resolved deviceRoute() results (the graph is immutable after
        construction; collectives re-resolve pairs every launch). */
    mutable std::map<std::pair<int, int>, Route> _routeCache;
    std::vector<std::unique_ptr<Channel>> _channels;
    std::vector<RingPath> _rings;
    std::map<int, std::vector<VmemPath>> _vmemPaths;
    std::vector<Channel *> _socketChannels;
    std::map<int, Channel *> _memNodeChannels;
};

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_FABRIC_HH
