/**
 * @file
 * Switched (scale-out) MC-DLA fabric builder — Section VI / Figure 15.
 *
 * One switch plane per link index: plane r connects link r of every
 * device-node and memory-node through a non-blocking crossbar with a
 * store-and-forward latency. The collective rings and vmem neighbor
 * structure of the Fig 7(c) design are preserved logically — the switch
 * merely re-routes each segment — so the design point scales to any
 * node count the switch radix can seat.
 *
 * Expressed as a Topology generator: each plane is a Switch node, so
 * the Router sees the crossbar for what it is and point-to-point
 * routes cross any plane in two channel hops (up + down) instead of
 * walking the logical ring — the scale-out win the hierarchical
 * collectives exploit.
 */

#include <string>

#include "interconnect/fabrics.hh"
#include "sim/logging.hh"

namespace mcdla
{

std::unique_ptr<Fabric>
buildMcdlaSwitchFabric(EventQueue &eq, const FabricConfig &cfg)
{
    const int n = cfg.numDevices;
    if (n < 1)
        fatal("switched MC-DLA fabric requires at least one device");
    if (2 * n > cfg.switchRadix)
        fatal("switch radix %d cannot seat %d device-nodes plus %d "
              "memory-nodes per plane; use a larger switch or fewer "
              "nodes",
              cfg.switchRadix, n, n);

    auto fab = std::make_unique<Fabric>(eq, "mcdla_switch");
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    // Memory-node DIMM buses.
    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    // One plane per physical link (the DGX-2 pattern: N=6 links, six
    // switch planes). Per plane and node: an up (node -> switch) and a
    // down (switch -> node) channel; the switch's forwarding latency is
    // charged on the down channel.
    const auto P = static_cast<std::size_t>(2 * cfg.numRings);
    const auto N = static_cast<std::size_t>(n);
    std::vector<std::vector<Channel *>> dUp(P), dDown(P), mUp(P),
        mDown(P);
    for (std::size_t p = 0; p < P; ++p) {
        dUp[p].resize(N);
        dDown[p].resize(N);
        mUp[p].resize(N);
        mDown[p].resize(N);
        const int sw = topo.switchNode(static_cast<int>(p));
        for (int i = 0; i < n; ++i) {
            const std::string plane = "plane" + std::to_string(p);
            const auto ui = static_cast<std::size_t>(i);
            const int di = topo.device(i);
            const int mi = topo.memoryNode(i);
            dUp[p][ui] = &topo.link(
                di, sw, plane + ".d" + std::to_string(i) + ".up",
                cfg.linkBandwidth, cfg.linkLatency);
            dDown[p][ui] = &topo.link(
                sw, di, plane + ".d" + std::to_string(i) + ".down",
                cfg.linkBandwidth, cfg.linkLatency + cfg.switchLatency);
            mUp[p][ui] = &topo.link(
                mi, sw, plane + ".m" + std::to_string(i) + ".up",
                cfg.linkBandwidth, cfg.linkLatency);
            mDown[p][ui] = &topo.link(
                sw, mi, plane + ".m" + std::to_string(i) + ".down",
                cfg.linkBandwidth, cfg.linkLatency + cfg.switchLatency);
        }
    }

    // Logical rings: one unidirectional ring per plane, forward on even
    // planes and reverse on odd planes, stages alternating D and M.
    if (n >= 2) {
        for (std::size_t p = 0; p < P; ++p) {
            RingPath ring;
            if (p % 2 == 0) {
                for (int i = 0; i < n; ++i) {
                    const auto ui = static_cast<std::size_t>(i);
                    const auto un =
                        static_cast<std::size_t>((i + 1) % n);
                    ring.stages.push_back(RingStage{true, i});
                    ring.hops.push_back(
                        Route{{dUp[p][ui], mDown[p][ui]}});
                    ring.stages.push_back(RingStage{false, i});
                    ring.hops.push_back(
                        Route{{mUp[p][ui], dDown[p][un]}});
                }
            } else {
                for (int s = 0; s < n; ++s) {
                    const int d = (n - s) % n;
                    const int m = (d - 1 + n) % n;
                    const auto ud = static_cast<std::size_t>(d);
                    const auto um = static_cast<std::size_t>(m);
                    ring.stages.push_back(RingStage{true, d});
                    ring.hops.push_back(
                        Route{{dUp[p][ud], mDown[p][um]}});
                    ring.stages.push_back(RingStage{false, m});
                    ring.hops.push_back(
                        Route{{mUp[p][um], dDown[p][um]}});
                }
            }
            fab->addRing(std::move(ring));
        }
    }

    // vmem paths: logical right (M_d) and left (M_{d-1}) neighbors as
    // in the direct ring design; the right target rides the first half
    // of the planes, the left target the second half, so BW_AWARE
    // engages all N links and LOCAL uses N/2 (Fig 10 semantics).
    const std::size_t half = P / 2;
    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        const int left = (d - 1 + n) % n;
        const auto ul = static_cast<std::size_t>(left);

        VmemPath right;
        right.targetIndex = d;
        for (std::size_t p = 0; p < half; ++p) {
            right.writeRoutes.push_back(
                Route{{dUp[p][ud], mDown[p][ud], mem[ud]}});
            right.readRoutes.push_back(
                Route{{mem[ud], mUp[p][ud], dDown[p][ud]}});
        }
        if (left == d) {
            for (std::size_t p = half; p < P; ++p) {
                right.writeRoutes.push_back(
                    Route{{dUp[p][ud], mDown[p][ud], mem[ud]}});
                right.readRoutes.push_back(
                    Route{{mem[ud], mUp[p][ud], dDown[p][ud]}});
            }
            fab->setVmemPaths(d, {std::move(right)});
            continue;
        }
        VmemPath left_path;
        left_path.targetIndex = left;
        for (std::size_t p = half; p < P; ++p) {
            left_path.writeRoutes.push_back(
                Route{{dUp[p][ud], mDown[p][ul], mem[ul]}});
            left_path.readRoutes.push_back(
                Route{{mem[ul], mUp[p][ul], dDown[p][ud]}});
        }
        fab->setVmemPaths(d, {std::move(right), std::move(left_path)});
    }
    return fab;
}

} // namespace mcdla
