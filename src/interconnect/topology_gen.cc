/**
 * @file
 * Generic topology generators: 2-D mesh, 2-D torus, and a two-level
 * fat-tree over the memory-centric node set, plus the dispatcher that
 * maps a TopologyKind to its builder.
 *
 * These open the interconnect itself as a sweep axis: the same
 * device/memory-node population the paper wires as Fig 7(c) rings can
 * be rewired as a mesh, torus, or fat-tree and driven through the
 * identical System/TrainingSession stack — collectives, paging DMA,
 * and pipeline boundary transfers all route over the generated graph.
 *
 * Conventions shared with the legacy builders:
 *  - every memory-node's DIMM bus is a non-routable self-link,
 *  - vmem write routes end on the DIMM bus, read routes start on it,
 *  - collective rings are logical unidirectional rings whose hops are
 *    multi-channel Routes (intermediate nodes store-and-forward).
 */

#include <algorithm>
#include <cmath>
#include <string>

#include "interconnect/fabrics.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Most-square rows x cols factorization of @p n (rows <= cols). */
std::pair<int, int>
gridShape(int n)
{
    int rows = std::max(1, static_cast<int>(std::sqrt(
                               static_cast<double>(n))));
    while (n % rows != 0)
        --rows;
    return {rows, n / rows};
}

/**
 * Add the forward and reverse logical collective rings over @p order
 * (device indices forming one cycle), with hops routed on the graph's
 * shortest paths. Every device is a ring-algorithm stage; intermediate
 * nodes of a multi-hop route store-and-forward.
 */
void
addRoutedRings(Fabric &fab, const std::vector<int> &order)
{
    if (order.size() < 2)
        return;
    const Router &router = fab.router();
    const std::size_t n = order.size();

    for (int dir = 0; dir < 2; ++dir) {
        RingPath ring;
        for (std::size_t s = 0; s < n; ++s) {
            const std::size_t at = dir == 0 ? s : (n - s) % n;
            const std::size_t to =
                dir == 0 ? (s + 1) % n : (n - s - 1) % n;
            const int src = order[at];
            const int dst = order[to];
            Route hop = router.route(src, dst);
            if (!hop.valid())
                fatal("topology generator: no route between ring "
                      "members D%d and D%d", src, dst);
            ring.stages.push_back(RingStage{true, src});
            ring.hops.push_back(std::move(hop));
        }
        fab.addRing(std::move(ring));
    }
}

} // anonymous namespace

std::unique_ptr<Fabric>
buildMesh2dFabric(EventQueue &eq, const FabricConfig &cfg, bool wrap)
{
    const int n = cfg.numDevices;
    if (n < 1)
        fatal("mesh topology requires at least one device");
    auto fab = std::make_unique<Fabric>(eq, wrap ? "torus2d" : "mesh2d");
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    const auto [rows, cols] = gridShape(n);
    auto at = [cols = cols](int r, int c) { return r * cols + c; };
    auto pair_link = [&](int a, int b, const std::string &base) {
        topo.link(topo.device(a), topo.device(b), base + ".fwd",
                  cfg.linkBandwidth, cfg.linkLatency);
        topo.link(topo.device(b), topo.device(a), base + ".bwd",
                  cfg.linkBandwidth, cfg.linkLatency);
    };
    auto edge_name = [](int a, int b) {
        return "grid.d" + std::to_string(a) + "-d" + std::to_string(b);
    };

    // Grid links: horizontal then vertical, row-major; torus adds the
    // wraparound edge per dimension of extent >= 3 (a 2-wide dimension
    // already has the direct link).
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c + 1 < cols; ++c)
            pair_link(at(r, c), at(r, c + 1),
                      edge_name(at(r, c), at(r, c + 1)));
    if (wrap && cols >= 3)
        for (int r = 0; r < rows; ++r)
            pair_link(at(r, cols - 1), at(r, 0),
                      edge_name(at(r, cols - 1), at(r, 0)));
    for (int c = 0; c < cols; ++c)
        for (int r = 0; r + 1 < rows; ++r)
            pair_link(at(r, c), at(r + 1, c),
                      edge_name(at(r, c), at(r + 1, c)));
    if (wrap && rows >= 3)
        for (int c = 0; c < cols; ++c)
            pair_link(at(rows - 1, c), at(0, c),
                      edge_name(at(rows - 1, c), at(0, c)));

    // Memory attachment: the grid consumes up to 4 of the device's 2 *
    // numRings links; the remainder (>= 1) are dedicated device <->
    // memory-node lanes.
    const int lanes = std::max(1, 2 * cfg.numRings - 4);
    std::vector<VmemPath> paths;
    for (int d = 0; d < n; ++d) {
        VmemPath path;
        path.targetIndex = d;
        for (int l = 0; l < lanes; ++l) {
            Channel &w = topo.link(
                topo.device(d), topo.memoryNode(d),
                "d" + std::to_string(d) + ".mem" + std::to_string(l)
                    + ".d2m",
                cfg.linkBandwidth, cfg.linkLatency);
            Channel &r = topo.link(
                topo.memoryNode(d), topo.device(d),
                "d" + std::to_string(d) + ".mem" + std::to_string(l)
                    + ".m2d",
                cfg.linkBandwidth, cfg.linkLatency);
            path.writeRoutes.push_back(
                Route{{&w, mem[static_cast<std::size_t>(d)]}});
            path.readRoutes.push_back(
                Route{{mem[static_cast<std::size_t>(d)], &r}});
        }
        fab->setVmemPaths(d, {std::move(path)});
    }

    // Collective rings: the serpentine grid traversal (row 0 left to
    // right, row 1 right to left, ...). Row transitions are vertical
    // neighbors; the closing hop folds back through the grid (or rides
    // the wraparound links on a torus).
    if (n >= 2) {
        std::vector<int> order;
        for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c)
                order.push_back(
                    at(r, r % 2 == 0 ? c : cols - 1 - c));
        }
        addRoutedRings(*fab, order);
    }
    return fab;
}

std::unique_ptr<Fabric>
buildFatTreeFabric(EventQueue &eq, const FabricConfig &cfg)
{
    const int n = cfg.numDevices;
    if (n < 1)
        fatal("fat-tree topology requires at least one device");
    const int k = cfg.switchRadix;
    const int leaf_slots = k / 2;
    if (leaf_slots < 2)
        fatal("fat-tree requires switch radix >= 4 (got %d)", k);
    const int num_leaves = (2 * n + leaf_slots - 1) / leaf_slots;
    const int num_spines = num_leaves > 1 ? k / 2 : 0;
    if (num_leaves > k)
        fatal("fat-tree radix %d cannot seat %d nodes (%d leaves > %d "
              "spine ports); use a larger switch radix",
              k, 2 * n, num_leaves, k);

    auto fab = std::make_unique<Fabric>(eq, "fat_tree");
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    // Slot assignment: D0, M0, D1, M1, ... so a device and its
    // memory-node land on the same leaf whenever slots allow.
    auto leaf_of_slot = [leaf_slots](int slot) {
        return slot / leaf_slots;
    };
    auto device_slot = [](int d) { return 2 * d; };
    auto mem_slot = [](int d) { return 2 * d + 1; };

    // Node <-> leaf channels; the switch's store-and-forward latency is
    // charged on every down channel, as in the Fig 15 planes.
    std::vector<Channel *> dUp(static_cast<std::size_t>(n)),
        dDown(static_cast<std::size_t>(n)),
        mUp(static_cast<std::size_t>(n)),
        mDown(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        const int dleaf = topo.switchNode(leaf_of_slot(device_slot(d)));
        const int mleaf = topo.switchNode(leaf_of_slot(mem_slot(d)));
        const std::string dn = "d" + std::to_string(d);
        const std::string mn = "m" + std::to_string(d);
        dUp[ud] = &topo.link(topo.device(d), dleaf, dn + ".up",
                             cfg.linkBandwidth, cfg.linkLatency);
        dDown[ud] = &topo.link(dleaf, topo.device(d), dn + ".down",
                               cfg.linkBandwidth,
                               cfg.linkLatency + cfg.switchLatency);
        mUp[ud] = &topo.link(topo.memoryNode(d), mleaf, mn + ".up",
                             cfg.linkBandwidth, cfg.linkLatency);
        mDown[ud] = &topo.link(mleaf, topo.memoryNode(d), mn + ".down",
                               cfg.linkBandwidth,
                               cfg.linkLatency + cfg.switchLatency);
    }

    // Leaf <-> spine channels: one uplink pair per (leaf, spine).
    std::vector<std::vector<Channel *>> leafUp(
        static_cast<std::size_t>(num_leaves)),
        leafDown(static_cast<std::size_t>(num_leaves));
    for (int l = 0; l < num_leaves; ++l) {
        const auto ul = static_cast<std::size_t>(l);
        leafUp[ul].resize(static_cast<std::size_t>(num_spines));
        leafDown[ul].resize(static_cast<std::size_t>(num_spines));
        for (int s = 0; s < num_spines; ++s) {
            const int leaf = topo.switchNode(l);
            const int spine = topo.switchNode(num_leaves + s);
            const std::string base = "l" + std::to_string(l) + "-s"
                + std::to_string(s);
            leafUp[ul][static_cast<std::size_t>(s)] = &topo.link(
                leaf, spine, base + ".up", cfg.linkBandwidth,
                cfg.linkLatency);
            leafDown[ul][static_cast<std::size_t>(s)] = &topo.link(
                spine, leaf, base + ".down", cfg.linkBandwidth,
                cfg.linkLatency + cfg.switchLatency);
        }
    }

    // vmem paths: device d to its own memory-node — two channel hops
    // on a shared leaf, four through spine 0 otherwise.
    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        const int dleaf = leaf_of_slot(device_slot(d));
        const int mleaf = leaf_of_slot(mem_slot(d));
        VmemPath path;
        path.targetIndex = d;
        if (dleaf == mleaf) {
            path.writeRoutes.push_back(
                Route{{dUp[ud], mDown[ud], mem[ud]}});
            path.readRoutes.push_back(
                Route{{mem[ud], mUp[ud], dDown[ud]}});
        } else {
            const auto udl = static_cast<std::size_t>(dleaf);
            const auto uml = static_cast<std::size_t>(mleaf);
            path.writeRoutes.push_back(Route{{dUp[ud], leafUp[udl][0],
                                              leafDown[uml][0],
                                              mDown[ud], mem[ud]}});
            path.readRoutes.push_back(Route{{mem[ud], mUp[ud],
                                             leafUp[uml][0],
                                             leafDown[udl][0],
                                             dDown[ud]}});
        }
        fab->setVmemPaths(d, {std::move(path)});
    }

    // Collective rings: devices in index order; the Router folds each
    // hop through the shared leaf (2 channels) or a spine (4).
    if (n >= 2) {
        std::vector<int> order(static_cast<std::size_t>(n));
        for (int d = 0; d < n; ++d)
            order[static_cast<std::size_t>(d)] = d;
        addRoutedRings(*fab, order);
    }
    return fab;
}

std::unique_ptr<Fabric>
buildTopologyFabric(EventQueue &eq, const FabricConfig &cfg,
                    TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Design:
        fatal("TopologyKind::Design names the system design's own "
              "fabric; resolve it before calling buildTopologyFabric");
      case TopologyKind::Ring:
        return buildMcdlaRingFabric(eq, cfg);
      case TopologyKind::FullSwitch:
        return buildMcdlaSwitchFabric(eq, cfg);
      case TopologyKind::Mesh2d:
        return buildMesh2dFabric(eq, cfg, /*wrap=*/false);
      case TopologyKind::Torus2d:
        return buildMesh2dFabric(eq, cfg, /*wrap=*/true);
      case TopologyKind::FatTree:
        return buildFatTreeFabric(eq, cfg);
    }
    panic("unhandled topology kind %d", static_cast<int>(kind));
}

} // namespace mcdla
