/**
 * @file
 * Router implementation: per-source BFS with deterministic
 * tie-breaking and equal-cost parent retention.
 */

#include "interconnect/router.hh"

#include <algorithm>
#include <deque>

#include "sim/logging.hh"

namespace mcdla
{

Router::Router(const Topology &topo) : _topo(topo)
{
    _numDevices = topo.count(NodeKind::Device);
    _deviceNodes.assign(static_cast<std::size_t>(_numDevices), -1);
    for (int d = 0; d < _numDevices; ++d)
        _deviceNodes[static_cast<std::size_t>(d)] =
            topo.findNode(NodeKind::Device, d);

    _tables.reserve(static_cast<std::size_t>(_numDevices));
    for (int d = 0; d < _numDevices; ++d)
        _tables.push_back(
            bfs(_deviceNodes[static_cast<std::size_t>(d)]));
}

std::vector<Router::NodeEntry>
Router::bfs(int src_node) const
{
    std::vector<NodeEntry> table(_topo.nodeCount());
    if (src_node < 0)
        return table;
    table[static_cast<std::size_t>(src_node)].dist = 0;

    std::deque<int> frontier{src_node};
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop_front();
        const int du = table[static_cast<std::size_t>(u)].dist;
        for (int link_id : _topo.outLinks(u)) {
            const TopoLink &link =
                _topo.links()[static_cast<std::size_t>(link_id)];
            if (!link.routable || link.dst == u)
                continue;
            NodeEntry &entry =
                table[static_cast<std::size_t>(link.dst)];
            if (entry.dist < 0) {
                entry.dist = du + 1;
                entry.parents.push_back(link_id);
                frontier.push_back(link.dst);
            } else if (entry.dist == du + 1) {
                // Equal-cost alternative (ECMP); canonical BFS-first
                // parent stays at the front.
                entry.parents.push_back(link_id);
            }
        }
    }
    return table;
}

Route
Router::route(int src, int dst) const
{
    Route out;
    if (src == dst || src < 0 || dst < 0 || src >= _numDevices
        || dst >= _numDevices)
        return out;
    const auto &table = _tables[static_cast<std::size_t>(src)];
    int node = _deviceNodes[static_cast<std::size_t>(dst)];
    if (node < 0 || table[static_cast<std::size_t>(node)].dist < 0)
        return out;

    // Backtrack along canonical (BFS-first) parents, then reverse.
    while (table[static_cast<std::size_t>(node)].dist > 0) {
        const int link_id =
            table[static_cast<std::size_t>(node)].parents.front();
        const TopoLink &link =
            _topo.links()[static_cast<std::size_t>(link_id)];
        out.hops.push_back(link.channel);
        node = link.src;
    }
    std::reverse(out.hops.begin(), out.hops.end());
    return out;
}

std::vector<Route>
Router::routes(int src, int dst, std::size_t max_paths) const
{
    std::vector<Route> out;
    if (src == dst || src < 0 || dst < 0 || src >= _numDevices
        || dst >= _numDevices || max_paths == 0)
        return out;
    const auto &table = _tables[static_cast<std::size_t>(src)];
    const int dst_node = _deviceNodes[static_cast<std::size_t>(dst)];
    if (dst_node < 0
        || table[static_cast<std::size_t>(dst_node)].dist < 0)
        return out;

    // Depth-first enumeration over the equal-cost parent DAG, parents
    // in BFS-discovery order so the canonical route comes out first.
    struct Frame
    {
        int node;
        std::size_t next_parent;
    };
    std::vector<Frame> stack{{dst_node, 0}};
    std::vector<int> links; // reversed link ids along the current path
    while (!stack.empty() && out.size() < max_paths) {
        Frame &top = stack.back();
        const NodeEntry &entry =
            table[static_cast<std::size_t>(top.node)];
        if (entry.dist == 0) {
            Route route;
            for (auto it = links.rbegin(); it != links.rend(); ++it)
                route.hops.push_back(
                    _topo.links()[static_cast<std::size_t>(*it)]
                        .channel);
            out.push_back(std::move(route));
            stack.pop_back();
            if (!links.empty())
                links.pop_back();
            continue;
        }
        if (top.next_parent >= entry.parents.size()) {
            stack.pop_back();
            if (!links.empty())
                links.pop_back();
            continue;
        }
        const int link_id = entry.parents[top.next_parent++];
        const TopoLink &link =
            _topo.links()[static_cast<std::size_t>(link_id)];
        links.push_back(link_id);
        stack.push_back(Frame{link.src, 0});
    }
    return out;
}

int
Router::hopCount(int src, int dst) const
{
    if (src == dst)
        return 0;
    if (src < 0 || dst < 0 || src >= _numDevices || dst >= _numDevices)
        return -1;
    const int dst_node = _deviceNodes[static_cast<std::size_t>(dst)];
    if (dst_node < 0)
        return -1;
    return _tables[static_cast<std::size_t>(src)]
        [static_cast<std::size_t>(dst_node)].dist;
}

bool
Router::fullyConnected() const
{
    for (int s = 0; s < _numDevices; ++s)
        for (int d = 0; d < _numDevices; ++d)
            if (s != d && hopCount(s, d) < 0)
                return false;
    return true;
}

} // namespace mcdla
