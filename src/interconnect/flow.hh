/**
 * @file
 * Bulk-flow helpers: chunked transfers over channel routes.
 *
 * A Route is an ordered channel sequence traversed store-and-forward; a
 * flow moves a payload over one or more parallel routes in fixed-size
 * chunks (round-robin across routes), reporting a single completion when
 * the last chunk of the payload is delivered. This is the DMA abstraction
 * used for memory-virtualization traffic and the building block the ring
 * collectives are assembled from.
 */

#ifndef MCDLA_INTERCONNECT_FLOW_HH
#define MCDLA_INTERCONNECT_FLOW_HH

#include <functional>
#include <vector>

#include "interconnect/channel.hh"

namespace mcdla
{

/** An ordered multi-hop path of channels. */
struct Route
{
    std::vector<Channel *> hops;

    bool valid() const { return !hops.empty(); }
};

/** Default DMA chunk used to interleave concurrent bulk flows. */
constexpr double kDefaultChunkBytes = 512.0 * 1024.0;

/**
 * Send one chunk through @p route (store-and-forward across hops).
 *
 * @param route Channel sequence; must be non-empty.
 * @param bytes Chunk size.
 * @param on_delivered Fires when the chunk exits the last hop.
 */
void sendChunk(const Route &route, double bytes,
               std::function<void()> on_delivered);

/**
 * Transfer @p bytes over @p routes, chunked and round-robined.
 *
 * All chunks are enqueued immediately (channel FIFOs provide the
 * backpressure); completion fires when every chunk has been delivered.
 *
 * @param routes Parallel routes; must be non-empty.
 * @param bytes Total payload.
 * @param chunk_bytes Chunk granularity (> 0).
 * @param on_done Completion callback (may be empty).
 */
void sendFlow(const std::vector<Route> &routes, double bytes,
              double chunk_bytes, std::function<void()> on_done);

/** sendFlow with the default chunk size. */
inline void
sendFlow(const std::vector<Route> &routes, double bytes,
         std::function<void()> on_done)
{
    sendFlow(routes, bytes, kDefaultChunkBytes, std::move(on_done));
}

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_FLOW_HH
