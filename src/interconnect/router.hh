/**
 * @file
 * Router: precomputed device-to-device routing over a Topology.
 *
 * Replaces the ad-hoc ring-walk that Fabric::deviceRoute used to
 * perform: a breadth-first search per source device over the routable
 * links of the graph yields shortest paths in physical channel
 * traversals, with deterministic tie-breaking by link insertion order
 * (which reproduces the legacy ring-walk's route choice on the paper's
 * fabrics — asserted in tests/test_topology.cc). Equal-cost parents
 * are retained, so ECMP route sets can be enumerated for multi-path
 * transfers and diagnostics.
 *
 * Routes are channel sequences traversed store-and-forward; memory
 * nodes and switches along the way forward without participating.
 */

#ifndef MCDLA_INTERCONNECT_ROUTER_HH
#define MCDLA_INTERCONNECT_ROUTER_HH

#include <vector>

#include "interconnect/flow.hh"
#include "interconnect/topology.hh"

namespace mcdla
{

/** Shortest-path/ECMP routing tables over one topology. */
class Router
{
  public:
    /** Precompute tables; @p topo must outlive the router. */
    explicit Router(const Topology &topo);

    /**
     * Canonical shortest route from device @p src to device @p dst
     * (the BFS-first path). Invalid (empty) when src == dst, either
     * device is absent, or no routable path exists.
     */
    Route route(int src, int dst) const;

    /**
     * Up to @p max_paths equal-cost shortest routes, canonical first,
     * enumerated deterministically over the parent DAG.
     */
    std::vector<Route> routes(int src, int dst,
                              std::size_t max_paths = 4) const;

    /**
     * Shortest-path length in physical channel traversals from device
     * @p src to device @p dst; 0 when src == dst, -1 when unreachable.
     */
    int hopCount(int src, int dst) const;

    /** Devices with a routable path to/from every other device. */
    bool fullyConnected() const;

    int deviceCount() const { return _numDevices; }

  private:
    struct NodeEntry
    {
        int dist = -1;
        /** Equal-cost incoming link ids, BFS-first order. */
        std::vector<int> parents;
    };

    /** BFS state of one source device, indexed by node id. */
    std::vector<NodeEntry> bfs(int src_node) const;

    const Topology &_topo;
    int _numDevices = 0;
    /** _tables[src device][node id]. */
    std::vector<std::vector<NodeEntry>> _tables;
    /** Node id of each device index; -1 when absent. */
    std::vector<int> _deviceNodes;
};

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_ROUTER_HH
