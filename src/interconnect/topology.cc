/**
 * @file
 * Topology graph implementation and the TopologyKind CLI round-trips.
 */

#include "interconnect/topology.hh"

#include "interconnect/fabric.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

struct KindToken
{
    TopologyKind kind;
    const char *token;
    const char *name;
};

/** The one table every direction of the round-trip reads. */
constexpr KindToken kKindTokens[] = {
    {TopologyKind::Design, "design", "design default"},
    {TopologyKind::Ring, "ring", "ring"},
    {TopologyKind::FullSwitch, "full-switch", "fully-connected switch"},
    {TopologyKind::Mesh2d, "mesh2d", "2d-mesh"},
    {TopologyKind::Torus2d, "torus2d", "2d-torus"},
    {TopologyKind::FatTree, "fat-tree", "fat-tree"},
};

} // anonymous namespace

const char *
topologyKindName(TopologyKind kind)
{
    for (const KindToken &entry : kKindTokens)
        if (entry.kind == kind)
            return entry.name;
    return "unknown";
}

const char *
topologyKindToken(TopologyKind kind)
{
    for (const KindToken &entry : kKindTokens)
        if (entry.kind == kind)
            return entry.token;
    panic("topology kind %d has no token", static_cast<int>(kind));
}

TopologyKind
parseTopologyKind(const std::string &name)
{
    for (const KindToken &entry : kKindTokens)
        if (name == entry.token || name == entry.name)
            return entry.kind;
    fatal("unknown topology '%s' (%s)", name.c_str(),
          topologyKindTokenList().c_str());
}

const std::vector<TopologyKind> &
allTopologyKinds()
{
    static const std::vector<TopologyKind> kinds = [] {
        std::vector<TopologyKind> all;
        for (const KindToken &entry : kKindTokens)
            all.push_back(entry.kind);
        return all;
    }();
    return kinds;
}

const std::string &
topologyKindTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (const KindToken &entry : kKindTokens) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += entry.token;
        }
        return tokens;
    }();
    return list;
}

const char *
nodeKindTag(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Device: return "D";
      case NodeKind::MemoryNode: return "M";
      case NodeKind::Switch: return "S";
      case NodeKind::Host: return "H";
    }
    return "?";
}

int
Topology::node(NodeKind kind, int index)
{
    const auto key = std::make_pair(static_cast<int>(kind), index);
    auto it = _byKindIndex.find(key);
    if (it != _byKindIndex.end())
        return it->second;
    const int id = static_cast<int>(_nodes.size());
    _nodes.push_back(TopoNode{kind, index});
    _outLinks.emplace_back();
    _byKindIndex.emplace(key, id);
    return id;
}

int
Topology::findNode(NodeKind kind, int index) const
{
    const auto key = std::make_pair(static_cast<int>(kind), index);
    auto it = _byKindIndex.find(key);
    return it == _byKindIndex.end() ? -1 : it->second;
}

Channel &
Topology::link(int src, int dst, const std::string &name,
               double bandwidth, Tick latency, bool routable)
{
    Channel &ch = _fabric.makeChannel(name, bandwidth, latency);
    linkExisting(src, dst, &ch, routable);
    return ch;
}

void
Topology::linkExisting(int src, int dst, Channel *channel, bool routable)
{
    if (src < 0 || dst < 0
        || src >= static_cast<int>(_nodes.size())
        || dst >= static_cast<int>(_nodes.size()))
        panic("topology link endpoints %d -> %d outside %zu nodes", src,
              dst, _nodes.size());
    const int id = static_cast<int>(_links.size());
    _links.push_back(TopoLink{src, dst, channel, routable});
    _outLinks[static_cast<std::size_t>(src)].push_back(id);
}

int
Topology::count(NodeKind kind) const
{
    int n = 0;
    for (const TopoNode &node : _nodes)
        if (node.kind == kind)
            ++n;
    return n;
}

const std::vector<int> &
Topology::outLinks(int node) const
{
    return _outLinks.at(static_cast<std::size_t>(node));
}

std::string
Topology::nodeName(int id) const
{
    const TopoNode &node = nodeInfo(id);
    return nodeKindTag(node.kind) + std::to_string(node.index);
}

} // namespace mcdla
