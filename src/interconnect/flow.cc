/**
 * @file
 * Flow helper implementation.
 *
 * Flow bookkeeping is pooled: one FlowState per in-flight flow carries
 * the route copies, the chunks-outstanding join counter and the
 * completion callback. States live on a thread-local free list (each
 * Simulator worker thread drives its own simulations), so steady-state
 * traffic performs no heap allocation at all — route/waiter vector
 * capacity is recycled from earlier flows, and the per-chunk closures
 * (state pointer, route index, hop index, byte count) fit inside the
 * Channel::Handler inline buffer.
 */

#include "interconnect/flow.hh"

#include <cmath>
#include <memory>

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Pooled bookkeeping of one in-flight flow (or lone chunk). */
struct FlowState
{
    std::vector<Route> routes;
    std::uint64_t remaining = 0; ///< chunks not yet fully delivered
    std::function<void()> done;
};

struct FlowPool
{
    std::vector<std::unique_ptr<FlowState>> all;
    std::vector<FlowState *> free;

    FlowState *
    acquire()
    {
        if (!free.empty()) {
            FlowState *state = free.back();
            free.pop_back();
            return state;
        }
        all.push_back(std::make_unique<FlowState>());
        return all.back().get();
    }

    void
    release(FlowState *state)
    {
        state->done = nullptr;
        free.push_back(state);
    }
};

FlowPool &
flowPool()
{
    thread_local FlowPool pool;
    return pool;
}

void forwardChunk(FlowState *state, std::uint32_t route_index,
                  std::uint32_t hop, double bytes);

/** One chunk fully delivered; fire and recycle on the last one. */
void
completeChunk(FlowState *state)
{
    if (--state->remaining != 0)
        return;
    // Detach the callback and recycle *first*: the callback may start
    // new flows (and reuse this very state) or destroy the channels.
    std::function<void()> done = std::move(state->done);
    flowPool().release(state);
    if (done)
        done();
}

/** Forward a chunk from hop @p hop of its route onward. */
void
forwardChunk(FlowState *state, std::uint32_t route_index,
             std::uint32_t hop, double bytes)
{
    Channel *ch = state->routes[route_index].hops[hop];
    ch->submit(bytes, [state, route_index, hop, bytes] {
        if (hop + 1 < state->routes[route_index].hops.size())
            forwardChunk(state, route_index, hop + 1, bytes);
        else
            completeChunk(state);
    });
}

} // anonymous namespace

void
sendChunk(const Route &route, double bytes,
          std::function<void()> on_delivered)
{
    if (!route.valid())
        panic("sendChunk: empty route");
    FlowState *state = flowPool().acquire();
    state->routes.assign(1, route);
    state->remaining = 1;
    state->done = std::move(on_delivered);
    forwardChunk(state, 0, 0, bytes);
}

void
sendFlow(const std::vector<Route> &routes, double bytes,
         double chunk_bytes, std::function<void()> on_done)
{
    if (routes.empty())
        panic("sendFlow: no routes");
    if (chunk_bytes <= 0.0)
        panic("sendFlow: non-positive chunk size");
    if (bytes <= 0.0) {
        if (on_done)
            on_done();
        return;
    }

    const auto chunks = static_cast<std::uint64_t>(
        std::ceil(bytes / chunk_bytes));
    FlowState *state = flowPool().acquire();
    state->routes.assign(routes.begin(), routes.end());
    state->remaining = chunks;
    state->done = std::move(on_done);

    double left = bytes;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const double this_chunk = std::min(chunk_bytes, left);
        left -= this_chunk;
        forwardChunk(state,
                     static_cast<std::uint32_t>(c % routes.size()), 0,
                     this_chunk);
    }
}

} // namespace mcdla
