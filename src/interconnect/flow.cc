/**
 * @file
 * Flow helper implementation.
 */

#include "interconnect/flow.hh"

#include <cmath>
#include <memory>

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Forward a chunk from hop @p index onward. */
void
forwardChunk(std::shared_ptr<const Route> route, std::size_t index,
             double bytes, std::shared_ptr<std::function<void()>> done)
{
    Channel *ch = route->hops[index];
    ch->submit(bytes, [route, index, bytes, done] {
        if (index + 1 < route->hops.size()) {
            forwardChunk(route, index + 1, bytes, done);
        } else if (*done) {
            (*done)();
        }
    });
}

} // anonymous namespace

void
sendChunk(const Route &route, double bytes,
          std::function<void()> on_delivered)
{
    if (!route.valid())
        panic("sendChunk: empty route");
    auto route_copy = std::make_shared<const Route>(route);
    auto done = std::make_shared<std::function<void()>>(
        std::move(on_delivered));
    forwardChunk(std::move(route_copy), 0, bytes, std::move(done));
}

void
sendFlow(const std::vector<Route> &routes, double bytes,
         double chunk_bytes, std::function<void()> on_done)
{
    if (routes.empty())
        panic("sendFlow: no routes");
    if (chunk_bytes <= 0.0)
        panic("sendFlow: non-positive chunk size");
    if (bytes <= 0.0) {
        if (on_done)
            on_done();
        return;
    }

    const auto chunks = static_cast<std::uint64_t>(
        std::ceil(bytes / chunk_bytes));
    auto remaining = std::make_shared<std::uint64_t>(chunks);
    auto done = std::make_shared<std::function<void()>>(
        std::move(on_done));

    double left = bytes;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        const double this_chunk = std::min(chunk_bytes, left);
        left -= this_chunk;
        const Route &route = routes[c % routes.size()];
        sendChunk(route, this_chunk, [remaining, done] {
            if (--*remaining == 0 && *done)
                (*done)();
        });
    }
}

} // namespace mcdla
