/**
 * @file
 * Memory-centric fabric builders: MC-DLA ring (Fig 7c), star (Fig 7b),
 * and the naive star-A derivative (Fig 7a).
 *
 * Re-expressed as Topology generators: every link channel is created
 * through the fabric's graph (devices and memory-nodes as vertices),
 * with channel names, parameters, and creation order unchanged from
 * the hand-built originals — the channel graph is byte-identical. The
 * DIMM buses are non-routable terminal resources.
 */

#include <string>

#include "interconnect/fabrics.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

std::string
segName(const char *kind, int ring, int i, const char *dir)
{
    return std::string(kind) + std::to_string(ring) + ".seg"
        + std::to_string(i) + "." + dir;
}

} // anonymous namespace

std::vector<Channel *>
makeMemoryNodeBuses(Fabric &fab, const FabricConfig &cfg, int count)
{
    Topology &topo = fab.topology();
    std::vector<Channel *> mem;
    for (int m = 0; m < count; ++m) {
        const int node = topo.memoryNode(m);
        Channel &ch = topo.link(node, node,
                                "m" + std::to_string(m) + ".dimms",
                                cfg.memNodeBandwidth, cfg.memNodeLatency,
                                /*routable=*/false);
        fab.registerMemNodeChannel(m, &ch);
        mem.push_back(&ch);
    }
    return mem;
}

std::unique_ptr<Fabric>
buildMcdlaRingFabric(EventQueue &eq, const FabricConfig &cfg)
{
    if (cfg.numDevices < 1)
        fatal("MC-DLA ring fabric requires at least one device");
    auto fab = std::make_unique<Fabric>(eq, "mcdla_ring");
    const int n = cfg.numDevices;
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    // Per ring r and position i, four channels around memory-node M_i:
    //   d2m[r][i]    : D_i     -> M_i      (right-bound write / ring fwd)
    //   m2dn[r][i]   : M_i     -> D_{i+1}  (ring fwd)
    //   dn2m[r][i]   : D_{i+1} -> M_i      (left-bound write / ring bwd)
    //   m2d[r][i]    : M_i     -> D_i      (right read / ring bwd)
    const auto R = static_cast<std::size_t>(cfg.numRings);
    const auto N = static_cast<std::size_t>(n);
    std::vector<std::vector<Channel *>> d2m(R), m2dn(R), dn2m(R), m2d(R);
    for (std::size_t r = 0; r < R; ++r) {
        d2m[r].resize(N);
        m2dn[r].resize(N);
        dn2m[r].resize(N);
        m2d[r].resize(N);
        for (int i = 0; i < n; ++i) {
            const auto ri = static_cast<int>(r);
            const int di = topo.device(i);
            const int dn = topo.device((i + 1) % n);
            const int mi = topo.memoryNode(i);
            d2m[r][static_cast<std::size_t>(i)] = &topo.link(
                di, mi, segName("ring", ri, i, "d2m"),
                cfg.linkBandwidth, cfg.linkLatency);
            m2dn[r][static_cast<std::size_t>(i)] = &topo.link(
                mi, dn, segName("ring", ri, i, "m2dn"),
                cfg.linkBandwidth, cfg.linkLatency);
            dn2m[r][static_cast<std::size_t>(i)] = &topo.link(
                dn, mi, segName("ring", ri, i, "dn2m"),
                cfg.linkBandwidth, cfg.linkLatency);
            m2d[r][static_cast<std::size_t>(i)] = &topo.link(
                mi, di, segName("ring", ri, i, "m2d"),
                cfg.linkBandwidth, cfg.linkLatency);
        }
    }

    // Collective rings (only meaningful with >= 2 devices). Stages
    // alternate D and M: every memory-node is a full ring participant
    // (2n stages), which is the paper's Figure 9 cost model.
    if (n >= 2) {
        for (std::size_t r = 0; r < R; ++r) {
            RingPath f;
            for (int i = 0; i < n; ++i) {
                const auto ui = static_cast<std::size_t>(i);
                f.stages.push_back(RingStage{true, i});
                f.hops.push_back(Route{{d2m[r][ui]}});
                f.stages.push_back(RingStage{false, i});
                f.hops.push_back(Route{{m2dn[r][ui]}});
            }
            fab->addRing(std::move(f));

            // Reverse traversal: D0, M_{n-1}, D_{n-1}, M_{n-2}, ...
            RingPath b;
            for (int s = 0; s < n; ++s) {
                const int d = (n - s) % n;
                const int m = (d - 1 + n) % n;
                const auto um = static_cast<std::size_t>(m);
                b.stages.push_back(RingStage{true, d});
                b.hops.push_back(Route{{dn2m[r][um]}});
                b.stages.push_back(RingStage{false, m});
                b.hops.push_back(Route{{m2d[r][um]}});
            }
            fab->addRing(std::move(b));
        }
    }

    // Memory-virtualization paths: right target M_i, left target M_{i-1}.
    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        const int left = (d - 1 + n) % n;
        const auto ul = static_cast<std::size_t>(left);

        VmemPath right;
        right.targetIndex = d;
        for (std::size_t r = 0; r < R; ++r) {
            right.writeRoutes.push_back(
                Route{{d2m[r][ud], mem[ud]}});
            right.readRoutes.push_back(
                Route{{mem[ud], m2d[r][ud]}});
        }

        if (left == d) {
            // Single-device degenerate system: all N links land on the
            // one memory-node, so both channel groups serve it.
            for (std::size_t r = 0; r < R; ++r) {
                right.writeRoutes.push_back(
                    Route{{dn2m[r][ud], mem[ud]}});
                right.readRoutes.push_back(
                    Route{{mem[ud], m2dn[r][ud]}});
            }
            fab->setVmemPaths(d, {std::move(right)});
            continue;
        }

        VmemPath left_path;
        left_path.targetIndex = left;
        for (std::size_t r = 0; r < R; ++r) {
            // D_d -> M_{d-1} is the "dn2m" channel at position d-1.
            left_path.writeRoutes.push_back(
                Route{{dn2m[r][ul], mem[ul]}});
            left_path.readRoutes.push_back(
                Route{{mem[ul], m2dn[r][ul]}});
        }
        fab->setVmemPaths(d, {std::move(right), std::move(left_path)});
    }
    return fab;
}

std::unique_ptr<Fabric>
buildMcdlaStarFabric(EventQueue &eq, const FabricConfig &cfg)
{
    if (cfg.numDevices < 2 || cfg.numDevices % 2 != 0)
        fatal("MC-DLA star fabric requires an even device count >= 2");
    auto fab = std::make_unique<Fabric>(eq, "mcdla_star");
    const int n = cfg.numDevices;
    const auto N = static_cast<std::size_t>(n);
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    // Ring 1: direct device ring.
    std::vector<Channel *> r1f(N), r1b(N);
    // Gray direct links exist on odd edges only.
    std::vector<Channel *> gf(N, nullptr), gb(N, nullptr);
    // Designated device<->memory links (x2 per pair).
    std::vector<Channel *> dm1f(N), dm1b(N), dm2f(N), dm2b(N);
    // Cross links M_i <-> D_{i+1}.
    std::vector<Channel *> xf(N), xb(N);
    // Memory-to-memory links M_i <-> M_{i+1}.
    std::vector<Channel *> mmf(N), mmb(N);

    for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const int di = topo.device(i);
        const int dn = topo.device((i + 1) % n);
        const int mi = topo.memoryNode(i);
        const int mn = topo.memoryNode((i + 1) % n);
        r1f[ui] = &topo.link(di, dn, segName("r1", 0, i, "fwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        r1b[ui] = &topo.link(dn, di, segName("r1", 0, i, "bwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        if (i % 2 == 1) {
            gf[ui] = &topo.link(di, dn, segName("gray", 0, i, "fwd"),
                                cfg.linkBandwidth, cfg.linkLatency);
            gb[ui] = &topo.link(dn, di, segName("gray", 0, i, "bwd"),
                                cfg.linkBandwidth, cfg.linkLatency);
        }
        dm1f[ui] = &topo.link(di, mi, segName("dm1", 0, i, "d2m"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm1b[ui] = &topo.link(mi, di, segName("dm1", 0, i, "m2d"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm2f[ui] = &topo.link(di, mi, segName("dm2", 0, i, "d2m"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm2b[ui] = &topo.link(mi, di, segName("dm2", 0, i, "m2d"),
                              cfg.linkBandwidth, cfg.linkLatency);
        xf[ui] = &topo.link(mi, dn, segName("x", 0, i, "m2dn"),
                            cfg.linkBandwidth, cfg.linkLatency);
        xb[ui] = &topo.link(dn, mi, segName("x", 0, i, "dn2m"),
                            cfg.linkBandwidth, cfg.linkLatency);
        mmf[ui] = &topo.link(mi, mn, segName("mm", 0, i, "fwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        mmb[ui] = &topo.link(mn, mi, segName("mm", 0, i, "bwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
    }

    auto next = [n](int i) { return (i + 1) % n; };

    // Ring 1 (8 stages): direct device ring.
    {
        RingPath f;
        RingPath b;
        for (int i = 0; i < n; ++i) {
            f.stages.push_back(RingStage{true, i});
            f.hops.push_back(Route{{r1f[static_cast<std::size_t>(i)]}});
            const int m = (n - i) % n;
            const int prev = (m - 1 + n) % n;
            b.stages.push_back(RingStage{true, m});
            b.hops.push_back(Route{{r1b[static_cast<std::size_t>(prev)]}});
        }
        fab->addRing(std::move(f));
        fab->addRing(std::move(b));
    }

    // Ring 2 (gray, 12 stages): even hops route through M_i, odd hops
    // use the direct gray link.
    {
        RingPath f;
        for (int i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            f.stages.push_back(RingStage{true, i});
            if (i % 2 == 0) {
                f.hops.push_back(Route{{dm1f[ui]}});
                f.stages.push_back(RingStage{false, i});
                f.hops.push_back(Route{{xf[ui]}});
            } else {
                f.hops.push_back(Route{{gf[ui]}});
            }
        }
        fab->addRing(std::move(f));

        RingPath b;
        for (int s = 0; s < n; ++s) {
            const int d = (n - s) % n;       // 0, n-1, n-2, ...
            const int prev = (d - 1 + n) % n;
            const auto up = static_cast<std::size_t>(prev);
            b.stages.push_back(RingStage{true, d});
            if (prev % 2 == 0) {
                b.hops.push_back(Route{{xb[up]}});
                b.stages.push_back(RingStage{false, prev});
                b.hops.push_back(Route{{dm1b[up]}});
            } else {
                b.hops.push_back(Route{{gb[up]}});
            }
        }
        fab->addRing(std::move(b));
    }

    // Ring 3 (dotted, 20 stages): even hops D->M->M->D, odd hops
    // D->M->D (sharing the designated and cross links).
    {
        RingPath f;
        for (int i = 0; i < n; ++i) {
            const auto ui = static_cast<std::size_t>(i);
            const auto un = static_cast<std::size_t>(next(i));
            f.stages.push_back(RingStage{true, i});
            if (i % 2 == 0) {
                f.hops.push_back(Route{{dm2f[ui]}});
                f.stages.push_back(RingStage{false, i});
                f.hops.push_back(Route{{mmf[ui]}});
                f.stages.push_back(RingStage{false, next(i)});
                f.hops.push_back(Route{{dm2b[un]}});
            } else {
                f.hops.push_back(Route{{dm1f[ui]}});
                f.stages.push_back(RingStage{false, i});
                f.hops.push_back(Route{{xf[ui]}});
            }
        }
        fab->addRing(std::move(f));

        RingPath b;
        for (int s = 0; s < n; ++s) {
            const int d = (n - s) % n;
            const int prev = (d - 1 + n) % n;
            const auto up = static_cast<std::size_t>(prev);
            const auto upn = static_cast<std::size_t>(next(prev));
            b.stages.push_back(RingStage{true, d});
            if (prev % 2 == 0) {
                b.hops.push_back(Route{{dm2f[upn]}});
                b.stages.push_back(RingStage{false, next(prev)});
                b.hops.push_back(Route{{mmb[up]}});
                b.stages.push_back(RingStage{false, prev});
                b.hops.push_back(Route{{dm2b[up]}});
            } else {
                b.hops.push_back(Route{{xb[up]}});
                b.stages.push_back(RingStage{false, prev});
                b.hops.push_back(Route{{dm1b[up]}});
            }
        }
        fab->addRing(std::move(b));
    }

    // vmem: each device reaches only its designated memory-node over the
    // two dm links (2 x 25 = 50 GB/s).
    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        VmemPath path;
        path.targetIndex = d;
        path.writeRoutes.push_back(Route{{dm1f[ud], mem[ud]}});
        path.writeRoutes.push_back(Route{{dm2f[ud], mem[ud]}});
        path.readRoutes.push_back(Route{{mem[ud], dm1b[ud]}});
        path.readRoutes.push_back(Route{{mem[ud], dm2b[ud]}});
        fab->setVmemPaths(d, {std::move(path)});
    }
    return fab;
}

std::unique_ptr<Fabric>
buildMcdlaStarAFabric(EventQueue &eq, const FabricConfig &cfg)
{
    if (cfg.numDevices < 2)
        fatal("MC-DLA star-A fabric requires at least two devices");
    auto fab = std::make_unique<Fabric>(eq, "mcdla_star_a");
    const int n = cfg.numDevices;
    const auto N = static_cast<std::size_t>(n);
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    std::vector<Channel *> mem = makeMemoryNodeBuses(*fab, cfg, n);

    // Two direct device rings (gray, dotted).
    std::vector<Channel *> g1f(N), g1b(N), g2f(N), g2b(N);
    // Designated device<->memory links (x2) and M<->M links.
    std::vector<Channel *> dm1f(N), dm1b(N), dm2f(N), dm2b(N);
    std::vector<Channel *> mmf(N), mmb(N);
    // Second M<->M link set: forms the unused memory-only 4th ring.
    std::vector<Channel *> mm2f(N), mm2b(N);

    for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const int di = topo.device(i);
        const int dn = topo.device((i + 1) % n);
        const int mi = topo.memoryNode(i);
        const int mn = topo.memoryNode((i + 1) % n);
        g1f[ui] = &topo.link(di, dn, segName("g1", 0, i, "fwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        g1b[ui] = &topo.link(dn, di, segName("g1", 0, i, "bwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        g2f[ui] = &topo.link(di, dn, segName("g2", 0, i, "fwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        g2b[ui] = &topo.link(dn, di, segName("g2", 0, i, "bwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        dm1f[ui] = &topo.link(di, mi, segName("dm1", 0, i, "d2m"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm1b[ui] = &topo.link(mi, di, segName("dm1", 0, i, "m2d"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm2f[ui] = &topo.link(di, mi, segName("dm2", 0, i, "d2m"),
                              cfg.linkBandwidth, cfg.linkLatency);
        dm2b[ui] = &topo.link(mi, di, segName("dm2", 0, i, "m2d"),
                              cfg.linkBandwidth, cfg.linkLatency);
        mmf[ui] = &topo.link(mi, mn, segName("mm", 0, i, "fwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        mmb[ui] = &topo.link(mn, mi, segName("mm", 0, i, "bwd"),
                             cfg.linkBandwidth, cfg.linkLatency);
        mm2f[ui] = &topo.link(mi, mn, segName("mm2", 0, i, "fwd"),
                              cfg.linkBandwidth, cfg.linkLatency);
        mm2b[ui] = &topo.link(mn, mi, segName("mm2", 0, i, "bwd"),
                              cfg.linkBandwidth, cfg.linkLatency);
    }

    auto add_direct_rings = [&](const std::vector<Channel *> &fwd,
                                const std::vector<Channel *> &rev) {
        RingPath f;
        RingPath b;
        for (int i = 0; i < n; ++i) {
            f.stages.push_back(RingStage{true, i});
            f.hops.push_back(Route{{fwd[static_cast<std::size_t>(i)]}});
            const int m = (n - i) % n;
            const int prev = (m - 1 + n) % n;
            b.stages.push_back(RingStage{true, m});
            b.hops.push_back(Route{{rev[static_cast<std::size_t>(prev)]}});
        }
        fab->addRing(std::move(f));
        fab->addRing(std::move(b));
    };
    add_direct_rings(g1f, g1b);
    add_direct_rings(g2f, g2b);

    // Black ring (24 stages): descending device order, each device hop
    // D_i -> M_i -> M_{i-1} -> D_{i-1} (footnote 1: every memory-node is
    // visited twice around the full traversal).
    {
        RingPath f;
        for (int s = 0; s < n; ++s) {
            const int i = (n - s) % n;          // 0, n-1, n-2, ...
            const int prev = (i - 1 + n) % n;
            const auto ui = static_cast<std::size_t>(i);
            const auto up = static_cast<std::size_t>(prev);
            f.stages.push_back(RingStage{true, i});
            f.hops.push_back(Route{{dm1f[ui]}});
            f.stages.push_back(RingStage{false, i});
            f.hops.push_back(Route{{mmb[up]}});
            f.stages.push_back(RingStage{false, prev});
            f.hops.push_back(Route{{dm1b[up]}});
        }
        fab->addRing(std::move(f));

        // Reverse black ring: ascending, D_j -> M_j -> M_{j+1} -> D_{j+1}.
        RingPath b;
        for (int j = 0; j < n; ++j) {
            const auto uj = static_cast<std::size_t>(j);
            const int jn = (j + 1) % n;
            const auto ujn = static_cast<std::size_t>(jn);
            b.stages.push_back(RingStage{true, j});
            b.hops.push_back(Route{{dm2f[uj]}});
            b.stages.push_back(RingStage{false, j});
            b.hops.push_back(Route{{mmf[uj]}});
            b.stages.push_back(RingStage{false, jn});
            b.hops.push_back(Route{{dm2b[ujn]}});
        }
        fab->addRing(std::move(b));
    }

    for (int d = 0; d < n; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        VmemPath path;
        path.targetIndex = d;
        path.writeRoutes.push_back(Route{{dm1f[ud], mem[ud]}});
        path.writeRoutes.push_back(Route{{dm2f[ud], mem[ud]}});
        path.readRoutes.push_back(Route{{mem[ud], dm1b[ud]}});
        path.readRoutes.push_back(Route{{mem[ud], dm2b[ud]}});
        fab->setVmemPaths(d, {std::move(path)});
    }
    return fab;
}

} // namespace mcdla
