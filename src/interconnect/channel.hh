/**
 * @file
 * Channel: a unidirectional bandwidth server with FIFO queueing.
 *
 * Every physical link direction, memory-node DIMM bus, PCIe lane bundle,
 * and host-socket DRAM interface is one Channel. Transfers submitted to a
 * channel serialize in submission order and occupy it for
 * bytes/bandwidth; delivery fires one propagation latency after the
 * occupancy ends (so back-to-back transfers pipeline through the wire
 * latency). Contention between flows that share a link — MC-DLA's
 * defining modelling requirement, where ring-collective traffic and
 * memory-virtualization DMAs ride the same NVLINK-class channels — falls
 * out of the queueing naturally.
 */

#ifndef MCDLA_INTERCONNECT_CHANNEL_HH
#define MCDLA_INTERCONNECT_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/sim_object.hh"

namespace mcdla
{

/** A unidirectional, FIFO, fixed-bandwidth communication resource. */
class Channel : public SimObject
{
  public:
    /**
     * Delivery callback: SBO, move-only. 24 inline bytes fit the flow
     * layer's chunk-forwarding closure (state pointer, two indices, a
     * byte count) exactly, and the whole Handler in turn fits inside
     * the channel's own xfer_done event without spilling the kernel's
     * inline callback buffer. Larger captures fall back to the heap.
     */
    using Handler = InlineFunction<24>;

    /**
     * @param eq Driving event queue.
     * @param name Instance name.
     * @param bandwidth Bytes per second; must be positive.
     * @param latency Propagation delay added after occupancy.
     */
    Channel(EventQueue &eq, std::string name, double bandwidth,
            Tick latency);

    double bandwidth() const { return _bandwidth; }
    Tick latency() const { return _latency; }

    /**
     * Enqueue a transfer.
     *
     * @param bytes Payload size; must be positive.
     * @param on_delivered Invoked when the payload fully arrives at the
     *                     far end (occupancy end + latency).
     */
    void submit(double bytes, Handler on_delivered);

    /** Total payload bytes delivered so far. */
    double bytesTransferred() const { return _bytesTransferred; }

    /** Total ticks the channel was occupied. */
    Tick busyTicks() const { return _busyTicks; }

    /** Occupied fraction of [0, horizon]. */
    double
    utilization(Tick horizon) const
    {
        return horizon == 0
            ? 0.0
            : static_cast<double>(_busyTicks)
                / static_cast<double>(horizon);
    }

    /** Transfers currently waiting (excludes the in-flight one). */
    std::size_t queueDepth() const { return _queueCount; }

    /** Deepest backlog observed since the last stats reset (occupancy
        pressure: how many transfers were stacked behind the wire). */
    std::size_t peakQueueDepth() const { return _peakQueueDepth; }

    /**
     * Enable peak-bandwidth tracking with the given averaging window
     * (used by host-socket channels for the Figure 12 "max" series).
     */
    void enablePeakTracking(Tick window);

    /** Peak windowed bandwidth observed (bytes/sec); 0 if not tracked. */
    double peakBandwidth() const;

    /** Clear statistics (not queued work). */
    void resetStats() override;

    /**
     * SimCheck: byte conservation. Everything ever submitted is either
     * delivered, on the wire, or still queued — at all times:
     *   enqueued == delivered + in-flight + queued.
     * Panics (SimCheck[channel]) on violation. Runs automatically at
     * every submit and delivery while SimCheck is enabled.
     */
    void simcheckVerifyConservation() const;

  private:
    void startNext();
    void recordWindowBytes(Tick at, double bytes);

    struct Pending
    {
        double bytes = 0.0;
        Handler onDelivered;
        /** Queued behind a busy channel (vs started immediately) —
            recorded as a chan_queue rather than chan_xfer wait. */
        bool waited = false;
        /** CausalCtx at submit time (raw form), so a DMA transfer
            queued behind collective traffic keeps its own subsystem
            attribution when it finally starts. */
        std::uint8_t causalCtx = 0;
    };

    /** FIFO slot @p i positions behind the head. Precondition:
        i < _queueCount. */
    Pending &
    queuedAt(std::size_t i)
    {
        return _queue[(_queueHead + i) & (_queue.size() - 1)];
    }

    const Pending &
    queuedAt(std::size_t i) const
    {
        return _queue[(_queueHead + i) & (_queue.size() - 1)];
    }

    void pushQueue(Pending pending);
    Pending popQueue();

    double _bandwidth;
    Tick _latency;
    bool _busy = false;
    /** Waiting transfers: a power-of-two ring over a flat vector, so
        steady-state submit/deliver cycles recycle slots instead of
        paging deque blocks in and out of the allocator. */
    std::vector<Pending> _queue;
    std::size_t _queueHead = 0;
    std::size_t _queueCount = 0;

    double _bytesTransferred = 0.0;
    Tick _busyTicks = 0;
    std::size_t _peakQueueDepth = 0;

    // Conservation ledger (lifetime totals, independent of the
    // resettable stats above): enqueued = delivered + wire + queued.
    double _conservedEnqueued = 0.0;
    double _conservedDelivered = 0.0;
    double _conservedWire = 0.0;
    double _conservedQueued = 0.0;

    // Peak tracking: bytes accumulated per fixed window.
    Tick _peakWindow = 0;
    Tick _currentWindowStart = 0;
    double _currentWindowBytes = 0.0;
    double _maxWindowBytes = 0.0;
};

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_CHANNEL_HH
