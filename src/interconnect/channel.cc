/**
 * @file
 * Channel implementation.
 */

#include "interconnect/channel.hh"

#include <cmath>

#include "sim/causal.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"

namespace mcdla
{

Channel::Channel(EventQueue &eq, std::string name, double bandwidth,
                 Tick latency)
    : SimObject(eq, std::move(name)), _bandwidth(bandwidth),
      _latency(latency)
{
    if (bandwidth <= 0.0)
        fatal("channel '%s' requires positive bandwidth",
              this->name().c_str());
    stats().scalar("bytes", "payload bytes delivered");
    stats().scalar("transfers", "transfer count");
    stats().formula("busy_seconds",
                    [this] { return ticksToSeconds(_busyTicks); },
                    "occupied time");
}

void
Channel::pushQueue(Pending pending)
{
    if (_queueCount == _queue.size()) {
        // Full (or never allocated): regrow to the next power of two,
        // replaying the ring in FIFO order into the fresh storage.
        std::vector<Pending> grown(
            std::max<std::size_t>(8, 2 * _queue.size()));
        for (std::size_t i = 0; i < _queueCount; ++i)
            grown[i] = std::move(queuedAt(i));
        _queue.swap(grown);
        _queueHead = 0;
    }
    _queue[(_queueHead + _queueCount) & (_queue.size() - 1)] =
        std::move(pending);
    ++_queueCount;
}

Channel::Pending
Channel::popQueue()
{
    Pending req = std::move(_queue[_queueHead]);
    _queueHead = (_queueHead + 1) & (_queue.size() - 1);
    --_queueCount;
    return req;
}

void
Channel::submit(double bytes, Handler on_delivered)
{
    if (bytes <= 0.0)
        panic("channel '%s': non-positive transfer size", name().c_str());
    _conservedEnqueued += bytes;
    _conservedQueued += bytes;
    Pending pending{bytes, std::move(on_delivered), _busy, 0};
    if (const CausalRecorder *rec = eventQueue().causalRecorder())
        pending.causalCtx = rec->currentCtxRaw();
    pushQueue(std::move(pending));
    if (simcheck::enabled())
        simcheckVerifyConservation();
    // Only count genuine waiters: on an idle channel the transfer
    // starts immediately, so an uncontended channel reports 0.
    if (_busy)
        _peakQueueDepth = std::max(_peakQueueDepth, _queueCount);
    else
        startNext();
}

void
Channel::startNext()
{
    if (_queueCount == 0) {
        _busy = false;
        return;
    }
    _busy = true;
    Pending req = popQueue();
    _conservedQueued -= req.bytes;
    _conservedWire += req.bytes;

    const Tick occupancy = transferTicks(req.bytes, _bandwidth);
    _busyTicks += occupancy;
    _bytesTransferred += req.bytes;
    stats().scalar("bytes") += req.bytes;
    ++stats().scalar("transfers");

    const double bytes = req.bytes;
    Handler handler = std::move(req.onDelivered);
    // Causal tagging: the occupancy edge is chan_xfer (idle start) or
    // chan_queue (started after queueing), in the subsystem context
    // the transfer was submitted under; the post-occupancy delivery
    // hop is a wire edge inheriting its parent's context.
    CausalScope occupancy_scope(
        eventQueue().causalRecorder(),
        req.waited ? WaitKind::ChanQueue : WaitKind::ChanXfer,
        CausalRecorder::ctxFromRaw(req.causalCtx), name());
    after(occupancy,
          [this, bytes, handler = std::move(handler)]() mutable {
              _conservedWire -= bytes;
              _conservedDelivered += bytes;
              if (simcheck::enabled())
                  simcheckVerifyConservation();
              recordWindowBytes(now(), bytes);
              // Wire latency delays delivery but not the next transfer.
              if (handler) {
                  if (_latency == 0) {
                      handler();
                  } else {
                      CausalScope wire_scope(
                          eventQueue().causalRecorder(),
                          WaitKind::Wire, name());
                      eventQueue().scheduleAfter(
                          _latency, std::move(handler),
                          EventLabel::dotted(name(), "deliver"));
                  }
              }
              startNext();
          },
          "xfer_done");
}

void
Channel::enablePeakTracking(Tick window)
{
    if (window == 0)
        fatal("channel '%s': peak-tracking window must be positive",
              name().c_str());
    _peakWindow = window;
    _currentWindowStart = now();
    _currentWindowBytes = 0.0;
    _maxWindowBytes = 0.0;
}

void
Channel::recordWindowBytes(Tick at, double bytes)
{
    if (_peakWindow == 0)
        return;
    if (at >= _currentWindowStart + _peakWindow) {
        _maxWindowBytes = std::max(_maxWindowBytes, _currentWindowBytes);
        // Jump to the window containing `at`.
        const Tick windows_ahead = (at - _currentWindowStart) / _peakWindow;
        _currentWindowStart += windows_ahead * _peakWindow;
        _currentWindowBytes = 0.0;
    }
    _currentWindowBytes += bytes;
}

double
Channel::peakBandwidth() const
{
    if (_peakWindow == 0)
        return 0.0;
    const double peak = std::max(_maxWindowBytes, _currentWindowBytes);
    return peak / ticksToSeconds(_peakWindow);
}

void
Channel::simcheckVerifyConservation() const
{
    // Recompute the queued side from the queue itself so a drifted
    // incremental counter cannot mask a lost transfer.
    double queued = 0.0;
    for (std::size_t i = 0; i < _queueCount; ++i)
        queued += queuedAt(i).bytes;
    const double eps =
        1e-6 * std::max(1.0, _conservedEnqueued); // fp rounding slack
    if (std::abs(queued - _conservedQueued) > eps)
        simcheck::fail("channel", now(),
                       "'%s' queue holds %.0f bytes but the ledger "
                       "says %.0f",
                       name().c_str(), queued, _conservedQueued);
    const double accounted =
        _conservedDelivered + _conservedWire + queued;
    if (std::abs(_conservedEnqueued - accounted) > eps)
        simcheck::fail("channel", now(),
                       "'%s' leaks bytes: enqueued %.0f != delivered "
                       "%.0f + in-flight %.0f + queued %.0f",
                       name().c_str(), _conservedEnqueued,
                       _conservedDelivered, _conservedWire, queued);
    if (_conservedWire < -eps || _conservedQueued < -eps)
        simcheck::fail("channel", now(),
                       "'%s' negative occupancy: in-flight %.0f, "
                       "queued %.0f",
                       name().c_str(), _conservedWire,
                       _conservedQueued);
}

void
Channel::resetStats()
{
    SimObject::resetStats();
    _bytesTransferred = 0.0;
    _busyTicks = 0;
    _peakQueueDepth = 0;
    _currentWindowStart = now();
    _currentWindowBytes = 0.0;
    _maxWindowBytes = 0.0;
}

} // namespace mcdla
