/**
 * @file
 * Shared configuration for fabric builders.
 */

#ifndef MCDLA_INTERCONNECT_FABRIC_CONFIG_HH
#define MCDLA_INTERCONNECT_FABRIC_CONFIG_HH

#include "sim/units.hh"

namespace mcdla
{

/**
 * Interconnect wiring selector. Design keeps the system design's
 * legacy fabric (the paper's figures); the rest are generic generators
 * over the Topology graph layer (see interconnect/topology.hh),
 * opening the interconnect itself as a sweep axis: the same
 * memory-centric node set wired as a ring, a fully-connected switch, a
 * 2-D mesh/torus, or a two-level fat-tree.
 */
enum class TopologyKind
{
    Design,     ///< The system design's own wiring (default).
    Ring,       ///< Fig 7(c) alternating device/memory ring.
    FullSwitch, ///< Crossbar planes seating every node (Fig 15).
    Mesh2d,     ///< 2-D device mesh, memory-node per device.
    Torus2d,    ///< 2-D device torus (mesh + wraparound links).
    FatTree,    ///< Two-level fat-tree of switches over all nodes.
};

/** Parameters shared by every fabric builder. */
struct FabricConfig
{
    /** Device-node count (paper: 8). Must be even and >= 2 for rings. */
    int numDevices = 8;

    /** Bidirectional device-side rings (N/2 with N=6 links). */
    int numRings = 3;

    /// @name High-bandwidth link (NVLINK-class)
    /// @{
    double linkBandwidth = 25.0 * kGB; ///< Per direction (Table II: B).
    Tick linkLatency = 500 * ticksPerNs;
    /// @}

    /// @name Host interface (PCIe)
    /// @{
    double pcieRawBandwidth = 16.0 * kGB; ///< gen3 x16 per direction.
    double pcieEfficiency = 0.8125;       ///< Protocol overhead -> 13 GB/s.
    Tick pcieLatency = 1300 * ticksPerNs;
    /// @}

    /// @name Host sockets
    /// @{
    int numSockets = 2;
    /**
     * Socket DRAM bandwidth cap (bytes/s). 0 means unconstrained — the
     * paper's conservative assumption — in which case traffic is tracked
     * but never throttled.
     */
    double socketBandwidth = 0.0;
    Tick socketLatency = 100 * ticksPerNs;
    /// @}

    /// @name Memory-node (Table II)
    /// @{
    double memNodeBandwidth = 256.0 * kGB;
    Tick memNodeLatency = 100 * ticksPerNs;
    /// @}

    /** Averaging window for peak host-bandwidth tracking (Fig 12). */
    Tick peakWindow = 100 * ticksPerUs;

    /// @name Device-side switch (Fig 15 scale-out plane)
    /// @{
    /**
     * Ports per switch plane (NVSwitch: 18). One plane serves link r of
     * every node, so a plane must have at least numDevices + numMemNodes
     * ports.
     */
    int switchRadix = 18;
    /** Store-and-forward latency through a switch plane. */
    Tick switchLatency = 300 * ticksPerNs;
    /// @}

    /**
     * Interconnect wiring override (--topology). Design uses the
     * system design's legacy fabric; the generic kinds rewire the
     * memory-centric node set through the Topology generators.
     */
    TopologyKind topology = TopologyKind::Design;

    /** Effective PCIe data bandwidth per direction. */
    double pcieBandwidth() const { return pcieRawBandwidth
                                       * pcieEfficiency; }

    /**
     * Check configuration sanity — positive bandwidths and node/link
     * counts, non-negative latencies, a (0, 1] PCIe efficiency —
     * mirroring MemoryNodeConfig::validate(). Called from System
     * construction; fatal() on violation.
     */
    void validate() const;
};

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_FABRIC_CONFIG_HH
