/**
 * @file
 * Fabric query implementation (point-to-point route construction).
 */

#include "interconnect/fabric.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

RingPath
restrictRingToDevices(const RingPath &ring,
                      const std::vector<int> &devices)
{
    auto isMember = [&devices](const RingStage &stage) {
        return stage.isDevice
            && std::find(devices.begin(), devices.end(), stage.index)
            != devices.end();
    };

    int members = 0;
    for (const RingStage &stage : ring.stages)
        if (isMember(stage))
            ++members;
    if (members < 2 || ring.hops.size() != ring.stages.size())
        return RingPath{};

    // Kept stages: member devices plus every memory-node position. A
    // dropped device stage's outgoing hop is folded into the previous
    // kept stage's route, so the restricted ring walks the same
    // physical channels as the original.
    RingPath out;
    std::vector<std::size_t> kept;
    for (std::size_t i = 0; i < ring.stages.size(); ++i)
        if (!ring.stages[i].isDevice || isMember(ring.stages[i]))
            kept.push_back(i);

    for (std::size_t k = 0; k < kept.size(); ++k) {
        out.stages.push_back(ring.stages[kept[k]]);
        Route merged;
        const std::size_t next =
            kept[(k + 1) % kept.size()];
        for (std::size_t pos = kept[k]; pos != next;
             pos = (pos + 1) % ring.stages.size()) {
            const Route &hop = ring.hops[pos];
            merged.hops.insert(merged.hops.end(), hop.hops.begin(),
                               hop.hops.end());
        }
        out.hops.push_back(std::move(merged));
    }
    return out;
}

const Router &
Fabric::router() const
{
    if (_topology.empty())
        fatal("fabric '%s' has no topology graph; routing tables "
              "require a topology-aware builder", _name.c_str());
    if (!_router)
        _router = std::make_unique<Router>(_topology);
    return *_router;
}

Route
Fabric::deviceRoute(int src, int dst) const
{
    // The Router's shortest-path tables are authoritative whenever
    // they beat the ring walk — crossbar shortcuts on switched
    // fabrics, grid paths on meshes — or when no ring connects the
    // pair. Equal-cost ties keep the ring walk's choice (first ring
    // in fabric order): among same-length routes the pick is
    // arbitrary, and holding the legacy one keeps every pre-Topology
    // simulation bit-reproducible (tests/test_topology.cc pins both
    // properties).
    const auto key = std::make_pair(src, dst);
    auto cached = _routeCache.find(key);
    if (cached != _routeCache.end())
        return cached->second;

    Route walk = ringWalkRoute(src, dst);
    Route best;
    if (_topology.empty()) {
        best = std::move(walk);
    } else {
        Route routed = router().route(src, dst);
        if (routed.valid()
            && (!walk.valid()
                || routed.hops.size() < walk.hops.size()))
            best = std::move(routed);
        else
            best = std::move(walk);
    }
    return _routeCache.emplace(key, std::move(best)).first->second;
}

int
Fabric::deviceHopCount(int src, int dst) const
{
    // The BFS distance is never beaten by a ring walk (rings are made
    // of routable channels), so the router's table is exact here.
    if (!_topology.empty())
        return router().hopCount(src, dst);
    const Route walk = ringWalkRoute(src, dst);
    if (src == dst)
        return 0;
    return walk.valid() ? static_cast<int>(walk.hops.size()) : -1;
}

Route
Fabric::ringWalkRoute(int src, int dst) const
{
    Route best;
    std::size_t best_len = 0;
    if (src == dst)
        return best;
    for (const RingPath &ring : _rings) {
        const int start = ring.stageOfDevice(src);
        if (start < 0)
            continue;
        Route walk;
        bool found = false;
        int pos = start;
        for (int step = 0; step < ring.stageCount(); ++step) {
            const Route &hop =
                ring.hops[static_cast<std::size_t>(pos)];
            walk.hops.insert(walk.hops.end(), hop.hops.begin(),
                             hop.hops.end());
            pos = (pos + 1) % ring.stageCount();
            const RingStage &stage =
                ring.stages[static_cast<std::size_t>(pos)];
            if (stage.isDevice && stage.index == dst) {
                found = true;
                break;
            }
        }
        if (found && (!best.valid() || walk.hops.size() < best_len)) {
            best_len = walk.hops.size();
            best = std::move(walk);
        }
    }
    return best;
}

} // namespace mcdla
