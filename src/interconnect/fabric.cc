/**
 * @file
 * Fabric query implementation (point-to-point route construction).
 */

#include "interconnect/fabric.hh"

namespace mcdla
{

Route
Fabric::deviceRoute(int src, int dst) const
{
    Route best;
    std::size_t best_len = 0;
    if (src == dst)
        return best;
    for (const RingPath &ring : _rings) {
        const int start = ring.stageOfDevice(src);
        if (start < 0)
            continue;
        Route walk;
        bool found = false;
        int pos = start;
        for (int step = 0; step < ring.stageCount(); ++step) {
            const Route &hop =
                ring.hops[static_cast<std::size_t>(pos)];
            walk.hops.insert(walk.hops.end(), hop.hops.begin(),
                             hop.hops.end());
            pos = (pos + 1) % ring.stageCount();
            const RingStage &stage =
                ring.stages[static_cast<std::size_t>(pos)];
            if (stage.isDevice && stage.index == dst) {
                found = true;
                break;
            }
        }
        if (found && (!best.valid() || walk.hops.size() < best_len)) {
            best_len = walk.hops.size();
            best = std::move(walk);
        }
    }
    return best;
}

} // namespace mcdla
