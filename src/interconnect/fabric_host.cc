/**
 * @file
 * Host-attached fabric builders: DC-DLA (Fig 5) and HC-DLA.
 *
 * Both are expressed as Topology generators: every channel is created
 * through the fabric's graph, so the Router and the collective
 * algorithms see the same wiring the simulation runs on. Channel
 * names, parameters, and creation order are unchanged from the
 * original hand-built versions — the channel graph is byte-identical.
 * PCIe lanes and socket DRAM interfaces are recorded non-routable:
 * device-to-device routes never detour through the host.
 */

#include <string>

#include "interconnect/fabrics.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Socket index serving a device. */
int
socketOf(int device, int num_devices, int num_sockets)
{
    return device * num_sockets / num_devices;
}

/**
 * Create one DRAM channel per host socket with peak tracking enabled.
 * Each socket is a Host node; its DRAM interface is recorded as a
 * non-routable self-link resource.
 *
 * @param socket_bw Socket DRAM service rate. The paper's conservative
 *        "no host interference" assumption corresponds to passing the
 *        saturation rate of the attached device links, so the socket can
 *        never throttle below what the devices can pull.
 * @return Channel pointers, one per socket.
 */
std::vector<Channel *>
makeSockets(Fabric &fab, const FabricConfig &cfg, double socket_bw)
{
    Topology &topo = fab.topology();
    std::vector<Channel *> sockets;
    for (int s = 0; s < cfg.numSockets; ++s) {
        const int host = topo.hostNode(s);
        Channel &ch = topo.link(
            host, host, "socket" + std::to_string(s) + ".dram",
            socket_bw, cfg.socketLatency, /*routable=*/false);
        ch.enablePeakTracking(cfg.peakWindow);
        fab.registerSocketChannel(&ch);
        sockets.push_back(&ch);
    }
    return sockets;
}

/** Build the numRings parallel bidirectional device rings of DC-DLA. */
void
addDeviceRings(Fabric &fab, const FabricConfig &cfg)
{
    const int n = cfg.numDevices;
    if (n < 2)
        return;
    Topology &topo = fab.topology();
    for (int r = 0; r < cfg.numRings; ++r) {
        std::vector<Channel *> fwd(static_cast<std::size_t>(n));
        std::vector<Channel *> bwd(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const int j = (i + 1) % n;
            const std::string base = "r" + std::to_string(r) + ".d"
                + std::to_string(i) + (i < j ? "-d" : "-d")
                + std::to_string(j);
            fwd[static_cast<std::size_t>(i)] = &topo.link(
                topo.device(i), topo.device(j), base + ".fwd",
                cfg.linkBandwidth, cfg.linkLatency);
            bwd[static_cast<std::size_t>(i)] = &topo.link(
                topo.device(j), topo.device(i), base + ".bwd",
                cfg.linkBandwidth, cfg.linkLatency);
        }
        RingPath f;
        RingPath b;
        for (int i = 0; i < n; ++i) {
            f.stages.push_back(RingStage{true, i});
            f.hops.push_back(Route{{fwd[static_cast<std::size_t>(i)]}});
            // Reverse ring: 0, n-1, n-2, ..., 1.
            const int m = (n - i) % n;
            const int prev = (m - 1 + n) % n;
            b.stages.push_back(RingStage{true, m});
            b.hops.push_back(Route{{bwd[static_cast<std::size_t>(prev)]}});
        }
        fab.addRing(std::move(f));
        fab.addRing(std::move(b));
    }
}

} // anonymous namespace

std::unique_ptr<Fabric>
buildDcdlaFabric(EventQueue &eq, const FabricConfig &cfg,
                 bool with_host_vmem)
{
    if (cfg.numDevices < 1)
        fatal("DC-DLA fabric requires at least one device");
    auto fab = std::make_unique<Fabric>(eq, "dcdla");
    Topology &topo = fab->topology();
    for (int d = 0; d < cfg.numDevices; ++d)
        topo.device(d);

    addDeviceRings(*fab, cfg);

    const int devices_per_socket =
        (cfg.numDevices + cfg.numSockets - 1) / cfg.numSockets;
    const double socket_bw = cfg.socketBandwidth > 0.0
        ? cfg.socketBandwidth
        : static_cast<double>(devices_per_socket) * cfg.pcieBandwidth();
    std::vector<Channel *> sockets = makeSockets(*fab, cfg, socket_bw);

    for (int d = 0; d < cfg.numDevices; ++d) {
        const int host = topo.hostNode(
            socketOf(d, cfg.numDevices, cfg.numSockets));
        Channel &up = topo.link(
            topo.device(d), host, "d" + std::to_string(d) + ".pcie.up",
            cfg.pcieBandwidth(), cfg.pcieLatency, /*routable=*/false);
        Channel &down = topo.link(
            host, topo.device(d),
            "d" + std::to_string(d) + ".pcie.down", cfg.pcieBandwidth(),
            cfg.pcieLatency, /*routable=*/false);
        if (!with_host_vmem)
            continue;
        Channel *sock = sockets[static_cast<std::size_t>(
            socketOf(d, cfg.numDevices, cfg.numSockets))];
        VmemPath path;
        path.targetIndex = -1;
        path.writeRoutes.push_back(Route{{&up, sock}});
        path.readRoutes.push_back(Route{{sock, &down}});
        fab->setVmemPaths(d, {std::move(path)});
    }
    return fab;
}

std::unique_ptr<Fabric>
buildHcdlaFabric(EventQueue &eq, const FabricConfig &cfg)
{
    if (cfg.numDevices < 2)
        fatal("HC-DLA fabric requires at least two devices");
    if (cfg.numDevices % 2 != 0)
        fatal("HC-DLA fabric requires an even device count");
    auto fab = std::make_unique<Fabric>(eq, "hcdla");
    const int n = cfg.numDevices;
    Topology &topo = fab->topology();
    for (int d = 0; d < n; ++d)
        topo.device(d);

    // Half the links (numRings of them) go to the host; the device side
    // keeps 12 links for n=8: double links on even ring edges, single on
    // odd edges.
    std::vector<Channel *> fa(static_cast<std::size_t>(n));
    std::vector<Channel *> fb(static_cast<std::size_t>(n));
    std::vector<Channel *> ba(static_cast<std::size_t>(n));
    std::vector<Channel *> bb(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const int j = (i + 1) % n;
        const std::string base = "ring.d" + std::to_string(i) + "-d"
            + std::to_string(j);
        fa[static_cast<std::size_t>(i)] = &topo.link(
            topo.device(i), topo.device(j), base + ".a.fwd",
            cfg.linkBandwidth, cfg.linkLatency);
        ba[static_cast<std::size_t>(i)] = &topo.link(
            topo.device(j), topo.device(i), base + ".a.bwd",
            cfg.linkBandwidth, cfg.linkLatency);
        if (i % 2 == 0) {
            fb[static_cast<std::size_t>(i)] = &topo.link(
                topo.device(i), topo.device(j), base + ".b.fwd",
                cfg.linkBandwidth, cfg.linkLatency);
            bb[static_cast<std::size_t>(i)] = &topo.link(
                topo.device(j), topo.device(i), base + ".b.bwd",
                cfg.linkBandwidth, cfg.linkLatency);
        } else {
            // Odd edges have a single physical link; the second logical
            // ring multiplexes onto it (no extra graph edge).
            fb[static_cast<std::size_t>(i)] =
                fa[static_cast<std::size_t>(i)];
            bb[static_cast<std::size_t>(i)] =
                ba[static_cast<std::size_t>(i)];
        }
    }

    auto add_rings = [&](const std::vector<Channel *> &fwd,
                         const std::vector<Channel *> &rev) {
        RingPath f;
        RingPath b;
        for (int i = 0; i < n; ++i) {
            f.stages.push_back(RingStage{true, i});
            f.hops.push_back(Route{{fwd[static_cast<std::size_t>(i)]}});
            const int m = (n - i) % n;
            const int prev = (m - 1 + n) % n;
            b.stages.push_back(RingStage{true, m});
            b.hops.push_back(Route{{rev[static_cast<std::size_t>(prev)]}});
        }
        fab->addRing(std::move(f));
        fab->addRing(std::move(b));
    };
    add_rings(fa, ba);
    add_rings(fb, bb);

    // Host attachment: numRings (=3) links per device to its socket.
    const int devices_per_socket =
        (n + cfg.numSockets - 1) / cfg.numSockets;
    const double socket_bw = cfg.socketBandwidth > 0.0
        ? cfg.socketBandwidth
        : static_cast<double>(devices_per_socket)
            * static_cast<double>(cfg.numRings) * cfg.linkBandwidth;
    std::vector<Channel *> sockets = makeSockets(*fab, cfg, socket_bw);

    for (int d = 0; d < n; ++d) {
        const int s = socketOf(d, n, cfg.numSockets);
        Channel *sock = sockets[static_cast<std::size_t>(s)];
        const int host = topo.hostNode(s);
        VmemPath path;
        path.targetIndex = -1;
        for (int l = 0; l < cfg.numRings; ++l) {
            Channel &up = topo.link(
                topo.device(d), host,
                "d" + std::to_string(d) + ".host" + std::to_string(l)
                    + ".up",
                cfg.linkBandwidth, cfg.linkLatency, /*routable=*/false);
            Channel &down = topo.link(
                host, topo.device(d),
                "d" + std::to_string(d) + ".host" + std::to_string(l)
                    + ".down",
                cfg.linkBandwidth, cfg.linkLatency, /*routable=*/false);
            path.writeRoutes.push_back(Route{{&up, sock}});
            path.readRoutes.push_back(Route{{sock, &down}});
        }
        fab->setVmemPaths(d, {std::move(path)});
    }
    return fab;
}

} // namespace mcdla
