/**
 * @file
 * Fabric builders for every system design point in the evaluation.
 *
 * Hop-count properties asserted by the test suite (paper Section III-B):
 *  - DC-DLA (Fig 5): 3 bidirectional device rings, 8 physical hops each.
 *  - MC-DLA star-A (Fig 7a): device rings of 8/8 hops plus a 24-hop ring
 *    visiting every memory-node twice.
 *  - MC-DLA star (Fig 7b, the evaluated MC-DLA(S)): rings of 8/12/20 hops.
 *  - MC-DLA ring (Fig 7c): 3 rings of 16 hops (devices and memory-nodes
 *    alternate).
 */

#ifndef MCDLA_INTERCONNECT_FABRICS_HH
#define MCDLA_INTERCONNECT_FABRICS_HH

#include <memory>

#include "interconnect/fabric.hh"
#include "interconnect/fabric_config.hh"

namespace mcdla
{

/**
 * DC-DLA: DGX-style cube-mesh flattened into numRings bidirectional
 * device rings; memory virtualization over per-device PCIe to the host
 * sockets.
 *
 * @param with_host_vmem When false (the DC-DLA(O) oracle), no vmem paths
 *                       are published.
 */
std::unique_ptr<Fabric> buildDcdlaFabric(EventQueue &eq,
                                         const FabricConfig &cfg,
                                         bool with_host_vmem = true);

/**
 * HC-DLA: half of each device's links (3) connect to its host socket for
 * memory virtualization; the device-side ring budget drops to 12 links
 * (alternating double/single hops), so one full-rate ring plus one
 * partially link-sharing ring per direction remain.
 *
 * The socket bandwidth defaults to the paper's overprovisioned
 * (numDevices/numSockets) * 3 * linkBandwidth unless cfg.socketBandwidth
 * is non-zero.
 */
std::unique_ptr<Fabric> buildHcdlaFabric(EventQueue &eq,
                                         const FabricConfig &cfg);

/**
 * MC-DLA ring (Fig 7c / Fig 8): numRings bidirectional 2*numDevices-node
 * rings alternating D and M. Each device reaches its left and right
 * memory-nodes with numRings links each; vmem paths carry both targets so
 * the page-allocation policy (LOCAL vs BW_AWARE) picks the split.
 */
std::unique_ptr<Fabric> buildMcdlaRingFabric(EventQueue &eq,
                                             const FabricConfig &cfg);

/** MC-DLA star (Fig 7b): the evaluated MC-DLA(S) design point. */
std::unique_ptr<Fabric> buildMcdlaStarFabric(EventQueue &eq,
                                             const FabricConfig &cfg);

/** MC-DLA star-A (Fig 7a): the naive derivative design (ablations). */
std::unique_ptr<Fabric> buildMcdlaStarAFabric(EventQueue &eq,
                                              const FabricConfig &cfg);

/**
 * Switched MC-DLA (Fig 15 / Section VI): every device- and memory-node
 * link lands on an NVSwitch-class switch plane (one plane per link
 * index, the DGX-2 pattern), which lets the node count scale beyond
 * the fixed-ring designs. The logical rings and vmem neighbor
 * assignments match the Fig 7(c) design; each ring hop traverses a
 * node-to-switch and a switch-to-node channel.
 *
 * Fatal if a plane's radix cannot seat every node.
 */
std::unique_ptr<Fabric> buildMcdlaSwitchFabric(EventQueue &eq,
                                               const FabricConfig &cfg);

/**
 * Create @p count memory-node DIMM-bus channels ("m<i>.dimms"):
 * non-routable self-links on the MemoryNode vertices, registered with
 * the fabric for the Figure 12-style accounting. Shared by every
 * memory-centric builder so the bus naming/routability convention
 * cannot diverge between the legacy fabrics and the generic
 * topologies.
 */
std::vector<Channel *> makeMemoryNodeBuses(Fabric &fab,
                                           const FabricConfig &cfg,
                                           int count);

/// @name Generic topology generators (topology_gen.cc)
/// @{

/**
 * 2-D device mesh (optionally a torus): devices at grid points of the
 * most-square rows x cols factorization of numDevices, one channel
 * pair per grid edge, and a dedicated memory-node per device on the
 * two links the grid does not consume. Collective rings are the two
 * serpentine traversals of the grid; ring hops between non-adjacent
 * devices (the closing edge of a mesh) store-and-forward through the
 * grid on Router shortest paths.
 *
 * @param wrap Adds wraparound links per row/column (torus) when the
 *             dimension is >= 3.
 */
std::unique_ptr<Fabric> buildMesh2dFabric(EventQueue &eq,
                                          const FabricConfig &cfg,
                                          bool wrap);

/**
 * Two-level fat-tree over all device- and memory-nodes: leaf switches
 * seat switchRadix/2 nodes each (devices and their memory-nodes in
 * adjacent slots), and every leaf has one uplink pair to each of the
 * switchRadix/2 spine switches. Fatal when the radix cannot seat the
 * node count (leaves > radix).
 */
std::unique_ptr<Fabric> buildFatTreeFabric(EventQueue &eq,
                                           const FabricConfig &cfg);

/**
 * Build the fabric of @p kind: the generic generators above, or the
 * Fig 7(c)/Fig 15 memory-centric designs for Ring/FullSwitch. Fatal
 * for TopologyKind::Design — the caller resolves that to the system
 * design's own builder.
 */
std::unique_ptr<Fabric> buildTopologyFabric(EventQueue &eq,
                                            const FabricConfig &cfg,
                                            TopologyKind kind);

/// @}

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_FABRICS_HH
