/**
 * @file
 * Topology: the graph underneath a Fabric.
 *
 * A Topology records the interconnect of one system as typed nodes
 * (device, memory-node, switch, host socket) and directed links, where
 * every link owns the Channel that simulates it. Fabric builders
 * construct their channels *through* the topology, so the graph and the
 * simulated channel set can never drift apart, and generic graph
 * machinery — the Router's shortest-path/ECMP tables, collective
 * tree/sub-ring extraction, cluster placement hop costs — works on any
 * wiring, not just the hand-enumerated rings of the paper's figures.
 *
 * Links default to "routable" (eligible for device-to-device routing).
 * Memory-virtualization-only resources — PCIe lanes, host-socket DRAM
 * interfaces, DIMM buses — are recorded non-routable so that a
 * point-to-point route can never silently detour through the host, which
 * the fixed-function designs of the paper cannot do.
 *
 * Generators for abstract wirings (2-D mesh, torus, two-level
 * fat-tree) live in topology_gen.cc; the paper's fabrics are generated
 * by the builders in fabrics.hh on top of the same API.
 */

#ifndef MCDLA_INTERCONNECT_TOPOLOGY_HH
#define MCDLA_INTERCONNECT_TOPOLOGY_HH

#include <map>
#include <string>
#include <vector>

#include "interconnect/channel.hh"
#include "interconnect/fabric_config.hh"

namespace mcdla
{

class Fabric;

/// @name TopologyKind round-trips (CLI vocabulary)
/// @{

/** Human name of a topology kind ("2d-mesh", ...). */
const char *topologyKindName(TopologyKind kind);

/** Canonical CLI token ("design", "ring", "mesh2d", ...). */
const char *topologyKindToken(TopologyKind kind);

/** Parse a topology token; fatal if unknown. */
TopologyKind parseTopologyKind(const std::string &name);

/** Every kind the parser accepts. */
const std::vector<TopologyKind> &allTopologyKinds();

/** Comma-separated accepted tokens (help text). */
const std::string &topologyKindTokenList();

/// @}

/** Node type in the interconnect graph. */
enum class NodeKind
{
    Device,     ///< DLA device-node (compute + HBM).
    MemoryNode, ///< Disaggregated memory-node (protocol engine + DIMMs).
    Switch,     ///< Crossbar switch (scale-out planes, fat-tree levels).
    Host,       ///< Host-socket attachment point (PCIe designs).
};

/** Short printable tag ("D", "M", "S", "H"). */
const char *nodeKindTag(NodeKind kind);

/** One vertex of the interconnect graph. */
struct TopoNode
{
    NodeKind kind = NodeKind::Device;
    int index = 0; ///< Index within its kind (device 3, switch 1, ...).
};

/** One directed edge; owns-by-reference the channel simulating it. */
struct TopoLink
{
    int src = -1;
    int dst = -1;
    Channel *channel = nullptr;
    /** Eligible for device-to-device routing (Router BFS). */
    bool routable = true;
};

/**
 * The interconnect graph of one Fabric.
 *
 * Nodes and links are created in builder order; that order is part of
 * the contract — the Router's deterministic tie-breaking follows link
 * insertion order, which reproduces the legacy ring-walk route choice
 * on the paper's fabrics (asserted by tests/test_topology.cc).
 */
class Topology
{
  public:
    explicit Topology(Fabric &fabric) : _fabric(fabric) {}

    /** Node id of (kind, index), creating the node if absent. */
    int node(NodeKind kind, int index);

    /** Node id of (kind, index), or -1 when absent. */
    int findNode(NodeKind kind, int index) const;

    /** Convenience create-if-absent accessors. */
    int device(int index) { return node(NodeKind::Device, index); }
    int memoryNode(int index)
    {
        return node(NodeKind::MemoryNode, index);
    }
    int switchNode(int index) { return node(NodeKind::Switch, index); }
    int hostNode(int index) { return node(NodeKind::Host, index); }

    /**
     * Create a channel through the owning fabric and record it as a
     * directed link @p src -> @p dst.
     *
     * @param routable False for memory-virtualization-only resources
     *        (PCIe, sockets, DIMM buses): excluded from Router paths.
     */
    Channel &link(int src, int dst, const std::string &name,
                  double bandwidth, Tick latency, bool routable = true);

    /**
     * Record a directed link over a channel that already exists —
     * the primitive link() builds on. Useful for wiring a channel
     * created outside the topology into the graph; note that a
     * physical link multiplexing several logical roles (HC-DLA's
     * shared odd-edge channels) needs no second edge, since the
     * endpoints and channel are already recorded.
     */
    void linkExisting(int src, int dst, Channel *channel,
                      bool routable = true);

    /// @name Queries
    /// @{
    bool empty() const { return _nodes.empty(); }
    std::size_t nodeCount() const { return _nodes.size(); }
    const TopoNode &nodeInfo(int id) const
    {
        return _nodes.at(static_cast<std::size_t>(id));
    }

    /** Number of nodes of @p kind. */
    int count(NodeKind kind) const;

    const std::vector<TopoLink> &links() const { return _links; }

    /** Link indices leaving @p node, in insertion order. */
    const std::vector<int> &outLinks(int node) const;

    /** Printable node name ("D3", "S0", ...). */
    std::string nodeName(int id) const;
    /// @}

  private:
    Fabric &_fabric;
    std::vector<TopoNode> _nodes;
    std::vector<TopoLink> _links;
    std::map<std::pair<int, int>, int> _byKindIndex;
    std::vector<std::vector<int>> _outLinks;
};

} // namespace mcdla

#endif // MCDLA_INTERCONNECT_TOPOLOGY_HH
