/**
 * @file
 * DeviceAddressSpace implementation.
 */

#include "memory/address_map.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace mcdla
{

const char *
pagePolicyName(PagePolicy policy)
{
    switch (policy) {
      case PagePolicy::Local: return "LOCAL";
      case PagePolicy::BwAware: return "BW_AWARE";
    }
    return "unknown";
}

DeviceAddressSpace::DeviceAddressSpace(std::string name,
                                       std::uint64_t local_capacity,
                                       std::vector<RemoteRegion> regions,
                                       std::uint64_t page_bytes)
    : _name(std::move(name)), _localCapacity(local_capacity),
      _pageBytes(page_bytes), _regions(std::move(regions)),
      _regionUsed(_regions.size(), 0)
{
    if (_pageBytes == 0)
        fatal("address space '%s': page size must be positive",
              _name.c_str());
}

std::uint64_t
DeviceAddressSpace::remoteCapacity() const
{
    std::uint64_t total = 0;
    for (const RemoteRegion &r : _regions)
        total += r.capacity;
    return total;
}

std::uint64_t
DeviceAddressSpace::remoteUsed() const
{
    return std::accumulate(_regionUsed.begin(), _regionUsed.end(),
                           std::uint64_t{0});
}

const RemoteRegion &
DeviceAddressSpace::region(std::size_t i) const
{
    if (i >= _regions.size())
        panic("address space '%s': region %zu out of range",
              _name.c_str(), i);
    return _regions[i];
}

void
DeviceAddressSpace::uncapRemoteRegions(std::uint64_t per_region_bytes)
{
    for (RemoteRegion &r : _regions)
        r.capacity = std::max(r.capacity, per_region_bytes);
}

std::uint64_t
DeviceAddressSpace::roundToPages(std::uint64_t bytes) const
{
    return (bytes + _pageBytes - 1) / _pageBytes * _pageBytes;
}

Placement
DeviceAddressSpace::mallocLocal(std::uint64_t bytes)
{
    const std::uint64_t rounded = roundToPages(bytes);
    if (_localUsed + rounded > _localCapacity)
        fatal("device '%s': out of devicelocal memory "
              "(requested %s, used %s of %s)",
              _name.c_str(),
              formatBytes(static_cast<double>(rounded)).c_str(),
              formatBytes(static_cast<double>(_localUsed)).c_str(),
              formatBytes(static_cast<double>(_localCapacity)).c_str());
    _localUsed += rounded;
    Placement p;
    p.bytes = rounded;
    p.remote = false;
    return p;
}

Placement
DeviceAddressSpace::mallocRemote(std::uint64_t bytes, PagePolicy policy)
{
    if (_regions.empty())
        fatal("device '%s': cudaMallocRemote with no deviceremote "
              "regions attached", _name.c_str());

    const std::uint64_t rounded = roundToPages(bytes);
    Placement p;
    p.bytes = rounded;
    p.remote = true;
    p.fractions.assign(_regions.size(), 0.0);

    if (policy == PagePolicy::Local || _regions.size() == 1) {
        // Place in the least-used region that can hold the whole
        // request (Fig 10's LOCAL: a single memory-node).
        std::size_t best = _regions.size();
        for (std::size_t i = 0; i < _regions.size(); ++i) {
            if (_regionUsed[i] + rounded <= _regions[i].capacity
                && (best == _regions.size()
                    || _regionUsed[i] < _regionUsed[best])) {
                best = i;
            }
        }
        if (best == _regions.size())
            fatal("device '%s': out of deviceremote memory for LOCAL "
                  "allocation of %s", _name.c_str(),
                  formatBytes(static_cast<double>(rounded)).c_str());
        _regionUsed[best] += rounded;
        p.fractions[best] = 1.0;
        return p;
    }

    // BW_AWARE: split into two page-aligned halves round-robined across
    // the first two regions (left/right memory-node shares).
    const std::uint64_t half = roundToPages(rounded / 2);
    const std::uint64_t rest = rounded - half;
    if (_regionUsed[0] + half > _regions[0].capacity
        || _regionUsed[1] + rest > _regions[1].capacity) {
        fatal("device '%s': out of deviceremote memory for BW_AWARE "
              "allocation of %s", _name.c_str(),
              formatBytes(static_cast<double>(rounded)).c_str());
    }
    _regionUsed[0] += half;
    _regionUsed[1] += rest;
    p.fractions[0] = rounded
        ? static_cast<double>(half) / static_cast<double>(rounded)
        : 0.0;
    p.fractions[1] = 1.0 - p.fractions[0];
    return p;
}

void
DeviceAddressSpace::free(const Placement &placement)
{
    if (!placement.remote) {
        if (placement.bytes > _localUsed)
            panic("device '%s': freeing more local memory than used",
                  _name.c_str());
        _localUsed -= placement.bytes;
        return;
    }
    for (std::size_t i = 0; i < placement.fractions.size()
             && i < _regionUsed.size(); ++i) {
        const auto bytes = static_cast<std::uint64_t>(
            placement.fractions[i]
            * static_cast<double>(placement.bytes) + 0.5);
        if (bytes > _regionUsed[i])
            panic("device '%s': freeing more of region %zu than used",
                  _name.c_str(), i);
        _regionUsed[i] -= bytes;
    }
}

} // namespace mcdla
