/**
 * @file
 * Commodity DDR4 DIMM catalog and power model (paper Table IV).
 *
 * The memory-node is populated with capacity/density-optimized commodity
 * modules: 8-16 GB registered DIMMs (RDIMMs) up to 32-128 GB load-reduced
 * DIMMs (LRDIMMs). Module TDPs follow the paper's Table IV (derived from
 * Samsung datasheets and Micron's DDR4 system power calculator at
 * DDR4-2400); per-DIMM bandwidth follows the PC4 speed grade.
 */

#ifndef MCDLA_MEMORY_DIMM_HH
#define MCDLA_MEMORY_DIMM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/** DIMM electrical/buffering class. */
enum class DimmClass
{
    RDIMM,  ///< Registered DIMM.
    LRDIMM, ///< Load-reduced DIMM.
};

/** DDR4 speed grades used in the paper. */
enum class DdrSpeed
{
    DDR4_2133, ///< PC4-17000, 17.0 GB/s per DIMM.
    DDR4_2400, ///< PC4-19200, 19.2 GB/s per DIMM (Table IV basis).
    DDR4_3200, ///< PC4-25600, 25.6 GB/s per DIMM (Table II basis).
};

/** Per-DIMM bandwidth of a speed grade (bytes/sec). */
double ddrSpeedBandwidth(DdrSpeed speed);

/** Short grade name ("PC4-19200"). */
const char *ddrSpeedName(DdrSpeed speed);

/** One commodity DDR4 module. */
struct DimmSpec
{
    std::string name;
    DimmClass dimmClass = DimmClass::RDIMM;
    std::uint64_t capacity = 8 * kGiB;
    double tdpWatts = 2.9; ///< Table IV (DDR4-2400 operating point).

    /**
     * Nominal module capacity in "GB" as marketed and as used by Table
     * IV's GB/W column (the gibibyte count read as gigabytes).
     */
    double
    capacityGb() const
    {
        return static_cast<double>(capacity)
            / static_cast<double>(kGiB);
    }
};

/**
 * The five modules of Table IV, smallest first:
 * 8/16 GB RDIMM, 32/64/128 GB LRDIMM.
 */
const std::vector<DimmSpec> &dimmCatalog();

/** Look up a catalog entry by capacity in GiB (8/16/32/64/128). */
const DimmSpec &dimmByCapacityGib(unsigned gib);

/**
 * Activity-dependent module power.
 *
 * Table IV quotes worst-case (TDP) numbers; for energy studies we scale
 * between an idle floor and TDP with bandwidth utilization, following the
 * structure of Micron's DDR4 system-power calculator (background +
 * activate + read/write terms).
 *
 * @param spec Module.
 * @param utilization Fraction of peak bandwidth in [0, 1].
 */
double dimmOperatingPower(const DimmSpec &spec, double utilization);

} // namespace mcdla

#endif // MCDLA_MEMORY_DIMM_HH
