/**
 * @file
 * Device physical address space and page-placement policies (Fig 10).
 *
 * Under MC-DLA the device driver manages its client device-node plus one
 * half of each neighboring memory-node as a single device memory address
 * space: devicelocal physical memory sits at the bottom, and the two
 * deviceremote halves are concatenated above it. cudaMallocRemote
 * requests are placed by one of two policies:
 *
 *  - LOCAL: the whole allocation lands in a single memory-node, so reads
 *    and writes use only the N/2 links to that node
 *    (latency = D / (N*B/2)),
 *  - BW_AWARE: the allocation is split into two page-aligned halves
 *    mapped round-robin across both neighbors, engaging all N links
 *    (latency = D / (N*B)).
 */

#ifndef MCDLA_MEMORY_ADDRESS_MAP_HH
#define MCDLA_MEMORY_ADDRESS_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/** Page-placement policy for deviceremote allocations (Fig 10). */
enum class PagePolicy
{
    Local,   ///< Whole allocation in one memory-node.
    BwAware, ///< Page-interleaved across both neighbor memory-nodes.
};

const char *pagePolicyName(PagePolicy policy);

/** One remote region visible to a device. */
struct RemoteRegion
{
    int targetIndex = -1;      ///< Memory-node index (or -1 = host).
    std::uint64_t capacity = 0; ///< Bytes of this node owned by us.
};

/** A placed allocation: traffic fractions aligned with remote regions. */
struct Placement
{
    std::uint64_t bytes = 0;
    bool remote = false;            ///< false = devicelocal.
    std::vector<double> fractions;  ///< Per-region traffic share.
};

/**
 * The per-device address space of Fig 10.
 *
 * Tracks capacity of devicelocal memory plus the device's share of its
 * remote regions and places allocations according to a PagePolicy.
 */
class DeviceAddressSpace
{
  public:
    /**
     * @param name Debug name.
     * @param local_capacity devicelocal bytes.
     * @param regions Remote regions in fabric vmem-path order.
     * @param page_bytes Placement granularity (GPU large page).
     */
    DeviceAddressSpace(std::string name, std::uint64_t local_capacity,
                       std::vector<RemoteRegion> regions,
                       std::uint64_t page_bytes = 2 * kMiB);

    const std::string &name() const { return _name; }
    std::uint64_t localCapacity() const { return _localCapacity; }
    std::uint64_t localUsed() const { return _localUsed; }
    std::uint64_t remoteCapacity() const;
    std::uint64_t remoteUsed() const;

    /** Total device-visible memory (Fig 10's enlarged address space). */
    std::uint64_t
    totalCapacity() const
    {
        return _localCapacity + remoteCapacity();
    }

    std::size_t regionCount() const { return _regions.size(); }
    const RemoteRegion &region(std::size_t i) const;

    /** Placement granularity in bytes. */
    std::uint64_t pageBytes() const { return _pageBytes; }

    /**
     * Raise every remote region's capacity to @p per_region_bytes
     * (regions already larger keep their size). The cluster's shared
     * MemoryPoolAllocator replaces the static half-board carve-out of
     * the standalone design: capacity is enforced at the pool, so the
     * per-device windows are widened to the pool and only placement
     * (the traffic fractions) is decided here.
     */
    void uncapRemoteRegions(std::uint64_t per_region_bytes);

    /**
     * Allocate in devicelocal memory.
     *
     * @return Placement on success.
     * @throws FatalError (via fatal()) when capacity is exhausted.
     */
    Placement mallocLocal(std::uint64_t bytes);

    /**
     * Allocate in deviceremote memory under @p policy
     * (cudaMallocRemote, Table I).
     */
    Placement mallocRemote(std::uint64_t bytes, PagePolicy policy);

    /** Release a previous allocation (cudaFree / cudaFreeRemote). */
    void free(const Placement &placement);

    /** Whether a local allocation of @p bytes would fit right now. */
    bool
    fitsLocal(std::uint64_t bytes) const
    {
        return _localUsed + bytes <= _localCapacity;
    }

  private:
    std::uint64_t roundToPages(std::uint64_t bytes) const;

    std::string _name;
    std::uint64_t _localCapacity;
    std::uint64_t _localUsed = 0;
    std::uint64_t _pageBytes;
    std::vector<RemoteRegion> _regions;
    std::vector<std::uint64_t> _regionUsed;
};

} // namespace mcdla

#endif // MCDLA_MEMORY_ADDRESS_MAP_HH
