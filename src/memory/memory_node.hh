/**
 * @file
 * Memory-node architecture (paper Figure 6, Section III-A).
 *
 * A memory-node is a V100-sized mezzanine board carrying N high-bandwidth
 * links (partitioned into M groups, each exclusively serving one
 * device-node), a protocol engine, a DMA unit, a memory controller, and
 * ten commodity DDR4 DIMMs. Optional compression/encryption ASICs can be
 * attached to the datapath.
 *
 * The timing-relevant behaviour (DIMM-bus bandwidth, link channels) lives
 * in the Fabric; this class carries configuration, capacity, and the
 * power model used by Table IV and the Section V-C efficiency study.
 */

#ifndef MCDLA_MEMORY_MEMORY_NODE_HH
#define MCDLA_MEMORY_MEMORY_NODE_HH

#include <cstdint>
#include <string>

#include "memory/dimm.hh"
#include "sim/units.hh"

namespace mcdla
{

/** Configuration of one memory-node board. */
struct MemoryNodeConfig
{
    /** Populated module type (Table IV explores all five). */
    DimmSpec dimm = dimmByCapacityGib(128);

    /** DIMM slots per board (Section III-A: ten on a V100-sized board). */
    int numDimms = 10;

    /** DDR4 speed grade; Table II assumes 256 GB/s (PC4-25600). */
    DdrSpeed speed = DdrSpeed::DDR4_3200;

    /** Links facing the device-side interconnect (Table II: N=6). */
    int numLinks = 6;

    /** Per-link bandwidth per direction (Table II: 25 GB/s). */
    double linkBandwidth = 25.0 * kGB;

    /**
     * Device-nodes sharing this board (M in Fig 6; the ring design
     * assigns each half to one neighbor device).
     */
    int linkGroups = 2;

    /** Access latency through controller + DIMMs (Table II: 100 cyc). */
    Tick accessLatency = 100 * ticksPerNs;

    /** Optional inline compression engine (cDMA-style ratio; 1 = off). */
    double compressionRatio = 1.0;

    /**
     * Reject configurations that would silently mis-partition the board:
     * links must divide evenly into link groups, DIMM slots must be
     * positive, and links need non-zero bandwidth. Fatal (with the
     * offending values) on violation; System and the fabric builders
     * call this before composing a design around the board.
     */
    void validate() const;

    /** Total board capacity. */
    std::uint64_t
    capacity() const
    {
        return dimm.capacity * static_cast<std::uint64_t>(numDimms);
    }

    /** Aggregate DIMM bandwidth (bytes/sec). */
    double
    bandwidth() const
    {
        return ddrSpeedBandwidth(speed) * static_cast<double>(numDimms);
    }

    /** Board TDP in watts (Table IV: per-DIMM TDP x slots). */
    double
    tdpWatts() const
    {
        return dimm.tdpWatts * static_cast<double>(numDimms);
    }

    /** Capacity efficiency in decimal GB per watt (Table IV). */
    double
    gbPerWatt() const
    {
        return (dimm.capacityGb() * static_cast<double>(numDimms))
            / tdpWatts();
    }

    /** Operating power at a given bandwidth utilization. */
    double
    operatingWatts(double utilization) const
    {
        return dimmOperatingPower(dimm, utilization)
            * static_cast<double>(numDimms);
    }
};

/**
 * Node-level power summary for the Section V-C study.
 *
 * The DGX-1V baseline draws 3,200 W with the eight V100s accounting for
 * 75% (8 x 300 W); MC-DLA adds one memory-node per device.
 */
struct SystemPowerModel
{
    double baselineSystemWatts = 3200.0;
    int numMemoryNodes = 8;

    /** Added power for a given memory-node configuration. */
    double
    addedWatts(const MemoryNodeConfig &node) const
    {
        return node.tdpWatts() * static_cast<double>(numMemoryNodes);
    }

    /** Fractional system-power increase (e.g. 0.07 for 8 GB RDIMMs). */
    double
    powerOverhead(const MemoryNodeConfig &node) const
    {
        return addedWatts(node) / baselineSystemWatts;
    }

    /** Total expanded memory pool in bytes. */
    std::uint64_t
    pooledCapacity(const MemoryNodeConfig &node) const
    {
        return node.capacity()
            * static_cast<std::uint64_t>(numMemoryNodes);
    }

    /** Performance-per-watt gain given a speedup over the baseline. */
    double
    perfPerWattGain(const MemoryNodeConfig &node, double speedup) const
    {
        return speedup / (1.0 + powerOverhead(node));
    }
};

} // namespace mcdla

#endif // MCDLA_MEMORY_MEMORY_NODE_HH
