/**
 * @file
 * DIMM catalog implementation.
 */

#include "memory/dimm.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

double
ddrSpeedBandwidth(DdrSpeed speed)
{
    switch (speed) {
      case DdrSpeed::DDR4_2133: return 17.0 * kGB;
      case DdrSpeed::DDR4_2400: return 19.2 * kGB;
      case DdrSpeed::DDR4_3200: return 25.6 * kGB;
    }
    panic("unknown DDR speed grade");
}

const char *
ddrSpeedName(DdrSpeed speed)
{
    switch (speed) {
      case DdrSpeed::DDR4_2133: return "PC4-17000";
      case DdrSpeed::DDR4_2400: return "PC4-19200";
      case DdrSpeed::DDR4_3200: return "PC4-25600";
    }
    panic("unknown DDR speed grade");
}

const std::vector<DimmSpec> &
dimmCatalog()
{
    static const std::vector<DimmSpec> catalog = {
        {"8GB RDIMM", DimmClass::RDIMM, 8 * kGiB, 2.9},
        {"16GB RDIMM", DimmClass::RDIMM, 16 * kGiB, 6.6},
        {"32GB LRDIMM", DimmClass::LRDIMM, 32 * kGiB, 8.7},
        {"64GB LRDIMM", DimmClass::LRDIMM, 64 * kGiB, 10.2},
        {"128GB LRDIMM", DimmClass::LRDIMM, 128 * kGiB, 12.7},
    };
    return catalog;
}

const DimmSpec &
dimmByCapacityGib(unsigned gib)
{
    for (const DimmSpec &spec : dimmCatalog())
        if (spec.capacity == static_cast<std::uint64_t>(gib) * kGiB)
            return spec;
    fatal("no %u GiB module in the DIMM catalog", gib);
}

double
dimmOperatingPower(const DimmSpec &spec, double utilization)
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    // Background/refresh power is roughly a third of TDP for DDR4
    // modules; the activate + read/write component scales with traffic.
    constexpr double idle_fraction = 0.35;
    return spec.tdpWatts * (idle_fraction + (1.0 - idle_fraction) * u);
}

} // namespace mcdla
