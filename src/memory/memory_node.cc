/**
 * @file
 * Memory-node configuration validation.
 */

#include "memory/memory_node.hh"

#include "sim/logging.hh"

namespace mcdla
{

void
MemoryNodeConfig::validate() const
{
    if (numDimms <= 0)
        fatal("memory-node: DIMM slot count must be positive (got %d)",
              numDimms);
    if (numLinks <= 0)
        fatal("memory-node: link count must be positive (got %d)",
              numLinks);
    if (linkGroups <= 0)
        fatal("memory-node: link-group count must be positive (got %d)",
              linkGroups);
    if (numLinks % linkGroups != 0)
        fatal("memory-node: %d links do not partition into %d groups "
              "(each device-node must own numLinks/linkGroups whole "
              "links)",
              numLinks, linkGroups);
    if (linkBandwidth <= 0.0)
        fatal("memory-node: link bandwidth must be positive (got %g "
              "bytes/s)",
              linkBandwidth);
}

} // namespace mcdla
