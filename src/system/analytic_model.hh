/**
 * @file
 * Closed-form performance estimator.
 *
 * Computes, without running the discrete-event simulation, the three
 * per-category latency totals of an iteration and lower/upper bounds on
 * the makespan:
 *
 *  - compute: sum of per-layer roofline timings,
 *  - vmem: migration volume over the design's aggregate backing-store
 *    bandwidth,
 *  - sync: analytic ring-collective latencies over the design's rings,
 *  - lower bound: max of the three (perfect overlap),
 *  - upper bound: their sum (no overlap).
 *
 * The estimator is used for fast design-space sweeps and as an
 * invariant oracle for the DES (tests assert DES results fall between
 * the bounds). It deliberately ignores link-level contention between
 * traffic classes, which is exactly what the DES adds.
 */

#ifndef MCDLA_SYSTEM_ANALYTIC_MODEL_HH
#define MCDLA_SYSTEM_ANALYTIC_MODEL_HH

#include "parallel/strategy.hh"
#include "system/system_config.hh"

namespace mcdla
{

/** Closed-form per-iteration estimate. */
struct AnalyticEstimate
{
    /**
     * Compute lower-bound component. For dp/mp this is the per-device
     * serial compute; for pipeline it is the larger of the bottleneck
     * stage's serial work and one full fwd+bwd round trip of a
     * microbatch through every stage (the fill/drain critical path).
     */
    double computeSec = 0.0;
    /**
     * Vmem lower-bound component: migration volume over the design's
     * aggregate backing-store bandwidth (the bottleneck stage's volume
     * under pipeline parallelism).
     */
    double vmemSec = 0.0;
    /**
     * Communication lower-bound component: analytic ring-collective
     * latencies (dp/mp), or the most loaded boundary link's serialized
     * microbatch transfers (pipeline).
     */
    double syncSec = 0.0;
    /**
     * Pipeline-only upper-bound slack: the fill/drain bubble and stage
     * imbalance, plus the non-bottleneck stages' vmem and boundary
     * traffic (which the lower-bound components exclude because they
     * overlap across devices). Zero for dp/mp, keeping their bounds
     * bit-identical to the pre-pipeline model.
     */
    double pipelineBubbleSec = 0.0;

    /** Aggregate backing-store bandwidth per device (bytes/s). */
    double vmemBandwidth = 0.0;
    /** Migration volume per device (offload + prefetch). */
    double vmemBytes = 0.0;
    /** Collective (dp/mp) or boundary-transfer (pp) payload. */
    double syncBytes = 0.0;

    /** Perfect-overlap makespan bound. */
    double
    lowerBoundSec() const
    {
        return std::max({computeSec, vmemSec, syncSec});
    }

    /** Zero-overlap makespan bound. */
    double
    upperBoundSec() const
    {
        return computeSec + pipelineBubbleSec + vmemSec + syncSec;
    }
};

/**
 * Estimate one training iteration analytically.
 *
 * @param cfg System design point.
 * @param net Workload.
 * @param mode Parallelization.
 * @param global_batch Minibatch size.
 * @param pipeline_stages Pipeline stage count (Pipeline mode only;
 *        0 = one stage per device).
 * @param microbatches GPipe microbatches (Pipeline mode only).
 */
AnalyticEstimate estimateIteration(const SystemConfig &cfg,
                                   const Network &net,
                                   ParallelMode mode,
                                   std::int64_t global_batch,
                                   int pipeline_stages = 0,
                                   int microbatches = 1);

/**
 * Aggregate vmem bandwidth per device implied by a design (bytes/s):
 * PCIe for DC-DLA, N/2 host links for HC-DLA, 2 links for MC-DLA(S),
 * N/2 and N ring links for MC-DLA(L)/(B), 0 for the oracle.
 */
double designVmemBandwidth(const SystemConfig &cfg);

} // namespace mcdla

#endif // MCDLA_SYSTEM_ANALYTIC_MODEL_HH
