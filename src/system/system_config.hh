/**
 * @file
 * System design points of the evaluation (Section V).
 */

#ifndef MCDLA_SYSTEM_SYSTEM_CONFIG_HH
#define MCDLA_SYSTEM_SYSTEM_CONFIG_HH

#include "collective/ring_collective.hh"
#include "device/device_config.hh"
#include "interconnect/fabric_config.hh"
#include "memory/address_map.hh"
#include "memory/memory_node.hh"
#include "sim/event_queue_backend.hh"
#include "vmem/offload_plan.hh"
#include "vmem/paging/paging_config.hh"

namespace mcdla
{

/** The six system design points of Figure 13 (plus one extra). */
enum class SystemDesign
{
    DcDla,       ///< Device-centric baseline (DGX-class), PCIe vmem.
    HcDla,       ///< Host-centric: 3 links/device to CPU memory.
    McDlaS,      ///< Memory-centric, star interconnect (Fig 7b).
    McDlaL,      ///< Memory-centric ring, LOCAL page policy.
    McDlaB,      ///< Memory-centric ring, BW_AWARE page policy.
    DcDlaOracle, ///< DC-DLA with infinite device memory (unbuildable).
    /**
     * The naive Fig 7(a) derivative interconnect (two 8-hop device
     * rings + one 24-hop ring). Not part of the paper's evaluation
     * set; used by the topology ablation bench.
     */
    McDlaSA,
    /**
     * Switched MC-DLA (Fig 15 / Section VI): NVSwitch-class planes let
     * the ring design scale beyond eight devices. Uses the BW_AWARE
     * page policy. Not part of the paper's evaluation set.
     */
    McDlaX,
};

/** Paper-style short name ("MC-DLA(B)" ...). */
const char *systemDesignName(SystemDesign design);

/** All six designs in the paper's plotting order. */
inline constexpr SystemDesign kAllDesigns[] = {
    SystemDesign::DcDla,       SystemDesign::HcDla,
    SystemDesign::McDlaS,      SystemDesign::McDlaL,
    SystemDesign::McDlaB,      SystemDesign::DcDlaOracle,
};

/** Whether the design virtualizes memory over a backing store. */
inline bool
designVirtualizesMemory(SystemDesign design)
{
    return design != SystemDesign::DcDlaOracle;
}

/** Whether the backing store is host DRAM (vs memory-nodes). */
inline bool
designUsesHostMemory(SystemDesign design)
{
    return design == SystemDesign::DcDla || design == SystemDesign::HcDla;
}

/** Whether memory-nodes are present in the device-side interconnect. */
inline bool
designHasMemoryNodes(SystemDesign design)
{
    return design == SystemDesign::McDlaS
        || design == SystemDesign::McDlaL
        || design == SystemDesign::McDlaB
        || design == SystemDesign::McDlaSA
        || design == SystemDesign::McDlaX;
}

/** Full system configuration. */
struct SystemConfig
{
    SystemDesign design = SystemDesign::McDlaB;

    /** Device-node parameters (Table II defaults). */
    DeviceConfig device;

    /** Interconnect parameters; numDevices lives here. */
    FabricConfig fabric;

    /** Memory-node board (Table II: 256 GB/s; Table IV DIMM options). */
    MemoryNodeConfig memNode;

    /** Host DRAM capacity visible as backing store (DC/HC designs). */
    std::uint64_t hostMemoryCapacity = 768 * kGiB;

    /** Footnote-4 recompute optimization. */
    bool recomputeCheapLayers = true;

    /** DMA flow chunk granularity. */
    double dmaChunkBytes = 512.0 * 1024.0;

    /**
     * cDMA-style activation compression applied to virtualization
     * traffic (Rhu et al., HPCA'18): the wire moves bytes/ratio. 1.0
     * disables compression; the paper's sensitivity study uses the
     * reported average 2.6x on CNN activations.
     */
    double dmaCompressionRatio = 1.0;

    /**
     * Uniform scale on per-layer compute times (forward, backward,
     * weight update). 1.0 = Table III timings. Used by the what-if
     * validation path: a causal-DAG "compute:0.5" prediction is
     * checked against an actual re-run at computeTimeScale = 0.5.
     */
    double computeTimeScale = 1.0;

    /**
     * Priority structure of the driving EventQueue (`--event-queue`).
     * Both backends produce identical event order and outputs; the
     * calendar queue trades worst-case O(log n) bounds for O(1)
     * amortized push/pop on uniform tick distributions.
     */
    EventQueueBackendKind eventQueueBackend =
        EventQueueBackendKind::Heap;

    /** Collective pipeline chunk granularity. */
    double collectiveChunkBytes = 128.0 * 1024.0;

    /** Collective algorithm family (--collective); Ring = paper. */
    CollectiveAlgorithm collectiveAlgorithm = CollectiveAlgorithm::Ring;

    /** Board size of the hierarchical collective algorithm. */
    int collectiveBoardDevices = 8;

    /**
     * Paged device-memory policies: how stash fills are scheduled
     * (static plan / on-demand faulting / history prefetch), how
     * victims are chosen under HBM pressure, and the prefetch
     * lookahead window.
     */
    PagingConfig paging;

    /** vDNN policy implied by the design. */
    OffloadPolicy
    offloadPolicy() const
    {
        OffloadPolicy p;
        p.virtualizeMemory = designVirtualizesMemory(design);
        p.recomputeCheapLayers = recomputeCheapLayers;
        return p;
    }

    /** Driver page-placement policy implied by the design (Fig 10). */
    PagePolicy
    pagePolicy() const
    {
        return design == SystemDesign::McDlaB
                || design == SystemDesign::McDlaX
            ? PagePolicy::BwAware
            : PagePolicy::Local;
    }
};

} // namespace mcdla

#endif // MCDLA_SYSTEM_SYSTEM_CONFIG_HH
