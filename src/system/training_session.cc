/**
 * @file
 * TrainingSession implementation.
 */

#include "system/training_session.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

TrainingSession::TrainingSession(System &system, const Network &net,
                                 ParallelMode mode,
                                 std::int64_t global_batch)
    : _system(system), _net(net),
      _strategy(net, mode, system.numDevices(), global_batch),
      _plan(net, system.config().offloadPolicy())
{
    buildSchedule();
}

std::vector<LayerId>
TrainingSession::effectiveProducers(LayerId id) const
{
    std::vector<LayerId> out;
    std::vector<LayerId> work(_net.inputsOf(id));
    while (!work.empty()) {
        const LayerId p = work.back();
        work.pop_back();
        const Layer &layer = _net.layer(p);
        if (layer.costClass() == CostClass::Structural
            && layer.kind() != LayerKind::Input) {
            for (LayerId pp : _net.inputsOf(p))
                work.push_back(pp);
        } else {
            out.push_back(p);
        }
    }
    return out;
}

std::vector<LayerId>
TrainingSession::effectiveConsumers(LayerId id) const
{
    std::vector<LayerId> out;
    std::vector<LayerId> work(_net.consumersOf(id));
    while (!work.empty()) {
        const LayerId c = work.back();
        work.pop_back();
        const Layer &layer = _net.layer(c);
        if (layer.costClass() == CostClass::Structural
            && layer.kind() != LayerKind::Input) {
            for (LayerId cc : _net.consumersOf(c))
                work.push_back(cc);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

void
TrainingSession::buildSchedule()
{
    const ComputeModel &model = _system.device(0).computeModel();
    const auto layer_count = static_cast<LayerId>(_net.size());

    _timings.clear();
    for (LayerId id = 0; id < layer_count; ++id)
        _timings.push_back(model.layerTiming(
            _net.layer(id), _strategy.scaling(_net.layer(id))));

    // Map each offloaded tensor to the op after which its last forward
    // use completes (the static plan's writeback trigger).
    std::map<LayerId, std::vector<LayerId>> offload_after; // trigger->ps
    for (LayerId id = 0; id < layer_count; ++id) {
        if (_plan.entry(id).action != TensorAction::Offload)
            continue;
        LayerId trigger = id;
        for (LayerId c : effectiveConsumers(id))
            trigger = std::max(trigger, c);
        offload_after[trigger].push_back(id);
    }

    _ops.clear();
    _pagingSchedule.clear();

    // Forward pass.
    for (LayerId id : _net.topoOrder()) {
        OpSpec op;
        op.kind = OpSpec::Kind::Fwd;
        op.layer = id;
        op.duration = _timings[static_cast<std::size_t>(id)].forward;
        op.syncAfter = _strategy.forwardSync(id);

        PageAccess access;
        if (_plan.entry(id).action == TensorAction::Offload)
            access.produces.push_back(id);
        if (auto it = offload_after.find(id); it != offload_after.end())
            access.planWritebacks = it->second;

        _ops.push_back(std::move(op));
        _pagingSchedule.push_back(std::move(access));
    }

    // Backward pass in reverse topological order.
    const auto &topo = _net.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const LayerId id = *it;
        const LayerTiming &t = _timings[static_cast<std::size_t>(id)];

        OpSpec op;
        op.kind = OpSpec::Kind::Bwd;
        op.layer = id;
        op.duration = t.backward;
        // Recomputed cheap layers re-run their forward during backprop.
        if (_plan.entry(id).action == TensorAction::Recompute)
            op.duration += t.forward;
        op.syncAfter = _strategy.backwardSync(id);

        // Backward consumes the stashes of this layer and its effective
        // producers; anything offloaded must be paged in first.
        PageAccess access;
        auto need = [&](LayerId p) {
            if (_plan.entry(p).action == TensorAction::Offload)
                access.reads.push_back(p);
        };
        need(id);
        for (LayerId p : effectiveProducers(id))
            need(p);

        if (op.duration == 0 && !op.syncAfter && access.reads.empty())
            continue; // structural no-op
        _ops.push_back(std::move(op));
        _pagingSchedule.push_back(std::move(access));
    }

    // Weight updates (gated by dW all-reduce under data parallelism).
    const bool dp_sync =
        _strategy.mode() == ParallelMode::DataParallel
        && _strategy.numDevices() > 1;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const LayerId id = *it;
        const Layer &layer = _net.layer(id);
        if (!layer.hasWeights() || layer.weightsTied())
            continue;
        OpSpec op;
        op.kind = OpSpec::Kind::Wup;
        op.layer = id;
        op.duration =
            _timings[static_cast<std::size_t>(id)].weightUpdate;
        op.needsDwLatch = dp_sync;
        _ops.push_back(std::move(op));
        _pagingSchedule.emplace_back();
    }

    // Each stash dies at its last reader; the pager frees its frames
    // when that op retires.
    std::map<LayerId, std::size_t> last_reader;
    for (std::size_t i = 0; i < _pagingSchedule.size(); ++i)
        for (LayerId layer : _pagingSchedule[i].reads)
            last_reader[layer] = i;
    for (const auto &[layer, op_index] : last_reader)
        _pagingSchedule[op_index].releases.push_back(layer);
}

std::uint64_t
TrainingSession::footprintBytesPerDevice() const
{
    const std::int64_t batch = _strategy.perDeviceBatch();
    std::uint64_t resident = 0;
    std::uint64_t largest = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(_net.size()); ++id) {
        const Layer &layer = _net.layer(id);
        const TensorPlan &entry = _plan.entry(id);
        const auto shards = static_cast<std::uint64_t>(
            _strategy.scaling(layer).modelShards);
        if (entry.action == TensorAction::KeepLocal) {
            resident += (entry.outBytesPerSample
                         + entry.auxBytesPerSample / shards)
                * static_cast<std::uint64_t>(batch);
        }
        // Working set of the layer while executing: full input plus the
        // shard of output/aux this device produces.
        const std::uint64_t working =
            (layer.inBytesPerSample()
             + (layer.outBytesPerSample()
                + layer.auxStashBytesPerSample()) / shards)
            * static_cast<std::uint64_t>(batch);
        largest = std::max(largest, working);
    }
    // Weights + resident stash + the largest live working set (vDNN
    // keeps only the executing layer's buffers resident).
    return _strategy.weightBytesPerDevice(_net) + resident + largest;
}

void
TrainingSession::allocateBuffers()
{
    if (_allocated)
        return;
    _allocated = true;

    const int n = _system.numDevices();
    _remotePtrs.assign(static_cast<std::size_t>(n), {});

    for (int d = 0; d < n; ++d) {
        DeviceAddressSpace &space = _system.addressSpace(d);
        const std::uint64_t footprint = footprintBytesPerDevice();
        if (!space.fitsLocal(footprint)) {
            fatal("%s: per-device footprint %s exceeds devicelocal "
                  "capacity %s for %s (batch %lld, %s) — the memory "
                  "capacity wall; reduce the batch size or enable a "
                  "larger backing store",
                  systemDesignName(_system.config().design),
                  formatBytes(static_cast<double>(footprint)).c_str(),
                  formatBytes(static_cast<double>(
                      space.localCapacity())).c_str(),
                  _net.name().c_str(),
                  static_cast<long long>(_strategy.globalBatch()),
                  parallelModeName(_strategy.mode()));
        }
        space.mallocLocal(footprint);

        // Table I: allocate deviceremote backing buffers for every
        // offloaded tensor through the runtime API.
        for (LayerId id = 0; id < static_cast<LayerId>(_net.size());
             ++id) {
            if (_plan.entry(id).action != TensorAction::Offload)
                continue;
            const double bytes =
                _strategy.offloadBytesPerDevice(_net.layer(id));
            _remotePtrs[static_cast<std::size_t>(d)][id] =
                _system.runtime(d).mallocRemote(
                    static_cast<std::uint64_t>(bytes) + 1);
        }
    }

    createPagers();
}

void
TrainingSession::createPagers()
{
    const int n = _system.numDevices();
    const SystemConfig &cfg = _system.config();
    const auto layer_count = static_cast<std::size_t>(_net.size());

    std::vector<double> wire_bytes(layer_count, 0.0);
    std::vector<std::uint64_t> frame_bytes(layer_count, 0);
    for (LayerId id = 0; id < static_cast<LayerId>(_net.size()); ++id) {
        if (_plan.entry(id).action != TensorAction::Offload)
            continue;
        const double bytes =
            _strategy.offloadBytesPerDevice(_net.layer(id));
        wire_bytes[static_cast<std::size_t>(id)] =
            bytes / cfg.dmaCompressionRatio;
        frame_bytes[static_cast<std::size_t>(id)] =
            static_cast<std::uint64_t>(bytes) + 1;
    }

    _pagers.clear();
    for (int d = 0; d < n; ++d) {
        DevicePager::Wiring wiring;
        wiring.runtime = &_system.runtime(d);
        wiring.remotePtrs = &_remotePtrs[static_cast<std::size_t>(d)];
        wiring.net = &_net;
        wiring.schedule = &_pagingSchedule;
        wiring.wireBytes = wire_bytes;
        wiring.frameBytes = frame_bytes;
        // HBM left after weights, keep-local stash, and working
        // buffers is the stash frame budget.
        const DeviceAddressSpace &space = _system.addressSpace(d);
        wiring.frameCapacity =
            space.localCapacity() - space.localUsed();
        wiring.config = cfg.paging;
        wiring.tracker = d == 0 ? &_vmemTracker : nullptr;
        _pagers.push_back(std::make_unique<DevicePager>(
            "dev" + std::to_string(d) + ".pager", std::move(wiring)));
    }
}

DevicePager &
TrainingSession::pager(int dev)
{
    if (_pagers.empty())
        allocateBuffers();
    return *_pagers.at(static_cast<std::size_t>(dev));
}

void
TrainingSession::dumpPagingStats(std::ostream &os) const
{
    for (const auto &pager : _pagers)
        pager->stats().dump(os);
}

void
TrainingSession::tryIssue(int dev)
{
    DeviceCtx &ctx = _devs[static_cast<std::size_t>(dev)];
    if (ctx.running || ctx.nextOp >= _ops.size())
        return;
    const OpSpec &op = _ops[ctx.nextOp];

    Latch *wait = nullptr;
    int cat = 0;
    if (ctx.blockingGate && !ctx.blockingGate->done()) {
        wait = ctx.blockingGate;
        cat = 1;
    }
    if (!wait) {
        if (Latch *gate =
                _pagers[static_cast<std::size_t>(dev)]->demand(
                    ctx.nextOp)) {
            wait = gate;
            cat = 2;
        }
    }
    if (!wait && op.needsDwLatch) {
        auto it = _dwSync.find(op.layer);
        if (it == _dwSync.end())
            panic("weight update of layer %d before its dW sync point",
                  op.layer);
        if (!it->second->latch().done()) {
            wait = &it->second->latch();
            cat = 1;
        }
    }
    if (wait) {
        ctx.waitedCat = cat;
        wait->whenDone([this, dev] { tryIssue(dev); });
        return;
    }

    // Issue on the serial compute stream.
    ctx.running = true;
    ctx.blockingGate = nullptr;
    const Tick now = _system.eventQueue().now();
    if (ctx.waitedCat == 2) {
        _pagers[static_cast<std::size_t>(dev)]->noteStall(
            now - ctx.readyAt);
    }
    if (dev == 0) {
        _computeTicks += op.duration;
        if (ctx.waitedCat == 1)
            _stallSync += now - ctx.readyAt;
        else if (ctx.waitedCat == 2)
            _stallVmem += now - ctx.readyAt;
    }
    ctx.waitedCat = 0;
    _system.device(dev).occupyCompute(now, op.duration);
    _system.eventQueue().scheduleAfter(
        op.duration, [this, dev] { completeOp(dev); },
        "op_complete");
}

void
TrainingSession::completeOp(int dev)
{
    DeviceCtx &ctx = _devs[static_cast<std::size_t>(dev)];
    const std::size_t op_index = ctx.nextOp;
    const OpSpec &op = _ops[op_index];
    ctx.running = false;
    ctx.readyAt = _system.eventQueue().now();

    if (_trace && dev == 0 && op.duration > 0) {
        const char *kind = op.kind == OpSpec::Kind::Fwd
            ? "fwd "
            : (op.kind == OpSpec::Kind::Bwd ? "bwd " : "wup ");
        _trace->addSpan("dev0.compute",
                        kind + _net.layer(op.layer).name(),
                        ctx.readyAt - op.duration, op.duration);
    }

    _pagers[static_cast<std::size_t>(dev)]->opRetired(op_index);

    if (op.syncAfter) {
        auto it = _syncPoints.find(op_index);
        if (it == _syncPoints.end())
            panic("op %zu lacks its sync point", op_index);
        if (op.syncAfter->blocking)
            ctx.blockingGate = &it->second->latch();
        it->second->arrive();
    }

    ++ctx.nextOp;
    _pagers[static_cast<std::size_t>(dev)]->frontierAdvanced(
        ctx.nextOp);
    tryIssue(dev);
}

IterationResult
TrainingSession::run()
{
    allocateBuffers();

    EventQueue &eq = _system.eventQueue();
    const int n = _system.numDevices();

    // Reset per-iteration state.
    _system.resetStats();
    _devs.assign(static_cast<std::size_t>(n), DeviceCtx{});
    _syncPoints.clear();
    _dwSync.clear();
    _syncTracker.reset();
    _vmemTracker.reset();
    _computeTicks = 0;
    _stallSync = 0;
    _stallVmem = 0;
    _startTick = eq.now();
    const std::uint64_t events_before = eq.executedCount();

    for (int d = 0; d < n; ++d)
        _pagers[static_cast<std::size_t>(d)]->beginIteration(
            d == 0 ? _trace : nullptr);

    double sync_bytes = 0.0;
    for (std::size_t i = 0; i < _ops.size(); ++i) {
        if (!_ops[i].syncAfter)
            continue;
        const SyncOp sync = *_ops[i].syncAfter;
        sync_bytes += sync.bytes;
        const std::string sync_label =
            std::string(collectiveKindName(sync.kind)) + " "
            + _net.layer(_ops[i].layer).name();
        auto point = std::make_unique<SyncPoint>(
            n, [this, sync, sync_label](Latch &latch) {
                const Tick launched = _system.eventQueue().now();
                _syncTracker.begin(launched);
                _system.collectives().launch(
                    sync.kind, sync.bytes,
                    [this, &latch, launched, sync_label] {
                        const Tick now = _system.eventQueue().now();
                        _syncTracker.end(now);
                        if (_trace)
                            _trace->addSpan("collectives", sync_label,
                                            launched, now - launched,
                                            "sync");
                        latch.complete();
                    });
            });
        if (_ops[i].kind == OpSpec::Kind::Bwd
            && _ops[i].syncAfter->kind == CollectiveKind::AllReduce
            && !_ops[i].syncAfter->blocking) {
            _dwSync[_ops[i].layer] = point.get();
        }
        _syncPoints.emplace(i, std::move(point));
    }

    // Start every device's program.
    for (int d = 0; d < n; ++d) {
        _pagers[static_cast<std::size_t>(d)]->frontierAdvanced(0);
        tryIssue(d);
    }
    eq.run();

    // Deadlock check: every device must have drained its program.
    for (int d = 0; d < n; ++d) {
        if (_devs[static_cast<std::size_t>(d)].nextOp != _ops.size())
            panic("device %d stalled at op %zu/%zu — scheduling deadlock",
                  d, _devs[static_cast<std::size_t>(d)].nextOp,
                  _ops.size());
    }

    IterationResult result;
    result.makespan = eq.now() - _startTick;
    result.breakdown.computeSec = ticksToSeconds(_computeTicks);
    result.breakdown.syncSec =
        ticksToSeconds(_syncTracker.total(eq.now()));
    result.breakdown.vmemSec =
        ticksToSeconds(_vmemTracker.total(eq.now()));
    result.breakdown.exposedSyncSec = ticksToSeconds(_stallSync);
    result.breakdown.exposedVmemSec = ticksToSeconds(_stallVmem);
    result.hostBytes = _system.fabric().hostBytes();
    const int sockets = _system.config().fabric.numSockets;
    if (result.makespan > 0 && sockets > 0) {
        result.hostAvgBwPerSocket = result.hostBytes
            / ticksToSeconds(result.makespan)
            / static_cast<double>(sockets);
    }
    result.hostPeakBwPerSocket = _system.fabric().hostPeakBandwidth();
    result.offloadBytesPerDevice = _system.dma(0).bytesOffloaded()
        + _system.dma(0).bytesPrefetched();
    result.syncBytes = sync_bytes;
    result.eventsExecuted = eq.executedCount() - events_before;
    result.paging = _pagers[0]->counters();
    return result;
}

} // namespace mcdla
