/**
 * @file
 * TrainingSession implementation.
 */

#include "system/training_session.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "interconnect/flow.hh"
#include "sim/causal.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"

namespace mcdla
{

TrainingSession::TrainingSession(System &system, const Network &net,
                                 ParallelMode mode,
                                 std::int64_t global_batch,
                                 int pipeline_stages, int microbatches,
                                 std::vector<int> device_set,
                                 bool forward_only)
    : _system(system), _net(net), _deviceSet(std::move(device_set)),
      _strategy(net, mode,
                _deviceSet.empty()
                    ? system.numDevices()
                    : static_cast<int>(_deviceSet.size()),
                global_batch,
                PipelineConfig{pipeline_stages, microbatches,
                               system.config().device}),
      _plan(net, system.config().offloadPolicy())
{
    _forwardOnly = forward_only;
    if (_forwardOnly && _strategy.isPipeline())
        fatal("forward-only sessions support dp/mp only (serving "
              "replicas do not pipeline)");
    const int total = _system.numDevices();
    if (_deviceSet.empty()) {
        for (int d = 0; d < total; ++d)
            _deviceSet.push_back(d);
    }
    std::set<int> distinct;
    for (int d : _deviceSet) {
        if (d < 0 || d >= total)
            fatal("training session device %d outside the system's %d "
                  "devices", d, total);
        if (!distinct.insert(d).second)
            fatal("training session device %d listed twice", d);
    }
    _ownsAllDevices = static_cast<int>(_deviceSet.size()) == total;

    // Subset sessions ring their collectives over just the owned
    // devices; the restricted rings still walk the full physical loop.
    if (!_ownsAllDevices && !_strategy.isPipeline()
        && deviceCount() > 1) {
        for (const RingPath &ring : _system.fabric().rings()) {
            RingPath sub = restrictRingToDevices(ring, _deviceSet);
            if (sub.stageCount() >= 2)
                _jobRings.push_back(std::move(sub));
        }
        if (_jobRings.empty())
            fatal("no fabric ring connects the session's %d devices; "
                  "collectives have no path", deviceCount());
        for (const RingPath &ring : _jobRings)
            _jobRingPtrs.push_back(&ring);
    }

    buildSchedule();
}

const std::vector<TrainingSession::OpSpec> &
TrainingSession::program(int dev) const
{
    if (_strategy.isPipeline())
        return _stagePrograms.at(static_cast<std::size_t>(dev));
    return _ops;
}

LayerId
TrainingSession::groupId(LayerId layer, int microbatch) const
{
    return layer * static_cast<LayerId>(_strategy.microbatches())
        + static_cast<LayerId>(microbatch);
}

void
TrainingSession::buildSchedule()
{
    const ComputeModel &model =
        _system.device(sysDev(0)).computeModel();
    const auto layer_count = static_cast<LayerId>(_net.size());

    _timings.clear();
    for (LayerId id = 0; id < layer_count; ++id)
        _timings.push_back(model.layerTiming(
            _net.layer(id), _strategy.scaling(_net.layer(id))));

    // What-if validation knob: uniformly rescale compute durations
    // (SystemConfig::computeTimeScale). Guarded so the default 1.0
    // leaves every tick byte-identical to the unscaled schedule.
    const double scale = _system.config().computeTimeScale;
    if (scale != 1.0) {
        if (scale <= 0.0)
            fatal("computeTimeScale must be positive (got %g)", scale);
        for (LayerTiming &timing : _timings) {
            timing.forward = static_cast<Tick>(
                std::llround(static_cast<double>(timing.forward)
                             * scale));
            timing.backward = static_cast<Tick>(
                std::llround(static_cast<double>(timing.backward)
                             * scale));
            timing.weightUpdate = static_cast<Tick>(std::llround(
                static_cast<double>(timing.weightUpdate) * scale));
        }
    }

    if (_strategy.isPipeline()) {
        buildPipelineSchedule();
        return;
    }

    // Map each offloaded tensor to the op after which its last forward
    // use completes (the static plan's writeback trigger).
    std::map<LayerId, std::vector<LayerId>> offload_after; // trigger->ps
    for (LayerId id = 0; id < layer_count; ++id) {
        if (_plan.entry(id).action != TensorAction::Offload)
            continue;
        LayerId trigger = id;
        for (LayerId c : _net.effectiveConsumers(id))
            trigger = std::max(trigger, c);
        offload_after[trigger].push_back(id);
    }

    _ops.clear();
    _pagingSchedule.clear();

    // Forward pass.
    for (LayerId id : _net.topoOrder()) {
        OpSpec op;
        op.kind = OpSpec::Kind::Fwd;
        op.layer = id;
        op.duration = _timings[static_cast<std::size_t>(id)].forward;
        op.syncAfter = _strategy.forwardSync(id);

        PageAccess access;
        if (_plan.entry(id).action == TensorAction::Offload)
            access.produces.push_back(id);
        if (auto it = offload_after.find(id); it != offload_after.end())
            access.planWritebacks = it->second;

        _ops.push_back(std::move(op));
        _pagingSchedule.push_back(std::move(access));
    }

    // Inference stops here: no backward pass, no weight updates, no dW
    // all-reduce. The forward ops above keep their produces/writeback
    // actions, so a serving replica still drives real paging DMA; its
    // stashes are never read back — the session is torn down per batch.
    if (_forwardOnly)
        return;

    // Backward pass in reverse topological order.
    const auto &topo = _net.topoOrder();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const LayerId id = *it;
        const LayerTiming &t = _timings[static_cast<std::size_t>(id)];

        OpSpec op;
        op.kind = OpSpec::Kind::Bwd;
        op.layer = id;
        op.duration = t.backward;
        // Recomputed cheap layers re-run their forward during backprop.
        if (_plan.entry(id).action == TensorAction::Recompute)
            op.duration += t.forward;
        op.syncAfter = _strategy.backwardSync(id);

        // Backward consumes the stashes of this layer and its effective
        // producers; anything offloaded must be paged in first.
        PageAccess access;
        auto need = [&](LayerId p) {
            if (_plan.entry(p).action == TensorAction::Offload)
                access.reads.push_back(p);
        };
        need(id);
        for (LayerId p : _net.effectiveProducers(id))
            need(p);

        if (op.duration == 0 && !op.syncAfter && access.reads.empty())
            continue; // structural no-op
        _ops.push_back(std::move(op));
        _pagingSchedule.push_back(std::move(access));
    }

    // Weight updates (gated by dW all-reduce under data parallelism).
    const bool dp_sync =
        _strategy.mode() == ParallelMode::DataParallel
        && _strategy.numDevices() > 1;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const LayerId id = *it;
        const Layer &layer = _net.layer(id);
        if (!layer.hasWeights() || layer.weightsTied())
            continue;
        OpSpec op;
        op.kind = OpSpec::Kind::Wup;
        op.layer = id;
        op.duration =
            _timings[static_cast<std::size_t>(id)].weightUpdate;
        op.needsDwLatch = dp_sync;
        _ops.push_back(std::move(op));
        _pagingSchedule.emplace_back();
    }

    // Each stash dies at its last reader; the pager frees its frames
    // when that op retires.
    std::map<LayerId, std::size_t> last_reader;
    for (std::size_t i = 0; i < _pagingSchedule.size(); ++i)
        for (LayerId layer : _pagingSchedule[i].reads)
            last_reader[layer] = i;
    for (const auto &[layer, op_index] : last_reader)
        _pagingSchedule[op_index].releases.push_back(layer);
}

void
TrainingSession::buildPipelineSchedule()
{
    const PipelinePartition &part = _strategy.partition();
    const int P = part.numStages();
    const int M = _strategy.microbatches();
    const int n = deviceCount();

    if (n > P)
        warn("%s: %d pipeline stages on %d devices; devices %d..%d "
             "idle",
             _net.name().c_str(), P, n, P, n - 1);

    _stagePrograms.assign(static_cast<std::size_t>(n), {});
    _stageSchedules.assign(static_cast<std::size_t>(n), {});
    _stageTensors.assign(static_cast<std::size_t>(n), {});
    _p2pRoutes.clear();
    _p2pBytesTotal = 0.0;

    // Boundary-transfer tokens: forward boundary b carries wave m with
    // token b*M + m; backward transfers follow after (P-1)*M. Tied-dW
    // reduction tokens are appended after the boundary ones.
    auto fwd_token = [M](int boundary, int m) {
        return boundary * M + m;
    };
    auto bwd_token = [M, P](int boundary, int m) {
        return (P - 1) * M + boundary * M + m;
    };
    int next_token = 2 * (P - 1) * M;

    // Tied weight tensors spanning stages: every member stage reduces
    // its dW contribution to the owning stage before the owner's
    // weight update. (owner, sender stage) -> token.
    const std::map<LayerId, std::vector<int>> tie_groups =
        _strategy.tieGroupStages();
    std::map<std::pair<LayerId, int>, int> tie_tokens;
    for (const auto &[owner, member_stages] : tie_groups) {
        const int owner_stage = _strategy.stageOfLayer(owner);
        for (int member : member_stages)
            if (member != owner_stage)
                tie_tokens[{owner, member}] = next_token++;
    }
    _p2pTokenCount = next_token;

    auto ensure_route = [&](int src, int dst) {
        if (_p2pRoutes.count(src * n + dst))
            return;
        Route route =
            _system.fabric().deviceRoute(sysDev(src), sysDev(dst));
        if (!route.valid())
            fatal("%s: no device-to-device path from %d to %d for "
                  "pipeline transfers",
                  systemDesignName(_system.config().design),
                  sysDev(src), sysDev(dst));
        _p2pRoutes.emplace(src * n + dst, std::move(route));
    };
    // Adjacent-stage boundary routes plus tied-dW reduction routes.
    for (int b = 0; b + 1 < P; ++b) {
        ensure_route(b, b + 1);
        ensure_route(b + 1, b);
    }
    for (const auto &[key, token] : tie_tokens) {
        (void)token;
        ensure_route(key.second, _strategy.stageOfLayer(key.first));
    }

    for (int s = 0; s < P; ++s) {
        auto &ops = _stagePrograms[static_cast<std::size_t>(s)];
        auto &sched = _stageSchedules[static_cast<std::size_t>(s)];
        const std::vector<LayerId> &stage_layers = part.stage(s).layers;

        std::vector<LayerId> tensors =
            _strategy.stageStashLayers(s, _plan);
        _stageTensors[static_cast<std::size_t>(s)] = tensors;
        const std::set<LayerId> tensor_set(tensors.begin(),
                                           tensors.end());
        std::map<LayerId, std::size_t> wave_index;
        for (std::size_t i = 0; i < stage_layers.size(); ++i)
            wave_index[stage_layers[i]] = i;

        // Within one forward wave, each stashed tensor's writeback
        // triggers at its last local forward use.
        std::map<LayerId, std::size_t> trigger_offset;
        for (LayerId t : tensors) {
            std::size_t off = 0;
            if (auto it = wave_index.find(t); it != wave_index.end())
                off = it->second;
            for (LayerId c : _net.effectiveConsumers(t))
                if (auto it = wave_index.find(c);
                    it != wave_index.end())
                    off = std::max(off, it->second);
            trigger_offset[t] = off;
        }
        // Boundary inputs become resident when the wave's first op can
        // run (their activations arrived with the recv).
        std::vector<LayerId> boundary_inputs;
        for (LayerId t : tensors)
            if (wave_index.count(t) == 0)
                boundary_inputs.push_back(t);

        // Forward waves, one per microbatch.
        for (int m = 0; m < M; ++m) {
            const std::size_t wave_start = ops.size();
            for (LayerId id : stage_layers) {
                OpSpec op;
                op.kind = OpSpec::Kind::Fwd;
                op.layer = id;
                op.duration =
                    _timings[static_cast<std::size_t>(id)].forward;

                PageAccess access;
                if (tensor_set.count(id))
                    access.produces.push_back(groupId(id, m));
                ops.push_back(std::move(op));
                sched.push_back(std::move(access));
            }
            for (LayerId p : boundary_inputs)
                sched[wave_start].produces.push_back(groupId(p, m));
            for (const auto &[tensor, off] : trigger_offset)
                sched[wave_start + off].planWritebacks.push_back(
                    groupId(tensor, m));
            if (s > 0)
                ops[wave_start].recvTokens.push_back(
                    fwd_token(s - 1, m));
            if (s + 1 < P) {
                const double bytes =
                    _strategy.boundaryBytesPerMicrobatch(s);
                ops.back().sends.push_back(
                    P2pSend{fwd_token(s, m), s + 1, bytes});
                _p2pBytesTotal += bytes;
            }
        }

        // Backward waves in reverse microbatch order (GPipe drains the
        // last-filled microbatch first).
        for (int m = M - 1; m >= 0; --m) {
            const std::size_t wave_start = ops.size();
            for (auto it = stage_layers.rbegin();
                 it != stage_layers.rend(); ++it) {
                const LayerId id = *it;
                const LayerTiming &t =
                    _timings[static_cast<std::size_t>(id)];

                OpSpec op;
                op.kind = OpSpec::Kind::Bwd;
                op.layer = id;
                op.duration = t.backward;
                if (_plan.entry(id).action == TensorAction::Recompute)
                    op.duration += t.forward;

                PageAccess access;
                auto need = [&](LayerId p) {
                    if (tensor_set.count(p))
                        access.reads.push_back(groupId(p, m));
                };
                need(id);
                for (LayerId p : _net.effectiveProducers(id))
                    need(p);

                if (op.duration == 0 && access.reads.empty())
                    continue; // structural no-op
                ops.push_back(std::move(op));
                sched.push_back(std::move(access));
            }
            if (ops.size() == wave_start) {
                // All-structural stage: keep a zero-cost op so the
                // boundary tokens have a carrier.
                OpSpec op;
                op.kind = OpSpec::Kind::Bwd;
                op.layer = stage_layers.front();
                ops.push_back(std::move(op));
                sched.emplace_back();
            }
            if (s + 1 < P)
                ops[wave_start].recvTokens.push_back(bwd_token(s, m));
            if (s > 0) {
                const double bytes =
                    _strategy.boundaryBytesPerMicrobatch(s - 1);
                ops.back().sends.push_back(
                    P2pSend{bwd_token(s - 1, m), s - 1, bytes});
                _p2pBytesTotal += bytes;
            }
        }

        // Tied-dW reduction: once this stage's final backward wave
        // retires, its accumulated contributions to remotely-owned tied
        // weight tensors travel to the owning stage.
        for (const auto &[owner, member_stages] : tie_groups) {
            (void)member_stages;
            auto it = tie_tokens.find({owner, s});
            if (it == tie_tokens.end())
                continue;
            const double bytes = static_cast<double>(
                _net.layer(owner).weightBytes());
            ops.back().sends.push_back(P2pSend{
                it->second, _strategy.stageOfLayer(owner), bytes});
            _p2pBytesTotal += bytes;
        }

        // Stage-local weight updates. No dW collective to gate on, but
        // the owner of a stage-spanning tied weight tensor waits for
        // the other member stages' dW contributions.
        const auto &topo = _net.topoOrder();
        for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
            const LayerId id = *it;
            if (part.stageOf(id) != s)
                continue;
            const Layer &layer = _net.layer(id);
            if (!layer.hasWeights() || layer.weightsTied())
                continue;
            OpSpec op;
            op.kind = OpSpec::Kind::Wup;
            op.layer = id;
            op.duration =
                _timings[static_cast<std::size_t>(id)].weightUpdate;
            if (auto group = tie_groups.find(id);
                group != tie_groups.end()) {
                for (int member : group->second)
                    if (member != s)
                        op.recvTokens.push_back(
                            tie_tokens.at({id, member}));
            }
            ops.push_back(std::move(op));
            sched.emplace_back();
        }

        // Each page group dies at its last reader.
        std::map<LayerId, std::size_t> last_reader;
        for (std::size_t i = 0; i < sched.size(); ++i)
            for (LayerId group : sched[i].reads)
                last_reader[group] = i;
        for (const auto &[group, op_index] : last_reader)
            sched[op_index].releases.push_back(group);
    }
}

std::uint64_t
TrainingSession::stageFootprintBytes(int s) const
{
    const PipelineStage &stage = _strategy.partition().stage(s);
    const auto mb =
        static_cast<std::uint64_t>(_strategy.microbatchSize());
    const auto waves =
        static_cast<std::uint64_t>(_strategy.microbatches());
    std::uint64_t resident = 0;
    std::uint64_t largest = 0;
    std::set<LayerId> kept_inputs;
    for (LayerId id : stage.layers) {
        const Layer &layer = _net.layer(id);
        const TensorPlan &entry = _plan.entry(id);
        // Every microbatch's kept stash is live across the fwd->bwd
        // turn of the pipeline.
        if (entry.action == TensorAction::KeepLocal) {
            resident += (entry.outBytesPerSample
                         + entry.auxBytesPerSample)
                * mb * waves;
        }
        const std::uint64_t working =
            (layer.inBytesPerSample() + layer.outBytesPerSample()
             + layer.auxStashBytesPerSample())
            * mb;
        largest = std::max(largest, working);
        // Received boundary activations the plan does not page stay
        // resident until their backward wave.
        for (LayerId p : _net.effectiveProducers(id)) {
            if (_strategy.stageOfLayer(p) < s
                && _plan.entry(p).action != TensorAction::Offload)
                kept_inputs.insert(p);
        }
    }
    for (LayerId p : kept_inputs)
        resident += _net.layer(p).outBytesPerSample() * mb * waves;
    return _strategy.stageWeightBytes(s) + resident + largest;
}

std::uint64_t
TrainingSession::footprintBytesPerDevice() const
{
    if (_strategy.isPipeline()) {
        std::uint64_t worst = 0;
        for (int s = 0; s < _strategy.pipelineStages(); ++s)
            worst = std::max(worst, stageFootprintBytes(s));
        return worst;
    }

    const std::int64_t batch = _strategy.perDeviceBatch();
    std::uint64_t resident = 0;
    std::uint64_t largest = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(_net.size()); ++id) {
        const Layer &layer = _net.layer(id);
        const TensorPlan &entry = _plan.entry(id);
        const auto shards = static_cast<std::uint64_t>(
            _strategy.scaling(layer).modelShards);
        if (entry.action == TensorAction::KeepLocal) {
            resident += (entry.outBytesPerSample
                         + entry.auxBytesPerSample / shards)
                * static_cast<std::uint64_t>(batch);
        }
        // Working set of the layer while executing: full input plus the
        // shard of output/aux this device produces.
        const std::uint64_t working =
            (layer.inBytesPerSample()
             + (layer.outBytesPerSample()
                + layer.auxStashBytesPerSample()) / shards)
            * static_cast<std::uint64_t>(batch);
        largest = std::max(largest, working);
    }
    // Weights + resident stash + the largest live working set (vDNN
    // keeps only the executing layer's buffers resident).
    return _strategy.weightBytesPerDevice(_net) + resident + largest;
}

void
TrainingSession::releaseBuffers()
{
    if (!_allocated)
        return;
    for (int d = 0; d < deviceCount(); ++d) {
        VmemRuntime &rt = _system.runtime(sysDev(d));
        for (const auto &[group, ptr] :
             _remotePtrs[static_cast<std::size_t>(d)])
            rt.freeRemote(ptr);
        if (d < static_cast<int>(_localPlacements.size()))
            _system.addressSpace(sysDev(d)).free(
                _localPlacements[static_cast<std::size_t>(d)]);
    }
    _remotePtrs.clear();
    _localPlacements.clear();
    _pagers.clear();
    _allocated = false;
}

void
TrainingSession::allocateBuffers()
{
    if (_allocated)
        return;
    _allocated = true;

    const int n = deviceCount();
    _remotePtrs.assign(static_cast<std::size_t>(n), {});
    _localPlacements.clear();

    if (_strategy.isPipeline()) {
        const int P = _strategy.pipelineStages();
        const int M = _strategy.microbatches();
        for (int d = 0; d < n; ++d) {
            DeviceAddressSpace &space = _system.addressSpace(sysDev(d));
            const std::uint64_t footprint =
                d < P ? stageFootprintBytes(d) : 0;
            if (!space.fitsLocal(footprint)) {
                fatal("%s: stage-%d footprint %s exceeds devicelocal "
                      "capacity %s for %s (batch %lld, %s, %d stages x "
                      "%d microbatches) — the memory capacity wall; "
                      "raise --microbatches or --pipeline-stages",
                      systemDesignName(_system.config().design), d,
                      formatBytes(
                          static_cast<double>(footprint)).c_str(),
                      formatBytes(static_cast<double>(
                          space.localCapacity())).c_str(),
                      _net.name().c_str(),
                      static_cast<long long>(_strategy.globalBatch()),
                      parallelModeName(_strategy.mode()), P, M);
            }
            _localPlacements.push_back(space.mallocLocal(footprint));
            if (d >= P)
                continue;
            for (LayerId layer :
                 _stageTensors[static_cast<std::size_t>(d)]) {
                const double bytes = _strategy.offloadBytesPerDevice(
                    _net.layer(layer));
                for (int m = 0; m < M; ++m) {
                    _remotePtrs[static_cast<std::size_t>(d)]
                               [groupId(layer, m)] =
                        _system.runtime(sysDev(d)).mallocRemote(
                            static_cast<std::uint64_t>(bytes) + 1);
                }
            }
        }
        createPagers();
        return;
    }

    for (int d = 0; d < n; ++d) {
        DeviceAddressSpace &space = _system.addressSpace(sysDev(d));
        const std::uint64_t footprint = footprintBytesPerDevice();
        if (!space.fitsLocal(footprint)) {
            fatal("%s: per-device footprint %s exceeds devicelocal "
                  "capacity %s for %s (batch %lld, %s) — the memory "
                  "capacity wall; reduce the batch size or enable a "
                  "larger backing store",
                  systemDesignName(_system.config().design),
                  formatBytes(static_cast<double>(footprint)).c_str(),
                  formatBytes(static_cast<double>(
                      space.localCapacity())).c_str(),
                  _net.name().c_str(),
                  static_cast<long long>(_strategy.globalBatch()),
                  parallelModeName(_strategy.mode()));
        }
        _localPlacements.push_back(space.mallocLocal(footprint));

        // Table I: allocate deviceremote backing buffers for every
        // offloaded tensor through the runtime API.
        for (LayerId id = 0; id < static_cast<LayerId>(_net.size());
             ++id) {
            if (_plan.entry(id).action != TensorAction::Offload)
                continue;
            const double bytes =
                _strategy.offloadBytesPerDevice(_net.layer(id));
            _remotePtrs[static_cast<std::size_t>(d)][id] =
                _system.runtime(sysDev(d)).mallocRemote(
                    static_cast<std::uint64_t>(bytes) + 1);
        }
    }

    createPagers();
}

void
TrainingSession::createPagers()
{
    const int n = deviceCount();
    const SystemConfig &cfg = _system.config();
    const auto layer_count = static_cast<std::size_t>(_net.size());
    const bool pipeline = _strategy.isPipeline();
    const auto waves = pipeline
        ? static_cast<std::size_t>(_strategy.microbatches())
        : std::size_t{1};
    const std::size_t group_count = layer_count * waves;

    std::vector<double> wire_bytes(group_count, 0.0);
    std::vector<std::uint64_t> frame_bytes(group_count, 0);
    std::vector<LayerId> group_layer;
    if (pipeline) {
        group_layer.resize(group_count);
        for (std::size_t g = 0; g < group_count; ++g)
            group_layer[g] = static_cast<LayerId>(g / waves);
    }
    for (LayerId id = 0; id < static_cast<LayerId>(_net.size()); ++id) {
        if (_plan.entry(id).action != TensorAction::Offload)
            continue;
        const double bytes =
            _strategy.offloadBytesPerDevice(_net.layer(id));
        for (std::size_t m = 0; m < waves; ++m) {
            const auto g = static_cast<std::size_t>(id) * waves + m;
            wire_bytes[g] = bytes / cfg.dmaCompressionRatio;
            frame_bytes[g] = static_cast<std::uint64_t>(bytes) + 1;
        }
    }

    _pagers.clear();
    for (int d = 0; d < n; ++d) {
        DevicePager::Wiring wiring;
        wiring.runtime = &_system.runtime(sysDev(d));
        wiring.remotePtrs = &_remotePtrs[static_cast<std::size_t>(d)];
        wiring.net = &_net;
        wiring.schedule = pipeline
            ? &_stageSchedules[static_cast<std::size_t>(d)]
            : &_pagingSchedule;
        wiring.wireBytes = wire_bytes;
        wiring.frameBytes = frame_bytes;
        wiring.groupLayer = group_layer;
        // HBM left after weights, keep-local stash, and working
        // buffers is the stash frame budget.
        const DeviceAddressSpace &space =
            _system.addressSpace(sysDev(d));
        wiring.frameCapacity =
            space.localCapacity() - space.localUsed();
        wiring.config = cfg.paging;
        // SPMD modes track device 0's DMA (every device is the same);
        // pipeline unions all stages so vmemSec reflects the machine.
        wiring.tracker =
            (pipeline || d == 0) ? &_vmemTracker : nullptr;
        _pagers.push_back(std::make_unique<DevicePager>(
            "dev" + std::to_string(sysDev(d)) + ".pager",
            std::move(wiring)));
    }
}

DevicePager &
TrainingSession::pager(int dev)
{
    if (_pagers.empty())
        allocateBuffers();
    return *_pagers.at(static_cast<std::size_t>(dev));
}

void
TrainingSession::dumpPagingStats(std::ostream &os) const
{
    for (const auto &pager : _pagers)
        pager->stats().dump(os);
}

std::uint64_t
TrainingSession::hbmResidentBytes() const
{
    std::uint64_t total = 0;
    for (const auto &pager : _pagers)
        total += pager->pageTable().usedBytes();
    return total;
}

void
TrainingSession::tryIssue(int dev)
{
    DeviceCtx &ctx = _devs[static_cast<std::size_t>(dev)];
    const std::vector<OpSpec> &ops = program(dev);
    if (ctx.running || ctx.nextOp >= ops.size())
        return;
    const OpSpec &op = ops[ctx.nextOp];

    Latch *wait = nullptr;
    int cat = 0;
    if (ctx.blockingGate && !ctx.blockingGate->done()) {
        wait = ctx.blockingGate;
        cat = 1;
    }
    if (!wait) {
        for (int token : op.recvTokens) {
            Latch *recv = _p2pLatches.at(
                static_cast<std::size_t>(token)).get();
            if (!recv->done()) {
                wait = recv;
                cat = 1;
                break;
            }
        }
    }
    if (!wait) {
        if (Latch *gate =
                _pagers[static_cast<std::size_t>(dev)]->demand(
                    ctx.nextOp)) {
            wait = gate;
            cat = 2;
        }
    }
    if (!wait && op.needsDwLatch) {
        auto it = _dwSync.find(op.layer);
        if (it == _dwSync.end())
            panic("weight update of layer %d before its dW sync point",
                  op.layer);
        if (!it->second->latch().done()) {
            wait = &it->second->latch();
            cat = 1;
        }
    }
    if (wait) {
        ctx.waitedCat = cat;
        wait->whenDone([this, dev] { tryIssue(dev); });
        return;
    }

    // Issue on the serial compute stream.
    ctx.running = true;
    ctx.blockingGate = nullptr;
    const Tick now = _system.eventQueue().now();
    if (ctx.waitedCat == 2) {
        _pagers[static_cast<std::size_t>(dev)]->noteStall(
            now - ctx.readyAt);
    }
    const auto udev = static_cast<std::size_t>(dev);
    _computeTicks[udev] += op.duration;
    if (ctx.waitedCat == 1)
        _stallSync[udev] += now - ctx.readyAt;
    else if (ctx.waitedCat == 2)
        _stallVmem[udev] += now - ctx.readyAt;
    ctx.waitedCat = 0;
    _system.device(sysDev(dev)).occupyCompute(now, op.duration);
    CausalScope causal_scope(
        _system.eventQueue().causalRecorder(), WaitKind::Compute,
        "dev" + std::to_string(sysDev(dev)));
    _system.eventQueue().scheduleAfter(
        op.duration, [this, dev] { completeOp(dev); },
        "op_complete");
}

void
TrainingSession::issueP2p(int src, const P2pSend &send)
{
    Latch *latch =
        _p2pLatches.at(static_cast<std::size_t>(send.token)).get();
    if (send.bytes <= 0.0) {
        latch->complete();
        return;
    }
    const Route &route =
        _p2pRoutes.at(src * deviceCount() + send.dst);
    const Tick launched = _system.eventQueue().now();
    _syncTracker.begin(launched);
    const int dst = send.dst;
    CausalScope causal_scope(_system.eventQueue().causalRecorder(),
                             WaitKind::Control, CausalCtx::P2p);
    sendFlow({route}, send.bytes,
             _system.config().collectiveChunkBytes,
             [this, latch, launched, src, dst] {
                 const Tick now = _system.eventQueue().now();
                 _syncTracker.end(now);
                 if (_trace) {
                     if (launched > now)
                         panic("p2p trace span launched at tick %llu, "
                               "after its completion (%llu)",
                               static_cast<unsigned long long>(
                                   launched),
                               static_cast<unsigned long long>(now));
                     _trace->addSpan(
                         "collective", "p2p",
                         "xfer d" + std::to_string(src) + "->d"
                             + std::to_string(dst),
                         launched, now - launched, "sync");
                 }
                 latch->complete();
             });
}

int
TrainingSession::reportDevice() const
{
    if (!_strategy.isPipeline())
        return 0;
    int best = 0;
    for (int d = 1; d < deviceCount(); ++d)
        if (_computeTicks[static_cast<std::size_t>(d)]
            > _computeTicks[static_cast<std::size_t>(best)])
            best = d;
    return best;
}

void
TrainingSession::completeOp(int dev)
{
    DeviceCtx &ctx = _devs[static_cast<std::size_t>(dev)];
    const std::size_t op_index = ctx.nextOp;
    const OpSpec &op = program(dev)[op_index];
    ctx.running = false;
    ctx.readyAt = _system.eventQueue().now();

    if (_trace && dev == 0 && op.duration > 0) {
        // Invariant guards: the span must not start before tick 0
        // (Tick is unsigned — "negative duration" is underflow) nor
        // extend past now().
        if (op.duration > ctx.readyAt)
            panic("op trace span of layer %d would start before tick "
                  "0 (duration %llu > end %llu)",
                  op.layer,
                  static_cast<unsigned long long>(op.duration),
                  static_cast<unsigned long long>(ctx.readyAt));
        if (ctx.readyAt > _system.eventQueue().now())
            panic("op trace span of layer %d ends at tick %llu, past "
                  "now (%llu)",
                  op.layer,
                  static_cast<unsigned long long>(ctx.readyAt),
                  static_cast<unsigned long long>(
                      _system.eventQueue().now()));
        const char *kind = op.kind == OpSpec::Kind::Fwd
            ? "fwd "
            : (op.kind == OpSpec::Kind::Bwd ? "bwd " : "wup ");
        const Tick span_start = ctx.readyAt - op.duration;
        _trace->addSpan("device", computeTrack(),
                        kind + _net.layer(op.layer).name(), span_start,
                        op.duration);
        if (_iterFlow != 0) {
            // Head of a dispatch arrow armed by the cluster/serving
            // driver: bind to this, the iteration's first traced op.
            _trace->flowEnd("device", computeTrack(), "dispatch",
                            span_start, _iterFlow);
            _iterFlow = 0;
        }
    }

    _pagers[static_cast<std::size_t>(dev)]->opRetired(op_index);

    for (const P2pSend &send : op.sends)
        issueP2p(dev, send);

    if (op.syncAfter) {
        auto it = _syncPoints.find(op_index);
        if (it == _syncPoints.end())
            panic("op %zu lacks its sync point", op_index);
        if (op.syncAfter->blocking)
            ctx.blockingGate = &it->second->latch();
        it->second->arrive();
    }

    ++ctx.nextOp;
    _pagers[static_cast<std::size_t>(dev)]->frontierAdvanced(
        ctx.nextOp);
    if (ctx.nextOp == program(dev).size())
        deviceFinished();
    else
        tryIssue(dev);
}

void
TrainingSession::deviceFinished()
{
    if (--_devicesRemaining > 0)
        return;
    if (_onIterationDone)
        finishWhenQuiescent();
}

void
TrainingSession::finishWhenQuiescent()
{
    // Trailing writeback DMAs outlive the compute programs; the
    // iteration (and the devices) are only done when they drain —
    // which is also what the standalone run()'s full queue drain
    // measures.
    for (auto &pager : _pagers) {
        if (!pager->dmaIdle()) {
            pager->whenDmaIdle([this] { finishWhenQuiescent(); });
            return;
        }
    }
    if (simcheck::enabled()) {
        // The loop above vouched for quiescence; re-assert it through
        // the fault handlers' own counters so a desynchronized
        // dmaIdle() shortcut cannot mask a leaked DMA.
        for (auto &pager : _pagers)
            pager->simcheckExpectQuiescent("end of iteration");
    }
    auto done = std::move(_onIterationDone);
    _onIterationDone = nullptr;
    done(collectResult());
}

void
TrainingSession::launchCollective(const SyncOp &sync,
                                  CollectiveEngine::Handler on_done)
{
    if (_ownsAllDevices) {
        _system.collectives().launch(sync.kind, sync.bytes,
                                     std::move(on_done));
    } else {
        _system.collectives().launchOn(_jobRingPtrs, sync.kind,
                                       sync.bytes, std::move(on_done),
                                       sysDev(0));
    }
}

IterationResult
TrainingSession::run()
{
    allocateBuffers();
    _system.resetStats();
    setupIteration();

    EventQueue &eq = _system.eventQueue();
    eq.run();

    // Deadlock check: every device must have drained its program.
    for (int d = 0; d < deviceCount(); ++d) {
        if (_devs[static_cast<std::size_t>(d)].nextOp
            != program(d).size())
            panic("device %d stalled at op %zu/%zu — scheduling deadlock",
                  d, _devs[static_cast<std::size_t>(d)].nextOp,
                  program(d).size());
    }
    return collectResult();
}

void
TrainingSession::startIteration(
    std::function<void(const IterationResult &)> on_done)
{
    allocateBuffers();

    // The fabric (and any co-located session's devices) are shared —
    // reset only what this session owns.
    for (int d = 0; d < deviceCount(); ++d) {
        DeviceNode &device = _system.device(sysDev(d));
        device.resetStats();
        device.resetOccupancy();
        _system.dma(sysDev(d)).resetStats();
    }

    _onIterationDone = std::move(on_done);
    setupIteration();
}

void
TrainingSession::setupIteration()
{
    EventQueue &eq = _system.eventQueue();
    const int n = deviceCount();

    // Reset per-iteration state.
    _devs.assign(static_cast<std::size_t>(n), DeviceCtx{});
    _syncPoints.clear();
    _dwSync.clear();
    _p2pLatches.clear();
    for (int t = 0; t < _p2pTokenCount; ++t)
        _p2pLatches.push_back(std::make_unique<Latch>());
    _syncTracker.reset();
    _vmemTracker.reset();
    _computeTicks.assign(static_cast<std::size_t>(n), 0);
    _stallSync.assign(static_cast<std::size_t>(n), 0);
    _stallVmem.assign(static_cast<std::size_t>(n), 0);
    _startTick = eq.now();
    _eventsBefore = eq.executedCount();
    _hostBytesBefore = _system.fabric().hostBytes();
    _chanBytesBefore.clear();
    _chanBusyBefore.clear();
    for (const Channel *ch : _system.fabric().channels()) {
        _chanBytesBefore.push_back(ch->bytesTransferred());
        _chanBusyBefore.push_back(ch->busyTicks());
    }
    _devicesRemaining = n;

    for (int d = 0; d < n; ++d)
        _pagers[static_cast<std::size_t>(d)]->beginIteration(
            d == 0 ? _trace : nullptr);

    _iterSyncBytes = 0.0;
    if (_strategy.isPipeline()) {
        // Boundary activations forward + gradients backward; no
        // collectives to set up.
        _iterSyncBytes = _p2pBytesTotal;
    } else {
        for (std::size_t i = 0; i < _ops.size(); ++i) {
            if (!_ops[i].syncAfter)
                continue;
            const SyncOp sync = *_ops[i].syncAfter;
            _iterSyncBytes += sync.bytes;
            const std::string sync_label =
                std::string(collectiveKindName(sync.kind)) + " "
                + _net.layer(_ops[i].layer).name();
            auto point = std::make_unique<SyncPoint>(
                n, [this, sync, sync_label](Latch &latch) {
                    const Tick launched = _system.eventQueue().now();
                    _syncTracker.begin(launched);
                    launchCollective(
                        sync,
                        [this, &latch, launched, sync_label] {
                            const Tick now = _system.eventQueue().now();
                            _syncTracker.end(now);
                            if (_trace) {
                                if (launched > now)
                                    panic("collective trace span "
                                          "launched at tick %llu, "
                                          "after its completion "
                                          "(%llu)",
                                          static_cast<
                                              unsigned long long>(
                                              launched),
                                          static_cast<
                                              unsigned long long>(
                                              now));
                                _trace->addSpan("collective",
                                                "collectives",
                                                sync_label, launched,
                                                now - launched, "sync");
                            }
                            latch.complete();
                        });
                });
            if (_ops[i].kind == OpSpec::Kind::Bwd
                && _ops[i].syncAfter->kind == CollectiveKind::AllReduce
                && !_ops[i].syncAfter->blocking) {
                _dwSync[_ops[i].layer] = point.get();
            }
            _syncPoints.emplace(i, std::move(point));
        }
    }

    // Start every device's program (devices with empty programs —
    // idle pipeline positions — are already done).
    for (int d = 0; d < n; ++d) {
        _pagers[static_cast<std::size_t>(d)]->frontierAdvanced(0);
        tryIssue(d);
        if (program(d).empty())
            deviceFinished();
    }
}

IterationResult
TrainingSession::collectResult()
{
    EventQueue &eq = _system.eventQueue();

    // Device 0 represents the SPMD modes; pipeline reports the
    // bottleneck stage's view (the perf canary would otherwise watch
    // whatever landed on stage 0).
    const int report = reportDevice();
    const auto ureport = static_cast<std::size_t>(report);

    IterationResult result;
    result.makespan = eq.now() - _startTick;
    result.breakdown.computeSec =
        ticksToSeconds(_computeTicks[ureport]);
    result.breakdown.syncSec =
        ticksToSeconds(_syncTracker.total(eq.now()));
    result.breakdown.vmemSec =
        ticksToSeconds(_vmemTracker.total(eq.now()));
    result.breakdown.exposedSyncSec =
        ticksToSeconds(_stallSync[ureport]);
    result.breakdown.exposedVmemSec =
        ticksToSeconds(_stallVmem[ureport]);
    result.hostBytes =
        _system.fabric().hostBytes() - _hostBytesBefore;
    const int sockets = _system.config().fabric.numSockets;
    if (result.makespan > 0 && sockets > 0) {
        result.hostAvgBwPerSocket = result.hostBytes
            / ticksToSeconds(result.makespan)
            / static_cast<double>(sockets);
    }
    result.hostPeakBwPerSocket = _system.fabric().hostPeakBandwidth();
    result.offloadBytesPerDevice =
        _system.dma(sysDev(report)).bytesOffloaded()
        + _system.dma(sysDev(report)).bytesPrefetched();
    result.syncBytes = _iterSyncBytes;
    result.eventsExecuted = eq.executedCount() - _eventsBefore;
    result.paging = _pagers[ureport]->counters();

    // Per-channel deltas: where the iteration's traffic actually
    // queued, so sweeps can name the bottleneck link rather than just
    // the bottleneck pipeline stage.
    const std::vector<Channel *> channels = _system.fabric().channels();
    const double span = ticksToSeconds(result.makespan);
    result.channels.reserve(channels.size());
    for (std::size_t c = 0; c < channels.size(); ++c) {
        ChannelUsage usage;
        usage.channel = channels[c]->name();
        usage.bytes = channels[c]->bytesTransferred()
            - (c < _chanBytesBefore.size() ? _chanBytesBefore[c] : 0.0);
        usage.busySec = ticksToSeconds(
            channels[c]->busyTicks()
            - (c < _chanBusyBefore.size() ? _chanBusyBefore[c] : 0));
        usage.utilization = span > 0.0 ? usage.busySec / span : 0.0;
        usage.peakQueueDepth = channels[c]->peakQueueDepth();
        result.channels.push_back(std::move(usage));
    }
    return result;
}

} // namespace mcdla
