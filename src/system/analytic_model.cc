/**
 * @file
 * Analytic estimator implementation.
 */

#include "system/analytic_model.hh"

#include "collective/ring_collective.hh"
#include "device/compute_model.hh"
#include "vmem/offload_plan.hh"

namespace mcdla
{

double
designVmemBandwidth(const SystemConfig &cfg)
{
    const double link = cfg.device.linkBandwidth;
    const int n_links = cfg.device.numLinks;
    switch (cfg.design) {
      case SystemDesign::DcDla:
        return cfg.fabric.pcieBandwidth();
      case SystemDesign::HcDla:
        return link * (n_links / 2);
      case SystemDesign::McDlaS:
      case SystemDesign::McDlaSA:
        return link * 2.0;
      case SystemDesign::McDlaL:
        return link * (n_links / 2);
      case SystemDesign::McDlaB:
      case SystemDesign::McDlaX:
        return link * n_links;
      case SystemDesign::DcDlaOracle:
        return 0.0;
    }
    return 0.0;
}

namespace
{

/** Ring stage count for the design's collective rings. */
int
designRingStages(const SystemConfig &cfg)
{
    const int n = cfg.fabric.numDevices;
    switch (cfg.design) {
      case SystemDesign::McDlaL:
      case SystemDesign::McDlaB:
      case SystemDesign::McDlaX:
        return 2 * n;
      case SystemDesign::McDlaS:
      case SystemDesign::McDlaSA:
        // Mixed ring lengths; use the average stage count.
        return n + n / 2;
      default:
        return n;
    }
}

/** Number of logical unidirectional rings available for collectives. */
int
designRingCount(const SystemConfig &cfg)
{
    const int rings = 2 * (cfg.device.numLinks / 2);
    if (cfg.design == SystemDesign::HcDla) {
        // Half the links host-bound; the second ring pair multiplexes
        // odd hops, worth ~half a ring pair.
        return rings / 2 + 1;
    }
    return rings;
}

} // anonymous namespace

namespace
{

/**
 * Pipeline-mode estimate: per-stage roofline totals with GPipe
 * fill/drain bounds. The lower-bound components are per-device floors
 * (bottleneck stage compute, bottleneck stage vmem, most loaded
 * boundary link); everything the other stages add lands in
 * pipelineBubbleSec so the zero-overlap upper bound stays honest.
 */
AnalyticEstimate
estimatePipelineIteration(const SystemConfig &cfg, const Network &net,
                          const ParallelStrategy &strategy,
                          const OffloadPlan &plan,
                          const ComputeModel &model)
{
    AnalyticEstimate est;
    const PipelinePartition &part = strategy.partition();
    const int P = part.numStages();
    const auto M = static_cast<double>(strategy.microbatches());

    // Per-stage per-microbatch compute and per-stage update time.
    std::vector<double> stage_compute(static_cast<std::size_t>(P));
    std::vector<double> stage_update(static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
        Tick compute = 0;
        Tick update = 0;
        for (LayerId id : part.stage(s).layers) {
            const Layer &layer = net.layer(id);
            const LayerTiming t =
                model.layerTiming(layer, strategy.scaling(layer));
            compute += t.forward + t.backward;
            if (plan.entry(id).action == TensorAction::Recompute)
                compute += t.forward;
            if (layer.hasWeights() && !layer.weightsTied())
                update += t.weightUpdate;
        }
        stage_compute[static_cast<std::size_t>(s)] =
            ticksToSeconds(compute);
        stage_update[static_cast<std::size_t>(s)] =
            ticksToSeconds(update);
    }
    double round_trip = 0.0;
    double max_compute = 0.0;
    double busiest_stage = 0.0;
    double update_total = 0.0;
    for (int s = 0; s < P; ++s) {
        const double c = stage_compute[static_cast<std::size_t>(s)];
        const double u = stage_update[static_cast<std::size_t>(s)];
        round_trip += c;
        max_compute = std::max(max_compute, c);
        busiest_stage = std::max(busiest_stage, M * c + u);
        update_total += u;
    }
    // Lower bound: the bottleneck stage must run its M waves serially,
    // and one microbatch must round-trip every stage.
    est.computeSec = std::max(busiest_stage, round_trip);
    // Upper bound adds the fill/drain bubble and load imbalance of the
    // blocking GPipe schedule.
    const double compute_upper =
        round_trip + (M - 1.0) * max_compute + update_total;
    est.pipelineBubbleSec += compute_upper - est.computeSec;

    // vmem: each stage migrates its page groups (own stashes plus
    // boundary inputs) out and back, M microbatch copies each.
    est.vmemBandwidth = designVmemBandwidth(cfg);
    double vmem_total = 0.0;
    double vmem_max = 0.0;
    for (int s = 0; s < P; ++s) {
        double stage_bytes = 0.0;
        for (LayerId id : strategy.stageStashLayers(s, plan))
            stage_bytes += 2.0 * M
                * strategy.offloadBytesPerDevice(net.layer(id))
                / cfg.dmaCompressionRatio;
        vmem_total += stage_bytes;
        vmem_max = std::max(vmem_max, stage_bytes);
    }
    est.vmemBytes = vmem_max;
    if (est.vmemBandwidth > 0.0) {
        // Writebacks and fills ride opposite link directions, so the
        // hard per-device floor is one direction's volume (half the
        // round-trip bytes); the upper bound still serializes all of
        // every stage's traffic.
        est.vmemSec = vmem_max / 2.0 / est.vmemBandwidth;
        est.pipelineBubbleSec +=
            (vmem_total - vmem_max / 2.0) / est.vmemBandwidth;
    }

    // Boundary transfers: per boundary and direction, M microbatch
    // payloads serialize on the connecting link.
    double sync_total = 0.0;
    double sync_max = 0.0;
    for (int b = 0; b + 1 < P; ++b) {
        const double bytes = strategy.boundaryBytesPerMicrobatch(b);
        est.syncBytes += 2.0 * M * bytes;
        const double dir_sec =
            M * bytes / cfg.device.linkBandwidth
            + M * ticksToSeconds(cfg.fabric.linkLatency);
        sync_total += 2.0 * dir_sec;
        sync_max = std::max(sync_max, dir_sec);
    }
    // Tied weight tensors spanning stages reduce their dW to the owner
    // before its update; the transfers overlap the pipeline drain, so
    // they only widen the upper bound.
    for (const auto &[owner, member_stages] :
         strategy.tieGroupStages()) {
        const double bytes =
            static_cast<double>(net.layer(owner).weightBytes());
        const double senders =
            static_cast<double>(member_stages.size() - 1);
        est.syncBytes += senders * bytes;
        sync_total += senders
            * (bytes / cfg.device.linkBandwidth
               + ticksToSeconds(cfg.fabric.linkLatency));
    }
    est.syncSec = sync_max;
    est.pipelineBubbleSec += sync_total - sync_max;
    return est;
}

} // anonymous namespace

AnalyticEstimate
estimateIteration(const SystemConfig &cfg, const Network &net,
                  ParallelMode mode, std::int64_t global_batch,
                  int pipeline_stages, int microbatches)
{
    AnalyticEstimate est;
    const ParallelStrategy strategy(
        net, mode, cfg.fabric.numDevices, global_batch,
        PipelineConfig{pipeline_stages, microbatches, cfg.device});
    const OffloadPlan plan(net, cfg.offloadPolicy());
    const ComputeModel model(cfg.device);

    if (mode == ParallelMode::Pipeline)
        return estimatePipelineIteration(cfg, net, strategy, plan,
                                         model);

    // Compute: sum of layer timings plus recompute charges.
    Tick compute = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        const LayerTiming t =
            model.layerTiming(layer, strategy.scaling(layer));
        compute += t.forward + t.backward;
        if (plan.entry(id).action == TensorAction::Recompute)
            compute += t.forward;
        if (layer.hasWeights() && !layer.weightsTied())
            compute += t.weightUpdate;
    }
    est.computeSec = ticksToSeconds(compute);

    // vmem: offload + prefetch volume over the aggregate bandwidth.
    double vmem_bytes = 0.0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (plan.entry(id).action != TensorAction::Offload)
            continue;
        vmem_bytes += 2.0
            * strategy.offloadBytesPerDevice(net.layer(id))
            / cfg.dmaCompressionRatio;
    }
    est.vmemBytes = vmem_bytes;
    est.vmemBandwidth = designVmemBandwidth(cfg);
    est.vmemSec = est.vmemBandwidth > 0.0
        ? vmem_bytes / est.vmemBandwidth
        : 0.0;

    // Sync: analytic ring latencies, message split across the rings.
    const int stages = designRingStages(cfg);
    const int rings = designRingCount(cfg);
    double sync_s = 0.0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        for (const auto &sync :
             {strategy.forwardSync(id), strategy.backwardSync(id)}) {
            if (!sync)
                continue;
            est.syncBytes += sync->bytes;
            const Tick t = analyticRingLatency(
                sync->kind, stages,
                sync->bytes / static_cast<double>(rings),
                cfg.device.linkBandwidth, cfg.fabric.linkLatency,
                cfg.collectiveChunkBytes);
            sync_s += ticksToSeconds(t);
        }
    }
    est.syncSec = sync_s;
    return est;
}

} // namespace mcdla
