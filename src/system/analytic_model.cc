/**
 * @file
 * Analytic estimator implementation.
 */

#include "system/analytic_model.hh"

#include "collective/ring_collective.hh"
#include "device/compute_model.hh"
#include "vmem/offload_plan.hh"

namespace mcdla
{

double
designVmemBandwidth(const SystemConfig &cfg)
{
    const double link = cfg.device.linkBandwidth;
    const int n_links = cfg.device.numLinks;
    switch (cfg.design) {
      case SystemDesign::DcDla:
        return cfg.fabric.pcieBandwidth();
      case SystemDesign::HcDla:
        return link * (n_links / 2);
      case SystemDesign::McDlaS:
      case SystemDesign::McDlaSA:
        return link * 2.0;
      case SystemDesign::McDlaL:
        return link * (n_links / 2);
      case SystemDesign::McDlaB:
      case SystemDesign::McDlaX:
        return link * n_links;
      case SystemDesign::DcDlaOracle:
        return 0.0;
    }
    return 0.0;
}

namespace
{

/** Ring stage count for the design's collective rings. */
int
designRingStages(const SystemConfig &cfg)
{
    const int n = cfg.fabric.numDevices;
    switch (cfg.design) {
      case SystemDesign::McDlaL:
      case SystemDesign::McDlaB:
      case SystemDesign::McDlaX:
        return 2 * n;
      case SystemDesign::McDlaS:
      case SystemDesign::McDlaSA:
        // Mixed ring lengths; use the average stage count.
        return n + n / 2;
      default:
        return n;
    }
}

/** Number of logical unidirectional rings available for collectives. */
int
designRingCount(const SystemConfig &cfg)
{
    const int rings = 2 * (cfg.device.numLinks / 2);
    if (cfg.design == SystemDesign::HcDla) {
        // Half the links host-bound; the second ring pair multiplexes
        // odd hops, worth ~half a ring pair.
        return rings / 2 + 1;
    }
    return rings;
}

} // anonymous namespace

AnalyticEstimate
estimateIteration(const SystemConfig &cfg, const Network &net,
                  ParallelMode mode, std::int64_t global_batch)
{
    AnalyticEstimate est;
    const ParallelStrategy strategy(net, mode, cfg.fabric.numDevices,
                                    global_batch);
    const OffloadPlan plan(net, cfg.offloadPolicy());
    const ComputeModel model(cfg.device);

    // Compute: sum of layer timings plus recompute charges.
    Tick compute = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        const LayerTiming t =
            model.layerTiming(layer, strategy.scaling(layer));
        compute += t.forward + t.backward;
        if (plan.entry(id).action == TensorAction::Recompute)
            compute += t.forward;
        if (layer.hasWeights() && !layer.weightsTied())
            compute += t.weightUpdate;
    }
    est.computeSec = ticksToSeconds(compute);

    // vmem: offload + prefetch volume over the aggregate bandwidth.
    double vmem_bytes = 0.0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (plan.entry(id).action != TensorAction::Offload)
            continue;
        vmem_bytes += 2.0
            * strategy.offloadBytesPerDevice(net.layer(id))
            / cfg.dmaCompressionRatio;
    }
    est.vmemBytes = vmem_bytes;
    est.vmemBandwidth = designVmemBandwidth(cfg);
    est.vmemSec = est.vmemBandwidth > 0.0
        ? vmem_bytes / est.vmemBandwidth
        : 0.0;

    // Sync: analytic ring latencies, message split across the rings.
    const int stages = designRingStages(cfg);
    const int rings = designRingCount(cfg);
    double sync_s = 0.0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        for (const auto &sync :
             {strategy.forwardSync(id), strategy.backwardSync(id)}) {
            if (!sync)
                continue;
            est.syncBytes += sync->bytes;
            const Tick t = analyticRingLatency(
                sync->kind, stages,
                sync->bytes / static_cast<double>(rings),
                cfg.device.linkBandwidth, cfg.fabric.linkLatency,
                cfg.collectiveChunkBytes);
            sync_s += ticksToSeconds(t);
        }
    }
    est.syncSec = sync_s;
    return est;
}

} // namespace mcdla
