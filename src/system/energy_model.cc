/**
 * @file
 * Energy model implementation.
 */

#include "system/energy_model.hh"

#include <algorithm>

namespace mcdla
{

EnergyReport
estimateEnergy(System &system, const IterationResult &r,
               const EnergyConfig &cfg)
{
    EnergyReport report;
    report.iterationSeconds = r.iterationSeconds();
    const double span = report.iterationSeconds;
    if (span <= 0.0)
        return report;

    // Devices: busy time at TDP, remainder at idle power.
    for (int d = 0; d < system.numDevices(); ++d) {
        const double busy_s = ticksToSeconds(static_cast<Tick>(
            system.device(d).stats().value("compute_busy_ticks")));
        const double busy = std::min(busy_s, span);
        report.deviceJoules += busy * cfg.deviceTdpWatts
            + (span - busy) * cfg.deviceIdleWatts;
    }

    // Memory-nodes: power follows measured DIMM-bus utilization.
    const MemoryNodeConfig &node = system.config().memNode;
    for (const auto &[index, channel] :
         system.fabric().memNodeChannels()) {
        (void)index;
        const double util = std::clamp(
            channel->bytesTransferred() / (node.bandwidth() * span),
            0.0, 1.0);
        report.memNodeJoules += node.operatingWatts(util) * span;
    }

    // Device-side links: energy per byte on every non-host channel.
    double link_bytes = 0.0;
    for (const Channel *ch : system.fabric().channels())
        link_bytes += ch->bytesTransferred();
    // Socket and DIMM-bus channels are accounted separately; remove
    // their contribution from the link total.
    for (const Channel *ch : system.fabric().socketChannels())
        link_bytes -= ch->bytesTransferred();
    for (const auto &[index, ch] : system.fabric().memNodeChannels()) {
        (void)index;
        link_bytes -= ch->bytesTransferred();
    }
    report.linkJoules = std::max(link_bytes, 0.0)
        * cfg.linkJoulesPerByte;

    // Host: traffic energy plus a base allocation for the sockets.
    report.hostJoules = r.hostBytes * cfg.hostJoulesPerByte
        + cfg.hostBaseWatts * span;
    return report;
}

} // namespace mcdla
