/**
 * @file
 * Iteration energy model (extends Section V-C).
 *
 * The paper bounds MC-DLA's power cost with DIMM TDPs (Table IV). This
 * model instead integrates *measured* activity from a simulated
 * iteration: device busy/idle time against device TDP/idle power,
 * memory-node power from observed DIMM-bus utilization (Micron-style
 * background + activity split), link energy per byte moved on the
 * device-side interconnect, and host DRAM energy per byte for the
 * PCIe/host designs. Output feeds a perf/W comparison across design
 * points.
 */

#ifndef MCDLA_SYSTEM_ENERGY_MODEL_HH
#define MCDLA_SYSTEM_ENERGY_MODEL_HH

#include "system/system.hh"
#include "system/training_session.hh"

namespace mcdla
{

/** Electrical parameters (defaults: V100/DGX-class public figures). */
struct EnergyConfig
{
    /** Device board power at full compute load (V100: 300 W). */
    double deviceTdpWatts = 300.0;
    /** Device board power while idle. */
    double deviceIdleWatts = 50.0;
    /** NVLINK-class signaling energy per byte moved (~10 pJ/bit). */
    double linkJoulesPerByte = 1.25e-9;
    /** PCIe + host DRAM energy per byte moved (~20 pJ/bit + DRAM). */
    double hostJoulesPerByte = 5.0e-9;
    /** Host baseline power attributable to serving the node (W). */
    double hostBaseWatts = 200.0;
};

/** Energy breakdown of one iteration. */
struct EnergyReport
{
    double deviceJoules = 0.0;  ///< Accelerator compute + idle.
    double memNodeJoules = 0.0; ///< Memory-node boards (Table IV model).
    double linkJoules = 0.0;    ///< Device-side interconnect traffic.
    double hostJoules = 0.0;    ///< Host DRAM/PCIe traffic + base.
    double iterationSeconds = 0.0;

    double
    totalJoules() const
    {
        return deviceJoules + memNodeJoules + linkJoules + hostJoules;
    }

    /** Average node power over the iteration. */
    double
    averageWatts() const
    {
        return iterationSeconds > 0.0 ? totalJoules() / iterationSeconds
                                      : 0.0;
    }

    /** Iterations per second per watt. */
    double
    perfPerWatt() const
    {
        const double total = totalJoules();
        return total > 0.0 ? 1.0 / total : 0.0;
    }
};

/**
 * Integrate the energy of the iteration just simulated on @p system.
 *
 * Uses per-device compute-busy statistics, per-channel byte counts, and
 * memory-node DIMM-bus utilization accumulated during the run; call
 * immediately after TrainingSession::run() (statistics reset at the
 * next iteration's start).
 */
EnergyReport estimateEnergy(System &system, const IterationResult &r,
                            const EnergyConfig &cfg = {});

} // namespace mcdla

#endif // MCDLA_SYSTEM_ENERGY_MODEL_HH
