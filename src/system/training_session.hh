/**
 * @file
 * TrainingSession: event-driven simulation of one training iteration.
 *
 * Under data/model parallelism every device runs the same SPMD program
 * — forward pass in topological order, backward pass in reverse, then
 * weight updates — on its serial compute stream, while:
 *
 *  - the paged device-memory subsystem (src/vmem/paging) migrates each
 *    stashed tensor between device HBM and the backing store under the
 *    configured prefetch/eviction policies: the default static-plan
 *    policy reproduces the vDNN schedule (offload after the last
 *    forward use, prefetch with a lookahead window), while the
 *    on-demand and history policies fault, stall, and fill against a
 *    finite HBM frame budget;
 *  - parallel-training synchronization points launch ring collectives on
 *    the fabric when the last device arrives (blocking for
 *    model-parallel X/dX aggregation, update-gating for data-parallel
 *    dW all-reduce).
 *
 * Under pipeline parallelism each device instead runs its own stage
 * program (GPipe-style): M microbatch forward waves, M backward waves
 * in reverse microbatch order, then stage-local weight updates. Stages
 * exchange boundary activations and gradients point-to-point on the
 * fabric — no collectives — and each stage drives a stage-local pager
 * whose page groups are (tensor, microbatch) pairs.
 *
 * All traffic shares the fabric's channels, so the contention between
 * collectives/boundary transfers and virtualization DMA — the crux of
 * the MC-DLA trade-off — is captured by construction. The session
 * reports both the Figure 11 per-category latency totals (union of busy
 * intervals per category) and the overlapped makespan used by
 * Figures 13/14.
 */

#ifndef MCDLA_SYSTEM_TRAINING_SESSION_HH
#define MCDLA_SYSTEM_TRAINING_SESSION_HH

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "parallel/strategy.hh"
#include "sim/trace.hh"
#include "system/latch.hh"
#include "system/system.hh"
#include "vmem/offload_plan.hh"
#include "vmem/paging/pager.hh"

namespace mcdla
{

/** Figure 11 per-category latency totals (one device's view). */
struct LatencyBreakdown
{
    double computeSec = 0.0; ///< Forward+backward+update busy time.
    double syncSec = 0.0;    ///< Union of collective/p2p in-flight time.
    double vmemSec = 0.0;    ///< Union of vmem DMA in-flight intervals.
    double exposedSyncSec = 0.0; ///< Compute stalls attributed to sync.
    double exposedVmemSec = 0.0; ///< Compute stalls attributed to vmem.

    double
    total() const
    {
        return computeSec + syncSec + vmemSec;
    }
};

/**
 * One fabric channel's activity during an iteration. Like hostBytes,
 * this is the machine's view: on a multi-tenant cluster the deltas
 * include co-located jobs' traffic through the shared links.
 */
struct ChannelUsage
{
    std::string channel;      ///< Fully qualified channel name.
    double bytes = 0.0;       ///< Payload delivered this iteration.
    double busySec = 0.0;     ///< Occupied time this iteration.
    double utilization = 0.0; ///< busySec over the iteration makespan.
    /**
     * Deepest FIFO backlog since the last stats reset — NOT a
     * per-iteration delta like the fields above (a max cannot be
     * delta'd): per-iteration for standalone runs (stats reset every
     * iteration), cumulative machine view under cluster multi-tenancy.
     */
    std::size_t peakQueueDepth = 0;
};

/**
 * Results of one simulated training iteration.
 *
 * The machine-global fields — hostBytes, the host-bandwidth pair, and
 * eventsExecuted — are per-iteration deltas of shared counters: on a
 * multi-tenant cluster they include co-located jobs' traffic/events
 * during this job's iteration window (the machine's view, not an
 * attribution). Per-device fields (breakdown, paging, offload bytes)
 * are exact for the owning session either way.
 */
struct IterationResult
{
    Tick makespan = 0;             ///< Wall-clock of the iteration.
    LatencyBreakdown breakdown;    ///< Figure 11 inputs.
    double hostBytes = 0.0;        ///< Traffic through host sockets.
    double hostAvgBwPerSocket = 0.0;  ///< Figure 12 "avg" series.
    double hostPeakBwPerSocket = 0.0; ///< Figure 12 "max" series.
    double offloadBytesPerDevice = 0.0;
    double syncBytes = 0.0;        ///< Collective/p2p payload launched.
    std::uint64_t eventsExecuted = 0;
    /** Paging activity of the reported device: device 0 for the SPMD
        modes, the busiest (bottleneck) stage under pipeline. */
    PagingCounters paging;
    /** Per-channel activity, fabric channel order (machine view). */
    std::vector<ChannelUsage> channels;

    /** The most-utilized channel — the bottleneck *link*, which a
        per-stage breakdown cannot see; nullptr when untracked. */
    const ChannelUsage *
    bottleneckChannel() const
    {
        const ChannelUsage *best = nullptr;
        for (const ChannelUsage &usage : channels)
            if (best == nullptr || usage.utilization > best->utilization)
                best = &usage;
        return best;
    }

    double iterationSeconds() const { return ticksToSeconds(makespan); }

    /** Throughput in iterations/sec (Figure 13's "performance"). */
    double
    performance() const
    {
        const double s = iterationSeconds();
        return s > 0.0 ? 1.0 / s : 0.0;
    }
};

/** Drives one System through training iterations of one workload. */
class TrainingSession
{
  public:
    /**
     * @param system Composed design point.
     * @param net Workload network.
     * @param mode Data-, model-, or pipeline-parallel.
     * @param global_batch Total minibatch (512 in the paper).
     * @param pipeline_stages Pipeline stage count (--mode pp only;
     *        0 = one stage per device).
     * @param microbatches GPipe microbatches per iteration (pp only).
     * @param device_set System device indices this session owns (empty
     *        = all of them, the classic whole-machine run). A subset
     *        session — the cluster's multi-tenant path — runs its SPMD
     *        or stage programs on just those devices; its collectives
     *        ring over the owned subset (restrictRingToDevices) but
     *        still traverse the full physical loop, so co-located
     *        jobs' traffic contends on the shared channels.
     * @param forward_only Inference mode (the serving path): the device
     *        programs stop after the forward pass — no backward ops, no
     *        weight updates, no dW all-reduce — but offloaded stashes
     *        still page out through the backing store, so a serving
     *        replica's writeback DMA contends on the real channels.
     *        Only the dp/mp SPMD modes support it.
     */
    TrainingSession(System &system, const Network &net, ParallelMode mode,
                    std::int64_t global_batch, int pipeline_stages = 0,
                    int microbatches = 1,
                    std::vector<int> device_set = {},
                    bool forward_only = false);

    const ParallelStrategy &strategy() const { return _strategy; }
    const OffloadPlan &plan() const { return _plan; }

    /** Devices this session runs on (system indices, local order). */
    const std::vector<int> &deviceSet() const { return _deviceSet; }

    /** Number of devices this session owns. */
    int
    deviceCount() const
    {
        return static_cast<int>(_deviceSet.size());
    }

    /**
     * Per-device memory demand if nothing were offloaded: weights +
     * resident stash + working buffers. Used for capacity-wall checks.
     * Under pipeline parallelism this is the worst stage's demand.
     */
    std::uint64_t footprintBytesPerDevice() const;

    /** Simulate one iteration and return its metrics. */
    IterationResult run();

    /**
     * Begin one iteration without draining the event queue — the
     * cluster path, where many sessions share one EventQueue. Only the
     * owned devices' statistics are reset (the fabric is shared);
     * @p on_done fires, with the iteration metrics, when the last
     * owned device drains its program. The caller drives the queue.
     */
    void
    startIteration(std::function<void(const IterationResult &)> on_done);

    /**
     * Free everything allocateBuffers() claimed — devicelocal
     * footprints, remote stash buffers, and the pagers — so another
     * session can reuse the devices. Idempotent.
     */
    void releaseBuffers();

    /**
     * Attach a Chrome-tracing sink; subsequent iterations emit op, DMA,
     * and collective/p2p spans (device-0 view plus the global tracks).
     */
    void setTraceSink(TraceSink *sink) { _trace = sink; }

    /**
     * Arm a flow arrow: the next traced compute-op span terminates
     * flow @p flow (TraceSink::newFlow id). Drivers — the cluster's
     * job spans, serving's batch spans — use this to draw
     * dispatch → first-op arrows across processes.
     */
    void setIterationFlow(std::uint64_t flow) { _iterFlow = flow; }

    /**
     * Bytes currently resident in the owned devices' HBM page tables
     * (0 before the first iteration allocates pagers) — the "HBM
     * residency" metric gauge.
     */
    std::uint64_t hbmResidentBytes() const;

    /**
     * Device @p dev's pager (valid after the first run()); exposes the
     * page table and the hit/miss/stall statistics.
     */
    DevicePager &pager(int dev);

    /** Dump every device's paging statistics (gem5-style). */
    void dumpPagingStats(std::ostream &os) const;

  private:
    /// One pipeline point-to-point transfer attached to an op.
    struct P2pSend
    {
        int token = -1;     ///< Latch completed when the flow drains.
        int dst = -1;       ///< Destination device.
        double bytes = 0.0; ///< Payload.
    };

    /// One scheduled operation of a device program.
    struct OpSpec
    {
        enum class Kind { Fwd, Bwd, Wup };
        Kind kind = Kind::Fwd;
        LayerId layer = invalidLayerId;
        Tick duration = 0;
        std::optional<SyncOp> syncAfter;
        bool needsDwLatch = false;
        /// Pipeline: p2p latches this op must wait on before issuing
        /// (boundary activation/gradient arrival, tied-dW reduction).
        std::vector<int> recvTokens;
        /// Pipeline: transfers launched when this op retires.
        std::vector<P2pSend> sends;
    };

    /// Per-device execution state for one iteration.
    struct DeviceCtx
    {
        std::size_t nextOp = 0;
        bool running = false;
        Latch *blockingGate = nullptr;
        Tick readyAt = 0;
        /// Category of the gate most recently waited on (0 none,
        /// 1 sync, 2 vmem).
        int waitedCat = 0;
    };

    void buildSchedule();
    void buildPipelineSchedule();
    void allocateBuffers();
    void createPagers();

    /// System device index of local device @p dev.
    int
    sysDev(int dev) const
    {
        return _deviceSet[static_cast<std::size_t>(dev)];
    }

    /// Reset per-iteration state and seed every owned device's program
    /// (the shared tail of run() and startIteration()).
    void setupIteration();

    /// Assemble the metrics of the iteration that just drained.
    IterationResult collectResult();

    /// One owned device drained its program; fires the async callback
    /// on the last one.
    void deviceFinished();

    /// Fire the async callback once every pager's DMA is quiescent
    /// (trailing writebacks outlive the compute programs).
    void finishWhenQuiescent();

    /// Launch one collective over this session's rings (the fabric's
    /// full rings for whole-machine sessions, the restricted sub-rings
    /// otherwise).
    void launchCollective(const SyncOp &sync,
                          CollectiveEngine::Handler on_done);

    /// Device @p dev's op program (the shared SPMD program for dp/mp,
    /// the stage program for pipeline).
    const std::vector<OpSpec> &program(int dev) const;

    /// (tensor, microbatch) page-group id under pipeline parallelism.
    LayerId groupId(LayerId layer, int microbatch) const;

    /// HBM demand of stage @p s (weights + kept stash + working set).
    std::uint64_t stageFootprintBytes(int s) const;

    void tryIssue(int dev);
    void completeOp(int dev);
    /// Launch one pipeline point-to-point transfer.
    void issueP2p(int src, const P2pSend &send);
    /// The device whose view the iteration metrics report: device 0
    /// for the SPMD modes, the busiest stage under pipeline.
    int reportDevice() const;

    System &_system;
    const Network &_net;
    /// Owned system device indices; index = local device id. Declared
    /// before _strategy (constructed from its size).
    std::vector<int> _deviceSet;
    /// Whole-machine session (uses the fabric's rings verbatim).
    bool _ownsAllDevices = true;
    /// Inference mode: forward pass only (see the constructor).
    bool _forwardOnly = false;
    ParallelStrategy _strategy;
    OffloadPlan _plan;
    /// Restricted collective rings of a subset session (and the
    /// pointer view launchOn() consumes).
    std::vector<RingPath> _jobRings;
    std::vector<const RingPath *> _jobRingPtrs;

    /// Shared SPMD program (dp/mp modes).
    std::vector<OpSpec> _ops;
    /// Paging actions per op (produced stashes, plan writebacks, stash
    /// reads, releases), consumed by the per-device pagers (dp/mp).
    PagingSchedule _pagingSchedule;
    /// Per-device stage programs and paging schedules (pipeline mode;
    /// devices beyond the stage count idle with empty programs).
    std::vector<std::vector<OpSpec>> _stagePrograms;
    std::vector<PagingSchedule> _stageSchedules;
    /// Offloaded stash tensors owned by each stage's pager.
    std::vector<std::vector<LayerId>> _stageTensors;
    std::vector<LayerTiming> _timings;
    bool _allocated = false;
    /// Devicelocal footprint allocations, one per owned device, so
    /// releaseBuffers() can return them.
    std::vector<Placement> _localPlacements;
    /// Remote allocations per device, by layer (dp/mp) or page-group
    /// id (pipeline).
    std::vector<std::map<LayerId, RemotePtr>> _remotePtrs;
    /// Paged device-memory managers, one per device (persistent across
    /// iterations so history-based policies can learn).
    std::vector<std::unique_ptr<DevicePager>> _pagers;
    /// Pipeline p2p routes, keyed src * numDevices + dst.
    std::map<int, Route> _p2pRoutes;
    int _p2pTokenCount = 0;
    double _p2pBytesTotal = 0.0;

    // Per-iteration state.
    std::vector<DeviceCtx> _devs;
    std::map<std::size_t, std::unique_ptr<SyncPoint>> _syncPoints;
    std::map<LayerId, SyncPoint *> _dwSync;
    /// Pipeline boundary-transfer latches, indexed by token.
    std::vector<std::unique_ptr<Latch>> _p2pLatches;
    TraceSink *_trace = nullptr;
    /// Pending dispatch-flow id (0 none); cleared by the first traced
    /// compute-op span.
    std::uint64_t _iterFlow = 0;
    /// Lazily built "dev<sysDev(0)>.compute" trace track name.
    std::string _computeTrack;

    /// Trace track of the owned device 0's compute stream.
    const std::string &
    computeTrack()
    {
        if (_computeTrack.empty())
            _computeTrack =
                "dev" + std::to_string(sysDev(0)) + ".compute";
        return _computeTrack;
    }

    ActivityTracker _syncTracker;
    ActivityTracker _vmemTracker;
    /// Per-device compute/stall totals; dp/mp report device 0 (the
    /// SPMD program makes it representative), pipeline reports the
    /// busiest stage.
    std::vector<Tick> _computeTicks;
    std::vector<Tick> _stallSync;
    std::vector<Tick> _stallVmem;
    Tick _startTick = 0;
    std::uint64_t _eventsBefore = 0;
    /// Host-socket byte counter at iteration start (the fabric is
    /// shared under multi-tenancy, so hostBytes reports a delta).
    double _hostBytesBefore = 0.0;
    /// Per-channel byte/busy snapshots at iteration start, fabric
    /// channel order (channel counters are cumulative on a shared
    /// fabric; the iteration reports deltas).
    std::vector<double> _chanBytesBefore;
    std::vector<Tick> _chanBusyBefore;
    double _iterSyncBytes = 0.0;
    /// Owned devices still draining the current iteration.
    int _devicesRemaining = 0;
    /// Async-iteration completion callback (cluster mode; empty under
    /// the classic run()).
    std::function<void(const IterationResult &)> _onIterationDone;
};

} // namespace mcdla

#endif // MCDLA_SYSTEM_TRAINING_SESSION_HH
