/**
 * @file
 * TrainingSession: event-driven simulation of one training iteration.
 *
 * Every device runs the same SPMD program — forward pass in topological
 * order, backward pass in reverse, then weight updates — on its serial
 * compute stream, while:
 *
 *  - the paged device-memory subsystem (src/vmem/paging) migrates each
 *    stashed tensor between device HBM and the backing store under the
 *    configured prefetch/eviction policies: the default static-plan
 *    policy reproduces the vDNN schedule (offload after the last
 *    forward use, prefetch with a lookahead window), while the
 *    on-demand and history policies fault, stall, and fill against a
 *    finite HBM frame budget;
 *  - parallel-training synchronization points launch ring collectives on
 *    the fabric when the last device arrives (blocking for
 *    model-parallel X/dX aggregation, update-gating for data-parallel
 *    dW all-reduce).
 *
 * All traffic shares the fabric's channels, so the contention between
 * collectives and virtualization DMA — the crux of the MC-DLA trade-off —
 * is captured by construction. The session reports both the Figure 11
 * per-category latency totals (union of busy intervals per category) and
 * the overlapped makespan used by Figures 13/14.
 */

#ifndef MCDLA_SYSTEM_TRAINING_SESSION_HH
#define MCDLA_SYSTEM_TRAINING_SESSION_HH

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "parallel/strategy.hh"
#include "sim/trace.hh"
#include "system/latch.hh"
#include "system/system.hh"
#include "vmem/offload_plan.hh"
#include "vmem/paging/pager.hh"

namespace mcdla
{

/** Figure 11 per-category latency totals (one device's view). */
struct LatencyBreakdown
{
    double computeSec = 0.0; ///< Forward+backward+update busy time.
    double syncSec = 0.0;    ///< Union of collective in-flight intervals.
    double vmemSec = 0.0;    ///< Union of vmem DMA in-flight intervals.
    double exposedSyncSec = 0.0; ///< Compute stalls attributed to sync.
    double exposedVmemSec = 0.0; ///< Compute stalls attributed to vmem.

    double
    total() const
    {
        return computeSec + syncSec + vmemSec;
    }
};

/** Results of one simulated training iteration. */
struct IterationResult
{
    Tick makespan = 0;             ///< Wall-clock of the iteration.
    LatencyBreakdown breakdown;    ///< Figure 11 inputs.
    double hostBytes = 0.0;        ///< Traffic through host sockets.
    double hostAvgBwPerSocket = 0.0;  ///< Figure 12 "avg" series.
    double hostPeakBwPerSocket = 0.0; ///< Figure 12 "max" series.
    double offloadBytesPerDevice = 0.0;
    double syncBytes = 0.0;        ///< Collective payload launched.
    std::uint64_t eventsExecuted = 0;
    PagingCounters paging;         ///< Device-0 paging activity.

    double iterationSeconds() const { return ticksToSeconds(makespan); }

    /** Throughput in iterations/sec (Figure 13's "performance"). */
    double
    performance() const
    {
        const double s = iterationSeconds();
        return s > 0.0 ? 1.0 / s : 0.0;
    }
};

/** Drives one System through training iterations of one workload. */
class TrainingSession
{
  public:
    /**
     * @param system Composed design point.
     * @param net Workload network.
     * @param mode Data- or model-parallel.
     * @param global_batch Total minibatch (512 in the paper).
     */
    TrainingSession(System &system, const Network &net, ParallelMode mode,
                    std::int64_t global_batch);

    const ParallelStrategy &strategy() const { return _strategy; }
    const OffloadPlan &plan() const { return _plan; }

    /**
     * Per-device memory demand if nothing were offloaded: weights +
     * resident stash + working buffers. Used for capacity-wall checks.
     */
    std::uint64_t footprintBytesPerDevice() const;

    /** Simulate one iteration and return its metrics. */
    IterationResult run();

    /**
     * Attach a Chrome-tracing sink; subsequent iterations emit op, DMA,
     * and collective spans (device-0 view plus the global sync track).
     */
    void setTraceSink(TraceSink *sink) { _trace = sink; }

    /**
     * Device @p dev's pager (valid after the first run()); exposes the
     * page table and the hit/miss/stall statistics.
     */
    DevicePager &pager(int dev);

    /** Dump every device's paging statistics (gem5-style). */
    void dumpPagingStats(std::ostream &os) const;

  private:
    /// One scheduled operation of the SPMD program.
    struct OpSpec
    {
        enum class Kind { Fwd, Bwd, Wup };
        Kind kind = Kind::Fwd;
        LayerId layer = invalidLayerId;
        Tick duration = 0;
        std::optional<SyncOp> syncAfter;
        bool needsDwLatch = false;
    };

    /// Per-device execution state for one iteration.
    struct DeviceCtx
    {
        std::size_t nextOp = 0;
        bool running = false;
        Latch *blockingGate = nullptr;
        Tick readyAt = 0;
        /// Category of the gate most recently waited on (0 none,
        /// 1 sync, 2 vmem).
        int waitedCat = 0;
    };

    void buildSchedule();
    void allocateBuffers();
    void createPagers();

    /// Producers whose outputs this layer's backward reads, looking
    /// through structural views (concat).
    std::vector<LayerId> effectiveProducers(LayerId id) const;
    /// Consumers of this layer's output, looking through views.
    std::vector<LayerId> effectiveConsumers(LayerId id) const;

    void tryIssue(int dev);
    void completeOp(int dev);

    System &_system;
    const Network &_net;
    ParallelStrategy _strategy;
    OffloadPlan _plan;

    std::vector<OpSpec> _ops;
    /// Paging actions per op (produced stashes, plan writebacks, stash
    /// reads, releases), consumed by the per-device pagers.
    PagingSchedule _pagingSchedule;
    std::vector<LayerTiming> _timings;
    bool _allocated = false;
    /// Remote allocations per device, by layer.
    std::vector<std::map<LayerId, RemotePtr>> _remotePtrs;
    /// Paged device-memory managers, one per device (persistent across
    /// iterations so history-based policies can learn).
    std::vector<std::unique_ptr<DevicePager>> _pagers;

    // Per-iteration state.
    std::vector<DeviceCtx> _devs;
    std::map<std::size_t, std::unique_ptr<SyncPoint>> _syncPoints;
    std::map<LayerId, SyncPoint *> _dwSync;
    TraceSink *_trace = nullptr;
    ActivityTracker _syncTracker;
    ActivityTracker _vmemTracker;
    Tick _computeTicks = 0;
    Tick _stallSync = 0;
    Tick _stallVmem = 0;
    Tick _startTick = 0;
};

} // namespace mcdla

#endif // MCDLA_SYSTEM_TRAINING_SESSION_HH
