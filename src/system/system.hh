/**
 * @file
 * System: one fully composed intra-node design point.
 *
 * Owns the event queue's component graph for a single simulated node:
 * the fabric (built per design), the device-nodes, per-device DMA engines
 * and address spaces, the Table I runtimes, and the shared collective
 * engine. TrainingSession drives a System through training iterations.
 */

#ifndef MCDLA_SYSTEM_SYSTEM_HH
#define MCDLA_SYSTEM_SYSTEM_HH

#include <memory>
#include <vector>

#include "collective/ring_collective.hh"
#include "device/device_node.hh"
#include "interconnect/fabrics.hh"
#include "system/system_config.hh"
#include "vmem/runtime.hh"

namespace mcdla
{

/** A composed system design point. */
class System
{
  public:
    System(EventQueue &eq, SystemConfig cfg);

    const SystemConfig &config() const { return _cfg; }
    EventQueue &eventQueue() { return _eq; }
    int numDevices() const { return _cfg.fabric.numDevices; }

    Fabric &fabric() { return *_fabric; }
    const Fabric &fabric() const { return *_fabric; }

    CollectiveEngine &collectives() { return *_collectives; }

    DeviceNode &device(int i) { return *_devices.at(
        static_cast<std::size_t>(i)); }
    DmaEngine &dma(int i) { return *_dmas.at(
        static_cast<std::size_t>(i)); }
    DeviceAddressSpace &addressSpace(int i) { return *_spaces.at(
        static_cast<std::size_t>(i)); }
    VmemRuntime &runtime(int i) { return *_runtimes.at(
        static_cast<std::size_t>(i)); }

    /** Whether devices have a backing store for virtualization. */
    bool
    hasBackingStore() const
    {
        return designVirtualizesMemory(_cfg.design);
    }

    /** Total memory capacity exposed to all devices (local + remote). */
    std::uint64_t totalExposedMemory() const;

    /** Reset all per-iteration statistics. */
    void resetStats();

  private:
    EventQueue &_eq;
    SystemConfig _cfg;
    std::unique_ptr<Fabric> _fabric;
    std::unique_ptr<CollectiveEngine> _collectives;
    std::vector<std::unique_ptr<DeviceNode>> _devices;
    std::vector<std::unique_ptr<DmaEngine>> _dmas;
    std::vector<std::unique_ptr<DeviceAddressSpace>> _spaces;
    std::vector<std::unique_ptr<VmemRuntime>> _runtimes;
};

} // namespace mcdla

#endif // MCDLA_SYSTEM_SYSTEM_HH
