/**
 * @file
 * Small synchronization primitives for the training-session scheduler:
 * one-shot latches, barrier-triggered sync points, and interval-union
 * activity trackers for the Figure 11 latency breakdown.
 */

#ifndef MCDLA_SYSTEM_LATCH_HH
#define MCDLA_SYSTEM_LATCH_HH

#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/units.hh"

namespace mcdla
{

/** A one-shot completion flag with waiter callbacks. */
class Latch
{
  public:
    using Callback = std::function<void()>;

    bool done() const { return _done; }

    /** Mark complete and run all waiters. Panics on double completion. */
    void
    complete()
    {
        if (_done)
            panic("latch completed twice");
        _done = true;
        std::vector<Callback> waiters;
        waiters.swap(_waiters);
        for (auto &cb : waiters)
            cb();
    }

    /** Run @p cb when complete (immediately if already complete). */
    void
    whenDone(Callback cb)
    {
        if (_done)
            cb();
        else
            _waiters.push_back(std::move(cb));
    }

    /**
     * Rearm for reuse (latch pooling). Drops any unfired waiters —
     * callers reset only at epoch boundaries where simcheck has
     * already asserted quiescence. Keeps the waiter vector's capacity.
     */
    void
    reset()
    {
        _done = false;
        _waiters.clear();
    }

  private:
    bool _done = false;
    std::vector<Callback> _waiters;
};

/**
 * A device barrier that fires an action on the last arrival (used to
 * launch one global collective per synchronization point); completion is
 * observed through the embedded latch.
 */
class SyncPoint
{
  public:
    using Action = std::function<void(Latch &)>;

    /**
     * @param parties Number of devices that must arrive.
     * @param action Invoked once on the last arrival; must eventually
     *               complete the provided latch.
     */
    SyncPoint(int parties, Action action)
        : _remaining(parties), _action(std::move(action))
    {
        if (parties <= 0)
            panic("sync point requires at least one party");
    }

    /** Register one device's arrival. */
    void
    arrive()
    {
        if (_remaining == 0)
            panic("sync point arrival after trip");
        if (--_remaining == 0)
            _action(_latch);
    }

    Latch &latch() { return _latch; }

  private:
    int _remaining;
    Action _action;
    Latch _latch;
};

/**
 * Tracks the union of time intervals during which at least one activity
 * of a category (collective sync, vmem DMA) is in flight.
 */
class ActivityTracker
{
  public:
    void
    begin(Tick now)
    {
        if (_depth++ == 0)
            _start = now;
    }

    void
    end(Tick now)
    {
        if (_depth == 0)
            panic("activity tracker underflow");
        if (--_depth == 0)
            _total += now - _start;
    }

    /** Accumulated busy time (extends through an open interval). */
    Tick
    total(Tick now) const
    {
        return _depth > 0 ? _total + (now - _start) : _total;
    }

    void
    reset()
    {
        _depth = 0;
        _total = 0;
        _start = 0;
    }

  private:
    int _depth = 0;
    Tick _start = 0;
    Tick _total = 0;
};

} // namespace mcdla

#endif // MCDLA_SYSTEM_LATCH_HH
