/**
 * @file
 * System composition.
 */

#include "system/system.hh"

#include "sim/logging.hh"

namespace mcdla
{

const char *
systemDesignName(SystemDesign design)
{
    switch (design) {
      case SystemDesign::DcDla: return "DC-DLA";
      case SystemDesign::HcDla: return "HC-DLA";
      case SystemDesign::McDlaS: return "MC-DLA(S)";
      case SystemDesign::McDlaL: return "MC-DLA(L)";
      case SystemDesign::McDlaB: return "MC-DLA(B)";
      case SystemDesign::DcDlaOracle: return "DC-DLA(O)";
      case SystemDesign::McDlaSA: return "MC-DLA(SA)";
      case SystemDesign::McDlaX: return "MC-DLA(X)";
    }
    return "unknown";
}

System::System(EventQueue &eq, SystemConfig cfg)
    : _eq(eq), _cfg(std::move(cfg))
{
    // Keep the fabric's link parameters in sync with the device config
    // (Table II: N links of B GB/s per node).
    _cfg.fabric.linkBandwidth = _cfg.device.linkBandwidth;
    _cfg.fabric.numRings = _cfg.device.numLinks / 2;

    if (designHasMemoryNodes(_cfg.design))
        _cfg.memNode.validate();

    switch (_cfg.design) {
      case SystemDesign::DcDla:
        _fabric = buildDcdlaFabric(eq, _cfg.fabric, true);
        break;
      case SystemDesign::DcDlaOracle:
        _fabric = buildDcdlaFabric(eq, _cfg.fabric, false);
        break;
      case SystemDesign::HcDla:
        _fabric = buildHcdlaFabric(eq, _cfg.fabric);
        break;
      case SystemDesign::McDlaS:
        _fabric = buildMcdlaStarFabric(eq, _cfg.fabric);
        break;
      case SystemDesign::McDlaSA:
        _fabric = buildMcdlaStarAFabric(eq, _cfg.fabric);
        break;
      case SystemDesign::McDlaL:
      case SystemDesign::McDlaB:
        _fabric = buildMcdlaRingFabric(eq, _cfg.fabric);
        break;
      case SystemDesign::McDlaX:
        _fabric = buildMcdlaSwitchFabric(eq, _cfg.fabric);
        break;
    }

    CollectiveConfig ccfg;
    ccfg.chunkBytes = _cfg.collectiveChunkBytes;
    _collectives = std::make_unique<CollectiveEngine>(
        eq, _fabric->name() + ".nccl", *_fabric, ccfg);

    const int n = _cfg.fabric.numDevices;
    for (int d = 0; d < n; ++d) {
        const std::string dev_name = "dev" + std::to_string(d);
        _devices.push_back(std::make_unique<DeviceNode>(
            eq, dev_name, _cfg.device));
        _dmas.push_back(std::make_unique<DmaEngine>(
            eq, dev_name + ".dma", _fabric->vmemPaths(d),
            _cfg.dmaChunkBytes));

        // Fig 10 address space: devicelocal at the bottom, remote
        // regions above. The oracle design gets "infinite" local memory.
        const std::uint64_t local_cap =
            _cfg.design == SystemDesign::DcDlaOracle
            ? (1ULL << 60)
            : _cfg.device.memCapacity;
        std::vector<RemoteRegion> regions;
        for (const VmemPath &path : _fabric->vmemPaths(d)) {
            RemoteRegion r;
            r.targetIndex = path.targetIndex;
            if (path.targetIndex < 0) {
                r.capacity = _cfg.hostMemoryCapacity;
            } else if (designHasMemoryNodes(_cfg.design)
                       && _cfg.design != SystemDesign::McDlaS
                       && _cfg.design != SystemDesign::McDlaSA) {
                // Ring-structured designs (direct or switched).
                // Ring design: each neighbor owns half the board.
                r.capacity = _cfg.memNode.capacity() / 2;
            } else {
                r.capacity = _cfg.memNode.capacity();
            }
            regions.push_back(r);
        }
        _spaces.push_back(std::make_unique<DeviceAddressSpace>(
            dev_name, local_cap, std::move(regions)));
        _runtimes.push_back(std::make_unique<VmemRuntime>(
            *_spaces.back(), *_dmas.back(), _cfg.pagePolicy()));
    }
}

std::uint64_t
System::totalExposedMemory() const
{
    std::uint64_t total = 0;
    for (const auto &space : _spaces)
        total += space->totalCapacity();
    return total;
}

void
System::resetStats()
{
    _fabric->resetStats();
    for (auto &dev : _devices) {
        dev->resetStats();
        dev->resetOccupancy();
    }
    for (auto &dma : _dmas)
        dma->resetStats();
}

} // namespace mcdla
