/**
 * @file
 * System composition.
 */

#include "system/system.hh"

#include "sim/logging.hh"

namespace mcdla
{

const char *
systemDesignName(SystemDesign design)
{
    switch (design) {
      case SystemDesign::DcDla: return "DC-DLA";
      case SystemDesign::HcDla: return "HC-DLA";
      case SystemDesign::McDlaS: return "MC-DLA(S)";
      case SystemDesign::McDlaL: return "MC-DLA(L)";
      case SystemDesign::McDlaB: return "MC-DLA(B)";
      case SystemDesign::DcDlaOracle: return "DC-DLA(O)";
      case SystemDesign::McDlaSA: return "MC-DLA(SA)";
      case SystemDesign::McDlaX: return "MC-DLA(X)";
    }
    return "unknown";
}

System::System(EventQueue &eq, SystemConfig cfg)
    : _eq(eq), _cfg(std::move(cfg))
{
    // Keep the fabric's link parameters in sync with the device config
    // (Table II: N links of B GB/s per node).
    _cfg.fabric.linkBandwidth = _cfg.device.linkBandwidth;
    _cfg.fabric.numRings = _cfg.device.numLinks / 2;

    _cfg.fabric.validate();
    if (designHasMemoryNodes(_cfg.design))
        _cfg.memNode.validate();

    if (_cfg.fabric.topology != TopologyKind::Design) {
        // Interconnect override: rewire the memory-centric node set
        // through a generic Topology generator. Host-backed designs
        // keep their fixed PCIe attachment — there is no meaningful
        // mesh of host links — so the override is rejected there.
        if (!designHasMemoryNodes(_cfg.design))
            fatal("--topology %s requires a memory-centric design "
                  "(%s has no memory-nodes to rewire)",
                  topologyKindToken(_cfg.fabric.topology),
                  systemDesignName(_cfg.design));
        _fabric = buildTopologyFabric(eq, _cfg.fabric,
                                      _cfg.fabric.topology);
    } else {
        switch (_cfg.design) {
          case SystemDesign::DcDla:
            _fabric = buildDcdlaFabric(eq, _cfg.fabric, true);
            break;
          case SystemDesign::DcDlaOracle:
            _fabric = buildDcdlaFabric(eq, _cfg.fabric, false);
            break;
          case SystemDesign::HcDla:
            _fabric = buildHcdlaFabric(eq, _cfg.fabric);
            break;
          case SystemDesign::McDlaS:
            _fabric = buildMcdlaStarFabric(eq, _cfg.fabric);
            break;
          case SystemDesign::McDlaSA:
            _fabric = buildMcdlaStarAFabric(eq, _cfg.fabric);
            break;
          case SystemDesign::McDlaL:
          case SystemDesign::McDlaB:
            _fabric = buildMcdlaRingFabric(eq, _cfg.fabric);
            break;
          case SystemDesign::McDlaX:
            _fabric = buildMcdlaSwitchFabric(eq, _cfg.fabric);
            break;
        }
    }

    CollectiveConfig ccfg;
    ccfg.chunkBytes = _cfg.collectiveChunkBytes;
    ccfg.algorithm = _cfg.collectiveAlgorithm;
    ccfg.boardDevices = _cfg.collectiveBoardDevices;
    _collectives = std::make_unique<CollectiveEngine>(
        eq, _fabric->name() + ".nccl", *_fabric, ccfg);

    // Generic topologies size each device's remote region by how many
    // devices share the target memory-node (a dedicated mesh
    // memory-node exposes its full board; a ring neighbor is split).
    std::map<int, int> target_shares;
    if (_cfg.fabric.topology != TopologyKind::Design) {
        for (int d = 0; d < _cfg.fabric.numDevices; ++d)
            for (const VmemPath &path : _fabric->vmemPaths(d))
                if (path.targetIndex >= 0)
                    ++target_shares[path.targetIndex];
    }

    const int n = _cfg.fabric.numDevices;
    for (int d = 0; d < n; ++d) {
        const std::string dev_name = "dev" + std::to_string(d);
        _devices.push_back(std::make_unique<DeviceNode>(
            eq, dev_name, _cfg.device));
        _dmas.push_back(std::make_unique<DmaEngine>(
            eq, dev_name + ".dma", _fabric->vmemPaths(d),
            _cfg.dmaChunkBytes));

        // Fig 10 address space: devicelocal at the bottom, remote
        // regions above. The oracle design gets "infinite" local memory.
        const std::uint64_t local_cap =
            _cfg.design == SystemDesign::DcDlaOracle
            ? (1ULL << 60)
            : _cfg.device.memCapacity;
        std::vector<RemoteRegion> regions;
        for (const VmemPath &path : _fabric->vmemPaths(d)) {
            RemoteRegion r;
            r.targetIndex = path.targetIndex;
            if (path.targetIndex < 0) {
                r.capacity = _cfg.hostMemoryCapacity;
            } else if (!target_shares.empty()) {
                // Generic topology: split the board across the devices
                // that reach it.
                r.capacity = _cfg.memNode.capacity()
                    / static_cast<std::uint64_t>(
                        target_shares[path.targetIndex]);
            } else if (designHasMemoryNodes(_cfg.design)
                       && _cfg.design != SystemDesign::McDlaS
                       && _cfg.design != SystemDesign::McDlaSA) {
                // Ring-structured designs (direct or switched).
                // Ring design: each neighbor owns half the board.
                r.capacity = _cfg.memNode.capacity() / 2;
            } else {
                r.capacity = _cfg.memNode.capacity();
            }
            regions.push_back(r);
        }
        _spaces.push_back(std::make_unique<DeviceAddressSpace>(
            dev_name, local_cap, std::move(regions)));
        _runtimes.push_back(std::make_unique<VmemRuntime>(
            *_spaces.back(), *_dmas.back(), _cfg.pagePolicy()));
    }
}

std::uint64_t
System::totalExposedMemory() const
{
    std::uint64_t total = 0;
    for (const auto &space : _spaces)
        total += space->totalCapacity();
    return total;
}

void
System::resetStats()
{
    _fabric->resetStats();
    for (auto &dev : _devices) {
        dev->resetStats();
        dev->resetOccupancy();
    }
    for (auto &dma : _dmas)
        dma->resetStats();
}

} // namespace mcdla
