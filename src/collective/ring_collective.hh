/**
 * @file
 * Ring-algorithm collective communication engine.
 *
 * Implements the topology-aware, ring-based collectives of NCCL-class
 * libraries (Section II-C): a message is split evenly across every
 * logical ring of the fabric; within a ring it is split into per-stage
 * blocks that rotate around the ring in chunk-granular, pipelined steps.
 * Costs per the classic analysis (Chan et al.):
 *
 *   - all-gather / reduce-scatter: each block travels (stages-1) hops,
 *     so each channel carries (stages-1)/stages of the ring's share.
 *   - all-reduce: reduce-scatter immediately followed by all-gather per
 *     block, 2*(stages-1) hops.
 *   - broadcast: the root's share is pipelined (stages-1) hops around.
 *
 * Because chunks are real transfers on the fabric's channels, collectives
 * contend with concurrent memory-virtualization DMA traffic that shares
 * links — the central MC-DLA modelling requirement.
 */

#ifndef MCDLA_COLLECTIVE_RING_COLLECTIVE_HH
#define MCDLA_COLLECTIVE_RING_COLLECTIVE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "interconnect/fabric.hh"
#include "sim/sim_object.hh"

namespace mcdla
{

class TraceSink;

/** Collective operation kinds used in DL training (Figure 4). */
enum class CollectiveKind
{
    AllGather,     ///< Gather feature maps X (model parallel).
    AllReduce,     ///< Reduce gradients dX / dW.
    ReduceScatter, ///< First half of all-reduce.
    Broadcast,     ///< Distribute updated weights.
};

const char *collectiveKindName(CollectiveKind kind);

/**
 * Collective algorithm family (--collective).
 *
 * Ring is the paper's NCCL-style baseline: bandwidth-optimal, but
 * every operation pays (stages-1) serialized steps, so small payloads
 * are latency-bound. Tree substitutes binomial trees over Router
 * shortest paths — O(log n) steps moving the full payload each hop —
 * which wins for small messages and loses at bandwidth saturation.
 * Hierarchical composes both: intra-board reduce/broadcast trees with
 * an inter-board ring over the board leaders, the classic two-level
 * scheme for switched scale-out fabrics.
 */
enum class CollectiveAlgorithm
{
    Ring,
    Tree,
    Hierarchical,
};

/// @name CollectiveAlgorithm round-trips (CLI vocabulary)
/// @{

/** Parse an algorithm token ("ring"/"tree"/"hierarchical"); fatal. */
CollectiveAlgorithm parseCollectiveAlgorithm(const std::string &name);

/** Canonical CLI token of an algorithm. */
const char *collectiveAlgorithmToken(CollectiveAlgorithm algo);

/** Every algorithm the parser accepts. */
const std::vector<CollectiveAlgorithm> &allCollectiveAlgorithms();

/** Comma-separated accepted tokens (help text). */
const std::string &collectiveAlgorithmTokenList();

/// @}

/** Engine configuration. */
struct CollectiveConfig
{
    /**
     * Pipeline chunk granularity. The paper's Figure 9 experiment uses
     * 4 KB messages; system-level runs default coarser to keep event
     * counts tractable without changing steady-state bandwidth.
     */
    double chunkBytes = 128.0 * 1024.0;

    /** Algorithm family; Ring reproduces the paper's baseline. */
    CollectiveAlgorithm algorithm = CollectiveAlgorithm::Ring;

    /**
     * Devices per board for the hierarchical algorithm: consecutive
     * ring positions group into boards of this size (the paper's
     * 8-device board), boards reduce internally, and board leaders
     * exchange over an inter-board ring routed on the topology.
     */
    int boardDevices = 8;
};

/** Ring-collective executor bound to one fabric. */
class CollectiveEngine : public SimObject
{
  public:
    using Handler = std::function<void()>;

    CollectiveEngine(EventQueue &eq, std::string name,
                     const Fabric &fabric, CollectiveConfig cfg = {});

    /**
     * Launch a collective of @p total_bytes across all fabric rings.
     *
     * @param kind Operation.
     * @param total_bytes Synchronization payload (the full message; for
     *        all-reduce/all-gather this is the per-device tensor size).
     * @param on_done Fires when every ring completes.
     * @param root Root device for broadcast (ignored otherwise).
     */
    void launch(CollectiveKind kind, double total_bytes, Handler on_done,
                int root = 0);

    /**
     * Launch a collective on an explicit ring set instead of the
     * fabric's full rings — the cluster path for jobs owning a subset
     * of the devices (rings built with restrictRingToDevices). The
     * rings must outlive the operation; chunk traffic shares the
     * fabric's channels, so co-located jobs contend.
     */
    void launchOn(const std::vector<const RingPath *> &rings,
                  CollectiveKind kind, double total_bytes,
                  Handler on_done, int root = 0);

    /** Number of logical rings in use. */
    std::size_t ringCount() const { return _rings.size(); }

    /** Total payload bytes injected into collectives so far. */
    double bytesLaunched() const { return _bytesLaunched; }

    /** Completed collective operations. */
    std::uint64_t opsCompleted() const { return _opsCompleted; }

    /** Selected algorithm family. */
    CollectiveAlgorithm algorithm() const { return _cfg.algorithm; }

    /**
     * Attach a Chrome-tracing sink (nullptr detaches): per-ring spans
     * (ring algorithm) and per-round spans (tree/hierarchical) are
     * emitted on the "collective" process, category "sync".
     */
    void setTraceSink(TraceSink *sink) { _trace = sink; }

  private:
    /** One barrier-synchronized transfer round: (src, dst) devices. */
    using Round = std::vector<std::pair<int, int>>;

    /** Run one ring's share of an operation. */
    void runOnRing(const RingPath &ring, CollectiveKind kind,
                   double bytes, int root_stage,
                   const std::shared_ptr<Handler> &ring_done);

    /** Dispatch a tree/hierarchical operation over @p devices. */
    void runTreeLike(const std::vector<int> &devices,
                     CollectiveKind kind, double bytes, int root,
                     Handler done);

    /**
     * Execute @p rounds sequentially (a global barrier between
     * rounds); every (src, dst) pair moves @p bytes over the Router
     * route, chunked. Fires @p done after the last round.
     */
    void runRounds(std::shared_ptr<std::vector<Round>> rounds,
                   std::size_t index, double bytes,
                   std::shared_ptr<Handler> done);

    /** Binomial-reduce rounds over @p count positions (leaves first). */
    static std::vector<Round> reduceRounds(int count);

    /** Binomial-broadcast rounds (root position 0 first). */
    static std::vector<Round> broadcastRounds(int count);

    /**
     * The inter-board leader ring of the hierarchical algorithm,
     * embedded over Router shortest paths between consecutive leaders.
     */
    RingPath leaderRing(const std::vector<int> &leaders) const;

    /**
     * Forward one chunk @p hops_remaining hops starting at @p stage,
     * decrementing @p outstanding and firing @p done at zero.
     */
    void forwardChunk(const RingPath &ring, int stage, int hops_remaining,
                      double bytes,
                      std::shared_ptr<std::uint64_t> outstanding,
                      std::shared_ptr<Handler> done);

    const Fabric &_fabric;
    std::vector<const RingPath *> _rings;
    CollectiveConfig _cfg;
    double _bytesLaunched = 0.0;
    std::uint64_t _opsCompleted = 0;
    TraceSink *_trace = nullptr;
};

/**
 * Closed-form ring-collective latency (no contention), used to validate
 * the DES implementation and for quick analytic studies.
 *
 * @param kind Operation.
 * @param stages Ring stage count.
 * @param bytes Message size on this ring.
 * @param link_bandwidth Per-hop channel bandwidth (bytes/s).
 * @param hop_latency Per-hop propagation latency.
 * @param chunk_bytes Pipeline granularity.
 * @return Completion time in ticks.
 */
Tick analyticRingLatency(CollectiveKind kind, int stages, double bytes,
                         double link_bandwidth, Tick hop_latency,
                         double chunk_bytes);

} // namespace mcdla

#endif // MCDLA_COLLECTIVE_RING_COLLECTIVE_HH
