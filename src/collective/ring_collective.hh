/**
 * @file
 * Ring-algorithm collective communication engine.
 *
 * Implements the topology-aware, ring-based collectives of NCCL-class
 * libraries (Section II-C): a message is split evenly across every
 * logical ring of the fabric; within a ring it is split into per-stage
 * blocks that rotate around the ring in chunk-granular, pipelined steps.
 * Costs per the classic analysis (Chan et al.):
 *
 *   - all-gather / reduce-scatter: each block travels (stages-1) hops,
 *     so each channel carries (stages-1)/stages of the ring's share.
 *   - all-reduce: reduce-scatter immediately followed by all-gather per
 *     block, 2*(stages-1) hops.
 *   - broadcast: the root's share is pipelined (stages-1) hops around.
 *
 * Because chunks are real transfers on the fabric's channels, collectives
 * contend with concurrent memory-virtualization DMA traffic that shares
 * links — the central MC-DLA modelling requirement.
 */

#ifndef MCDLA_COLLECTIVE_RING_COLLECTIVE_HH
#define MCDLA_COLLECTIVE_RING_COLLECTIVE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "interconnect/fabric.hh"
#include "sim/sim_object.hh"

namespace mcdla
{

/** Collective operation kinds used in DL training (Figure 4). */
enum class CollectiveKind
{
    AllGather,     ///< Gather feature maps X (model parallel).
    AllReduce,     ///< Reduce gradients dX / dW.
    ReduceScatter, ///< First half of all-reduce.
    Broadcast,     ///< Distribute updated weights.
};

const char *collectiveKindName(CollectiveKind kind);

/** Engine configuration. */
struct CollectiveConfig
{
    /**
     * Pipeline chunk granularity. The paper's Figure 9 experiment uses
     * 4 KB messages; system-level runs default coarser to keep event
     * counts tractable without changing steady-state bandwidth.
     */
    double chunkBytes = 128.0 * 1024.0;
};

/** Ring-collective executor bound to one fabric. */
class CollectiveEngine : public SimObject
{
  public:
    using Handler = std::function<void()>;

    CollectiveEngine(EventQueue &eq, std::string name,
                     const Fabric &fabric, CollectiveConfig cfg = {});

    /**
     * Launch a collective of @p total_bytes across all fabric rings.
     *
     * @param kind Operation.
     * @param total_bytes Synchronization payload (the full message; for
     *        all-reduce/all-gather this is the per-device tensor size).
     * @param on_done Fires when every ring completes.
     * @param root Root device for broadcast (ignored otherwise).
     */
    void launch(CollectiveKind kind, double total_bytes, Handler on_done,
                int root = 0);

    /**
     * Launch a collective on an explicit ring set instead of the
     * fabric's full rings — the cluster path for jobs owning a subset
     * of the devices (rings built with restrictRingToDevices). The
     * rings must outlive the operation; chunk traffic shares the
     * fabric's channels, so co-located jobs contend.
     */
    void launchOn(const std::vector<const RingPath *> &rings,
                  CollectiveKind kind, double total_bytes,
                  Handler on_done, int root = 0);

    /** Number of logical rings in use. */
    std::size_t ringCount() const { return _rings.size(); }

    /** Total payload bytes injected into collectives so far. */
    double bytesLaunched() const { return _bytesLaunched; }

    /** Completed collective operations. */
    std::uint64_t opsCompleted() const { return _opsCompleted; }

  private:
    /** Run one ring's share of an operation. */
    void runOnRing(const RingPath &ring, CollectiveKind kind,
                   double bytes, int root_stage,
                   const std::shared_ptr<Handler> &ring_done);

    /**
     * Forward one chunk @p hops_remaining hops starting at @p stage,
     * decrementing @p outstanding and firing @p done at zero.
     */
    void forwardChunk(const RingPath &ring, int stage, int hops_remaining,
                      double bytes,
                      std::shared_ptr<std::uint64_t> outstanding,
                      std::shared_ptr<Handler> done);

    const Fabric &_fabric;
    std::vector<const RingPath *> _rings;
    CollectiveConfig _cfg;
    double _bytesLaunched = 0.0;
    std::uint64_t _opsCompleted = 0;
};

/**
 * Closed-form ring-collective latency (no contention), used to validate
 * the DES implementation and for quick analytic studies.
 *
 * @param kind Operation.
 * @param stages Ring stage count.
 * @param bytes Message size on this ring.
 * @param link_bandwidth Per-hop channel bandwidth (bytes/s).
 * @param hop_latency Per-hop propagation latency.
 * @param chunk_bytes Pipeline granularity.
 * @return Completion time in ticks.
 */
Tick analyticRingLatency(CollectiveKind kind, int stages, double bytes,
                         double link_bandwidth, Tick hop_latency,
                         double chunk_bytes);

} // namespace mcdla

#endif // MCDLA_COLLECTIVE_RING_COLLECTIVE_HH
