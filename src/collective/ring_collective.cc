/**
 * @file
 * CollectiveEngine implementation.
 */

#include "collective/ring_collective.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/logging.hh"

namespace mcdla
{

const char *
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::AllGather: return "all-gather";
      case CollectiveKind::AllReduce: return "all-reduce";
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::Broadcast: return "broadcast";
    }
    return "unknown";
}

CollectiveEngine::CollectiveEngine(EventQueue &eq, std::string name,
                                   const Fabric &fabric,
                                   CollectiveConfig cfg)
    : SimObject(eq, std::move(name)), _fabric(fabric), _cfg(cfg)
{
    for (const RingPath &ring : fabric.rings())
        _rings.push_back(&ring);
    stats().scalar("ops", "collective operations completed");
    stats().scalar("bytes", "collective payload bytes launched");
    if (_cfg.chunkBytes <= 0.0)
        fatal("collective chunk size must be positive");
}

void
CollectiveEngine::launch(CollectiveKind kind, double total_bytes,
                         Handler on_done, int root)
{
    launchOn(_rings, kind, total_bytes, std::move(on_done), root);
}

void
CollectiveEngine::launchOn(const std::vector<const RingPath *> &rings,
                           CollectiveKind kind, double total_bytes,
                           Handler on_done, int root)
{
    _bytesLaunched += total_bytes;
    stats().scalar("bytes") += total_bytes;

    auto complete = [this, on_done = std::move(on_done)] {
        ++_opsCompleted;
        ++stats().scalar("ops");
        if (on_done)
            on_done();
    };

    if (total_bytes <= 0.0 || rings.empty()) {
        // Degenerate: nothing to move (or nowhere to move it).
        eventQueue().scheduleAfter(0, complete, name() + ".noop");
        return;
    }

    const double share = total_bytes / static_cast<double>(rings.size());
    auto rings_left = std::make_shared<std::size_t>(rings.size());
    auto ring_done = std::make_shared<Handler>(
        [rings_left, complete = std::move(complete)] {
            if (--*rings_left == 0)
                complete();
        });

    for (const RingPath *ring : rings) {
        const int root_stage = std::max(ring->stageOfDevice(root), 0);
        runOnRing(*ring, kind, share, root_stage, ring_done);
    }
}

void
CollectiveEngine::runOnRing(const RingPath &ring, CollectiveKind kind,
                            double bytes, int root_stage,
                            const std::shared_ptr<Handler> &ring_done)
{
    const int stages = ring.stageCount();
    if (stages < 2 || bytes <= 0.0) {
        eventQueue().scheduleAfter(0, [ring_done] { (*ring_done)(); },
                                   name() + ".trivial_ring");
        return;
    }

    int blocks = 0;
    int hops = 0;
    double block_bytes = 0.0;
    switch (kind) {
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
        blocks = stages;
        block_bytes = bytes / static_cast<double>(stages);
        hops = stages - 1;
        break;
      case CollectiveKind::AllReduce:
        blocks = stages;
        block_bytes = bytes / static_cast<double>(stages);
        hops = 2 * (stages - 1);
        break;
      case CollectiveKind::Broadcast:
        blocks = 1;
        block_bytes = bytes;
        hops = stages - 1;
        break;
    }

    const auto chunks_per_block = static_cast<std::uint64_t>(
        std::ceil(block_bytes / _cfg.chunkBytes));
    auto outstanding = std::make_shared<std::uint64_t>(
        static_cast<std::uint64_t>(blocks) * chunks_per_block);

    for (int b = 0; b < blocks; ++b) {
        const int start =
            (kind == CollectiveKind::Broadcast) ? root_stage : b;
        double left = block_bytes;
        for (std::uint64_t c = 0; c < chunks_per_block; ++c) {
            const double this_chunk = std::min(_cfg.chunkBytes, left);
            left -= this_chunk;
            forwardChunk(ring, start, hops, this_chunk, outstanding,
                         ring_done);
        }
    }
}

void
CollectiveEngine::forwardChunk(const RingPath &ring, int stage,
                               int hops_remaining, double bytes,
                               std::shared_ptr<std::uint64_t> outstanding,
                               std::shared_ptr<Handler> done)
{
    const Route &route =
        ring.hops[static_cast<std::size_t>(stage)
                  % ring.hops.size()];
    sendChunk(route, bytes,
              [this, &ring, stage, hops_remaining, bytes,
               outstanding = std::move(outstanding),
               done = std::move(done)]() mutable {
                  if (hops_remaining > 1) {
                      forwardChunk(ring,
                                   (stage + 1) % ring.stageCount(),
                                   hops_remaining - 1, bytes,
                                   std::move(outstanding),
                                   std::move(done));
                  } else if (--*outstanding == 0) {
                      (*done)();
                  }
              });
}

Tick
analyticRingLatency(CollectiveKind kind, int stages, double bytes,
                    double link_bandwidth, Tick hop_latency,
                    double chunk_bytes)
{
    if (stages < 2 || bytes <= 0.0)
        return 0;

    const double block_bytes = (kind == CollectiveKind::Broadcast)
        ? bytes
        : bytes / static_cast<double>(stages);
    const Tick block_time = transferTicks(block_bytes, link_bandwidth);

    // Pipeline granularity never exceeds the block itself.
    const double eff_chunk = std::min(chunk_bytes, block_bytes);
    const Tick chunk_time = secondsToTicks(eff_chunk / link_bandwidth);

    int steps = 0;
    switch (kind) {
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
        steps = stages - 1;
        break;
      case CollectiveKind::AllReduce:
        steps = 2 * (stages - 1);
        break;
      case CollectiveKind::Broadcast:
        // Pipelined: the wire streams the whole payload once, trailing
        // chunks ripple through the remaining hops.
        return block_time
            + static_cast<Tick>(stages - 2)
            * (chunk_time + hop_latency)
            + hop_latency;
    }

    // Steady state: every channel carries `steps` blocks back-to-back;
    // the pipeline head needs (steps-1) chunk-hops to fill.
    return static_cast<Tick>(steps) * block_time
        + static_cast<Tick>(steps - 1) * (chunk_time + hop_latency)
        + hop_latency;
}

} // namespace mcdla
