/**
 * @file
 * CollectiveEngine implementation.
 */

#include "collective/ring_collective.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/causal.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace mcdla
{

const char *
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::AllGather: return "all-gather";
      case CollectiveKind::AllReduce: return "all-reduce";
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::Broadcast: return "broadcast";
    }
    return "unknown";
}

namespace
{

struct AlgoToken
{
    CollectiveAlgorithm algo;
    const char *token;
};

/** The one table every direction of the round-trip reads. */
constexpr AlgoToken kAlgoTokens[] = {
    {CollectiveAlgorithm::Ring, "ring"},
    {CollectiveAlgorithm::Tree, "tree"},
    {CollectiveAlgorithm::Hierarchical, "hierarchical"},
};

} // anonymous namespace

CollectiveAlgorithm
parseCollectiveAlgorithm(const std::string &name)
{
    for (const AlgoToken &entry : kAlgoTokens)
        if (name == entry.token)
            return entry.algo;
    if (name == "hier") // common shorthand
        return CollectiveAlgorithm::Hierarchical;
    fatal("unknown collective algorithm '%s' (%s)", name.c_str(),
          collectiveAlgorithmTokenList().c_str());
}

const char *
collectiveAlgorithmToken(CollectiveAlgorithm algo)
{
    for (const AlgoToken &entry : kAlgoTokens)
        if (entry.algo == algo)
            return entry.token;
    panic("collective algorithm %d has no token",
          static_cast<int>(algo));
}

const std::vector<CollectiveAlgorithm> &
allCollectiveAlgorithms()
{
    static const std::vector<CollectiveAlgorithm> algos = [] {
        std::vector<CollectiveAlgorithm> all;
        for (const AlgoToken &entry : kAlgoTokens)
            all.push_back(entry.algo);
        return all;
    }();
    return algos;
}

const std::string &
collectiveAlgorithmTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (const AlgoToken &entry : kAlgoTokens) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += entry.token;
        }
        return tokens;
    }();
    return list;
}

CollectiveEngine::CollectiveEngine(EventQueue &eq, std::string name,
                                   const Fabric &fabric,
                                   CollectiveConfig cfg)
    : SimObject(eq, std::move(name)), _fabric(fabric), _cfg(cfg)
{
    for (const RingPath &ring : fabric.rings())
        _rings.push_back(&ring);
    stats().scalar("ops", "collective operations completed");
    stats().scalar("bytes", "collective payload bytes launched");
    if (_cfg.chunkBytes <= 0.0)
        fatal("collective chunk size must be positive");
}

void
CollectiveEngine::launch(CollectiveKind kind, double total_bytes,
                         Handler on_done, int root)
{
    launchOn(_rings, kind, total_bytes, std::move(on_done), root);
}

void
CollectiveEngine::launchOn(const std::vector<const RingPath *> &rings,
                           CollectiveKind kind, double total_bytes,
                           Handler on_done, int root)
{
    // Everything scheduled while launching — degenerate noops and the
    // first wave of chunk submissions — belongs to the collective
    // subsystem; chained hops inherit the context from their parents.
    CausalScope causal_scope(eventQueue().causalRecorder(),
                             WaitKind::Collective,
                             CausalCtx::Collective, name());
    _bytesLaunched += total_bytes;
    stats().scalar("bytes") += total_bytes;

    auto complete = [this, on_done = std::move(on_done)] {
        ++_opsCompleted;
        ++stats().scalar("ops");
        if (on_done)
            on_done();
    };

    if (total_bytes <= 0.0 || rings.empty()) {
        // Degenerate: nothing to move (or nowhere to move it).
        eventQueue().scheduleAfter(0, complete, name() + ".noop");
        return;
    }

    if (_cfg.algorithm != CollectiveAlgorithm::Ring) {
        // Tree-structured algorithms operate on the participating
        // devices (ring order) and route transfers over the topology
        // graph instead of walking the rings.
        const std::vector<int> devices = rings[0]->deviceMembers();
        if (devices.size() < 2) {
            eventQueue().scheduleAfter(0, complete,
                                       name() + ".noop");
            return;
        }
        runTreeLike(devices, kind, total_bytes, root,
                    std::move(complete));
        return;
    }

    const double share = total_bytes / static_cast<double>(rings.size());
    auto rings_left = std::make_shared<std::size_t>(rings.size());
    auto ring_done = std::make_shared<Handler>(
        [rings_left, complete = std::move(complete)] {
            if (--*rings_left == 0)
                complete();
        });

    for (const RingPath *ring : rings) {
        const int root_stage = std::max(ring->stageOfDevice(root), 0);
        runOnRing(*ring, kind, share, root_stage, ring_done);
    }
}

void
CollectiveEngine::runOnRing(const RingPath &ring, CollectiveKind kind,
                            double bytes, int root_stage,
                            const std::shared_ptr<Handler> &ring_done)
{
    const int stages = ring.stageCount();
    if (stages < 2 || bytes <= 0.0) {
        eventQueue().scheduleAfter(0, [ring_done] { (*ring_done)(); },
                                   name() + ".trivial_ring");
        return;
    }

    // When tracing, wrap the per-ring completion in a span emitter:
    // one "rings"-track span per logical ring per operation.
    std::shared_ptr<Handler> completion = ring_done;
    if (_trace) {
        const Tick launched = now();
        const std::string label = std::string(collectiveKindName(kind))
            + " ring x" + std::to_string(stages);
        completion = std::make_shared<Handler>(
            [this, launched, label, ring_done] {
                _trace->addSpan("collective", "rings", label, launched,
                                now() - launched, "sync");
                (*ring_done)();
            });
    }

    int blocks = 0;
    int hops = 0;
    double block_bytes = 0.0;
    switch (kind) {
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
        blocks = stages;
        block_bytes = bytes / static_cast<double>(stages);
        hops = stages - 1;
        break;
      case CollectiveKind::AllReduce:
        blocks = stages;
        block_bytes = bytes / static_cast<double>(stages);
        hops = 2 * (stages - 1);
        break;
      case CollectiveKind::Broadcast:
        blocks = 1;
        block_bytes = bytes;
        hops = stages - 1;
        break;
    }

    const auto chunks_per_block = static_cast<std::uint64_t>(
        std::ceil(block_bytes / _cfg.chunkBytes));
    auto outstanding = std::make_shared<std::uint64_t>(
        static_cast<std::uint64_t>(blocks) * chunks_per_block);

    for (int b = 0; b < blocks; ++b) {
        const int start =
            (kind == CollectiveKind::Broadcast) ? root_stage : b;
        double left = block_bytes;
        for (std::uint64_t c = 0; c < chunks_per_block; ++c) {
            const double this_chunk = std::min(_cfg.chunkBytes, left);
            left -= this_chunk;
            forwardChunk(ring, start, hops, this_chunk, outstanding,
                         completion);
        }
    }
}

void
CollectiveEngine::forwardChunk(const RingPath &ring, int stage,
                               int hops_remaining, double bytes,
                               std::shared_ptr<std::uint64_t> outstanding,
                               std::shared_ptr<Handler> done)
{
    const Route &route =
        ring.hops[static_cast<std::size_t>(stage)
                  % ring.hops.size()];
    sendChunk(route, bytes,
              [this, &ring, stage, hops_remaining, bytes,
               outstanding = std::move(outstanding),
               done = std::move(done)]() mutable {
                  if (hops_remaining > 1) {
                      forwardChunk(ring,
                                   (stage + 1) % ring.stageCount(),
                                   hops_remaining - 1, bytes,
                                   std::move(outstanding),
                                   std::move(done));
                  } else if (--*outstanding == 0) {
                      (*done)();
                  }
              });
}

std::vector<CollectiveEngine::Round>
CollectiveEngine::reduceRounds(int count)
{
    // Binomial reduce toward position 0: in round r every position
    // with (p mod 2^(r+1)) == 2^r sends its full payload to p - 2^r.
    std::vector<Round> rounds;
    for (int span = 1; span < count; span *= 2) {
        Round round;
        for (int p = span; p < count; p += 2 * span)
            round.emplace_back(p, p - span);
        rounds.push_back(std::move(round));
    }
    return rounds;
}

std::vector<CollectiveEngine::Round>
CollectiveEngine::broadcastRounds(int count)
{
    // Mirror image of the reduce: the root's payload fans out doubling
    // the covered set each round.
    std::vector<Round> rounds = reduceRounds(count);
    std::reverse(rounds.begin(), rounds.end());
    for (Round &round : rounds)
        for (auto &pair : round)
            std::swap(pair.first, pair.second);
    return rounds;
}

void
CollectiveEngine::runRounds(std::shared_ptr<std::vector<Round>> rounds,
                            std::size_t index, double bytes,
                            std::shared_ptr<Handler> done)
{
    while (index < rounds->size() && (*rounds)[index].empty())
        ++index;
    if (index >= rounds->size()) {
        (*done)();
        return;
    }
    const Round &round = (*rounds)[index];
    auto outstanding = std::make_shared<std::size_t>(round.size());
    const Tick launched = now();
    for (const auto &[src, dst] : round) {
        Route route = _fabric.deviceRoute(src, dst);
        if (!route.valid())
            fatal("%s: no route from device %d to device %d for a "
                  "tree collective round", name().c_str(), src, dst);
        sendFlow({std::move(route)}, bytes, _cfg.chunkBytes,
                 [this, rounds, index, bytes, done, outstanding,
                  launched] {
                     if (--*outstanding != 0)
                         return;
                     if (_trace) {
                         const std::string label = "round "
                             + std::to_string(index + 1) + "/"
                             + std::to_string(rounds->size()) + " ("
                             + std::to_string((*rounds)[index].size())
                             + " xfer)";
                         _trace->addSpan("collective", "rounds", label,
                                         launched, now() - launched,
                                         "sync");
                     }
                     runRounds(rounds, index + 1, bytes, done);
                 });
    }
}

RingPath
CollectiveEngine::leaderRing(const std::vector<int> &leaders) const
{
    RingPath ring;
    if (leaders.size() < 2)
        return ring;
    for (std::size_t i = 0; i < leaders.size(); ++i) {
        const int src = leaders[i];
        const int dst = leaders[(i + 1) % leaders.size()];
        Route hop = _fabric.deviceRoute(src, dst);
        if (!hop.valid())
            fatal("%s: no route between board leaders %d and %d",
                  name().c_str(), src, dst);
        ring.stages.push_back(RingStage{true, src});
        ring.hops.push_back(std::move(hop));
    }
    return ring;
}

void
CollectiveEngine::runTreeLike(const std::vector<int> &devices,
                              CollectiveKind kind, double bytes,
                              int root, Handler done)
{
    const int m = static_cast<int>(devices.size());
    auto done_ptr = std::make_shared<Handler>(std::move(done));

    // Participant order; broadcast rotates so the root leads the tree.
    std::vector<int> order = devices;
    if (kind == CollectiveKind::Broadcast) {
        auto it = std::find(order.begin(), order.end(), root);
        if (it != order.end())
            std::rotate(order.begin(), it, order.end());
    }

    auto map_rounds = [&order](const std::vector<Round> &position_rounds,
                               std::vector<Round> &out) {
        for (const Round &round : position_rounds) {
            Round mapped;
            for (const auto &[src, dst] : round)
                mapped.emplace_back(
                    order[static_cast<std::size_t>(src)],
                    order[static_cast<std::size_t>(dst)]);
            out.push_back(std::move(mapped));
        }
    };

    const int board = std::max(1, std::min(_cfg.boardDevices, m));
    const bool flat = _cfg.algorithm == CollectiveAlgorithm::Tree
        || kind == CollectiveKind::Broadcast || board >= m;

    if (flat) {
        auto rounds = std::make_shared<std::vector<Round>>();
        if (kind == CollectiveKind::AllReduce
            || kind == CollectiveKind::ReduceScatter)
            map_rounds(reduceRounds(m), *rounds);
        if (kind != CollectiveKind::ReduceScatter)
            map_rounds(broadcastRounds(m), *rounds);
        runRounds(std::move(rounds), 0, bytes, std::move(done_ptr));
        return;
    }

    // Hierarchical: consecutive boards reduce/broadcast internally
    // through binomial trees; board leaders exchange over an
    // inter-board ring embedded on the topology's shortest paths.
    std::vector<int> leaders;
    auto intra_reduce = std::make_shared<std::vector<Round>>();
    auto intra_bcast = std::make_shared<std::vector<Round>>();
    for (int start = 0; start < m; start += board) {
        const int size = std::min(board, m - start);
        std::vector<int> member_order(
            order.begin() + start, order.begin() + start + size);
        leaders.push_back(member_order.front());

        // Merge each board's round r into the global round r so the
        // boards progress concurrently between barriers.
        auto merge = [&member_order](const std::vector<Round> &in,
                                     std::vector<Round> &out) {
            if (out.size() < in.size())
                out.resize(in.size());
            for (std::size_t r = 0; r < in.size(); ++r)
                for (const auto &[src, dst] : in[r])
                    out[r].emplace_back(
                        member_order[static_cast<std::size_t>(src)],
                        member_order[static_cast<std::size_t>(dst)]);
        };
        merge(reduceRounds(size), *intra_reduce);
        merge(broadcastRounds(size), *intra_bcast);
    }

    auto ring = std::make_shared<RingPath>(leaderRing(leaders));
    auto run_leader_phase = [this, ring, kind,
                             bytes](Handler next) {
        // The shared_ptr rides in the completion handler — it is the
        // last reference dropped, keeping the embedded ring alive
        // while chunks are in flight.
        auto ring_done = std::make_shared<Handler>(
            [ring, next = std::move(next)] { next(); });
        runOnRing(*ring, kind, bytes, /*root_stage=*/0, ring_done);
    };

    switch (kind) {
      case CollectiveKind::AllReduce:
        runRounds(intra_reduce, 0, bytes,
                  std::make_shared<Handler>(
                      [this, run_leader_phase, intra_bcast, bytes,
                       done_ptr]() mutable {
                          run_leader_phase([this, intra_bcast, bytes,
                                            done_ptr] {
                              runRounds(intra_bcast, 0, bytes,
                                        done_ptr);
                          });
                      }));
        return;
      case CollectiveKind::ReduceScatter:
        runRounds(intra_reduce, 0, bytes,
                  std::make_shared<Handler>(
                      [run_leader_phase, done_ptr]() mutable {
                          run_leader_phase(
                              [done_ptr] { (*done_ptr)(); });
                      }));
        return;
      case CollectiveKind::AllGather:
        run_leader_phase([this, intra_bcast, bytes, done_ptr] {
            runRounds(intra_bcast, 0, bytes, done_ptr);
        });
        return;
      case CollectiveKind::Broadcast:
        panic("broadcast reaches the flat tree path above");
    }
}

Tick
analyticRingLatency(CollectiveKind kind, int stages, double bytes,
                    double link_bandwidth, Tick hop_latency,
                    double chunk_bytes)
{
    if (stages < 2 || bytes <= 0.0)
        return 0;

    const double block_bytes = (kind == CollectiveKind::Broadcast)
        ? bytes
        : bytes / static_cast<double>(stages);
    const Tick block_time = transferTicks(block_bytes, link_bandwidth);

    // Pipeline granularity never exceeds the block itself.
    const double eff_chunk = std::min(chunk_bytes, block_bytes);
    const Tick chunk_time = secondsToTicks(eff_chunk / link_bandwidth);

    int steps = 0;
    switch (kind) {
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
        steps = stages - 1;
        break;
      case CollectiveKind::AllReduce:
        steps = 2 * (stages - 1);
        break;
      case CollectiveKind::Broadcast:
        // Pipelined: the wire streams the whole payload once, trailing
        // chunks ripple through the remaining hops.
        return block_time
            + static_cast<Tick>(stages - 2)
            * (chunk_time + hop_latency)
            + hop_latency;
    }

    // Steady state: every channel carries `steps` blocks back-to-back;
    // the pipeline head needs (steps-1) chunk-hops to fill.
    return static_cast<Tick>(steps) * block_time
        + static_cast<Tick>(steps - 1) * (chunk_time + hop_latency)
        + hop_latency;
}

} // namespace mcdla
