/**
 * @file
 * DmaEngine implementation.
 */

#include "vmem/dma_engine.hh"

#include "sim/causal.hh"
#include "sim/logging.hh"

namespace mcdla
{

namespace
{

/** Pooled join of one transfer's per-path flows (thread-local free
    list, same ownership discipline as the flow layer's FlowState). */
struct DmaJoin
{
    std::size_t remaining = 0;
    DmaEngine::Handler done;
};

struct DmaJoinPool
{
    std::vector<std::unique_ptr<DmaJoin>> all;
    std::vector<DmaJoin *> free;

    DmaJoin *
    acquire()
    {
        if (!free.empty()) {
            DmaJoin *join = free.back();
            free.pop_back();
            return join;
        }
        all.push_back(std::make_unique<DmaJoin>());
        return all.back().get();
    }

    void
    release(DmaJoin *join)
    {
        join->done = nullptr;
        free.push_back(join);
    }
};

DmaJoinPool &
dmaJoinPool()
{
    thread_local DmaJoinPool pool;
    return pool;
}

} // anonymous namespace

DmaEngine::DmaEngine(EventQueue &eq, std::string name,
                     const std::vector<VmemPath> &paths,
                     double chunk_bytes)
    : SimObject(eq, std::move(name)), _paths(paths),
      _chunkBytes(chunk_bytes)
{
    if (_chunkBytes <= 0.0)
        fatal("dma engine '%s': chunk size must be positive",
              this->name().c_str());
    stats().scalar("bytes_offloaded", "devicelocal -> backing store");
    stats().scalar("bytes_prefetched", "backing store -> devicelocal");
    stats().scalar("transfers", "DMA operations issued");
}

void
DmaEngine::transfer(double bytes, DmaDirection direction,
                    const std::vector<double> &fractions, Handler on_done)
{
    if (!hasBackingStore())
        fatal("dma engine '%s': transfer without a backing store",
              name().c_str());
    // Paging/virtualization traffic: degenerate completions and the
    // chunk submissions below are DMA-subsystem edges; the channel
    // hops they fan into inherit the context.
    CausalScope causal_scope(eventQueue().causalRecorder(),
                             WaitKind::Dma, CausalCtx::Dma, name());
    if (bytes <= 0.0) {
        eventQueue().scheduleAfter(
            0, std::move(on_done),
            EventLabel::dotted(name(), "empty_dma"));
        return;
    }
    if (!fractions.empty() && fractions.size() != _paths.size())
        panic("dma engine '%s': %zu fractions for %zu paths",
              name().c_str(), fractions.size(), _paths.size());

    ++stats().scalar("transfers");
    if (direction == DmaDirection::LocalToRemote) {
        _bytesOffloaded += bytes;
        stats().scalar("bytes_offloaded") += bytes;
    } else {
        _bytesPrefetched += bytes;
        stats().scalar("bytes_prefetched") += bytes;
    }

    // Count the active shares first so the completion join is exact.
    std::size_t active = 0;
    for (std::size_t i = 0; i < _paths.size(); ++i) {
        const double f = fractions.empty()
            ? 1.0 / static_cast<double>(_paths.size())
            : fractions[i];
        if (f > 0.0)
            ++active;
    }
    if (active == 0) {
        eventQueue().scheduleAfter(
            0, std::move(on_done),
            EventLabel::dotted(name(), "zero_fraction_dma"));
        return;
    }

    DmaJoin *join = dmaJoinPool().acquire();
    join->remaining = active;
    join->done = std::move(on_done);
    for (std::size_t i = 0; i < _paths.size(); ++i) {
        const double f = fractions.empty()
            ? 1.0 / static_cast<double>(_paths.size())
            : fractions[i];
        if (f <= 0.0)
            continue;
        const auto &routes = direction == DmaDirection::LocalToRemote
            ? _paths[i].writeRoutes
            : _paths[i].readRoutes;
        sendFlow(routes, bytes * f, _chunkBytes, [join] {
            if (--join->remaining != 0)
                return;
            // Detach and recycle before firing: the completion may
            // issue the next DMA and reuse this join immediately.
            DmaEngine::Handler done = std::move(join->done);
            dmaJoinPool().release(join);
            if (done)
                done();
        });
    }
}

} // namespace mcdla
