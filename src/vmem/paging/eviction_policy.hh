/**
 * @file
 * EvictionPolicy: victim selection under HBM capacity pressure.
 *
 * When a demand-paged prefetch policy (on-demand, history) needs HBM
 * frames, the pager asks its eviction policy to name a victim among the
 * resident, unpinned page groups. Two built-in policies:
 *
 *  - LRU: evict the least-recently-touched group;
 *  - last-forward-use: prefer groups whose last forward consumer has
 *    already retired, oldest trigger first — vDNN's own heuristic, and
 *    Belady-like for the stack-shaped fwd/bwd access pattern (the
 *    earliest-produced stash is the one backpropagation needs last).
 */

#ifndef MCDLA_VMEM_PAGING_EVICTION_POLICY_HH
#define MCDLA_VMEM_PAGING_EVICTION_POLICY_HH

#include <memory>

#include "vmem/paging/page_table.hh"
#include "vmem/paging/paging_config.hh"

namespace mcdla
{

/** Victim-selection interface. */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy() = default;

    virtual EvictionPolicyKind kind() const = 0;
    const char *name() const { return evictionPolicyToken(kind()); }

    /**
     * Choose the next victim among evictable (Resident, unpinned)
     * page groups.
     *
     * @param table The device's page table.
     * @param frontier_op The next op the device will issue.
     * @return The victim layer, or invalidLayerId when none exists.
     */
    virtual LayerId chooseVictim(const PageTable &table,
                                 std::size_t frontier_op) const = 0;
};

/** Evict the least-recently-touched resident group. */
class LruEviction : public EvictionPolicy
{
  public:
    EvictionPolicyKind kind() const override
    {
        return EvictionPolicyKind::Lru;
    }
    LayerId chooseVictim(const PageTable &table,
                         std::size_t frontier_op) const override;
};

/** Prefer groups whose last forward use already retired. */
class LastForwardUseEviction : public EvictionPolicy
{
  public:
    EvictionPolicyKind kind() const override
    {
        return EvictionPolicyKind::LastForwardUse;
    }
    LayerId chooseVictim(const PageTable &table,
                         std::size_t frontier_op) const override;
};

/** Instantiate a policy by kind. */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(
    EvictionPolicyKind kind);

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_EVICTION_POLICY_HH
