/**
 * @file
 * EvictionPolicy implementations.
 */

#include "vmem/paging/eviction_policy.hh"

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

bool
evictable(const PageEntry &e)
{
    return e.state == PageState::Resident && !e.pinned;
}

} // anonymous namespace

LayerId
LruEviction::chooseVictim(const PageTable &table,
                          std::size_t frontier_op) const
{
    (void)frontier_op;
    LayerId victim = invalidLayerId;
    Tick oldest = 0;
    for (const auto &[layer, e] : table.entries()) {
        if (!evictable(e))
            continue;
        if (victim == invalidLayerId || e.lastTouch < oldest) {
            victim = layer;
            oldest = e.lastTouch;
        }
    }
    return victim;
}

LayerId
LastForwardUseEviction::chooseVictim(const PageTable &table,
                                     std::size_t frontier_op) const
{
    // First choice: groups forward is done with, oldest trigger first
    // (their backward reads are the furthest away). Fallback: LRU
    // among groups forward still needs.
    LayerId victim = invalidLayerId;
    std::size_t earliest_trigger = 0;
    LayerId fallback = invalidLayerId;
    Tick oldest = 0;
    for (const auto &[layer, e] : table.entries()) {
        if (!evictable(e))
            continue;
        if (e.lastForwardUseOp < frontier_op) {
            if (victim == invalidLayerId
                || e.lastForwardUseOp < earliest_trigger) {
                victim = layer;
                earliest_trigger = e.lastForwardUseOp;
            }
        } else if (fallback == invalidLayerId || e.lastTouch < oldest) {
            fallback = layer;
            oldest = e.lastTouch;
        }
    }
    return victim != invalidLayerId ? victim : fallback;
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(EvictionPolicyKind kind)
{
    switch (kind) {
      case EvictionPolicyKind::Lru:
        return std::make_unique<LruEviction>();
      case EvictionPolicyKind::LastForwardUse:
        return std::make_unique<LastForwardUseEviction>();
    }
    panic("unknown eviction policy kind %d", static_cast<int>(kind));
}

} // namespace mcdla
