/**
 * @file
 * PrefetchPolicy implementations.
 */

#include "vmem/paging/prefetch_policy.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "vmem/paging/pager.hh"

namespace mcdla
{

// ------------------------------------------------------- static plan

void
StaticPlanPrefetcher::opRetired(DevicePager &pager, std::size_t op)
{
    for (LayerId layer : pager.schedule()[op].planWritebacks)
        pager.planWriteback(layer);
}

void
StaticPlanPrefetcher::frontierAdvanced(DevicePager &pager,
                                       std::size_t op)
{
    const PagingSchedule &schedule = pager.schedule();
    const std::size_t end =
        std::min(op + pager.config().lookahead, schedule.size());
    for (std::size_t i = op; i < end; ++i)
        for (LayerId layer : schedule[i].reads)
            pager.requestFill(layer, false);
}

// ----------------------------------------------------------- history

void
HistoryPrefetcher::beginIteration(DevicePager &pager)
{
    (void)pager;
    // Record until a sequence exists: keying off "history empty"
    // rather than an iteration counter keeps the policy learning
    // through warmup iterations that generated no stash accesses.
    _recording = _history.empty();
    _cursor = 0;
}

void
HistoryPrefetcher::accessed(DevicePager &pager, LayerId layer)
{
    if (_recording) {
        _history.push_back(layer);
        return;
    }
    // Steady state: sync the cursor to this access's position in the
    // recorded sequence, then run ahead of it. The scan wraps: a group
    // re-accessed at an earlier position (a re-fault after eviction, or
    // a stash read twice per iteration) must rewind the cursor, or
    // prefetching silently issues from the wrong position — or stops
    // entirely once the cursor runs off the end.
    const std::size_t n = _history.size();
    for (std::size_t step = 0; step < n; ++step) {
        const std::size_t i = (_cursor + step) % n;
        if (_history[i] == layer) {
            _cursor = i + 1;
            break;
        }
    }
    const std::size_t end = std::min(
        _cursor + pager.config().lookahead, n);
    for (std::size_t i = _cursor; i < end; ++i)
        pager.requestFill(_history[i], false);
}

// ----------------------------------------------------------- factory

std::unique_ptr<PrefetchPolicy>
makePrefetchPolicy(PrefetchPolicyKind kind)
{
    switch (kind) {
      case PrefetchPolicyKind::StaticPlan:
        return std::make_unique<StaticPlanPrefetcher>();
      case PrefetchPolicyKind::OnDemand:
        return std::make_unique<OnDemandPager>();
      case PrefetchPolicyKind::History:
        return std::make_unique<HistoryPrefetcher>();
    }
    panic("unknown prefetch policy kind %d", static_cast<int>(kind));
}

} // namespace mcdla
