/**
 * @file
 * PrefetchPolicy implementations.
 */

#include "vmem/paging/prefetch_policy.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "vmem/paging/pager.hh"

namespace mcdla
{

// ------------------------------------------------------- static plan

void
StaticPlanPrefetcher::opRetired(DevicePager &pager, std::size_t op)
{
    for (LayerId layer : pager.schedule()[op].planWritebacks)
        pager.planWriteback(layer);
}

void
StaticPlanPrefetcher::frontierAdvanced(DevicePager &pager,
                                       std::size_t op)
{
    const PagingSchedule &schedule = pager.schedule();
    const std::size_t end =
        std::min(op + pager.config().lookahead, schedule.size());
    for (std::size_t i = op; i < end; ++i)
        for (LayerId layer : schedule[i].reads)
            pager.requestFill(layer, false);
}

// ----------------------------------------------------------- history

void
HistoryPrefetcher::beginIteration(DevicePager &pager)
{
    (void)pager;
    ++_iteration;
    _recording = _iteration == 1;
    _cursor = 0;
    if (_recording)
        _history.clear();
}

void
HistoryPrefetcher::accessed(DevicePager &pager, LayerId layer)
{
    if (_recording) {
        _history.push_back(layer);
        return;
    }
    // Steady state: sync the cursor to this access's position in the
    // recorded sequence (accesses repeat identically across
    // iterations), then run ahead of it.
    for (std::size_t i = _cursor; i < _history.size(); ++i) {
        if (_history[i] == layer) {
            _cursor = i + 1;
            break;
        }
    }
    const std::size_t end = std::min(
        _cursor + pager.config().lookahead, _history.size());
    for (std::size_t i = _cursor; i < end; ++i)
        pager.requestFill(_history[i], false);
}

// ----------------------------------------------------------- factory

std::unique_ptr<PrefetchPolicy>
makePrefetchPolicy(PrefetchPolicyKind kind)
{
    switch (kind) {
      case PrefetchPolicyKind::StaticPlan:
        return std::make_unique<StaticPlanPrefetcher>();
      case PrefetchPolicyKind::OnDemand:
        return std::make_unique<OnDemandPager>();
      case PrefetchPolicyKind::History:
        return std::make_unique<HistoryPrefetcher>();
    }
    panic("unknown prefetch policy kind %d", static_cast<int>(kind));
}

} // namespace mcdla
