/**
 * @file
 * DevicePager: one device's paged-memory manager.
 *
 * Composes the PageTable (residency + HBM frame accounting), the
 * FaultHandler (DMA issue, stall latches, write-before-read hazard),
 * and the configured prefetch/eviction policies into the single
 * object TrainingSession talks to:
 *
 *   opRetired(op)        — stash production, plan writebacks, releases
 *   frontierAdvanced(op) — lookahead prefetching
 *   demand(op)           — readiness gate for the op's stash reads;
 *                          returns the latch to stall on, or nullptr
 *
 * Under the static-plan policy the pager replays the original vDNN
 * latch machinery event-for-event (capacity-blind, unconditional
 * offload + lookahead prefetch). Under demand-paged policies
 * (on-demand, history) residency is driven by faults and capacity
 * pressure: fills reserve HBM frames, evictions write dirty groups
 * back (clean ones drop for free), and compute stalls on page faults.
 */

#ifndef MCDLA_VMEM_PAGING_PAGER_HH
#define MCDLA_VMEM_PAGING_PAGER_HH

#include <deque>
#include <memory>
#include <set>
#include <string>

#include "sim/stats.hh"
#include "vmem/paging/eviction_policy.hh"
#include "vmem/paging/fault_handler.hh"
#include "vmem/paging/page_table.hh"
#include "vmem/paging/prefetch_policy.hh"

namespace mcdla
{

/** Device-0 paging counters reported with each IterationResult. */
struct PagingCounters
{
    std::uint64_t demandHits = 0;   ///< Reads that found the stash ready.
    std::uint64_t demandMisses = 0; ///< Reads that had to stall.
    std::uint64_t fills = 0;        ///< Fill DMAs requested.
    std::uint64_t demandFills = 0;  ///< Fills requested by a fault.
    std::uint64_t writebacks = 0;   ///< Writeback DMAs issued.
    std::uint64_t cleanDrops = 0;   ///< Evictions with a valid backing copy.
    std::uint64_t earlyEvictions = 0; ///< Evictions before the last fwd use.
    double stallSec = 0.0;          ///< Compute stall waiting on pages.
    double bytesFilled = 0.0;       ///< Wire bytes filled in.
    double bytesWrittenBack = 0.0;  ///< Wire bytes written back.
    std::uint64_t peakResidentBytes = 0; ///< Peak stash HBM occupancy.

    /** Fraction of stash reads that never stalled. */
    double
    hitRate() const
    {
        const double total =
            static_cast<double>(demandHits + demandMisses);
        return total > 0.0 ? static_cast<double>(demandHits) / total
                           : 1.0;
    }
};

/** One device's paged device-memory manager. */
class DevicePager
{
  public:
    /** Wiring from the owning TrainingSession. */
    struct Wiring
    {
        VmemRuntime *runtime = nullptr;
        /** Backing-store allocation per offloaded layer. */
        const std::map<LayerId, RemotePtr> *remotePtrs = nullptr;
        const Network *net = nullptr;
        const PagingSchedule *schedule = nullptr;
        /** Post-compression transfer bytes, indexed by page group. */
        std::vector<double> wireBytes;
        /** HBM frame bytes (uncompressed), indexed by page group. */
        std::vector<std::uint64_t> frameBytes;
        /**
         * Page-group id -> producing layer, for trace labels. Empty
         * means groups are layer ids (dp/mp); pipeline sessions key
         * groups by (layer, microbatch) and supply the decode here.
         */
        std::vector<LayerId> groupLayer;
        /** HBM left for stash frames after weights/working buffers. */
        std::uint64_t frameCapacity = 0;
        PagingConfig config;
        /** Figure 11 vmem tracker (device 0 only; nullptr elsewhere). */
        ActivityTracker *tracker = nullptr;
    };

    DevicePager(std::string name, Wiring wiring);

    /** Reset per-iteration state; @p trace is the current sink. */
    void beginIteration(TraceSink *trace);

    /** Op @p op retired: produce stashes, run policy, release dead. */
    void opRetired(std::size_t op);

    /** The device will issue op @p op next. */
    void frontierAdvanced(std::size_t op);

    /**
     * Readiness gate for op @p op's stash reads. Issues whatever fills
     * the policy wants and returns the first latch the compute stream
     * must wait on, or nullptr when every read is ready.
     */
    Latch *demand(std::size_t op);

    /** Attribute a compute stall of @p ticks to paging. */
    void noteStall(Tick ticks);

    StatSet &stats() { return _stats; }
    const PageTable &pageTable() const { return _table; }
    const PagingConfig &config() const { return _cfg; }
    const PagingSchedule &schedule() const { return *_schedule; }
    PrefetchPolicy &prefetchPolicy() { return *_policy; }

    /** Snapshot of the counters (for IterationResult). */
    PagingCounters counters() const;

    /** Whether no DMA of this pager is in flight. */
    bool dmaIdle() const { return _fault.dmaIdle(); }

    /** Run @p cb when the last in-flight DMA drains (or immediately). */
    void
    whenDmaIdle(FaultHandler::Handler cb)
    {
        _fault.whenDmaIdle(std::move(cb));
    }

    /** SimCheck: panic unless every DMA of this pager has drained. */
    void
    simcheckExpectQuiescent(const char *when) const
    {
        _fault.simcheckExpectQuiescent(when);
    }

    /// @name Policy-facing operations
    /// @{
    /** Static plan: unconditionally write @p layer back now. */
    void planWriteback(LayerId layer);
    /**
     * Request a fill of @p layer (no-op when already ready or in
     * flight). @p demand marks a fault (vs a prefetch).
     */
    void requestFill(LayerId layer, bool demand);
    /// @}

  private:
    Tick now() const;
    void evictOne(LayerId victim);
    void evictUntilFits(std::uint64_t bytes);
    /** Issue queued demand-paged fills as frames become available. */
    void pumpFills();
    void releaseRead(LayerId layer);

    std::string _name;
    VmemRuntime *_runtime;
    const PagingSchedule *_schedule;
    std::vector<double> _wireBytes;
    std::vector<LayerId> _groupLayer;
    PagingConfig _cfg;
    PageTable _table;
    FaultHandler _fault;
    std::unique_ptr<PrefetchPolicy> _policy;
    std::unique_ptr<EvictionPolicy> _evict;
    StatSet _stats;

    std::size_t _frontier = 0;
    /** (op << 32 | layer) pairs whose hit/miss was already counted. */
    std::set<std::uint64_t> _accounted;
    /** Demand-paged fills waiting for HBM frames or a writeback. */
    std::deque<std::pair<LayerId, bool>> _pendingFills;
    std::map<LayerId, std::shared_ptr<Latch>> _demandFillLatch;
    bool _pumping = false;
};

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_PAGER_HH
