/**
 * @file
 * Policy-selector string round-trips (the CLI vocabulary).
 */

#include "vmem/paging/paging_config.hh"

#include "sim/logging.hh"

namespace mcdla
{

namespace
{

struct PrefetchToken
{
    PrefetchPolicyKind kind;
    const char *token;
};

constexpr PrefetchToken kPrefetchTokens[] = {
    {PrefetchPolicyKind::StaticPlan, "static-plan"},
    {PrefetchPolicyKind::OnDemand, "on-demand"},
    {PrefetchPolicyKind::History, "history"},
};

struct EvictionToken
{
    EvictionPolicyKind kind;
    const char *token;
};

constexpr EvictionToken kEvictionTokens[] = {
    {EvictionPolicyKind::Lru, "lru"},
    {EvictionPolicyKind::LastForwardUse, "last-fwd-use"},
};

template <typename Table>
std::string
tokenList(const Table &table)
{
    std::string tokens;
    for (const auto &entry : table) {
        if (!tokens.empty())
            tokens += ", ";
        tokens += entry.token;
    }
    return tokens;
}

} // anonymous namespace

PrefetchPolicyKind
parsePrefetchPolicy(const std::string &name)
{
    for (const PrefetchToken &entry : kPrefetchTokens)
        if (name == entry.token)
            return entry.kind;
    fatal("unknown prefetch policy '%s' (%s)", name.c_str(),
          prefetchPolicyTokenList().c_str());
}

const char *
prefetchPolicyToken(PrefetchPolicyKind kind)
{
    for (const PrefetchToken &entry : kPrefetchTokens)
        if (entry.kind == kind)
            return entry.token;
    panic("prefetch policy %d has no token", static_cast<int>(kind));
}

const std::string &
prefetchPolicyTokenList()
{
    static const std::string list = tokenList(kPrefetchTokens);
    return list;
}

EvictionPolicyKind
parseEvictionPolicy(const std::string &name)
{
    for (const EvictionToken &entry : kEvictionTokens)
        if (name == entry.token)
            return entry.kind;
    fatal("unknown eviction policy '%s' (%s)", name.c_str(),
          evictionPolicyTokenList().c_str());
}

const char *
evictionPolicyToken(EvictionPolicyKind kind)
{
    for (const EvictionToken &entry : kEvictionTokens)
        if (entry.kind == kind)
            return entry.token;
    panic("eviction policy %d has no token", static_cast<int>(kind));
}

const std::string &
evictionPolicyTokenList()
{
    static const std::string list = tokenList(kEvictionTokens);
    return list;
}

} // namespace mcdla
