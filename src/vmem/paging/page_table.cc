/**
 * @file
 * PageTable implementation.
 */

#include "vmem/paging/page_table.hh"

#include "sim/logging.hh"
#include "sim/simcheck.hh"

namespace mcdla
{

const char *
pageStateName(PageState state)
{
    switch (state) {
      case PageState::Invalid: return "invalid";
      case PageState::Resident: return "resident";
      case PageState::Evicting: return "evicting";
      case PageState::NotResident: return "not-resident";
      case PageState::Filling: return "filling";
    }
    return "unknown";
}

void
PageTable::addEntry(LayerId layer, std::uint64_t bytes,
                    std::size_t last_forward_use_op)
{
    if (_entries.count(layer))
        panic("page group for layer %d registered twice", layer);
    PageEntry e;
    e.layer = layer;
    e.bytes = bytes;
    e.lastForwardUseOp = last_forward_use_op;
    _entries.emplace(layer, e);
}

PageEntry &
PageTable::entry(LayerId layer)
{
    auto it = _entries.find(layer);
    if (it == _entries.end())
        panic("layer %d has no page group", layer);
    return it->second;
}

const PageEntry &
PageTable::entry(LayerId layer) const
{
    auto it = _entries.find(layer);
    if (it == _entries.end())
        panic("layer %d has no page group", layer);
    return it->second;
}

void
PageTable::expect(const PageEntry &e, PageState state,
                  const char *transition) const
{
    if (e.state == state)
        return;
    // A frame-state transition from the wrong state is how double
    // mappings (filling an already-resident group) and stale-residency
    // bugs begin; under SimCheck it carries the subsystem label.
    if (simcheck::enabled())
        simcheck::failUntimed(
            "page-table",
            "page group of layer %d is %s; %s requires %s", e.layer,
            pageStateName(e.state), transition, pageStateName(state));
    panic("page group of layer %d is %s; %s requires %s", e.layer,
          pageStateName(e.state), transition, pageStateName(state));
}

void
PageTable::charge(std::uint64_t bytes)
{
    _used += bytes;
    if (_used > _peakUsed)
        _peakUsed = _used;
}

void
PageTable::uncharge(std::uint64_t bytes)
{
    if (bytes > _used)
        panic("page table accounting underflow (%llu < %llu)",
              static_cast<unsigned long long>(_used),
              static_cast<unsigned long long>(bytes));
    _used -= bytes;
}

void
PageTable::produce(LayerId layer, Tick now)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Invalid, "produce");
    e.state = PageState::Resident;
    e.dirty = true;
    e.lastTouch = now;
    charge(e.bytes);
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::beginEvict(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Resident, "beginEvict");
    e.state = PageState::Evicting;
    ++_evicting;
    _evictingBytes += e.bytes;
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::finishEvict(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Evicting, "finishEvict");
    e.state = PageState::NotResident;
    e.dirty = false;
    --_evicting;
    _evictingBytes -= e.bytes;
    uncharge(e.bytes);
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::discard(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Resident, "discard");
    if (e.dirty)
        panic("discarding dirty page group of layer %d", layer);
    e.state = PageState::NotResident;
    uncharge(e.bytes);
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::beginFill(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::NotResident, "beginFill");
    e.state = PageState::Filling;
    ++_filling;
    charge(e.bytes);
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::finishFill(LayerId layer, Tick now)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Filling, "finishFill");
    e.state = PageState::Resident;
    --_filling;
    e.lastTouch = now;
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::release(LayerId layer)
{
    PageEntry &e = entry(layer);
    if (e.state == PageState::Filling)
        --_filling;
    if (e.state == PageState::Resident || e.state == PageState::Filling)
        uncharge(e.bytes);
    else if (e.state == PageState::Evicting)
        panic("releasing layer %d while its writeback is in flight",
              layer);
    e.state = PageState::Invalid;
    e.dirty = false;
    e.pinned = false;
    if (simcheck::enabled())
        simcheckVerify();
}

void
PageTable::touch(LayerId layer, Tick now)
{
    entry(layer).lastTouch = now;
}

void
PageTable::simcheckVerify() const
{
    // Recompute residency from the entries themselves: resident pages
    // (plus in-transit frames, which stay charged) must equal the
    // frames used, and no frame may be charged twice — each entry is
    // counted exactly once by construction, so a mismatch means a
    // transition charged or uncharged out of step with its state.
    std::uint64_t charged = 0;
    int evicting = 0;
    int filling = 0;
    std::uint64_t evicting_bytes = 0;
    for (const auto &[layer, e] : _entries) {
        (void)layer;
        switch (e.state) {
          case PageState::Resident:
            charged += e.bytes;
            break;
          case PageState::Evicting:
            charged += e.bytes;
            ++evicting;
            evicting_bytes += e.bytes;
            break;
          case PageState::Filling:
            charged += e.bytes;
            ++filling;
            break;
          case PageState::Invalid:
          case PageState::NotResident:
            break;
        }
    }
    if (charged != _used)
        simcheck::failUntimed(
            "page-table",
            "resident+in-transit page groups hold %llu bytes but %llu "
            "frame bytes are charged (double-mapped or leaked frames)",
            static_cast<unsigned long long>(charged),
            static_cast<unsigned long long>(_used));
    if (evicting != _evicting || evicting_bytes != _evictingBytes)
        simcheck::failUntimed(
            "page-table",
            "%d evictions (%llu bytes) in flight but counters say %d "
            "(%llu bytes)",
            evicting, static_cast<unsigned long long>(evicting_bytes),
            _evicting,
            static_cast<unsigned long long>(_evictingBytes));
    if (filling != _filling)
        simcheck::failUntimed(
            "page-table",
            "%d fills in flight but the counter says %d", filling,
            _filling);
}

void
PageTable::resetIteration()
{
    for (auto &[layer, e] : _entries) {
        (void)layer;
        e.state = PageState::Invalid;
        e.dirty = false;
        e.pinned = false;
        e.lastTouch = 0;
    }
    _used = 0;
    _peakUsed = 0;
    _evicting = 0;
    _evictingBytes = 0;
    _filling = 0;
}

} // namespace mcdla
