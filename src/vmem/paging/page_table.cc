/**
 * @file
 * PageTable implementation.
 */

#include "vmem/paging/page_table.hh"

#include "sim/logging.hh"

namespace mcdla
{

const char *
pageStateName(PageState state)
{
    switch (state) {
      case PageState::Invalid: return "invalid";
      case PageState::Resident: return "resident";
      case PageState::Evicting: return "evicting";
      case PageState::NotResident: return "not-resident";
      case PageState::Filling: return "filling";
    }
    return "unknown";
}

void
PageTable::addEntry(LayerId layer, std::uint64_t bytes,
                    std::size_t last_forward_use_op)
{
    if (_entries.count(layer))
        panic("page group for layer %d registered twice", layer);
    PageEntry e;
    e.layer = layer;
    e.bytes = bytes;
    e.lastForwardUseOp = last_forward_use_op;
    _entries.emplace(layer, e);
}

PageEntry &
PageTable::entry(LayerId layer)
{
    auto it = _entries.find(layer);
    if (it == _entries.end())
        panic("layer %d has no page group", layer);
    return it->second;
}

const PageEntry &
PageTable::entry(LayerId layer) const
{
    auto it = _entries.find(layer);
    if (it == _entries.end())
        panic("layer %d has no page group", layer);
    return it->second;
}

void
PageTable::expect(const PageEntry &e, PageState state,
                  const char *transition) const
{
    if (e.state != state)
        panic("page group of layer %d is %s; %s requires %s", e.layer,
              pageStateName(e.state), transition, pageStateName(state));
}

void
PageTable::charge(std::uint64_t bytes)
{
    _used += bytes;
    if (_used > _peakUsed)
        _peakUsed = _used;
}

void
PageTable::uncharge(std::uint64_t bytes)
{
    if (bytes > _used)
        panic("page table accounting underflow (%llu < %llu)",
              static_cast<unsigned long long>(_used),
              static_cast<unsigned long long>(bytes));
    _used -= bytes;
}

void
PageTable::produce(LayerId layer, Tick now)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Invalid, "produce");
    e.state = PageState::Resident;
    e.dirty = true;
    e.lastTouch = now;
    charge(e.bytes);
}

void
PageTable::beginEvict(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Resident, "beginEvict");
    e.state = PageState::Evicting;
    ++_evicting;
    _evictingBytes += e.bytes;
}

void
PageTable::finishEvict(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Evicting, "finishEvict");
    e.state = PageState::NotResident;
    e.dirty = false;
    --_evicting;
    _evictingBytes -= e.bytes;
    uncharge(e.bytes);
}

void
PageTable::discard(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Resident, "discard");
    if (e.dirty)
        panic("discarding dirty page group of layer %d", layer);
    e.state = PageState::NotResident;
    uncharge(e.bytes);
}

void
PageTable::beginFill(LayerId layer)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::NotResident, "beginFill");
    e.state = PageState::Filling;
    ++_filling;
    charge(e.bytes);
}

void
PageTable::finishFill(LayerId layer, Tick now)
{
    PageEntry &e = entry(layer);
    expect(e, PageState::Filling, "finishFill");
    e.state = PageState::Resident;
    --_filling;
    e.lastTouch = now;
}

void
PageTable::release(LayerId layer)
{
    PageEntry &e = entry(layer);
    if (e.state == PageState::Filling)
        --_filling;
    if (e.state == PageState::Resident || e.state == PageState::Filling)
        uncharge(e.bytes);
    else if (e.state == PageState::Evicting)
        panic("releasing layer %d while its writeback is in flight",
              layer);
    e.state = PageState::Invalid;
    e.dirty = false;
    e.pinned = false;
}

void
PageTable::touch(LayerId layer, Tick now)
{
    entry(layer).lastTouch = now;
}

void
PageTable::resetIteration()
{
    for (auto &[layer, e] : _entries) {
        (void)layer;
        e.state = PageState::Invalid;
        e.dirty = false;
        e.pinned = false;
        e.lastTouch = 0;
    }
    _used = 0;
    _peakUsed = 0;
    _evicting = 0;
    _evictingBytes = 0;
    _filling = 0;
}

} // namespace mcdla
