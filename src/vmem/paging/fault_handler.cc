/**
 * @file
 * FaultHandler implementation.
 */

#include "vmem/paging/fault_handler.hh"

#include "dnn/network.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"
#include "sim/trace.hh"

namespace mcdla
{

FaultHandler::FaultHandler(
    VmemRuntime &runtime,
    const std::map<LayerId, RemotePtr> &remote_ptrs,
    const std::vector<double> &wire_bytes,
    const std::vector<LayerId> &group_layer, const Network &net,
    ActivityTracker *tracker)
    : _runtime(runtime), _remotePtrs(remote_ptrs),
      _wireBytes(wire_bytes), _groupLayer(group_layer), _net(net),
      _tracker(tracker)
{}

void
FaultHandler::beginIteration(TraceSink *trace,
                             bool precreate_writeback_latches,
                             std::string trace_track)
{
    _trace = trace;
    _traceTrack = std::move(trace_track);
    _writebackIssued.clear();
    ++_epoch;
    const std::size_t groups = _wireBytes.size();
    _writebackLatches.resize(groups);
    _fillLatches.resize(groups);
    _writebackArmed.assign(groups, 0);
    _fillRequested.assign(groups, 0);
    for (std::size_t g = 0; g < groups; ++g) {
        _writebackLatches[g].reset();
        _fillLatches[g].reset();
    }
    if (precreate_writeback_latches) {
        // Static-plan fills chain on writebacks that may not have been
        // issued yet, so every offloaded layer's latch is armed up
        // front.
        for (const auto &[layer, ptr] : _remotePtrs) {
            (void)ptr;
            _writebackArmed.at(static_cast<std::size_t>(layer)) = 1;
        }
    }
}

double
FaultHandler::wireBytes(LayerId layer) const
{
    return _wireBytes.at(static_cast<std::size_t>(layer));
}

void
FaultHandler::transfer(LayerId layer, DmaDirection direction,
                       const char *label, Handler on_drain)
{
    const double bytes = wireBytes(layer);
    const bool tracked = _tracker != nullptr;
    const Tick issued = _runtime.dma().now();
    if (tracked)
        _tracker->begin(issued);
    ++_outstanding;
    _runtime.memcpyAsync(
        _remotePtrs.at(layer), bytes, direction,
        [this, tracked, issued, layer, label, direction,
         on_drain = std::move(on_drain)] {
            const Tick now = _runtime.dma().now();
            if (tracked) {
                _tracker->end(now);
                if (_trace) {
                    // Invariant guards: the span must lie entirely in
                    // the past ([issued, now], now() included).
                    if (issued > now)
                        panic("DMA trace span of group %d starts at "
                              "tick %llu, after its completion (%llu)",
                              layer,
                              static_cast<unsigned long long>(issued),
                              static_cast<unsigned long long>(now));
                    const LayerId owner = _groupLayer.empty()
                        ? layer
                        : _groupLayer.at(
                              static_cast<std::size_t>(layer));
                    _trace->addSpan("vmem", _traceTrack,
                                    label + _net.layer(owner).name(),
                                    issued, now - issued, "dma");
                    if (direction == DmaDirection::LocalToRemote) {
                        _writebackIssued[layer] = issued;
                    } else if (auto wb = _writebackIssued.find(layer);
                               wb != _writebackIssued.end()) {
                        // Write-before-read arrow, offload -> fill.
                        // Both endpoints are emitted here so a group
                        // that is never filled back leaves no
                        // dangling arrow.
                        const std::uint64_t flow = _trace->newFlow();
                        _trace->flowBegin("vmem", _traceTrack,
                                          "wb->fill", wb->second, flow,
                                          "dma");
                        _trace->flowEnd("vmem", _traceTrack,
                                        "wb->fill", issued, flow,
                                        "dma");
                        _writebackIssued.erase(wb);
                    }
                }
            }
            if (on_drain)
                on_drain();
            if (simcheck::enabled() && _outstanding == 0)
                simcheck::fail(
                    "fault-handler", now,
                    "DMA of group %d drained with no outstanding "
                    "transfer on record (count underflow)",
                    layer);
            if (--_outstanding == 0 && !_idleWaiters.empty()) {
                std::vector<Handler> waiters;
                waiters.swap(_idleWaiters);
                for (Handler &waiter : waiters)
                    waiter();
            }
        });
}

void
FaultHandler::simcheckExpectQuiescent(const char *when) const
{
    if (_outstanding != 0)
        simcheck::fail("fault-handler", _runtime.dma().now(),
                       "%llu DMA transfer(s) still outstanding at %s "
                       "(leaked DMA)",
                       static_cast<unsigned long long>(_outstanding),
                       when);
}

void
FaultHandler::whenDmaIdle(Handler cb)
{
    if (_outstanding == 0)
        cb();
    else
        _idleWaiters.push_back(std::move(cb));
}

void
FaultHandler::writeback(LayerId layer, Handler on_drain)
{
    const auto idx = static_cast<std::size_t>(layer);
    if (idx >= _writebackArmed.size() || !_writebackArmed[idx])
        panic("offload of layer %d lacks a pre-created latch", layer);
    Latch *latch = &_writebackLatches[idx];
    const std::uint64_t epoch = _epoch;
    transfer(layer, DmaDirection::LocalToRemote, "offload ",
             [this, latch, epoch, on_drain = std::move(on_drain)] {
                 if (on_drain)
                     on_drain();
                 if (epoch == _epoch)
                     latch->complete();
             });
}

bool
FaultHandler::fill(LayerId layer, bool demand, Handler on_issue,
                   Handler on_drain)
{
    const auto idx = static_cast<std::size_t>(layer);
    if (idx < _fillRequested.size() && _fillRequested[idx])
        return false;
    if (idx >= _writebackArmed.size() || !_writebackArmed[idx])
        panic("prefetch of layer %d before its offload latch exists",
              layer);
    _fillRequested[idx] = 1;
    Latch *latch = &_fillLatches[idx];
    const std::uint64_t epoch = _epoch;

    // Write-before-read: the fill DMA starts only once the writeback
    // of the same group has fully drained.
    _writebackLatches[idx].whenDone([this, layer, demand, latch, epoch,
                                     on_issue = std::move(on_issue),
                                     on_drain = std::move(on_drain)] {
        if (on_issue)
            on_issue();
        transfer(layer, DmaDirection::RemoteToLocal,
                 demand ? "fault " : "prefetch ",
                 [this, latch, epoch, on_drain] {
                     if (on_drain)
                         on_drain();
                     if (epoch == _epoch)
                         latch->complete();
                 });
    });
    return true;
}

Latch *
FaultHandler::fillLatch(LayerId layer) const
{
    const auto idx = static_cast<std::size_t>(layer);
    if (idx >= _fillRequested.size() || !_fillRequested[idx])
        return nullptr;
    return const_cast<Latch *>(&_fillLatches[idx]);
}

void
FaultHandler::issueWritebackDma(LayerId layer, Handler on_drain)
{
    transfer(layer, DmaDirection::LocalToRemote, "evict ",
             std::move(on_drain));
}

void
FaultHandler::issueFillDma(LayerId layer, bool demand, Handler on_drain)
{
    transfer(layer, DmaDirection::RemoteToLocal,
             demand ? "fault " : "prefetch ", std::move(on_drain));
}

} // namespace mcdla
