/**
 * @file
 * DevicePager implementation.
 */

#include "vmem/paging/pager.hh"

#include <algorithm>

#include "dnn/network.hh"
#include "sim/logging.hh"
#include "sim/units.hh"

namespace mcdla
{

namespace
{

std::uint64_t
accountKey(std::size_t op, LayerId layer)
{
    return (static_cast<std::uint64_t>(op) << 32)
        | static_cast<std::uint32_t>(layer);
}

} // anonymous namespace

DevicePager::DevicePager(std::string name, Wiring wiring)
    : _name(std::move(name)), _runtime(wiring.runtime),
      _schedule(wiring.schedule),
      _wireBytes(std::move(wiring.wireBytes)),
      _groupLayer(std::move(wiring.groupLayer)), _cfg(wiring.config),
      _table(wiring.frameCapacity,
             wiring.config.prefetch != PrefetchPolicyKind::StaticPlan),
      _fault(*wiring.runtime, *wiring.remotePtrs, _wireBytes,
             _groupLayer, *wiring.net, wiring.tracker),
      _policy(makePrefetchPolicy(wiring.config.prefetch)),
      _evict(makeEvictionPolicy(wiring.config.eviction)),
      _stats(_name + ".")
{
    // Register one page group per offloaded layer; its last forward
    // use is the op the static plan writes it back after.
    std::map<LayerId, std::size_t> last_forward_use;
    for (std::size_t op = 0; op < _schedule->size(); ++op)
        for (LayerId layer : (*_schedule)[op].planWritebacks)
            last_forward_use[layer] = op;
    for (const auto &[layer, ptr] : *wiring.remotePtrs) {
        (void)ptr;
        auto it = last_forward_use.find(layer);
        if (it == last_forward_use.end())
            panic("offloaded layer %d has no plan writeback op", layer);
        _table.addEntry(
            layer,
            wiring.frameBytes.at(static_cast<std::size_t>(layer)),
            it->second);
    }

    _stats.scalar("demand_hits", "stash reads that found pages ready");
    _stats.scalar("demand_misses", "stash reads that stalled compute");
    _stats.scalar("fills", "page fill DMAs requested");
    _stats.scalar("demand_fills", "fills requested by a page fault");
    _stats.scalar("writebacks", "page writeback DMAs issued");
    _stats.scalar("clean_drops", "evictions with a valid backing copy");
    _stats.scalar("early_evictions",
                  "evictions before the group's last forward use");
    _stats.scalar("stall_ticks", "compute stall ticks blamed on paging");
    _stats.scalar("bytes_filled", "wire bytes filled into HBM");
    _stats.scalar("bytes_written_back", "wire bytes written back");
    _stats.formula(
        "hit_rate", [this] { return counters().hitRate(); },
        "fraction of stash reads that never stalled");
    _stats.formula(
        "peak_resident_bytes",
        [this] {
            return static_cast<double>(_table.peakUsedBytes());
        },
        "peak stash HBM occupancy");
}

Tick
DevicePager::now() const
{
    return _runtime->dma().now();
}

void
DevicePager::beginIteration(TraceSink *trace)
{
    _stats.reset();
    _table.resetIteration();
    // "dev<N>.pager" → DMA track "dev<N>.dma" on the vmem process.
    std::string track = _name;
    if (const auto pos = track.rfind(".pager");
        pos != std::string::npos)
        track.resize(pos);
    _fault.beginIteration(trace, !_policy->demandPaged(),
                          track + ".dma");
    _frontier = 0;
    _accounted.clear();
    _pendingFills.clear();
    _demandFillLatch.clear();
    _policy->beginIteration(*this);
}

void
DevicePager::opRetired(std::size_t op)
{
    const PageAccess &access = (*_schedule)[op];
    for (LayerId layer : access.produces)
        _table.produce(layer, now());

    // The retiring op is done with its reads: a later reader re-pins
    // at its own demand, so multi-reader stashes are evictable (and
    // refetchable) between readers.
    for (LayerId layer : access.reads)
        _table.entry(layer).pinned = false;

    _policy->opRetired(*this, op);

    // Demand paging keeps occupancy under the frame budget: freshly
    // produced stashes push older ones out. In-flight writebacks count
    // as pending frees so pressure never over-schedules evictions.
    if (_policy->demandPaged() && _table.enforcing()) {
        while (_table.usedBytes() - _table.evictingBytes()
               > _table.capacity()) {
            const LayerId victim =
                _evict->chooseVictim(_table, _frontier);
            if (victim == invalidLayerId)
                break;
            evictOne(victim);
        }
    }

    for (LayerId layer : access.releases)
        releaseRead(layer);
    // Releases free frames and unpinned reads become eviction victims;
    // either can unblock a queued fill.
    if (!access.releases.empty() || !access.reads.empty())
        pumpFills();
}

void
DevicePager::frontierAdvanced(std::size_t op)
{
    _frontier = op;
    _policy->frontierAdvanced(*this, op);
}

Latch *
DevicePager::demand(std::size_t op)
{
    const PageAccess &access = (*_schedule)[op];
    if (access.reads.empty())
        return nullptr;

    const bool demand_paged = _policy->demandPaged();
    for (LayerId layer : access.reads) {
        Latch *gate = nullptr;
        if (!demand_paged) {
            // Plan-driven: ensure the fill exists (the window normally
            // issued it already) and stall until its latch fires.
            requestFill(layer, true);
            Latch *latch = _fault.fillLatch(layer);
            if (latch != nullptr && !latch->done())
                gate = latch;
        } else {
            PageEntry &entry = _table.entry(layer);
            entry.pinned = true;
            if (entry.state == PageState::Resident) {
                _table.touch(layer, now());
            } else {
                requestFill(layer, true);
                auto it = _demandFillLatch.find(layer);
                if (it == _demandFillLatch.end())
                    panic("%s: fault on layer %d produced no latch",
                          _name.c_str(), layer);
                gate = it->second.get();
            }
        }

        if (_accounted.insert(accountKey(op, layer)).second) {
            if (gate != nullptr)
                ++_stats.scalar("demand_misses");
            else
                ++_stats.scalar("demand_hits");
            _policy->accessed(*this, layer);
        }
        if (gate != nullptr)
            return gate;
    }
    return nullptr;
}

void
DevicePager::noteStall(Tick ticks)
{
    _stats.scalar("stall_ticks") += static_cast<double>(ticks);
}

void
DevicePager::planWriteback(LayerId layer)
{
    _table.beginEvict(layer);
    ++_stats.scalar("writebacks");
    _fault.writeback(layer, [this, layer] {
        _table.finishEvict(layer);
        _stats.scalar("bytes_written_back") +=
            _wireBytes.at(static_cast<std::size_t>(layer));
    });
}

void
DevicePager::requestFill(LayerId layer, bool demand)
{
    if (!_policy->demandPaged()) {
        const bool issued = _fault.fill(
            layer, demand,
            [this, layer] { _table.beginFill(layer); },
            [this, layer] {
                _table.finishFill(layer, now());
                _stats.scalar("bytes_filled") +=
                    _wireBytes.at(static_cast<std::size_t>(layer));
            });
        if (issued) {
            ++_stats.scalar("fills");
            if (demand)
                ++_stats.scalar("demand_fills");
        }
        return;
    }

    if (_demandFillLatch.count(layer)) {
        // A fault can land on a fill still queued as a prefetch:
        // upgrade it so the no-progress diagnostic (which only weighs
        // demand fills) and the demand_fills counter see the fault.
        if (demand) {
            for (auto &pending : _pendingFills) {
                if (pending.first == layer && !pending.second) {
                    pending.second = true;
                    ++_stats.scalar("demand_fills");
                    break;
                }
            }
            // Pins may have moved since the fill was queued; retry it
            // (or let the no-progress diagnostic fire) now that the
            // compute stream is about to stall on it.
            pumpFills();
        }
        return;
    }
    const PageEntry &entry = _table.entry(layer);
    if (entry.state == PageState::Resident
        || entry.state == PageState::Filling)
        return;
    if (entry.state == PageState::Invalid) {
        // A prefetch may run ahead of production (or past a release);
        // only a real fault on an unproduced stash is a bug.
        if (!demand)
            return;
        panic("%s: fault on layer %d before its stash was produced",
              _name.c_str(), layer);
    }

    if (_table.enforcing() && entry.bytes > _table.capacity())
        fatal("%s: stash of layer %d (%llu bytes) exceeds the whole "
              "HBM frame budget (%llu bytes); raise --hbm-capacity",
              _name.c_str(), layer,
              static_cast<unsigned long long>(entry.bytes),
              static_cast<unsigned long long>(_table.capacity()));

    _demandFillLatch.emplace(layer, std::make_shared<Latch>());
    ++_stats.scalar("fills");
    if (demand)
        ++_stats.scalar("demand_fills");
    _pendingFills.emplace_back(layer, demand);
    pumpFills();
}

void
DevicePager::evictOne(LayerId victim)
{
    PageEntry &entry = _table.entry(victim);
    if (entry.lastForwardUseOp >= _frontier)
        ++_stats.scalar("early_evictions");
    if (entry.dirty) {
        _table.beginEvict(victim);
        ++_stats.scalar("writebacks");
        _fault.issueWritebackDma(victim, [this, victim] {
            _table.finishEvict(victim);
            _stats.scalar("bytes_written_back") +=
                _wireBytes.at(static_cast<std::size_t>(victim));
            pumpFills();
        });
    } else {
        // The backing store still holds a valid copy (stashes are
        // immutable): the frames free instantly.
        _table.discard(victim);
        ++_stats.scalar("clean_drops");
    }
}

void
DevicePager::pumpFills()
{
    if (_pumping)
        return;
    _pumping = true;

    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = _pendingFills.begin();
             it != _pendingFills.end();) {
            const LayerId layer = it->first;
            const bool demand = it->second;
            PageEntry &entry = _table.entry(layer);
            if (entry.state == PageState::Evicting) {
                // Fault collided with this group's own writeback; the
                // drain callback pumps again.
                ++it;
                continue;
            }
            if (_table.enforcing()
                && _table.freeBytes() < entry.bytes) {
                evictUntilFits(entry.bytes);
                if (_table.freeBytes() < entry.bytes) {
                    ++it;
                    continue;
                }
            }
            _table.beginFill(layer);
            _fault.issueFillDma(layer, demand, [this, layer] {
                _table.finishFill(layer, now());
                _stats.scalar("bytes_filled") +=
                    _wireBytes.at(static_cast<std::size_t>(layer));
                auto latch_it = _demandFillLatch.find(layer);
                if (latch_it == _demandFillLatch.end())
                    panic("%s: fill of layer %d drained without a "
                          "latch",
                          _name.c_str(), layer);
                auto latch = latch_it->second;
                _demandFillLatch.erase(latch_it);
                latch->complete();
                // The drained group is evictable now; queued fills may
                // be able to claim its frames.
                pumpFills();
            });
            it = _pendingFills.erase(it);
            progress = true;
        }
    }

    // A queued demand fill with no eviction or fill in flight can make
    // no further progress: the compute stream is stalled on it, so no
    // drain or release will ever free frames.
    if (_table.evictionsInFlight() == 0
        && _table.fillsInFlight() == 0) {
        for (const auto &[layer, demand] : _pendingFills) {
            const PageEntry &entry = _table.entry(layer);
            if (demand && entry.state != PageState::Evicting)
                fatal("%s: page fault on layer %d cannot make "
                      "progress (%llu of %llu frame bytes free, no "
                      "evictable pages); raise --hbm-capacity",
                      _name.c_str(), layer,
                      static_cast<unsigned long long>(
                          _table.freeBytes()),
                      static_cast<unsigned long long>(
                          _table.capacity()));
        }
    }
    _pumping = false;
}

void
DevicePager::evictUntilFits(std::uint64_t bytes)
{
    // Pending writeback drains count as future frees; stop scheduling
    // evictions once they cover the request.
    while (_table.freeBytes() + _table.evictingBytes() < bytes) {
        const LayerId victim = _evict->chooseVictim(_table, _frontier);
        if (victim == invalidLayerId)
            return;
        evictOne(victim);
    }
}

void
DevicePager::releaseRead(LayerId layer)
{
    _table.release(layer);
}

PagingCounters
DevicePager::counters() const
{
    PagingCounters c;
    auto count = [this](const char *name) {
        return static_cast<std::uint64_t>(_stats.value(name));
    };
    c.demandHits = count("demand_hits");
    c.demandMisses = count("demand_misses");
    c.fills = count("fills");
    c.demandFills = count("demand_fills");
    c.writebacks = count("writebacks");
    c.cleanDrops = count("clean_drops");
    c.earlyEvictions = count("early_evictions");
    c.stallSec = ticksToSeconds(
        static_cast<Tick>(_stats.value("stall_ticks")));
    c.bytesFilled = _stats.value("bytes_filled");
    c.bytesWrittenBack = _stats.value("bytes_written_back");
    c.peakResidentBytes = _table.peakUsedBytes();
    return c;
}

} // namespace mcdla
