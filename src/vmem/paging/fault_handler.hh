/**
 * @file
 * FaultHandler: DMA issue and completion signaling for page traffic.
 *
 * The handler issues page fills and writebacks as cudaMemcpyAsync
 * transfers through the device's VmemRuntime, feeds the device-0 vmem
 * activity tracker and the Chrome-tracing sink, and offers two levels
 * of service:
 *
 *  - the plan-driven level (writeback/fill) owns per-layer one-shot
 *    latches and enforces the write-before-read hazard by chaining a
 *    fill on the same group's (possibly not yet issued) writeback —
 *    this replays the original vDNN latch machinery exactly;
 *  - the low-level level (issueWritebackDma/issueFillDma) just moves
 *    the bytes and reports drain — demand-paged policies sequence
 *    transfers through the PageTable state machine instead.
 *
 * Trace spans keep the original labels for plan-driven traffic
 * ("offload"/"prefetch") and distinguish pressure-driven traffic
 * ("evict"/"fault").
 */

#ifndef MCDLA_VMEM_PAGING_FAULT_HANDLER_HH
#define MCDLA_VMEM_PAGING_FAULT_HANDLER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dnn/layer.hh"
#include "system/latch.hh"
#include "vmem/runtime.hh"

namespace mcdla
{

class Network;
class TraceSink;

/** Per-device DMA orchestration for the paging subsystem. */
class FaultHandler
{
  public:
    using Handler = std::function<void()>;

    /**
     * @param runtime The device's Table I runtime.
     * @param remote_ptrs Backing-store allocation per page group.
     * @param wire_bytes Post-compression transfer size per page group.
     * @param group_layer Group id -> producing layer (empty = groups
     *                    are layer ids); trace-label decode only.
     * @param net Network (trace span labels).
     * @param tracker Figure 11 vmem activity tracker (device 0 only;
     *                nullptr elsewhere).
     */
    FaultHandler(VmemRuntime &runtime,
                 const std::map<LayerId, RemotePtr> &remote_ptrs,
                 const std::vector<double> &wire_bytes,
                 const std::vector<LayerId> &group_layer,
                 const Network &net, ActivityTracker *tracker);

    /**
     * Reset latches for a new iteration.
     *
     * @param trace Current tracing sink (may be nullptr).
     * @param precreate_writeback_latches Static-plan mode: create every
     *        layer's writeback latch up front so fills can chain on
     *        writebacks that have not been issued yet.
     * @param trace_track Track name for DMA spans on the "vmem"
     *        process (per-device under multi-tenancy).
     */
    void beginIteration(TraceSink *trace,
                        bool precreate_writeback_latches,
                        std::string trace_track = "dev0.dma");

    /// @name Plan-driven service (static-plan policy)
    /// @{

    /**
     * Issue the writeback DMA of @p layer, completing its pre-created
     * latch on drain. @p on_drain runs first.
     */
    void writeback(LayerId layer, Handler on_drain);

    /**
     * Request the fill of @p layer, chaining on its (possibly future)
     * writeback.
     *
     * @param demand Demand fault (trace label "fault") vs prefetch.
     * @param on_issue Runs immediately before the DMA is issued (after
     *        the writeback chain fires) — frame-state bookkeeping.
     * @param on_drain Runs when the DMA drains, before the latch fires.
     * @return true when a new fill was created; false when one already
     *         existed.
     */
    bool fill(LayerId layer, bool demand, Handler on_issue,
              Handler on_drain);

    /** The layer's fill latch; nullptr when no fill was requested. */
    Latch *fillLatch(LayerId layer) const;

    /// @}

    /// @name Low-level service (demand-paged policies)
    /// @{

    /** Issue a pressure-driven writeback DMA now. */
    void issueWritebackDma(LayerId layer, Handler on_drain);

    /** Issue a fill DMA now. */
    void issueFillDma(LayerId layer, bool demand, Handler on_drain);

    /// @}

    /// @name DMA quiescence
    /// @{

    /** Whether no transfer of this handler is in flight. */
    bool dmaIdle() const { return _outstanding == 0; }

    /**
     * Run @p cb once every in-flight transfer has drained
     * (immediately when already idle). Multi-tenant sessions gate
     * device handback on this: destroying the pager with a DMA in
     * flight would dangle the completion callback.
     */
    void whenDmaIdle(Handler cb);

    /**
     * SimCheck: panic (SimCheck[fault-handler]) unless every DMA has
     * drained. Sessions assert this at end of iteration — a leaked
     * transfer there means a completion callback will dangle.
     *
     * @param when Context for the diagnostic (e.g. "end of iteration").
     */
    void simcheckExpectQuiescent(const char *when) const;

    /// @}

  private:
    double wireBytes(LayerId layer) const;
    void transfer(LayerId layer, DmaDirection direction,
                  const char *label, Handler on_drain);

    VmemRuntime &_runtime;
    const std::map<LayerId, RemotePtr> &_remotePtrs;
    const std::vector<double> &_wireBytes;
    const std::vector<LayerId> &_groupLayer;
    const Network &_net;
    ActivityTracker *_tracker;
    TraceSink *_trace = nullptr;
    std::string _traceTrack = "dev0.dma";
    /**
     * Issue tick of each group's last completed writeback. A later
     * fill of the group draws the write-before-read flow arrow from
     * this tick; groups never filled back (trailing writebacks,
     * forward-only runs) leave no dangling arrow because both flow
     * endpoints are emitted at fill time.
     */
    std::map<LayerId, Tick> _writebackIssued;

    /**
     * Per-group latches, pooled: flat vectors indexed by group id,
     * rearmed (Latch::reset()) every beginIteration instead of being
     * reallocated through per-iteration shared_ptr maps. The armed /
     * requested flags carry the old maps' presence semantics —
     * writeback() and fill() still panic on a group whose offload
     * latch was never pre-created, and fill() still reports an
     * already-requested fill by returning false.
     */
    std::vector<Latch> _writebackLatches;
    std::vector<char> _writebackArmed;
    std::vector<Latch> _fillLatches;
    std::vector<char> _fillRequested;
    /** Bumped every beginIteration; a drain completion from a previous
        epoch (possible only if quiescence was violated) must not
        complete the recycled latch of the current one. */
    std::uint64_t _epoch = 0;
    /** In-flight transfers (writebacks can trail the compute program). */
    std::uint64_t _outstanding = 0;
    std::vector<Handler> _idleWaiters;
};

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_FAULT_HANDLER_HH
