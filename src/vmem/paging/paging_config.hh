/**
 * @file
 * Shared vocabulary of the paged device-memory subsystem: policy
 * selectors, the paging knobs carried by SystemConfig, and the
 * per-iteration page-access schedule the TrainingSession derives from
 * its op program.
 *
 * The subsystem generalizes the original hardwired vDNN behavior
 * (unconditionally offload every stashed tensor after its last forward
 * use, prefetch with a fixed lookahead) into interchangeable prefetch
 * and eviction policies over a capacity-tracked page table, so the
 * simulator can compare static offload plans against fault-driven
 * on-demand paging and history-based prefetching.
 */

#ifndef MCDLA_VMEM_PAGING_PAGING_CONFIG_HH
#define MCDLA_VMEM_PAGING_PAGING_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace mcdla
{

/** How fills (backing store -> HBM) are scheduled. */
enum class PrefetchPolicyKind
{
    /**
     * Reproduce the compile-time vDNN plan exactly: writeback each
     * stashed tensor after its last forward use and prefetch it when
     * its backward consumer enters the lookahead window. Capacity
     * pressure is ignored (the plan is assumed feasible).
     */
    StaticPlan,
    /** No prefetch: consuming ops fault and stall on demand fills. */
    OnDemand,
    /**
     * Fault-driven while recording the access sequence (until a
     * non-empty sequence exists); steady-state iterations prefetch
     * ahead of the recorded sequence.
     */
    History,
};

/** How victims are chosen when HBM pressure forces an eviction. */
enum class EvictionPolicyKind
{
    Lru,            ///< Least-recently-touched resident page group.
    LastForwardUse, ///< Prefer pages whose last forward use retired
                    ///< longest ago (vDNN's heuristic; Belady-like for
                    ///< the fwd/bwd stack access pattern).
};

/// @name Policy string round-trips (CLI vocabulary)
/// @{
PrefetchPolicyKind parsePrefetchPolicy(const std::string &name);
const char *prefetchPolicyToken(PrefetchPolicyKind kind);
const std::string &prefetchPolicyTokenList();

EvictionPolicyKind parseEvictionPolicy(const std::string &name);
const char *evictionPolicyToken(EvictionPolicyKind kind);
const std::string &evictionPolicyTokenList();
/// @}

/** Paging knobs carried by SystemConfig. */
struct PagingConfig
{
    PrefetchPolicyKind prefetch = PrefetchPolicyKind::StaticPlan;
    EvictionPolicyKind eviction = EvictionPolicyKind::LastForwardUse;
    /** Prefetch window in ops (static-plan and history lookahead). */
    std::size_t lookahead = 8;
};

/**
 * Paging actions attached to one op of the SPMD program. Built once per
 * schedule by TrainingSession; policies and the pager interpret the
 * subset they care about.
 */
struct PageAccess
{
    /** Stashes that become HBM-resident when this op retires. */
    std::vector<LayerId> produces;
    /** Static-plan writebacks issued when this op retires (the op is
        the stash's last forward use). */
    std::vector<LayerId> planWritebacks;
    /** Stashes this op reads; it may not issue until all are ready. */
    std::vector<LayerId> reads;
    /** Stashes dead after this op retires (it was their last reader). */
    std::vector<LayerId> releases;
};

/** The whole program's page-access schedule, indexed by op. */
using PagingSchedule = std::vector<PageAccess>;

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_PAGING_CONFIG_HH
