/**
 * @file
 * PrefetchPolicy: when page traffic is scheduled.
 *
 * The pager calls the policy at three points of the SPMD program — an
 * op retired, the program frontier advanced, a stash was demanded —
 * and the policy answers by asking the pager for writebacks and fills:
 *
 *  - static-plan reproduces the original vDNN schedule exactly
 *    (unconditional writeback at the last forward use, prefetch with a
 *    lookahead window) and ignores HBM pressure;
 *  - on-demand issues no prefetch at all: consuming ops fault, stall,
 *    and fill on demand, with pressure-driven evictions;
 *  - history records the demand-access sequence in its first
 *    stash-accessing iteration and, in steady state, prefetches ahead
 *    of its position in the recorded sequence (the position scan wraps
 *    so eviction re-faults re-synchronize instead of desyncing the
 *    cursor).
 */

#ifndef MCDLA_VMEM_PAGING_PREFETCH_POLICY_HH
#define MCDLA_VMEM_PAGING_PREFETCH_POLICY_HH

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "vmem/paging/paging_config.hh"

namespace mcdla
{

class DevicePager;

/** Traffic-scheduling interface. */
class PrefetchPolicy
{
  public:
    virtual ~PrefetchPolicy() = default;

    virtual PrefetchPolicyKind kind() const = 0;
    const char *name() const { return prefetchPolicyToken(kind()); }

    /**
     * Whether residency is driven by faults and capacity pressure
     * (true) or purely by the compile-time plan's latches (false).
     */
    virtual bool demandPaged() const { return true; }

    /** A new iteration is starting on @p pager's device. */
    virtual void beginIteration(DevicePager &pager) { (void)pager; }

    /** Op @p op just retired on the device's compute stream. */
    virtual void opRetired(DevicePager &pager, std::size_t op)
    {
        (void)pager;
        (void)op;
    }

    /** The device's program frontier advanced to op @p op. */
    virtual void frontierAdvanced(DevicePager &pager, std::size_t op)
    {
        (void)pager;
        (void)op;
    }

    /** Stash of @p layer was demanded for the first time by its op. */
    virtual void accessed(DevicePager &pager, LayerId layer)
    {
        (void)pager;
        (void)layer;
    }
};

/** The original vDNN schedule (capacity-blind, plan-driven). */
class StaticPlanPrefetcher : public PrefetchPolicy
{
  public:
    PrefetchPolicyKind kind() const override
    {
        return PrefetchPolicyKind::StaticPlan;
    }
    bool demandPaged() const override { return false; }
    void opRetired(DevicePager &pager, std::size_t op) override;
    void frontierAdvanced(DevicePager &pager, std::size_t op) override;
};

/** Pure fault-driven paging: no prefetch. */
class OnDemandPager : public PrefetchPolicy
{
  public:
    PrefetchPolicyKind kind() const override
    {
        return PrefetchPolicyKind::OnDemand;
    }
};

/** Learn the access sequence once, prefetch ahead of it afterwards. */
class HistoryPrefetcher : public PrefetchPolicy
{
  public:
    PrefetchPolicyKind kind() const override
    {
        return PrefetchPolicyKind::History;
    }
    void beginIteration(DevicePager &pager) override;
    void accessed(DevicePager &pager, LayerId layer) override;

    bool recording() const { return _recording; }
    const std::vector<LayerId> &history() const { return _history; }
    /** Steady-state position in the recorded sequence (for tests). */
    std::size_t cursor() const { return _cursor; }

  private:
    bool _recording = true;
    std::vector<LayerId> _history;
    std::size_t _cursor = 0;
};

/** Instantiate a policy by kind. */
std::unique_ptr<PrefetchPolicy> makePrefetchPolicy(
    PrefetchPolicyKind kind);

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_PREFETCH_POLICY_HH
