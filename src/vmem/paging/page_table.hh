/**
 * @file
 * PageTable: residency tracking of stashed-tensor page groups in
 * device HBM.
 *
 * Each offloadable stash (one per Offload-class layer) is tracked as
 * one page group with a byte size, a residency state, and the metadata
 * eviction policies need (last touch tick, last-forward-use op). The
 * table accounts resident bytes against a configurable frame capacity
 * — the HBM left over after weights, keep-local stash, and working
 * buffers — but deliberately tolerates overcommit: whether pressure
 * triggers evictions is the pager's (policy-dependent) decision, and
 * the static-plan policy reproduces the original capacity-blind vDNN
 * behavior while the table merely observes occupancy.
 */

#ifndef MCDLA_VMEM_PAGING_PAGE_TABLE_HH
#define MCDLA_VMEM_PAGING_PAGE_TABLE_HH

#include <cstdint>
#include <map>

#include "dnn/layer.hh"
#include "sim/units.hh"

namespace mcdla
{

/** Residency state of one page group. */
enum class PageState
{
    Invalid,     ///< Not produced yet this iteration (or dead).
    Resident,    ///< In device HBM.
    Evicting,    ///< Writeback DMA in flight; frames free on drain.
    NotResident, ///< Only in the backing store.
    Filling,     ///< Fill DMA in flight; frames already reserved.
};

const char *pageStateName(PageState state);

/** One tracked page group (a layer's stashed tensor). */
struct PageEntry
{
    LayerId layer = invalidLayerId;
    std::uint64_t bytes = 0;       ///< HBM frame footprint.
    PageState state = PageState::Invalid;
    /** Backing store lacks a current copy (set by produce, cleared
        when a writeback drains; stashes are immutable, so a refilled
        copy stays clean). */
    bool dirty = false;
    /** Demanded by the issuing op; never an eviction victim. */
    bool pinned = false;
    Tick lastTouch = 0;
    /** Op index of the stash's last forward use (its plan trigger). */
    std::size_t lastForwardUseOp = 0;
};

/** Residency table plus byte accounting for one device. */
class PageTable
{
  public:
    /**
     * @param capacity HBM bytes available for stash page groups.
     * @param enforce Whether the owning pager evicts under pressure
     *                (false for the capacity-blind static plan).
     */
    PageTable(std::uint64_t capacity, bool enforce)
        : _capacity(capacity), _enforce(enforce)
    {}

    /** Register one page group (once, before the first iteration). */
    void addEntry(LayerId layer, std::uint64_t bytes,
                  std::size_t last_forward_use_op);

    bool has(LayerId layer) const { return _entries.count(layer) != 0; }
    PageEntry &entry(LayerId layer);
    const PageEntry &entry(LayerId layer) const;
    const std::map<LayerId, PageEntry> &entries() const
    {
        return _entries;
    }

    std::uint64_t capacity() const { return _capacity; }
    bool enforcing() const { return _enforce; }
    std::uint64_t usedBytes() const { return _used; }
    std::uint64_t peakUsedBytes() const { return _peakUsed; }
    /** Free frames (0 while overcommitted). */
    std::uint64_t
    freeBytes() const
    {
        return _used >= _capacity ? 0 : _capacity - _used;
    }

    /// @name Residency transitions (byte accounting included)
    /// @{
    /** Invalid -> Resident (dirty): the producing op retired. */
    void produce(LayerId layer, Tick now);
    /** Resident -> Evicting: writeback DMA issued (frames still
        charged until the data has drained out of HBM). */
    void beginEvict(LayerId layer);
    /** Evicting -> NotResident: writeback drained; frames freed. */
    void finishEvict(LayerId layer);
    /** Resident -> NotResident without traffic (clean copy exists). */
    void discard(LayerId layer);
    /** NotResident -> Filling: fill DMA issued; frames reserved. */
    void beginFill(LayerId layer);
    /** Filling -> Resident: fill DMA drained. */
    void finishFill(LayerId layer, Tick now);
    /** Any state -> Invalid: last reader retired; frames freed. */
    void release(LayerId layer);
    /// @}

    /** Refresh the LRU timestamp of a resident page group. */
    void touch(LayerId layer, Tick now);

    /** Page groups currently in Evicting state. */
    int evictionsInFlight() const { return _evicting; }

    /** Frame bytes that will free once in-flight writebacks drain. */
    std::uint64_t evictingBytes() const { return _evictingBytes; }

    /** Page groups currently in Filling state. */
    int fillsInFlight() const { return _filling; }

    /** Reset every entry to Invalid for a new iteration. */
    void resetIteration();

    /**
     * SimCheck: frame accounting. Recomputes residency from the
     * entries and panics (SimCheck[page-table]) unless resident +
     * in-transit bytes == usedBytes() and the eviction/fill in-flight
     * counters match. Runs automatically at every residency transition
     * while SimCheck is enabled.
     */
    void simcheckVerify() const;

  private:
    void expect(const PageEntry &e, PageState state,
                const char *transition) const;
    void charge(std::uint64_t bytes);
    void uncharge(std::uint64_t bytes);

    std::uint64_t _capacity;
    bool _enforce;
    std::uint64_t _used = 0;
    std::uint64_t _peakUsed = 0;
    int _evicting = 0;
    std::uint64_t _evictingBytes = 0;
    int _filling = 0;
    std::map<LayerId, PageEntry> _entries;
};

} // namespace mcdla

#endif // MCDLA_VMEM_PAGING_PAGE_TABLE_HH
