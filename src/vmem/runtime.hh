/**
 * @file
 * MC-DLA runtime API extensions (paper Table I).
 *
 * Mirrors the proposed libcudart extensions:
 *
 *   cudaMallocRemote(&src, size)  -> VmemRuntime::mallocRemote(size)
 *   cudaFreeRemote(&src)          -> VmemRuntime::freeRemote(ptr)
 *   cudaMemcpyAsync(..., LocalToRemote / RemoteToLocal)
 *                                 -> VmemRuntime::memcpyAsync(...)
 *
 * Allocation placement follows the driver's page policy (Fig 10): LOCAL
 * keeps an allocation within one memory-node's share; BW_AWARE splits it
 * page-round-robin across the left and right neighbors so DMA engages all
 * N high-bandwidth links.
 */

#ifndef MCDLA_VMEM_RUNTIME_HH
#define MCDLA_VMEM_RUNTIME_HH

#include <cstdint>
#include <map>

#include "memory/address_map.hh"
#include "vmem/dma_engine.hh"

namespace mcdla
{

/** Handle to a deviceremote allocation. */
using RemotePtr = std::uint64_t;
constexpr RemotePtr invalidRemotePtr = 0;

/** Device-side runtime implementing the Table I API. */
class VmemRuntime
{
  public:
    using Handler = DmaEngine::Handler;

    /**
     * @param space The device's enlarged address space (Fig 10).
     * @param dma The device's DMA engine.
     * @param policy Driver page-placement policy.
     */
    VmemRuntime(DeviceAddressSpace &space, DmaEngine &dma,
                PagePolicy policy)
        : _space(space), _dma(dma), _policy(policy)
    {}

    PagePolicy policy() const { return _policy; }
    DeviceAddressSpace &addressSpace() { return _space; }
    DmaEngine &dma() { return _dma; }

    /**
     * cudaMallocRemote: allocate @p bytes in deviceremote memory.
     *
     * @return Handle for later memcpy/free.
     */
    RemotePtr mallocRemote(std::uint64_t bytes);

    /** cudaFreeRemote: release a remote allocation. */
    void freeRemote(RemotePtr ptr);

    /**
     * cudaMemcpyAsync with the extended LocalToRemote / RemoteToLocal
     * directions. The copy honors the allocation's placement, engaging
     * the links of every memory-node holding its pages.
     *
     * @param ptr Remote allocation handle.
     * @param bytes Copy size (<= allocation size).
     * @param direction Offload or prefetch.
     * @param on_done Completion callback.
     */
    void memcpyAsync(RemotePtr ptr, double bytes, DmaDirection direction,
                     Handler on_done);

    /** Placement of a live allocation. */
    const Placement &placement(RemotePtr ptr) const;

    /** Live remote allocation count. */
    std::size_t liveAllocations() const { return _allocations.size(); }

  private:
    DeviceAddressSpace &_space;
    DmaEngine &_dma;
    PagePolicy _policy;
    RemotePtr _next = 1;
    std::map<RemotePtr, Placement> _allocations;
};

} // namespace mcdla

#endif // MCDLA_VMEM_RUNTIME_HH
