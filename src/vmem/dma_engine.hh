/**
 * @file
 * Per-device DMA engine for memory-virtualization traffic.
 *
 * The engine owns the device's vmem paths (from the Fabric) and moves
 * bulk payloads as chunked flows: offloads (device -> backing store) and
 * prefetches (backing store -> device). A placement's per-target traffic
 * fractions — produced by the page allocator (LOCAL vs BW_AWARE) — decide
 * how much of each payload rides each path; within a path, chunks
 * round-robin across its parallel routes (one per ring link).
 */

#ifndef MCDLA_VMEM_DMA_ENGINE_HH
#define MCDLA_VMEM_DMA_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "interconnect/fabric.hh"
#include "sim/sim_object.hh"

namespace mcdla
{

/** DMA transfer direction (Table I's extended cudaMemcpyAsync). */
enum class DmaDirection
{
    LocalToRemote, ///< Offload: devicelocal -> backing store.
    RemoteToLocal, ///< Prefetch: backing store -> devicelocal.
};

/** One device's software-managed DMA engine. */
class DmaEngine : public SimObject
{
  public:
    using Handler = std::function<void()>;

    /**
     * @param eq Driving event queue.
     * @param name Instance name.
     * @param paths vmem paths of this device (may be empty for designs
     *              without a backing store, e.g. the oracle).
     * @param chunk_bytes Flow chunk granularity.
     */
    DmaEngine(EventQueue &eq, std::string name,
              const std::vector<VmemPath> &paths,
              double chunk_bytes = kDefaultChunkBytes);

    /** Whether this device has any backing store attached. */
    bool hasBackingStore() const { return !_paths.empty(); }

    std::size_t pathCount() const { return _paths.size(); }

    /**
     * Move @p bytes in @p direction.
     *
     * @param bytes Payload size.
     * @param direction Offload or prefetch.
     * @param fractions Per-path traffic shares (must align with
     *                  pathCount() and sum to ~1); empty means "spread
     *                  evenly across all paths".
     * @param on_done Completion callback.
     */
    void transfer(double bytes, DmaDirection direction,
                  const std::vector<double> &fractions, Handler on_done);

    /** Convenience: even spread. */
    void
    transfer(double bytes, DmaDirection direction, Handler on_done)
    {
        transfer(bytes, direction, {}, std::move(on_done));
    }

    double bytesOffloaded() const { return _bytesOffloaded; }
    double bytesPrefetched() const { return _bytesPrefetched; }

  private:
    std::vector<VmemPath> _paths;
    double _chunkBytes;
    double _bytesOffloaded = 0.0;
    double _bytesPrefetched = 0.0;
};

} // namespace mcdla

#endif // MCDLA_VMEM_DMA_ENGINE_HH
