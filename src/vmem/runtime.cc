/**
 * @file
 * VmemRuntime implementation.
 */

#include "vmem/runtime.hh"

#include "sim/logging.hh"

namespace mcdla
{

RemotePtr
VmemRuntime::mallocRemote(std::uint64_t bytes)
{
    Placement placement = _space.mallocRemote(bytes, _policy);
    const RemotePtr ptr = _next++;
    _allocations.emplace(ptr, std::move(placement));
    return ptr;
}

void
VmemRuntime::freeRemote(RemotePtr ptr)
{
    auto it = _allocations.find(ptr);
    if (it == _allocations.end())
        fatal("cudaFreeRemote of unknown handle %llu",
              static_cast<unsigned long long>(ptr));
    _space.free(it->second);
    _allocations.erase(it);
}

void
VmemRuntime::memcpyAsync(RemotePtr ptr, double bytes,
                         DmaDirection direction, Handler on_done)
{
    const Placement &p = placement(ptr);
    if (bytes > static_cast<double>(p.bytes))
        fatal("cudaMemcpyAsync of %s exceeds allocation of %s",
              formatBytes(bytes).c_str(),
              formatBytes(static_cast<double>(p.bytes)).c_str());
    _dma.transfer(bytes, direction, p.fractions, std::move(on_done));
}

const Placement &
VmemRuntime::placement(RemotePtr ptr) const
{
    auto it = _allocations.find(ptr);
    if (it == _allocations.end())
        fatal("unknown deviceremote handle %llu",
              static_cast<unsigned long long>(ptr));
    return it->second;
}

} // namespace mcdla
