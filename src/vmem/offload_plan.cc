/**
 * @file
 * OffloadPlan implementation.
 */

#include "vmem/offload_plan.hh"

#include "sim/logging.hh"

namespace mcdla
{

const char *
tensorActionName(TensorAction action)
{
    switch (action) {
      case TensorAction::None: return "none";
      case TensorAction::Offload: return "offload";
      case TensorAction::Recompute: return "recompute";
      case TensorAction::KeepLocal: return "keep-local";
    }
    return "unknown";
}

OffloadPlan::OffloadPlan(const Network &net, const OffloadPolicy &policy)
    : _net(net), _policy(policy)
{
    _entries.reserve(net.size());
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        const Layer &layer = net.layer(id);
        TensorPlan plan;
        plan.producer = id;
        plan.auxBytesPerSample = layer.auxStashBytesPerSample();

        const bool needed = net.outputStashedForBackward(id);
        if (!needed && plan.auxBytesPerSample == 0) {
            plan.action = TensorAction::None;
            _entries.push_back(plan);
            continue;
        }
        if (needed)
            plan.outBytesPerSample = layer.outBytesPerSample();

        if (!_policy.virtualizeMemory) {
            plan.action = TensorAction::KeepLocal;
        } else if (layer.costClass() == CostClass::Cheap
                   && _policy.recomputeCheapLayers) {
            // Cheap layers re-derive their outputs during backprop; no
            // migration traffic, but their aux state (none today) and
            // recompute time are charged to the backward pass.
            plan.action = TensorAction::Recompute;
        } else {
            plan.action = TensorAction::Offload;
        }
        _entries.push_back(plan);
    }
}

const TensorPlan &
OffloadPlan::entry(LayerId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= _entries.size())
        panic("offload plan: layer id %d out of range", id);
    return _entries[static_cast<std::size_t>(id)];
}

std::uint64_t
OffloadPlan::offloadBytesPerSample() const
{
    std::uint64_t total = 0;
    for (const TensorPlan &p : _entries)
        if (p.action == TensorAction::Offload)
            total += p.totalBytesPerSample();
    return total;
}

std::uint64_t
OffloadPlan::residentBytesPerSample() const
{
    std::uint64_t total = 0;
    for (const TensorPlan &p : _entries)
        if (p.action == TensorAction::KeepLocal)
            total += p.totalBytesPerSample();
    return total;
}

std::vector<LayerId>
OffloadPlan::recomputedLayers() const
{
    std::vector<LayerId> out;
    for (const TensorPlan &p : _entries)
        if (p.action == TensorAction::Recompute)
            out.push_back(p.producer);
    return out;
}

std::size_t
OffloadPlan::offloadCount() const
{
    std::size_t n = 0;
    for (const TensorPlan &p : _entries)
        if (p.action == TensorAction::Offload)
            ++n;
    return n;
}

} // namespace mcdla
