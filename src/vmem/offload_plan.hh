/**
 * @file
 * vDNN-style memory-overlaying plan (Section II-B / IV).
 *
 * The DL framework analyzes the network DAG at compile time and derives,
 * for every tensor that backpropagation will need again, one of:
 *
 *  - Offload: push to the backing store after the last forward use and
 *    prefetch before the backward use (heavy conv/GEMM/recurrent
 *    tensors). Per the paper's stress-test methodology this is done
 *    unconditionally, even when the working set would fit.
 *  - Recompute: cheap layers (activation, pooling, LRN, batch-norm ...)
 *    re-derive their outputs during backprop instead of migrating them —
 *    the MXNet-style optimization the paper adopts (footnote 4).
 *  - KeepLocal: tensor stays resident (oracle mode, or tiny tensors).
 *  - None: tensor is dead after forward (no backward use).
 */

#ifndef MCDLA_VMEM_OFFLOAD_PLAN_HH
#define MCDLA_VMEM_OFFLOAD_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/network.hh"

namespace mcdla
{

/** Disposition of one layer's stash-for-backward tensors. */
enum class TensorAction
{
    None,      ///< Nothing to keep for backward.
    Offload,   ///< Migrate to the backing store and prefetch back.
    Recompute, ///< Re-derive during backward (no migration traffic).
    KeepLocal, ///< Keep resident in devicelocal memory.
};

const char *tensorActionName(TensorAction action);

/** Planner knobs. */
struct OffloadPolicy
{
    /** Master switch; false models DC-DLA(O)'s infinite local memory. */
    bool virtualizeMemory = true;

    /** Apply the recompute-cheap-layers optimization (footnote 4). */
    bool recomputeCheapLayers = true;
};

/** Per-layer plan entry. */
struct TensorPlan
{
    LayerId producer = invalidLayerId;
    TensorAction action = TensorAction::None;
    /** Output bytes per sample affected by the action. */
    std::uint64_t outBytesPerSample = 0;
    /** Auxiliary stash bytes per sample (gates, cell state, ...). */
    std::uint64_t auxBytesPerSample = 0;

    std::uint64_t
    totalBytesPerSample() const
    {
        return outBytesPerSample + auxBytesPerSample;
    }
};

/** The compile-time memory-overlaying schedule for one network. */
class OffloadPlan
{
  public:
    OffloadPlan(const Network &net, const OffloadPolicy &policy);

    const Network &network() const { return _net; }
    const OffloadPolicy &policy() const { return _policy; }

    const TensorPlan &entry(LayerId id) const;
    const std::vector<TensorPlan> &entries() const { return _entries; }

    /** Bytes migrated out (== prefetched back) per sample. */
    std::uint64_t offloadBytesPerSample() const;

    /** Bytes kept resident per sample (KeepLocal actions). */
    std::uint64_t residentBytesPerSample() const;

    /** Layers whose forward pass re-runs during backward. */
    std::vector<LayerId> recomputedLayers() const;

    /** Number of Offload entries. */
    std::size_t offloadCount() const;

  private:
    const Network &_net;
    OffloadPolicy _policy;
    std::vector<TensorPlan> _entries;
};

} // namespace mcdla

#endif // MCDLA_VMEM_OFFLOAD_PLAN_HH
