/**
 * @file
 * Job trace parsing and synthetic arrival generation.
 */

#include "cluster/job.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/scenario.hh"
#include "sim/logging.hh"

namespace mcdla
{

std::string
JobSpec::label() const
{
    std::ostringstream os;
    os << name << ':' << workload << '/' << parallelModeToken(mode)
       << "/b" << batch << "/d" << devices;
    return os.str();
}

namespace
{

std::int64_t
parseInt(const std::string &value, const std::string &key, int line)
{
    try {
        std::size_t used = 0;
        const long long v = std::stoll(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("job trace line %d: %s=%s is not an integer", line,
              key.c_str(), value.c_str());
    }
}

double
parseDouble(const std::string &value, const std::string &key, int line)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("job trace line %d: %s=%s is not a number", line,
              key.c_str(), value.c_str());
    }
}

} // anonymous namespace

std::vector<JobSpec>
parseJobTrace(std::istream &in)
{
    std::vector<JobSpec> jobs;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string token;
        JobSpec spec;
        bool have_arrival = false;
        bool have_workload = false;
        bool any = false;
        while (tokens >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos)
                fatal("job trace line %d: token '%s' is not key=value",
                      line_no, token.c_str());
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            any = true;
            if (key == "arrival") {
                spec.arrivalSec = parseDouble(value, key, line_no);
                if (spec.arrivalSec < 0.0)
                    fatal("job trace line %d: negative arrival time",
                          line_no);
                have_arrival = true;
            } else if (key == "workload") {
                spec.workload = value;
                have_workload = true;
            } else if (key == "mode") {
                spec.mode = parseParallelMode(value);
            } else if (key == "batch") {
                spec.batch = parseInt(value, key, line_no);
            } else if (key == "devices") {
                spec.devices =
                    static_cast<int>(parseInt(value, key, line_no));
            } else if (key == "iterations") {
                spec.iterations =
                    static_cast<int>(parseInt(value, key, line_no));
            } else if (key == "stages") {
                spec.pipelineStages =
                    static_cast<int>(parseInt(value, key, line_no));
            } else if (key == "microbatches") {
                spec.microbatches =
                    static_cast<int>(parseInt(value, key, line_no));
            } else if (key == "name") {
                spec.name = value;
            } else {
                fatal("job trace line %d: unknown key '%s'", line_no,
                      key.c_str());
            }
        }
        if (!any)
            continue; // blank / comment-only line
        if (!have_arrival || !have_workload)
            fatal("job trace line %d: arrival= and workload= are "
                  "required", line_no);
        if (spec.batch < 1 || spec.devices < 1 || spec.iterations < 1
            || spec.microbatches < 1 || spec.pipelineStages < 0)
            fatal("job trace line %d: non-positive job shape", line_no);
        if (spec.name.empty())
            spec.name = "job" + std::to_string(jobs.size());
        jobs.push_back(std::move(spec));
    }
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const JobSpec &a, const JobSpec &b) {
                         return a.arrivalSec < b.arrivalSec;
                     });
    return jobs;
}

std::vector<JobSpec>
loadJobTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open job trace '%s'", path.c_str());
    return parseJobTrace(in);
}

std::string
jobSpecLine(const JobSpec &spec)
{
    std::ostringstream os;
    os << "arrival=" << spec.arrivalSec << " workload=" << spec.workload
       << " mode=" << parallelModeToken(spec.mode) << " batch="
       << spec.batch << " devices=" << spec.devices << " iterations="
       << spec.iterations;
    if (spec.mode == ParallelMode::Pipeline)
        os << " stages=" << spec.pipelineStages << " microbatches="
           << spec.microbatches;
    if (!spec.name.empty())
        os << " name=" << spec.name;
    return os.str();
}

std::vector<JobSpec>
synthesizeJobs(int count, double arrival_rate, int max_devices,
               Random &rng)
{
    if (count < 1)
        fatal("synthetic job stream requires a positive job count");
    if (arrival_rate <= 0.0)
        fatal("synthetic job stream requires a positive arrival rate");
    if (max_devices < 1)
        fatal("synthetic job stream requires at least one device");

    std::vector<JobSpec> jobs;
    jobs.reserve(static_cast<std::size_t>(count));
    double clock = 0.0;
    for (int i = 0; i < count; ++i) {
        const JobTemplate &t = sampleJobMix(defaultJobMix(), rng);
        JobSpec spec;
        spec.name = "job" + std::to_string(i);
        spec.workload = t.workload;
        spec.mode = t.mode;
        spec.batch = t.batch;
        spec.devices = std::min(t.devices, max_devices);
        spec.iterations = t.iterations;
        // Exponential interarrival times (Poisson process).
        clock += -std::log(1.0 - rng.uniform()) / arrival_rate;
        spec.arrivalSec = clock;
        jobs.push_back(std::move(spec));
    }
    return jobs;
}

} // namespace mcdla
