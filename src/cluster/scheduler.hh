/**
 * @file
 * Pluggable cluster job schedulers.
 *
 * A scheduler looks at the waiting queue and the free resources —
 * device-nodes and the shared memory pool — and names the job to admit
 * next, or nothing. Policies differ in how they trade queueing
 * fairness against utilization:
 *
 *  - FIFO: strict arrival order; a job that does not fit blocks
 *    everything behind it (head-of-line blocking),
 *  - SJF: the shortest waiting job by the AnalyticEstimate oracle's
 *    service-time bound; still blocks when that job does not fit,
 *  - memory-aware best-fit backfill: unreserved backfill in arrival
 *    order — a job that cannot fit (devices or pool) is skipped, so
 *    small jobs slot around blocked heavyweights — switching to
 *    best-fit pool packing when the head is blocked by memory.
 */

#ifndef MCDLA_CLUSTER_SCHEDULER_HH
#define MCDLA_CLUSTER_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/pool_allocator.hh"

namespace mcdla
{

/** Scheduler policy selector. */
enum class SchedulerKind
{
    Fifo,
    Sjf,
    Backfill,
};

/** Parse a scheduler token ("fifo" / "sjf" / "backfill"); fatal. */
SchedulerKind parseScheduler(const std::string &name);

/** Canonical CLI token of a scheduler kind. */
const char *schedulerToken(SchedulerKind kind);

/** Every scheduler the parser accepts. */
const std::vector<SchedulerKind> &allSchedulers();

/** One-line description (the --list-schedulers catalog). */
const char *schedulerDescription(SchedulerKind kind);

/** Comma-separated accepted tokens (help text). */
const std::string &schedulerTokenList();

/** The scheduler's view of one waiting job. */
struct PendingJob
{
    /** Cluster job index (stable across queue reshuffles). */
    std::size_t jobIndex = 0;
    /** Device-nodes the job gangs. */
    int devices = 0;
    /** Backing-store bytes to carve from the shared pool. */
    std::uint64_t poolBytes = 0;
    /** AnalyticEstimate service-time bound (SJF's oracle), seconds. */
    double estServiceSec = 0.0;
    double arrivalSec = 0.0;
};

/** Job-admission policy over the waiting queue. */
class JobScheduler
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    virtual ~JobScheduler() = default;
    virtual const char *name() const = 0;

    /**
     * Position in @p queue (arrival-ordered) of the job to admit
     * given @p free_devices and the pool's current state, or npos to
     * admit nothing. The cluster calls this repeatedly until npos, so
     * a policy admits greedily one job at a time.
     */
    virtual std::size_t pick(const std::vector<PendingJob> &queue,
                             int free_devices,
                             const MemoryPoolAllocator &pool) const = 0;

    /**
     * The queued job this policy is stalled on when pick() returns
     * npos — the head for arrival-ordered policies, the shortest job
     * for SJF — or npos when the queue is empty. The cluster combines
     * it with memoryBlocked() to attribute memory-induced blocking in
     * the pool timeline.
     */
    virtual std::size_t
    blockedCandidate(const std::vector<PendingJob> &queue,
                     int free_devices,
                     const MemoryPoolAllocator &pool) const;

    /** Whether @p job has the devices but cannot place its block. */
    static bool memoryBlocked(const PendingJob &job, int free_devices,
                              const MemoryPoolAllocator &pool);

  protected:
    /** Whether @p job fits the free devices and the pool right now. */
    static bool fits(const PendingJob &job, int free_devices,
                     const MemoryPoolAllocator &pool);
};

/** Factory over the kind enum. */
std::unique_ptr<JobScheduler> makeScheduler(SchedulerKind kind);

} // namespace mcdla

#endif // MCDLA_CLUSTER_SCHEDULER_HH
