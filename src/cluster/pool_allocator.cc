/**
 * @file
 * Pool allocator implementations.
 */

#include "cluster/pool_allocator.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/simcheck.hh"

namespace mcdla
{

PoolAllocatorKind
parsePoolAllocator(const std::string &name)
{
    if (name == "first-fit" || name == "firstfit" || name == "ff")
        return PoolAllocatorKind::FirstFit;
    if (name == "buddy")
        return PoolAllocatorKind::Buddy;
    fatal("unknown pool allocator '%s' (%s)", name.c_str(),
          poolAllocatorTokenList().c_str());
}

const char *
poolAllocatorToken(PoolAllocatorKind kind)
{
    switch (kind) {
      case PoolAllocatorKind::FirstFit: return "first-fit";
      case PoolAllocatorKind::Buddy: return "buddy";
    }
    panic("pool allocator %d has no token", static_cast<int>(kind));
}

const std::string &
poolAllocatorTokenList()
{
    static const std::string list = "first-fit, buddy";
    return list;
}

MemoryPoolAllocator::MemoryPoolAllocator(std::uint64_t capacity)
    : _capacity(capacity)
{
    if (capacity == 0)
        fatal("memory pool requires non-zero capacity");
}

std::optional<PoolBlock>
MemoryPoolAllocator::allocate(std::uint64_t bytes)
{
    if (bytes == 0)
        fatal("pool allocation of zero bytes");
    std::optional<PoolBlock> block = doAllocate(bytes);
    if (!block) {
        ++_failures;
        return std::nullopt;
    }
    block->requested = bytes;
    _used += block->bytes;
    _peakUsed = std::max(_peakUsed, _used);
    _internalWaste += block->bytes - bytes;
    ++_live;
    _liveBlocks[block->addr] = block->bytes;
    if (simcheck::enabled())
        simcheckVerify();
    return block;
}

void
MemoryPoolAllocator::release(const PoolBlock &block)
{
    if (!block.valid())
        panic("releasing an invalid pool block");
    // The ledger check subsumes the old releasing-more-than-allocated
    // underflow guard: an outstanding block's bytes are always <= _used.
    auto it = _liveBlocks.find(block.addr);
    if (it == _liveBlocks.end() || it->second != block.bytes)
        simcheck::failUntimed(
            "memory-pool",
            "%s release of [%llu, +%llu) which is not an outstanding "
            "block (double free or corrupted handle)",
            name(), static_cast<unsigned long long>(block.addr),
            static_cast<unsigned long long>(block.bytes));
    _liveBlocks.erase(it);
    doRelease(block);
    _used -= block.bytes;
    _internalWaste -= block.bytes - block.requested;
    --_live;
    if (simcheck::enabled())
        simcheckVerify();
}

double
MemoryPoolAllocator::utilization() const
{
    return static_cast<double>(_used) / static_cast<double>(_capacity);
}

void
MemoryPoolAllocator::simcheckVerifyTiling(
    const std::map<std::uint64_t, std::uint64_t> &free_spans) const
{
    // Merge-walk the live blocks and free spans in address order: they
    // must tile [0, capacity()) exactly. One pass subsumes every
    // free-list law — no overlapping blocks, no block/hole overlap,
    // no lost bytes, free + allocated == capacity.
    auto live = _liveBlocks.begin();
    auto free_it = free_spans.begin();
    std::uint64_t cursor = 0;
    std::uint64_t free_total = 0;
    while (live != _liveBlocks.end() || free_it != free_spans.end()) {
        const bool take_live = live != _liveBlocks.end()
            && (free_it == free_spans.end()
                || live->first < free_it->first);
        const std::uint64_t addr =
            take_live ? live->first : free_it->first;
        const std::uint64_t bytes =
            take_live ? live->second : free_it->second;
        if (addr != cursor)
            simcheck::failUntimed(
                "memory-pool",
                "%s %s span [%llu, +%llu) %s the previous span ending "
                "at %llu (overlap or lost bytes)",
                name(), take_live ? "allocated" : "free",
                static_cast<unsigned long long>(addr),
                static_cast<unsigned long long>(bytes),
                addr < cursor ? "overlaps" : "leaves a gap after",
                static_cast<unsigned long long>(cursor));
        cursor = addr + bytes;
        if (!take_live)
            free_total += bytes;
        if (take_live)
            ++live;
        else
            ++free_it;
    }
    if (cursor != _capacity)
        simcheck::failUntimed(
            "memory-pool",
            "%s spans cover [0, %llu) but the pool capacity is %llu",
            name(), static_cast<unsigned long long>(cursor),
            static_cast<unsigned long long>(_capacity));
    if (free_total != _capacity - _used)
        simcheck::failUntimed(
            "memory-pool",
            "%s free bytes %llu != capacity %llu - used %llu",
            name(), static_cast<unsigned long long>(free_total),
            static_cast<unsigned long long>(_capacity),
            static_cast<unsigned long long>(_used));
}

void
MemoryPoolAllocator::simcheckVerify() const
{
    std::uint64_t allocated = 0;
    for (const auto &[addr, bytes] : _liveBlocks) {
        (void)addr;
        allocated += bytes;
    }
    if (allocated != _used)
        simcheck::failUntimed(
            "memory-pool",
            "%s outstanding blocks hold %llu bytes but usedBytes() is "
            "%llu",
            name(), static_cast<unsigned long long>(allocated),
            static_cast<unsigned long long>(_used));
    if (_liveBlocks.size() != _live)
        simcheck::failUntimed(
            "memory-pool",
            "%s tracks %zu outstanding blocks but liveAllocations() "
            "is %llu",
            name(), _liveBlocks.size(),
            static_cast<unsigned long long>(_live));
}

double
MemoryPoolAllocator::fragmentation() const
{
    const std::uint64_t free = freeBytes();
    if (free == 0)
        return 0.0;
    const std::uint64_t largest = largestFreeBlock();
    return 1.0
        - static_cast<double>(largest) / static_cast<double>(free);
}

// ------------------------------------------------------------ first-fit

FirstFitPoolAllocator::FirstFitPoolAllocator(std::uint64_t capacity)
    : MemoryPoolAllocator(capacity)
{
    _holes.emplace(0, capacity);
}

bool
FirstFitPoolAllocator::canAllocate(std::uint64_t bytes) const
{
    for (const auto &[addr, size] : _holes)
        if (size >= bytes)
            return true;
    return false;
}

std::uint64_t
FirstFitPoolAllocator::largestFreeBlock() const
{
    std::uint64_t largest = 0;
    for (const auto &[addr, size] : _holes)
        largest = std::max(largest, size);
    return largest;
}

void
FirstFitPoolAllocator::simcheckVerify() const
{
    MemoryPoolAllocator::simcheckVerify();
    // Holes must be coalesced: two adjoining holes mean doRelease's
    // merge logic broke down.
    for (auto it = _holes.begin(); it != _holes.end(); ++it) {
        auto next = std::next(it);
        if (next != _holes.end()
            && it->first + it->second == next->first)
            simcheck::failUntimed(
                "memory-pool",
                "first-fit holes [%llu, +%llu) and [%llu, +%llu) "
                "adjoin but were not coalesced",
                static_cast<unsigned long long>(it->first),
                static_cast<unsigned long long>(it->second),
                static_cast<unsigned long long>(next->first),
                static_cast<unsigned long long>(next->second));
    }
    simcheckVerifyTiling(_holes);
}

std::optional<PoolBlock>
FirstFitPoolAllocator::doAllocate(std::uint64_t bytes)
{
    for (auto it = _holes.begin(); it != _holes.end(); ++it) {
        if (it->second < bytes)
            continue;
        PoolBlock block;
        block.addr = it->first;
        block.bytes = bytes;
        const std::uint64_t left = it->second - bytes;
        const std::uint64_t tail = it->first + bytes;
        _holes.erase(it);
        if (left > 0)
            _holes.emplace(tail, left);
        return block;
    }
    return std::nullopt;
}

void
FirstFitPoolAllocator::doRelease(const PoolBlock &block)
{
    auto [it, inserted] = _holes.emplace(block.addr, block.bytes);
    if (!inserted)
        panic("first-fit double free at %llu",
              static_cast<unsigned long long>(block.addr));

    // Coalesce with the successor, then the predecessor.
    auto next = std::next(it);
    if (next != _holes.end()
        && it->first + it->second == next->first) {
        it->second += next->second;
        _holes.erase(next);
    }
    if (it != _holes.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            _holes.erase(it);
        }
    }
}

// ---------------------------------------------------------------- buddy

namespace
{

/** The effective buddy granularity: shrunk to fit pools smaller than
    the requested minimum block (e.g. the token 1-byte pool of designs
    without a backing store). */
std::uint64_t
buddyMinBlock(std::uint64_t capacity, std::uint64_t min_block)
{
    if (min_block == 0 || (min_block & (min_block - 1)) != 0)
        fatal("buddy minimum block must be a power of two");
    while (min_block > capacity && min_block > 1)
        min_block >>= 1;
    return min_block;
}

/** Capacity rounded down to the buddy granularity; the sub-minimum
    tail can never be placed, so it is excluded from the pool's
    capacity instead of masquerading as free space. */
std::uint64_t
buddyUsableCapacity(std::uint64_t capacity, std::uint64_t min_block)
{
    min_block = buddyMinBlock(capacity, min_block);
    const std::uint64_t usable = capacity / min_block * min_block;
    if (usable < capacity) {
        warn("buddy pool: dropping %llu tail bytes below the %llu "
             "minimum block",
             static_cast<unsigned long long>(capacity - usable),
             static_cast<unsigned long long>(min_block));
    }
    return usable;
}

} // anonymous namespace

BuddyPoolAllocator::BuddyPoolAllocator(std::uint64_t capacity,
                                       std::uint64_t min_block)
    : MemoryPoolAllocator(buddyUsableCapacity(capacity, min_block)),
      _minBlock(buddyMinBlock(capacity, min_block))
{
    const std::uint64_t usable = this->capacity();

    // Seed the free lists with the binary decomposition of the
    // capacity: descending powers of two laid from address zero are
    // naturally aligned, so buddy arithmetic stays inside each seed.
    int max_order = 0;
    while ((_minBlock << (max_order + 1)) <= usable)
        ++max_order;
    _free.assign(static_cast<std::size_t>(max_order) + 1, {});

    std::uint64_t addr = 0;
    for (int order = max_order; order >= 0; --order) {
        const std::uint64_t size = _minBlock << order;
        while (usable - addr >= size) {
            _free[static_cast<std::size_t>(order)].emplace(addr, true);
            addr += size;
        }
    }
}

int
BuddyPoolAllocator::orderOf(std::uint64_t bytes) const
{
    int order = 0;
    while ((_minBlock << order) < bytes) {
        ++order;
        if (static_cast<std::size_t>(order) >= _free.size())
            return -1; // larger than the largest possible block
    }
    return order;
}

bool
BuddyPoolAllocator::canAllocate(std::uint64_t bytes) const
{
    const int order = orderOf(bytes);
    if (order < 0)
        return false;
    for (std::size_t o = static_cast<std::size_t>(order);
         o < _free.size(); ++o)
        if (!_free[o].empty())
            return true;
    return false;
}

std::uint64_t
BuddyPoolAllocator::largestFreeBlock() const
{
    for (std::size_t o = _free.size(); o-- > 0;)
        if (!_free[o].empty())
            return _minBlock << o;
    return 0;
}

void
BuddyPoolAllocator::simcheckVerify() const
{
    MemoryPoolAllocator::simcheckVerify();
    std::map<std::uint64_t, std::uint64_t> free_spans;
    for (std::size_t order = 0; order < _free.size(); ++order) {
        const std::uint64_t size = _minBlock << order;
        for (const auto &[addr, tag] : _free[order]) {
            (void)tag;
            if (addr % size != 0)
                simcheck::failUntimed(
                    "memory-pool",
                    "buddy free block [%llu, +%llu) is not naturally "
                    "aligned to its size",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(size));
            if (!free_spans.emplace(addr, size).second)
                simcheck::failUntimed(
                    "memory-pool",
                    "buddy address %llu is on two free lists",
                    static_cast<unsigned long long>(addr));
        }
    }
    simcheckVerifyTiling(free_spans);
}

std::optional<PoolBlock>
BuddyPoolAllocator::doAllocate(std::uint64_t bytes)
{
    const int want = orderOf(bytes);
    if (want < 0)
        return std::nullopt;

    // Find the smallest free order that can serve the request.
    std::size_t have = static_cast<std::size_t>(want);
    while (have < _free.size() && _free[have].empty())
        ++have;
    if (have >= _free.size())
        return std::nullopt;

    std::uint64_t addr = _free[have].begin()->first;
    _free[have].erase(_free[have].begin());

    // Split down to the wanted order, freeing the upper halves.
    while (have > static_cast<std::size_t>(want)) {
        --have;
        _free[have].emplace(addr + (_minBlock << have), true);
    }

    PoolBlock block;
    block.addr = addr;
    block.bytes = _minBlock << static_cast<std::size_t>(want);
    return block;
}

void
BuddyPoolAllocator::doRelease(const PoolBlock &block)
{
    int order = orderOf(block.bytes);
    if (order < 0 || (_minBlock << order) != block.bytes)
        panic("buddy release of a non-buddy block size %llu",
              static_cast<unsigned long long>(block.bytes));

    std::uint64_t addr = block.addr;
    while (static_cast<std::size_t>(order) + 1 < _free.size()) {
        const std::uint64_t size = _minBlock << order;
        const std::uint64_t buddy = addr ^ size;
        auto &list = _free[static_cast<std::size_t>(order)];
        auto it = list.find(buddy);
        if (it == list.end())
            break;
        list.erase(it);
        addr = std::min(addr, buddy);
        ++order;
    }
    _free[static_cast<std::size_t>(order)].emplace(addr, true);
}

std::unique_ptr<MemoryPoolAllocator>
makePoolAllocator(PoolAllocatorKind kind, std::uint64_t capacity)
{
    switch (kind) {
      case PoolAllocatorKind::FirstFit:
        return std::make_unique<FirstFitPoolAllocator>(capacity);
      case PoolAllocatorKind::Buddy:
        return std::make_unique<BuddyPoolAllocator>(capacity);
    }
    panic("unknown pool allocator kind %d", static_cast<int>(kind));
}

} // namespace mcdla
