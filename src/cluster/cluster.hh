/**
 * @file
 * Cluster: multi-job scheduling over one shared machine.
 *
 * A Cluster admits a stream of training jobs (JobSpec arrivals),
 * schedules them onto the device-nodes of a single composed System
 * through a pluggable JobScheduler, and carves each job's
 * backing-store demand out of a shared MemoryPoolAllocator spanning
 * every memory-node. All admitted jobs run as concurrent
 * TrainingSessions on the one EventQueue, so their paging DMA,
 * collectives, and pipeline transfers contend on the real fabric
 * channels — no job gets private bandwidth. The run produces a
 * ClusterReport: per-job completion/queueing/slowdown metrics plus a
 * pool-occupancy timeline, both emitted through the standard
 * ResultSet CSV/JSON pipeline.
 */

#ifndef MCDLA_CLUSTER_CLUSTER_HH
#define MCDLA_CLUSTER_CLUSTER_HH

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/job.hh"
#include "cluster/pool_allocator.hh"
#include "cluster/scheduler.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "sim/random.hh"
#include "system/system.hh"
#include "system/training_session.hh"

namespace mcdla
{

/**
 * Device-selection policy for admitted jobs.
 *
 * First takes the lowest-indexed free devices (the legacy policy).
 * Compact minimizes the job's internal communication distance: it
 * greedily grows the gang from the seed whose placement has the lowest
 * total pairwise hop count, using the Router's real channel-traversal
 * distances over the fabric topology — so a job lands on devices that
 * are close on the actual wiring, not just low-numbered.
 */
enum class JobPlacement
{
    First,
    Compact,
};

/**
 * Pick @p count devices from the @p free set (ascending order) under
 * @p placement, using @p fabric's Router hop counts as the distance
 * metric for Compact. Returns the chosen devices sorted ascending;
 * fewer than @p count when the free set is too small.
 */
std::vector<int> placeJobDevices(const Fabric &fabric,
                                 const std::vector<int> &free,
                                 int count, JobPlacement placement);

/**
 * Capacity of the shared backing-store pool of @p system: each
 * distinct backing target — every memory-node reachable from any
 * device, or the host DRAM for the PCIe designs — counted once.
 * Designs without a backing store get a token 1-byte pool so an
 * allocator can exist. Shared by Cluster and ServingCluster.
 */
std::uint64_t sharedPoolCapacityBytes(System &system);

/** Parse a placement token ("first" / "compact"); fatal. */
JobPlacement parseJobPlacement(const std::string &name);

/** Canonical CLI token of a placement policy. */
const char *jobPlacementToken(JobPlacement placement);

/** Comma-separated accepted tokens (help text). */
const std::string &jobPlacementTokenList();

/** Cluster-level configuration. */
struct ClusterConfig
{
    /**
     * The machine: design point, device count, and every hardware /
     * paging override, reusing the Scenario vocabulary. The scenario's
     * workload/mode/batch fields are ignored (jobs carry their own);
     * its seed names the synthetic job stream the caller fed to
     * synthesizeJobs(), so the label reproduces the run.
     */
    Scenario base;
    SchedulerKind scheduler = SchedulerKind::Fifo;
    PoolAllocatorKind allocator = PoolAllocatorKind::FirstFit;
    /** Device-selection policy for admitted jobs. */
    JobPlacement placement = JobPlacement::First;
    /** inform() on every admission/completion. */
    bool progress = false;

    /// @name Observability (all optional; owned by the caller)
    /// @{
    /**
     * Chrome-tracing sink: job lifecycle spans on the "cluster"
     * process (one track per job: a "queue" span from arrival to
     * start and a "job" span from start to finish), rejected-job
     * instants, plus every admitted session's compute/DMA/collective
     * spans and admit->first-op dispatch flows.
     */
    TraceSink *trace = nullptr;
    /**
     * Metric time-series: registerSystemMetrics() gauges plus pool
     * occupancy/fragmentation and queued/running job-count gauges,
     * sampled periodically for the whole run.
     */
    MetricRegistry *metrics = nullptr;
    /** DES wall-clock profiler attached to the cluster's EventQueue. */
    DesProfiler *profiler = nullptr;
    /**
     * Event-provenance recorder attached to the cluster's EventQueue.
     * Job arrivals and scheduler passes tag sched-wait edges in the
     * cluster context; admitted sessions tag their own subsystems.
     */
    CausalRecorder *causal = nullptr;
    /// @}
};

/** Final state of one submitted job. */
struct JobOutcome
{
    JobSpec spec;
    /** Device-nodes the job ran on (empty until started). */
    std::vector<int> devices;
    /** Pool bytes carved for the job's backing store. */
    std::uint64_t poolBytes = 0;
    /** Analytic-oracle solo service time (iterations x upper bound). */
    double estSoloSec = 0.0;
    double arrivalSec = 0.0;
    double startSec = -1.0;
    double finishSec = -1.0;
    bool completed = false;
    /** Infeasible on this cluster (too many devices / too much pool). */
    bool rejected = false;
    /** Metrics of the job's last iteration. */
    IterationResult lastIteration;

    /** Queueing delay (clamped: arrival ticks round to the grid). */
    double
    queueSec() const
    {
        return std::max(0.0, startSec - arrivalSec);
    }

    double serviceSec() const { return finishSec - startSec; }

    /** Job completion time: queueing plus service. */
    double jctSec() const { return finishSec - arrivalSec; }

    /** Classic slowdown: response time over actual service time. */
    double
    slowdown() const
    {
        return serviceSec() > 0.0 ? jctSec() / serviceSec() : 1.0;
    }

    /** Service-time dilation vs the analytic solo bound (contention). */
    double
    contention() const
    {
        return estSoloSec > 0.0 ? serviceSec() / estSoloSec : 1.0;
    }
};

/** One pool-occupancy observation (taken at every alloc/free). */
struct PoolSample
{
    double timeSec = 0.0;
    const char *event = ""; ///< "alloc" / "free" / "fail".
    std::string job;
    std::uint64_t usedBytes = 0;
    std::uint64_t freeBytes = 0;
    std::uint64_t largestFreeBytes = 0;
    double fragmentation = 0.0;
    int busyDevices = 0;
};

/** Everything a cluster run produced. */
class ClusterReport
{
  public:
    std::vector<JobOutcome> jobs;
    std::vector<PoolSample> timeline;
    double makespanSec = 0.0;
    SchedulerKind scheduler = SchedulerKind::Fifo;
    PoolAllocatorKind allocator = PoolAllocatorKind::FirstFit;
    JobPlacement placement = JobPlacement::First;
    std::uint64_t poolCapacity = 0;
    std::uint64_t poolPeakUsed = 0;
    std::uint64_t allocationFailures = 0;

    /// @name Aggregate metrics (over completed jobs)
    /// @{
    std::size_t completedJobs() const;
    double meanJctSec() const;
    double maxJctSec() const;
    double meanQueueSec() const;
    double meanSlowdown() const;
    /** JCT tail percentile (core/report percentile()), seconds. */
    double jctPercentileSec(double p) const;
    /** Slowdown tail percentile over completed jobs. */
    double slowdownPercentile(double p) const;
    /** Mean pool fragmentation over the timeline samples. */
    double meanFragmentation() const;
    double peakPoolUtilization() const;
    /// @}

    /// @name ResultSet emission (CSV/JSON via core/report)
    /// @{
    static const std::vector<std::string> &jobColumns();
    static std::vector<ReportValue> jobRow(const JobOutcome &job);
    ResultSet jobTable() const;

    static const std::vector<std::string> &poolColumns();
    ResultSet poolTable() const;
    /// @}
};

/** One cluster simulation: a machine, a job stream, a policy pair. */
class Cluster
{
  public:
    /**
     * @param cfg Machine + policy configuration.
     * @param jobs Submitted job stream (any order; sorted by arrival).
     */
    Cluster(ClusterConfig cfg, std::vector<JobSpec> jobs);

    /** Run the whole stream to completion. Callable once. */
    ClusterReport run();

    /// @name Introspection (tests)
    /// @{
    System &system() { return *_system; }
    MemoryPoolAllocator &pool() { return *_pool; }
    const JobScheduler &scheduler() const { return *_scheduler; }
    std::uint64_t poolCapacityBytes() const { return _poolCapacity; }
    /// @}

    /**
     * Backing-store pool demand of @p spec on machine @p cfg: the
     * remote bytes its TrainingSession will allocate — rounded to
     * @p page_bytes, the device address spaces' placement granularity
     * — summed over its devices (zero for designs without a backing
     * store). Mirrors the remote mallocs of
     * TrainingSession::allocateBuffers().
     */
    static std::uint64_t jobPoolBytes(const JobSpec &spec,
                                      const Network &net,
                                      const SystemConfig &cfg,
                                      std::uint64_t page_bytes
                                          = 2 * kMiB);

  private:
    /** One admitted, running job. */
    struct ActiveJob
    {
        std::unique_ptr<TrainingSession> session;
        std::shared_ptr<const Network> net;
        PoolBlock block;
        bool hasBlock = false;
        int remainingIterations = 0;
        /** Admission tick (trace span anchor). */
        Tick startTick = 0;
        /** Per-job trace track on the "cluster" process. */
        std::string traceTrack;
    };

    std::uint64_t computePoolCapacity() const;
    /** Devices for a @p count -device job under the placement policy. */
    std::vector<int> pickDevices(int count) const;
    void onArrival(std::size_t index);
    void tryAdmit();
    void startJob(std::size_t queue_pos);
    void stepJob(std::size_t index);
    void finishJob(std::size_t index);
    void cleanupJob(std::size_t index);
    void samplePool(const char *event, const std::string &job);

    ClusterConfig _cfg;
    std::vector<JobSpec> _specs;
    EventQueue _eq;
    std::unique_ptr<System> _system;
    Simulator _networks; ///< Workload network cache.
    std::uint64_t _poolCapacity = 0;
    std::unique_ptr<MemoryPoolAllocator> _pool;
    std::unique_ptr<JobScheduler> _scheduler;
    std::set<int> _freeDevices;
    std::vector<PendingJob> _queue;
    std::map<std::size_t, ActiveJob> _active;
    std::vector<JobOutcome> _outcomes;
    std::vector<PoolSample> _timeline;
    /// Job whose memory-induced head-of-line blocking was already
    /// recorded (npos = none): one failure per blocked episode.
    std::size_t _memoryBlockedJob = JobScheduler::npos;
    bool _ran = false;
};

} // namespace mcdla

#endif // MCDLA_CLUSTER_CLUSTER_HH
