/**
 * @file
 * Cluster implementation.
 */

#include "cluster/cluster.hh"

#include <algorithm>

#include "sim/causal.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "system/analytic_model.hh"
#include "vmem/offload_plan.hh"

namespace mcdla
{

JobPlacement
parseJobPlacement(const std::string &name)
{
    if (name == "first")
        return JobPlacement::First;
    if (name == "compact")
        return JobPlacement::Compact;
    fatal("unknown placement '%s' (%s)", name.c_str(),
          jobPlacementTokenList().c_str());
}

const char *
jobPlacementToken(JobPlacement placement)
{
    switch (placement) {
      case JobPlacement::First: return "first";
      case JobPlacement::Compact: return "compact";
    }
    panic("placement %d has no token", static_cast<int>(placement));
}

const std::string &
jobPlacementTokenList()
{
    static const std::string list = "first, compact";
    return list;
}

std::uint64_t
Cluster::jobPoolBytes(const JobSpec &spec, const Network &net,
                      const SystemConfig &cfg,
                      std::uint64_t page_bytes)
{
    if (!designVirtualizesMemory(cfg.design))
        return 0;

    auto roundToPoolPages = [page_bytes](double bytes) {
        const auto b = static_cast<std::uint64_t>(bytes) + 1;
        return (b + page_bytes - 1) / page_bytes * page_bytes;
    };

    const OffloadPlan plan(net, cfg.offloadPolicy());
    const ParallelStrategy strategy(
        net, spec.mode, spec.devices, spec.batch,
        PipelineConfig{spec.pipelineStages, spec.microbatches,
                       cfg.device});

    std::uint64_t total = 0;
    if (strategy.isPipeline()) {
        const auto waves =
            static_cast<std::uint64_t>(strategy.microbatches());
        for (int s = 0; s < strategy.pipelineStages(); ++s)
            for (LayerId layer : strategy.stageStashLayers(s, plan))
                total += waves
                    * roundToPoolPages(strategy.offloadBytesPerDevice(
                        net.layer(layer)));
        return total;
    }

    std::uint64_t per_device = 0;
    for (LayerId id = 0; id < static_cast<LayerId>(net.size()); ++id) {
        if (plan.entry(id).action != TensorAction::Offload)
            continue;
        per_device += roundToPoolPages(
            strategy.offloadBytesPerDevice(net.layer(id)));
    }
    return per_device * static_cast<std::uint64_t>(spec.devices);
}

Cluster::Cluster(ClusterConfig cfg, std::vector<JobSpec> jobs)
    : _cfg(std::move(cfg)), _specs(std::move(jobs))
{
    std::stable_sort(_specs.begin(), _specs.end(),
                     [](const JobSpec &a, const JobSpec &b) {
                         return a.arrivalSec < b.arrivalSec;
                     });

    // Before any schedule: the member queue default-constructs as a
    // heap and may only be re-backed while pristine.
    _eq.setBackend(_cfg.base.base.eventQueueBackend);
    _system = std::make_unique<System>(_eq, _cfg.base.config());
    _poolCapacity = computePoolCapacity();
    _pool = makePoolAllocator(_cfg.allocator, _poolCapacity);
    _scheduler = makeScheduler(_cfg.scheduler);

    for (int d = 0; d < _system->numDevices(); ++d)
        _freeDevices.insert(d);

    // The shared pool replaces the static per-device carve-out of the
    // standalone design: capacity is enforced here, so every device's
    // remote window is widened to the pool and the address space only
    // decides placement (the LOCAL/BW_AWARE traffic fractions).
    for (int d = 0; d < _system->numDevices(); ++d)
        _system->addressSpace(d).uncapRemoteRegions(_poolCapacity);

    _outcomes.resize(_specs.size());
    for (std::size_t i = 0; i < _specs.size(); ++i) {
        if (_specs[i].name.empty())
            _specs[i].name = "job" + std::to_string(i);
        _outcomes[i].spec = _specs[i];
        _outcomes[i].arrivalSec = _specs[i].arrivalSec;
    }
}

std::uint64_t
sharedPoolCapacityBytes(System &system)
{
    // Sum each distinct backing-store target once: every memory-node
    // reachable from any device (halves of one board merge back into
    // the full board), or the host DRAM for the PCIe designs.
    std::uint64_t total = 0;
    bool host_counted = false;
    std::set<int> nodes;
    const SystemConfig &cfg = system.config();
    for (int d = 0; d < system.numDevices(); ++d) {
        const DeviceAddressSpace &space = system.addressSpace(d);
        for (std::size_t r = 0; r < space.regionCount(); ++r) {
            const RemoteRegion &region = space.region(r);
            if (region.targetIndex < 0) {
                if (!host_counted)
                    total += cfg.hostMemoryCapacity;
                host_counted = true;
            } else if (nodes.insert(region.targetIndex).second) {
                total += cfg.memNode.capacity();
            }
        }
    }
    // Designs without a backing store (the oracle) never allocate;
    // give the allocator a token capacity so it can exist.
    return total > 0 ? total : 1;
}

std::uint64_t
Cluster::computePoolCapacity() const
{
    return sharedPoolCapacityBytes(*_system);
}

std::vector<int>
placeJobDevices(const Fabric &fabric, const std::vector<int> &free,
                int count, JobPlacement placement)
{
    const auto want = static_cast<std::size_t>(count);
    if (placement == JobPlacement::First || want >= free.size())
        return std::vector<int>(free.begin(),
                                free.begin()
                                    + static_cast<std::ptrdiff_t>(
                                        std::min(want, free.size())));

    // Compact placement: real hop counts over the fabric topology.
    // Grow a gang greedily from every possible seed and keep the
    // placement with the lowest total pairwise distance; ties resolve
    // to the lowest-numbered seed/candidate, so the policy is
    // deterministic and degrades to "first" on uniform fabrics.
    constexpr int kUnreachable = 1 << 20;
    auto dist = [&fabric](int a, int b) {
        const int fwd = fabric.deviceHopCount(a, b);
        const int bwd = fabric.deviceHopCount(b, a);
        return (fwd < 0 ? kUnreachable : fwd)
            + (bwd < 0 ? kUnreachable : bwd);
    };

    std::vector<int> best;
    long best_cost = 0;
    for (int seed : free) {
        std::vector<int> gang{seed};
        long cost = 0;
        while (gang.size() < want) {
            int pick = -1;
            long pick_cost = 0;
            for (int cand : free) {
                if (std::find(gang.begin(), gang.end(), cand)
                    != gang.end())
                    continue;
                long c = 0;
                for (int member : gang)
                    c += dist(member, cand);
                if (pick < 0 || c < pick_cost) {
                    pick = cand;
                    pick_cost = c;
                }
            }
            gang.push_back(pick);
            cost += pick_cost;
        }
        if (best.empty() || cost < best_cost) {
            best = std::move(gang);
            best_cost = cost;
        }
    }
    std::sort(best.begin(), best.end());
    return best;
}

std::vector<int>
Cluster::pickDevices(int count) const
{
    return placeJobDevices(
        _system->fabric(),
        std::vector<int>(_freeDevices.begin(), _freeDevices.end()),
        count, _cfg.placement);
}

ClusterReport
Cluster::run()
{
    if (_ran)
        fatal("a Cluster can only run once");
    _ran = true;

    if (_cfg.profiler != nullptr)
        _eq.setProfiler(_cfg.profiler);
    if (_cfg.causal != nullptr)
        _eq.setCausalRecorder(_cfg.causal);
    if (_cfg.trace != nullptr)
        _system->collectives().setTraceSink(_cfg.trace);
    if (_cfg.metrics != nullptr) {
        registerSystemMetrics(*_cfg.metrics, *_system);
        _cfg.metrics->add("pool.used_gib", [this] {
            return static_cast<double>(_pool->usedBytes())
                / (1024.0 * 1024.0 * 1024.0);
        });
        _cfg.metrics->add("pool.frag",
                          [this] { return _pool->fragmentation(); });
        _cfg.metrics->add("cluster.busy_devices", [this] {
            return static_cast<double>(
                _system->numDevices()
                - static_cast<int>(_freeDevices.size()));
        });
        _cfg.metrics->add("cluster.queued_jobs", [this] {
            return static_cast<double>(_queue.size());
        });
        _cfg.metrics->add("cluster.running_jobs", [this] {
            return static_cast<double>(_active.size());
        });
        _cfg.metrics->start(_eq);
    }

    {
        // Arrivals are scheduler-wait edges: a job's first admission
        // attempt causally hangs off its arrival event.
        CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Sched,
                                 CausalCtx::Cluster);
        for (std::size_t i = 0; i < _specs.size(); ++i) {
            _eq.schedule(secondsToTicks(_specs[i].arrivalSec),
                         [this, i] { onArrival(i); }, "job_arrival");
        }
    }
    _eq.run();

    if (!_queue.empty()) {
        panic("cluster drained with %zu jobs still queued (first: %s)",
              _queue.size(),
              _specs[_queue.front().jobIndex].label().c_str());
    }
    if (!_active.empty())
        panic("cluster drained with %zu jobs still running",
              _active.size());

    ClusterReport report;
    report.jobs = _outcomes;
    report.timeline = _timeline;
    report.makespanSec = ticksToSeconds(_eq.now());
    report.scheduler = _cfg.scheduler;
    report.allocator = _cfg.allocator;
    report.placement = _cfg.placement;
    report.poolCapacity = _poolCapacity;
    report.poolPeakUsed = _pool->peakUsedBytes();
    report.allocationFailures = _pool->allocationFailures();
    return report;
}

void
Cluster::onArrival(std::size_t index)
{
    const JobSpec &spec = _specs[index];
    JobOutcome &outcome = _outcomes[index];

    const Network &net = *_networks.network(spec.workload);

    // Infeasible jobs can never start; reject them instead of wedging
    // the queue (or, worse, letting ParallelStrategy's constructor
    // kill the whole cluster run mid-stream). The shape checks mirror
    // the strategy's own fatal paths.
    bool feasible =
        spec.devices >= 1 && spec.devices <= _system->numDevices();
    if (feasible && spec.mode == ParallelMode::Pipeline) {
        const int stages = spec.pipelineStages > 0 ? spec.pipelineStages
                                                   : spec.devices;
        feasible = stages <= spec.devices
            && static_cast<std::size_t>(stages) <= net.size()
            && spec.microbatches >= 1
            && spec.batch >= spec.microbatches;
    } else if (feasible) {
        feasible = spec.batch >= spec.devices;
    }

    std::uint64_t demand = 0;
    if (feasible) {
        demand = jobPoolBytes(spec, net, _system->config(),
                              _system->addressSpace(0).pageBytes());
        if (demand > 0) {
            const auto probe = makePoolAllocator(_cfg.allocator,
                                                 _poolCapacity);
            feasible = probe->canAllocate(demand);
        }
    }
    if (!feasible) {
        outcome.rejected = true;
        warn("cluster rejects %s: its shape (%d devices, %s pool "
             "demand) cannot ever run on this machine",
             spec.label().c_str(), spec.devices,
             formatBytes(static_cast<double>(demand)).c_str());
        if (_cfg.trace != nullptr)
            _cfg.trace->addInstant("cluster", "rejected",
                                   "reject " + spec.label(), _eq.now(),
                                   "job");
        return;
    }

    // The SJF oracle: the analytic estimator's no-overlap bound on the
    // job's solo iteration, scaled by its iteration count.
    SystemConfig job_cfg = _system->config();
    job_cfg.fabric.numDevices = spec.devices;
    const AnalyticEstimate estimate = estimateIteration(
        job_cfg, net, spec.mode, spec.batch, spec.pipelineStages,
        spec.microbatches);
    outcome.estSoloSec = estimate.upperBoundSec()
        * static_cast<double>(spec.iterations);
    outcome.poolBytes = demand;

    PendingJob pending;
    pending.jobIndex = index;
    pending.devices = spec.devices;
    pending.poolBytes = demand;
    pending.estServiceSec = outcome.estSoloSec;
    pending.arrivalSec = spec.arrivalSec;
    _queue.push_back(pending);

    tryAdmit();
}

void
Cluster::tryAdmit()
{
    while (!_queue.empty()) {
        const std::size_t pos = _scheduler->pick(
            _queue, static_cast<int>(_freeDevices.size()), *_pool);
        if (pos == JobScheduler::npos)
            break;
        startJob(pos);
    }

    // Record memory-induced blocking — the job the policy is stalled
    // on has the devices but the pool cannot place its block — once
    // per blocked episode, not once per scheduling pass.
    const int free = static_cast<int>(_freeDevices.size());
    const std::size_t candidate =
        _scheduler->blockedCandidate(_queue, free, *_pool);
    if (candidate != JobScheduler::npos
        && JobScheduler::memoryBlocked(_queue[candidate], free,
                                       *_pool)) {
        if (_memoryBlockedJob != _queue[candidate].jobIndex) {
            _pool->noteFailure();
            samplePool("fail",
                       _specs[_queue[candidate].jobIndex].name);
            _memoryBlockedJob = _queue[candidate].jobIndex;
        }
    } else {
        _memoryBlockedJob = JobScheduler::npos;
    }
}

void
Cluster::startJob(std::size_t queue_pos)
{
    const PendingJob pending = _queue[queue_pos];
    _queue.erase(_queue.begin()
                 + static_cast<std::ptrdiff_t>(queue_pos));

    const std::size_t index = pending.jobIndex;
    const JobSpec &spec = _specs[index];
    JobOutcome &outcome = _outcomes[index];

    ActiveJob active;
    if (pending.poolBytes > 0) {
        auto block = _pool->allocate(pending.poolBytes);
        if (!block)
            panic("scheduler admitted %s but the pool cannot place %s",
                  spec.label().c_str(),
                  formatBytes(static_cast<double>(
                      pending.poolBytes)).c_str());
        active.block = *block;
        active.hasBlock = true;
    }

    outcome.devices = pickDevices(pending.devices);
    for (int d : outcome.devices)
        _freeDevices.erase(d);
    outcome.startSec = ticksToSeconds(_eq.now());

    active.net = _networks.network(spec.workload);
    active.session = std::make_unique<TrainingSession>(
        *_system, *active.net, spec.mode, spec.batch,
        spec.pipelineStages, spec.microbatches, outcome.devices);
    active.remainingIterations = spec.iterations;
    active.startTick = _eq.now();
    if (_cfg.trace != nullptr) {
        // Per-job track on the "cluster" process: the queueing span
        // closes here, the running span closes at finishJob(), and a
        // flow arrow links admission to the job's first compute op.
        active.traceTrack =
            "job" + std::to_string(index) + " " + spec.name;
        const Tick arrival = secondsToTicks(spec.arrivalSec);
        if (_eq.now() > arrival)
            _cfg.trace->addSpan("cluster", active.traceTrack,
                                "queued " + spec.label(), arrival,
                                _eq.now() - arrival, "queue");
        active.session->setTraceSink(_cfg.trace);
        const std::uint64_t flow = _cfg.trace->newFlow();
        _cfg.trace->flowBegin("cluster", active.traceTrack, "dispatch",
                              _eq.now(), flow, "job");
        active.session->setIterationFlow(flow);
    }
    _active.emplace(index, std::move(active));

    if (_cfg.progress)
        inform("t=%.3fs start %s on %d devices (%s pool)",
               outcome.startSec, spec.label().c_str(), pending.devices,
               formatBytes(static_cast<double>(
                   pending.poolBytes)).c_str());
    samplePool("alloc", spec.name);
    stepJob(index);
}

void
Cluster::stepJob(std::size_t index)
{
    ActiveJob &active = _active.at(index);
    active.session->startIteration(
        [this, index](const IterationResult &result) {
            ActiveJob &job = _active.at(index);
            _outcomes[index].lastIteration = result;
            if (--job.remainingIterations > 0) {
                stepJob(index);
                return;
            }
            finishJob(index);
        });
}

void
Cluster::finishJob(std::size_t index)
{
    JobOutcome &outcome = _outcomes[index];
    outcome.finishSec = ticksToSeconds(_eq.now());
    outcome.completed = true;
    if (_cfg.trace != nullptr) {
        const ActiveJob &job = _active.at(index);
        _cfg.trace->addSpan("cluster", job.traceTrack,
                            "run " + outcome.spec.label(),
                            job.startTick, _eq.now() - job.startTick,
                            "job");
    }
    if (_cfg.progress)
        inform("t=%.3fs finish %s (JCT %.3fs, queued %.3fs)",
               outcome.finishSec, outcome.spec.label().c_str(),
               outcome.jctSec(), outcome.queueSec());

    // Tear down from a fresh event: the session is live on the call
    // stack (this runs inside its completion callback). The cleanup
    // event re-runs admission, so waiting jobs' starts hang off it as
    // scheduler-wait edges.
    CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Sched,
                             CausalCtx::Cluster);
    _eq.schedule(_eq.now(), [this, index] { cleanupJob(index); },
                 "job_cleanup");
}

void
Cluster::cleanupJob(std::size_t index)
{
    auto it = _active.find(index);
    if (it == _active.end())
        panic("cleanup of job %zu which is not active", index);
    it->second.session->releaseBuffers();
    for (int d : _outcomes[index].devices)
        _freeDevices.insert(d);
    if (it->second.hasBlock)
        _pool->release(it->second.block);
    _active.erase(it);
    samplePool("free", _outcomes[index].spec.name);
    tryAdmit();
}

void
Cluster::samplePool(const char *event, const std::string &job)
{
    PoolSample sample;
    sample.timeSec = ticksToSeconds(_eq.now());
    sample.event = event;
    sample.job = job;
    sample.usedBytes = _pool->usedBytes();
    sample.freeBytes = _pool->freeBytes();
    sample.largestFreeBytes = _pool->largestFreeBlock();
    sample.fragmentation = _pool->fragmentation();
    sample.busyDevices = _system->numDevices()
        - static_cast<int>(_freeDevices.size());
    _timeline.push_back(std::move(sample));
}

// ------------------------------------------------------------- report

std::size_t
ClusterReport::completedJobs() const
{
    std::size_t n = 0;
    for (const JobOutcome &job : jobs)
        if (job.completed)
            ++n;
    return n;
}

double
ClusterReport::meanJctSec() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (const JobOutcome &job : jobs) {
        if (!job.completed)
            continue;
        total += job.jctSec();
        ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double
ClusterReport::maxJctSec() const
{
    double worst = 0.0;
    for (const JobOutcome &job : jobs)
        if (job.completed)
            worst = std::max(worst, job.jctSec());
    return worst;
}

double
ClusterReport::meanQueueSec() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (const JobOutcome &job : jobs) {
        if (!job.completed)
            continue;
        total += job.queueSec();
        ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double
ClusterReport::meanSlowdown() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (const JobOutcome &job : jobs) {
        if (!job.completed)
            continue;
        total += job.slowdown();
        ++n;
    }
    return n > 0 ? total / static_cast<double>(n) : 0.0;
}

double
ClusterReport::jctPercentileSec(double p) const
{
    std::vector<double> jcts;
    for (const JobOutcome &job : jobs)
        if (job.completed)
            jcts.push_back(job.jctSec());
    return percentile(std::move(jcts), p);
}

double
ClusterReport::slowdownPercentile(double p) const
{
    std::vector<double> slowdowns;
    for (const JobOutcome &job : jobs)
        if (job.completed)
            slowdowns.push_back(job.slowdown());
    return percentile(std::move(slowdowns), p);
}

double
ClusterReport::meanFragmentation() const
{
    if (timeline.empty())
        return 0.0;
    double total = 0.0;
    for (const PoolSample &sample : timeline)
        total += sample.fragmentation;
    return total / static_cast<double>(timeline.size());
}

double
ClusterReport::peakPoolUtilization() const
{
    return poolCapacity > 0
        ? static_cast<double>(poolPeakUsed)
            / static_cast<double>(poolCapacity)
        : 0.0;
}

const std::vector<std::string> &
ClusterReport::jobColumns()
{
    static const std::vector<std::string> columns = {
        "job",        "workload",   "mode",       "batch",
        "devices",    "iterations", "pool_gib",   "arrival_s",
        "start_s",    "finish_s",   "queue_s",    "service_s",
        "jct_s",      "slowdown",   "est_solo_s", "contention",
        "iter_ms",    "status"};
    return columns;
}

std::vector<ReportValue>
ClusterReport::jobRow(const JobOutcome &job)
{
    const char *status = job.rejected
        ? "rejected"
        : (job.completed ? "completed" : "incomplete");
    const bool done = job.completed;
    return {job.spec.name,
            job.spec.workload,
            std::string(parallelModeToken(job.spec.mode)),
            job.spec.batch,
            static_cast<std::int64_t>(job.spec.devices),
            static_cast<std::int64_t>(job.spec.iterations),
            static_cast<double>(job.poolBytes)
                / static_cast<double>(kGiB),
            job.arrivalSec,
            done ? job.startSec : 0.0,
            done ? job.finishSec : 0.0,
            done ? job.queueSec() : 0.0,
            done ? job.serviceSec() : 0.0,
            done ? job.jctSec() : 0.0,
            done ? job.slowdown() : 0.0,
            job.estSoloSec,
            done ? job.contention() : 0.0,
            done ? job.lastIteration.iterationSeconds() * 1e3 : 0.0,
            std::string(status)};
}

ResultSet
ClusterReport::jobTable() const
{
    ResultSet table(jobColumns());
    for (const JobOutcome &job : jobs)
        table.addRow(jobRow(job));
    return table;
}

const std::vector<std::string> &
ClusterReport::poolColumns()
{
    static const std::vector<std::string> columns = {
        "time_s",       "event",        "job",
        "used_gib",     "free_gib",     "largest_free_gib",
        "fragmentation", "busy_devices"};
    return columns;
}

ResultSet
ClusterReport::poolTable() const
{
    ResultSet table(poolColumns());
    for (const PoolSample &sample : timeline) {
        table.addRow({sample.timeSec,
                      std::string(sample.event),
                      sample.job,
                      static_cast<double>(sample.usedBytes)
                          / static_cast<double>(kGiB),
                      static_cast<double>(sample.freeBytes)
                          / static_cast<double>(kGiB),
                      static_cast<double>(sample.largestFreeBytes)
                          / static_cast<double>(kGiB),
                      sample.fragmentation,
                      static_cast<std::int64_t>(sample.busyDevices)});
    }
    return table;
}

} // namespace mcdla
