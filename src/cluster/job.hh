/**
 * @file
 * Cluster job descriptions and arrival streams.
 *
 * A JobSpec is everything the cluster needs to run one training job:
 * the workload/parallelization shape (a subset of Scenario's vocabulary
 * — the machine design belongs to the cluster, not the job), the
 * device-node count it gangs, and its arrival time. Streams of specs
 * come from either a trace file (one `key=value` line per job, see
 * parseJobTrace) or the seeded synthetic arrival process
 * (synthesizeJobs: Poisson arrivals over the job-mix catalog).
 */

#ifndef MCDLA_CLUSTER_JOB_HH
#define MCDLA_CLUSTER_JOB_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "parallel/strategy.hh"
#include "sim/random.hh"
#include "workloads/job_mix.hh"

namespace mcdla
{

/** One training job submitted to the cluster. */
struct JobSpec
{
    /** Display name; defaults to "job<N>" when built from a stream. */
    std::string name;
    std::string workload = "ResNet";
    ParallelMode mode = ParallelMode::DataParallel;
    std::int64_t batch = 512;
    /** Device-nodes the job gangs (allocated together or not at all). */
    int devices = 1;
    int iterations = 1;
    /** Pipeline knobs (mode == pp only). */
    int pipelineStages = 0;
    int microbatches = 4;
    /** Submission time, seconds from cluster start. */
    double arrivalSec = 0.0;

    /** Compact identity, e.g. "job3:ResNet/dp/b256/d4". */
    std::string label() const;
};

/**
 * One job per line, `key=value` tokens separated by whitespace:
 *
 *   arrival=0.5 workload=ResNet mode=dp batch=256 devices=4 \
 *       iterations=2 name=resnet-a stages=0 microbatches=4
 *
 * Every key except `arrival` and `workload` is optional; '#' starts a
 * comment. Fatal on unknown keys or malformed values (line number in
 * the message). Jobs are returned sorted by arrival time.
 */
std::vector<JobSpec> parseJobTrace(std::istream &in);

/** parseJobTrace over a file path; fatal when unreadable. */
std::vector<JobSpec> loadJobTrace(const std::string &path);

/** The trace-file line of a spec (round-trips via parseJobTrace). */
std::string jobSpecLine(const JobSpec &spec);

/**
 * Synthesize @p count jobs with exponential interarrival times of rate
 * @p arrival_rate (jobs/sec) by sampling the default job-mix catalog;
 * device demands are clamped to @p max_devices. All randomness draws
 * from @p rng — the run's single seeded RNG — so a (seed, rate, count)
 * triple names a reproducible job stream.
 */
std::vector<JobSpec> synthesizeJobs(int count, double arrival_rate,
                                    int max_devices, Random &rng);

} // namespace mcdla

#endif // MCDLA_CLUSTER_JOB_HH
