/**
 * @file
 * Shared memory-node pool allocators.
 *
 * The cluster treats the capacity of every memory-node (or the host
 * DRAM, for the PCIe designs) as one disaggregated pool: each admitted
 * job's backing-store demand is carved out as a single contiguous
 * block, and a job whose block cannot be placed waits in the queue —
 * the "allocation failure → queueing" coupling between the memory tier
 * and the scheduler. Two placement disciplines are provided:
 *
 *  - first-fit over an address-ordered free list with coalescing on
 *    release (external fragmentation shows up as holes),
 *  - a buddy allocator with power-of-two blocks (fast, bounded
 *    external fragmentation, but up to 2x internal waste).
 *
 * Both expose the same occupancy/fragmentation statistics so the
 * abl_cluster sweep can compare them under identical job streams.
 */

#ifndef MCDLA_CLUSTER_POOL_ALLOCATOR_HH
#define MCDLA_CLUSTER_POOL_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcdla
{

/** Pool placement discipline. */
enum class PoolAllocatorKind
{
    FirstFit, ///< Address-ordered free list, coalescing free.
    Buddy,    ///< Power-of-two buddy system.
};

/** Parse an allocator token ("first-fit" / "buddy"); fatal. */
PoolAllocatorKind parsePoolAllocator(const std::string &name);

/** Canonical CLI token of an allocator kind. */
const char *poolAllocatorToken(PoolAllocatorKind kind);

/** Comma-separated accepted tokens (help text). */
const std::string &poolAllocatorTokenList();

/** One carved-out block of the pool. */
struct PoolBlock
{
    std::uint64_t addr = 0;
    /** Block size actually reserved (>= the requested bytes). */
    std::uint64_t bytes = 0;
    /** Bytes the caller asked for (internal waste = bytes - request). */
    std::uint64_t requested = 0;

    bool valid() const { return bytes > 0; }
};

/** Abstract allocator over one linear pool address space. */
class MemoryPoolAllocator
{
  public:
    explicit MemoryPoolAllocator(std::uint64_t capacity);
    virtual ~MemoryPoolAllocator() = default;

    virtual const char *name() const = 0;

    /**
     * Carve @p bytes out of the pool.
     *
     * @return The placed block, or std::nullopt when no placement
     *         exists (recorded as an allocation failure).
     */
    std::optional<PoolBlock> allocate(std::uint64_t bytes);

    /** Return a block to the pool. */
    void release(const PoolBlock &block);

    /**
     * Record an allocation attempt that was abandoned before calling
     * allocate() (the scheduler saw canAllocate() fail and kept the
     * job queued). Counts toward allocationFailures().
     */
    void noteFailure() { ++_failures; }

    /** Whether allocate(bytes) would currently succeed. */
    virtual bool canAllocate(std::uint64_t bytes) const = 0;

    /** Largest single block allocate() could place right now. */
    virtual std::uint64_t largestFreeBlock() const = 0;

    /// @name Occupancy and fragmentation statistics
    /// @{
    std::uint64_t capacity() const { return _capacity; }
    std::uint64_t usedBytes() const { return _used; }
    std::uint64_t freeBytes() const { return _capacity - _used; }
    std::uint64_t peakUsedBytes() const { return _peakUsed; }
    double utilization() const;

    /**
     * External fragmentation in [0, 1]: the fraction of free capacity
     * unreachable by a single maximal allocation,
     * 1 - largestFree / free. Zero when the pool is full or empty of
     * holes.
     */
    double fragmentation() const;

    /** Bytes reserved beyond what callers asked for (buddy rounding). */
    std::uint64_t internalWasteBytes() const { return _internalWaste; }

    std::uint64_t allocationFailures() const { return _failures; }
    std::uint64_t liveAllocations() const { return _live; }
    /// @}

    /**
     * SimCheck: free-list integrity. The live blocks and the
     * allocator's free space must tile the pool exactly — no
     * overlapping blocks, free + allocated == capacity, and (buddy)
     * every free block naturally aligned to its size. Panics
     * (SimCheck[memory-pool]) on violation. Runs automatically at
     * every allocate/release while SimCheck is enabled.
     */
    virtual void simcheckVerify() const;

  protected:
    virtual std::optional<PoolBlock> doAllocate(std::uint64_t bytes) = 0;
    virtual void doRelease(const PoolBlock &block) = 0;

    /**
     * SimCheck helper: verify that @p free_spans (addr -> bytes, one
     * entry per free span) plus the live blocks tile [0, capacity())
     * with no overlap and no gap.
     */
    void simcheckVerifyTiling(
        const std::map<std::uint64_t, std::uint64_t> &free_spans) const;

    /** Live (allocated, unreleased) blocks, addr -> reserved bytes. */
    const std::map<std::uint64_t, std::uint64_t> &liveBlocks() const
    {
        return _liveBlocks;
    }

  private:
    std::uint64_t _capacity;
    std::uint64_t _used = 0;
    std::uint64_t _peakUsed = 0;
    std::uint64_t _internalWaste = 0;
    std::uint64_t _failures = 0;
    std::uint64_t _live = 0;
    /** Ledger of outstanding blocks (addr -> reserved bytes) backing
        the SimCheck tiling/double-free checks. */
    std::map<std::uint64_t, std::uint64_t> _liveBlocks;
};

/** Address-ordered first-fit with coalescing on release. */
class FirstFitPoolAllocator : public MemoryPoolAllocator
{
  public:
    explicit FirstFitPoolAllocator(std::uint64_t capacity);

    const char *name() const override { return "first-fit"; }
    bool canAllocate(std::uint64_t bytes) const override;
    std::uint64_t largestFreeBlock() const override;
    void simcheckVerify() const override;

    /** Number of free holes (fragmentation diagnostics). */
    std::size_t holeCount() const { return _holes.size(); }

  protected:
    std::optional<PoolBlock> doAllocate(std::uint64_t bytes) override;
    void doRelease(const PoolBlock &block) override;

  private:
    /// addr -> size, address-ordered; invariant: no two holes adjoin.
    std::map<std::uint64_t, std::uint64_t> _holes;
};

/** Power-of-two buddy allocator. */
class BuddyPoolAllocator : public MemoryPoolAllocator
{
  public:
    /**
     * @param capacity Pool bytes; rounded down to the block
     *        granularity (a sub-minimum tail cannot be placed, so it
     *        is excluded from capacity()) and seeded as the binary
     *        decomposition of what remains (naturally aligned
     *        power-of-two chunks).
     * @param min_block Smallest block granularity (requests round up
     *        to a power of two >= this); shrunk to fit pools smaller
     *        than this.
     */
    explicit BuddyPoolAllocator(std::uint64_t capacity,
                                std::uint64_t min_block = 1ULL << 26);

    const char *name() const override { return "buddy"; }
    bool canAllocate(std::uint64_t bytes) const override;
    std::uint64_t largestFreeBlock() const override;
    void simcheckVerify() const override;

  protected:
    std::optional<PoolBlock> doAllocate(std::uint64_t bytes) override;
    void doRelease(const PoolBlock &block) override;

  private:
    int orderOf(std::uint64_t bytes) const;

    std::uint64_t _minBlock;
    /// Free lists per order (block size = _minBlock << order), each an
    /// address-ordered set for deterministic placement.
    std::vector<std::map<std::uint64_t, bool>> _free;
};

/** Factory over the kind enum. */
std::unique_ptr<MemoryPoolAllocator>
makePoolAllocator(PoolAllocatorKind kind, std::uint64_t capacity);

} // namespace mcdla

#endif // MCDLA_CLUSTER_POOL_ALLOCATOR_HH
