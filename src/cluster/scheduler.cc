/**
 * @file
 * Scheduler policy implementations.
 */

#include "cluster/scheduler.hh"

#include "sim/logging.hh"

namespace mcdla
{

SchedulerKind
parseScheduler(const std::string &name)
{
    if (name == "fifo")
        return SchedulerKind::Fifo;
    if (name == "sjf" || name == "shortest-job-first")
        return SchedulerKind::Sjf;
    if (name == "backfill" || name == "best-fit"
        || name == "bestfit-backfill")
        return SchedulerKind::Backfill;
    fatal("unknown scheduler '%s' (%s)", name.c_str(),
          schedulerTokenList().c_str());
}

const char *
schedulerToken(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo: return "fifo";
      case SchedulerKind::Sjf: return "sjf";
      case SchedulerKind::Backfill: return "backfill";
    }
    panic("scheduler %d has no token", static_cast<int>(kind));
}

const std::vector<SchedulerKind> &
allSchedulers()
{
    static const std::vector<SchedulerKind> kinds = {
        SchedulerKind::Fifo,
        SchedulerKind::Sjf,
        SchedulerKind::Backfill,
    };
    return kinds;
}

const char *
schedulerDescription(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return "strict arrival order; the head blocks the queue";
      case SchedulerKind::Sjf:
        return "shortest estimated solo runtime first";
      case SchedulerKind::Backfill:
        return "FIFO head, but short jobs that fit jump the queue";
    }
    panic("scheduler %d has no description", static_cast<int>(kind));
}

const std::string &
schedulerTokenList()
{
    static const std::string list = "fifo, sjf, backfill";
    return list;
}

bool
JobScheduler::fits(const PendingJob &job, int free_devices,
                   const MemoryPoolAllocator &pool)
{
    if (job.devices > free_devices)
        return false;
    return job.poolBytes == 0 || pool.canAllocate(job.poolBytes);
}

bool
JobScheduler::memoryBlocked(const PendingJob &job, int free_devices,
                            const MemoryPoolAllocator &pool)
{
    return job.devices <= free_devices && job.poolBytes > 0
        && !pool.canAllocate(job.poolBytes);
}

std::size_t
JobScheduler::blockedCandidate(const std::vector<PendingJob> &queue,
                               int free_devices,
                               const MemoryPoolAllocator &pool) const
{
    (void)free_devices;
    (void)pool;
    return queue.empty() ? npos : 0;
}

namespace
{

/** Strict arrival order; the head blocks the queue when it cannot
    start (the classic gang-scheduling baseline). */
class FifoScheduler : public JobScheduler
{
  public:
    const char *name() const override { return "fifo"; }

    std::size_t
    pick(const std::vector<PendingJob> &queue, int free_devices,
         const MemoryPoolAllocator &pool) const override
    {
        if (queue.empty() || !fits(queue.front(), free_devices, pool))
            return npos;
        return 0;
    }
};

/** Shortest job first by the analytic service-time oracle; like FIFO
    it does not bypass its choice when it cannot start. */
class SjfScheduler : public JobScheduler
{
  public:
    const char *name() const override { return "sjf"; }

    std::size_t
    pick(const std::vector<PendingJob> &queue, int free_devices,
         const MemoryPoolAllocator &pool) const override
    {
        const std::size_t best =
            blockedCandidate(queue, free_devices, pool);
        if (best == npos || !fits(queue[best], free_devices, pool))
            return npos;
        return best;
    }

    /** SJF stalls on its shortest job, not the arrival-order head. */
    std::size_t
    blockedCandidate(const std::vector<PendingJob> &queue,
                     int free_devices,
                     const MemoryPoolAllocator &pool) const override
    {
        (void)free_devices;
        (void)pool;
        std::size_t best = npos;
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (best == npos
                || queue[i].estServiceSec
                    < queue[best].estServiceSec)
                best = i;
        }
        return best;
    }
};

/** Memory-aware best-fit backfill: jobs start in arrival order, but a
    job that cannot fit is skipped instead of blocking the queue.
    This is *unreserved* (aggressive) backfill over devices and pool —
    no reservation protects the blocked head, so a steady stream of
    small jobs can delay a whole-machine job indefinitely; the mean-
    JCT win it buys is exactly what abl_cluster measures against FIFO.
    When the head is blocked by memory specifically, the policy
    switches to best-fit packing — the fitting job whose demand best
    fills the largest free block — to drain fragmentation and reopen
    room for the head. */
class BackfillScheduler : public JobScheduler
{
  public:
    const char *name() const override { return "backfill"; }

    std::size_t
    pick(const std::vector<PendingJob> &queue, int free_devices,
         const MemoryPoolAllocator &pool) const override
    {
        if (queue.empty())
            return npos;

        if (memoryBlocked(queue.front(), free_devices, pool)) {
            const std::uint64_t largest = pool.largestFreeBlock();
            std::size_t best = npos;
            std::uint64_t best_leftover = 0;
            for (std::size_t i = 0; i < queue.size(); ++i) {
                if (!fits(queue[i], free_devices, pool))
                    continue;
                const std::uint64_t leftover = largest
                    - std::min(largest, queue[i].poolBytes);
                if (best == npos || leftover < best_leftover) {
                    best = i;
                    best_leftover = leftover;
                }
            }
            return best;
        }

        for (std::size_t i = 0; i < queue.size(); ++i)
            if (fits(queue[i], free_devices, pool))
                return i;
        return npos;
    }
};

} // anonymous namespace

std::unique_ptr<JobScheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Fifo:
        return std::make_unique<FifoScheduler>();
      case SchedulerKind::Sjf:
        return std::make_unique<SjfScheduler>();
      case SchedulerKind::Backfill:
        return std::make_unique<BackfillScheduler>();
    }
    panic("unknown scheduler kind %d", static_cast<int>(kind));
}

} // namespace mcdla
