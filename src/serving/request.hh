/**
 * @file
 * Inference request streams: arrival processes and trace round-trips.
 *
 * A Request is one open-loop inference query — an arrival time and a
 * sample count (the client-side micro-batch). Streams come from either
 * a trace file (one `key=value` line per request, mirroring the
 * cluster's parseJobTrace) or the seeded synthetic arrival processes:
 * Poisson (the classic open-loop baseline), bursty (a two-state
 * Markov-modulated Poisson process whose ON state multiplies the
 * rate), and diurnal (a sinusoidally rate-modulated Poisson process —
 * one full "day" over the stream). Request sizes are drawn from the
 * workloads/job_mix request catalog, so a (seed, rate, count, kind)
 * tuple names a reproducible stream.
 */

#ifndef MCDLA_SERVING_REQUEST_HH
#define MCDLA_SERVING_REQUEST_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/random.hh"

namespace mcdla
{

/** Synthetic arrival-process selector. */
enum class ArrivalKind
{
    Poisson,
    Bursty,
    Diurnal,
};

/** Parse an arrival token ("poisson" / "bursty" / "diurnal"); fatal. */
ArrivalKind parseArrivalKind(const std::string &name);

/** Canonical CLI token of an arrival process. */
const char *arrivalKindToken(ArrivalKind kind);

/** Every arrival process the parser accepts. */
const std::vector<ArrivalKind> &allArrivalKinds();

/** Comma-separated accepted tokens (help text). */
const std::string &arrivalKindTokenList();

/** One inference request submitted to the serving cluster. */
struct Request
{
    /** Display name; defaults to "req<N>" when built from a stream. */
    std::string name;
    /** Submission time, seconds from serving start. */
    double arrivalSec = 0.0;
    /** Samples the request carries (joins a server-side batch). */
    int samples = 1;
};

/**
 * One request per line, `key=value` tokens separated by whitespace:
 *
 *   arrival=0.015 samples=2 name=req7
 *
 * `arrival` is required; '#' starts a comment. Fatal on unknown keys
 * or malformed values (line number in the message). Requests are
 * returned sorted by arrival time.
 */
std::vector<Request> parseRequestTrace(std::istream &in);

/** parseRequestTrace over a file path; fatal when unreadable. */
std::vector<Request> loadRequestTrace(const std::string &path);

/** The trace-file line of a request (round-trips exactly). */
std::string requestLine(const Request &request);

/**
 * Synthesize @p count requests at mean rate @p rate (requests/sec)
 * under arrival process @p kind, sizes drawn from the default request
 * mix. All randomness draws from @p rng — the run's single seeded RNG.
 */
std::vector<Request> synthesizeRequests(int count, double rate,
                                        ArrivalKind kind, Random &rng);

} // namespace mcdla

#endif // MCDLA_SERVING_REQUEST_HH
