/**
 * @file
 * ServingCluster: inference serving over one shared machine, with
 * optional co-located training.
 *
 * N model replicas — single-device, forward-only TrainingSessions of
 * one catalog workload — serve an open-loop request stream on devices
 * 0..N-1 of a composed System. Each replica's backing store is pinned
 * in the shared memory-node pool (MemoryPoolAllocator) for the whole
 * run; each coalesced batch runs as a fresh forward-only session
 * driven through the async startIteration() API, so its compute is
 * priced by the batch-sensitive roofline model and its paging DMA
 * rides the real fabric channels. A BatchPolicy decides when a
 * replica's queue becomes a batch; a ReplicaRouter decides which queue
 * an arriving request joins.
 *
 * The mixed mode co-locates training: JobSpecs admitted FIFO onto the
 * remaining devices, running as ordinary TrainingSessions on the same
 * EventQueue/System — their collectives and paging DMA contend with
 * the replicas' traffic on the shared ring segments and memory-node
 * DIMM buses, so serving-under-training interference is measured, not
 * assumed. On the mc-b ring that contention is spatially asymmetric
 * (a replica neighboring the training gang shares its memory nodes;
 * one in the middle of the serving range does not), which is exactly
 * the signal the SLO-aware router's observed-service-rate predictions
 * exploit and queue-depth balancing cannot.
 *
 * The run produces a ServingReport: per-request latency breakdowns
 * (queue/batch/compute/paging), p50/p95/p99 tails, per-replica
 * utilization, and the co-located jobs' JobOutcomes, all emitted
 * through the standard ResultSet CSV/JSON pipeline.
 */

#ifndef MCDLA_SERVING_SERVING_HH
#define MCDLA_SERVING_SERVING_HH

#include <deque>
#include <memory>
#include <vector>

#include "cluster/cluster.hh"
#include "core/report.hh"
#include "core/scenario.hh"
#include "core/simulator.hh"
#include "serving/batch_policy.hh"
#include "serving/request.hh"
#include "serving/router.hh"
#include "system/system.hh"
#include "system/training_session.hh"

namespace mcdla
{

/** Serving-cluster configuration. */
struct ServingConfig
{
    /**
     * The machine and the serving knobs, in the Scenario vocabulary:
     * workload names the replicated model, globalBatch caps each
     * coalesced batch, and the serve-block fields (replicas,
     * batchPolicy, batchTimeoutMs, sloMs, router) select the policies.
     * The scenario's seed names the synthetic request stream the
     * caller fed to synthesizeRequests().
     */
    Scenario base;
    /** Pool allocator for replica pins and training backing stores. */
    PoolAllocatorKind allocator = PoolAllocatorKind::FirstFit;
    /**
     * Admission control: shed an arriving request when even the chosen
     * replica's predicted completion exceeds this multiple of the SLO
     * (needs replicas with observed service rates). 0 disables
     * shedding — every request is admitted.
     */
    double admitGraceFactor = 0.0;
    /** Training jobs co-located on the non-replica devices (FIFO). */
    std::vector<JobSpec> trainingJobs;
    /** inform() on every batch launch/completion. */
    bool progress = false;

    /// @name Observability (all optional; owned by the caller)
    /// @{
    /**
     * Chrome-tracing sink: async request spans (arrival to reply) on
     * the "serving" process, per-replica batch spans, shed-request
     * instants, batch->first-op dispatch flows, plus co-located
     * training-job lifecycle spans mirroring cluster/Cluster.
     */
    TraceSink *trace = nullptr;
    /**
     * Metric time-series: registerSystemMetrics() gauges plus serving
     * queue depth / in-flight samples / busy replicas and pool
     * occupancy, sampled periodically for the whole run.
     */
    MetricRegistry *metrics = nullptr;
    /** DES wall-clock profiler attached to the serving EventQueue. */
    DesProfiler *profiler = nullptr;
    /**
     * Event-provenance recorder attached to the serving EventQueue.
     * Request arrivals and batch timers tag batch-wait edges in the
     * serving context; co-located jobs tag sched-wait edges.
     */
    CausalRecorder *causal = nullptr;
    /// @}
};

/** Final state of one submitted request. */
struct RequestOutcome
{
    Request request;
    /** Replica the router chose (-1 until routed). */
    int replica = -1;
    /** When the request's batch launched (-1 while queued). */
    double dispatchSec = -1.0;
    /** When the request's batch completed (-1 while in flight). */
    double doneSec = -1.0;
    /** Samples of the coalesced batch the request rode in. */
    int batchSamples = 0;
    /** Its batch's compute busy time (shared by the whole batch). */
    double computeSec = 0.0;
    /** Its batch's paging-DMA in-flight time. */
    double pagingSec = 0.0;
    bool completed = false;
    /** Shed at the door by admission control. */
    bool dropped = false;

    /** Queueing + coalescing wait before the batch launched. */
    double
    queueSec() const
    {
        return std::max(0.0, dispatchSec - request.arrivalSec);
    }

    /** Batch service time (launch to completion). */
    double serviceSec() const { return doneSec - dispatchSec; }

    /** End-to-end request latency. */
    double latencySec() const { return doneSec - request.arrivalSec; }

    bool
    sloMet(double slo_sec) const
    {
        return completed && latencySec() <= slo_sec;
    }
};

/**
 * SimCheck: request accounting. Panics (SimCheck[serving]) unless
 * every submitted request either completed or was shed — exactly one
 * of the two — and every completed request carries a routed replica
 * and a dispatch/done timestamp pair. ServingCluster::run() asserts
 * this over its outcomes after the event queue drains; exposed as a
 * free function so the invariant is testable on synthetic outcomes.
 */
void simcheckVerifyRequestOutcomes(
    const std::vector<RequestOutcome> &outcomes);

/** One replica's whole-run accounting. */
struct ReplicaStats
{
    int device = -1;
    int batches = 0;
    std::int64_t samplesServed = 0;
    /** Seconds the replica had a batch in flight. */
    double busySec = 0.0;
    /** Final observed per-sample service time (EWMA). */
    double ewmaPerSampleSec = 0.0;
    /** Deepest sample backlog the replica's queue reached. */
    int peakQueueSamples = 0;

    double
    meanBatchSamples() const
    {
        return batches > 0
            ? static_cast<double>(samplesServed)
                / static_cast<double>(batches)
            : 0.0;
    }
};

/** Everything a serving run produced. */
class ServingReport
{
  public:
    std::vector<RequestOutcome> requests;
    std::vector<ReplicaStats> replicas;
    /** Co-located training jobs (cluster-vocabulary outcomes). */
    std::vector<JobOutcome> trainingJobs;
    double makespanSec = 0.0;
    BatchPolicyKind batchPolicy = BatchPolicyKind::Continuous;
    RouterKind router = RouterKind::SloAware;
    double sloSec = 0.0;
    std::uint64_t poolCapacity = 0;
    std::uint64_t poolPeakUsed = 0;

    /// @name Aggregate metrics (over completed requests)
    /// @{
    std::size_t completedRequests() const;
    std::size_t droppedRequests() const;
    double meanLatencyMs() const;
    /** Latency tail (core/report percentile()), milliseconds. */
    double latencyPercentileMs(double p) const;
    /** Fraction of completed requests that missed the SLO. */
    double sloViolationRate() const;
    /** Completed requests per second of makespan. */
    double throughputRps() const;
    double meanBatchSamples() const;
    /// @}

    /// @name ResultSet emission (CSV/JSON via core/report)
    /// @{
    static const std::vector<std::string> &requestColumns();
    static std::vector<ReportValue>
    requestRow(const RequestOutcome &outcome, double slo_sec);
    ResultSet requestTable() const;

    static const std::vector<std::string> &replicaColumns();
    ResultSet replicaTable() const;
    /// @}
};

/** One serving simulation: a machine, a request stream, policies. */
class ServingCluster
{
  public:
    /**
     * @param cfg Machine + policy configuration (cfg.base.serve is
     *        implied; replicas claim devices 0..replicas-1).
     * @param stream Request stream (any order; sorted by arrival).
     */
    ServingCluster(ServingConfig cfg, std::vector<Request> stream);

    /** Run the whole stream (and co-located jobs) to completion. */
    ServingReport run();

    /// @name Introspection (tests)
    /// @{
    System &system() { return *_system; }
    std::uint64_t poolCapacityBytes() const { return _poolCapacity; }
    /** Pool bytes pinned per replica for the whole run. */
    std::uint64_t replicaPoolBytes() const { return _replicaPool; }
    /// @}

  private:
    /** One model replica and its queue. */
    struct Replica
    {
        int device = -1;
        /** Waiting request indices, arrival order. */
        std::deque<std::size_t> queue;
        int queuedSamples = 0;
        bool busy = false;
        /** Request indices of the in-flight batch. */
        std::vector<std::size_t> inflight;
        int inflightSamples = 0;
        double batchStartSec = 0.0;
        /** Launch tick of the in-flight batch (trace span anchor). */
        Tick batchStartTick = 0;
        std::unique_ptr<TrainingSession> session;
        PoolBlock block;
        bool hasBlock = false;
        double ewmaPerSampleSec = 0.0;
        bool timerArmed = false;
        // Whole-run stats.
        int batches = 0;
        std::int64_t samplesServed = 0;
        double busySec = 0.0;
        int peakQueueSamples = 0;
    };

    /** One admitted, running training job. */
    struct ActiveJob
    {
        std::unique_ptr<TrainingSession> session;
        std::shared_ptr<const Network> net;
        PoolBlock block;
        bool hasBlock = false;
        int remainingIterations = 0;
        /** Admission tick (trace span anchor). */
        Tick startTick = 0;
        /** Per-job trace track on the "serving" process. */
        std::string traceTrack;
    };

    ReplicaLoad loadView(const Replica &replica) const;
    void onRequestArrival(std::size_t index);
    void maybeLaunch(std::size_t r);
    void launchBatch(std::size_t r);
    void onBatchDone(std::size_t r, const IterationResult &result);
    void cleanupBatch(std::size_t r);

    void onJobArrival(std::size_t index);
    void tryAdmitJobs();
    void startJob(std::size_t queue_pos);
    void stepJob(std::size_t index);
    void finishJob(std::size_t index);
    void cleanupJob(std::size_t index);

    ServingConfig _cfg;
    std::vector<Request> _stream;
    EventQueue _eq;
    std::unique_ptr<System> _system;
    Simulator _networks; ///< Workload network cache.
    std::shared_ptr<const Network> _net; ///< The replicated model.
    std::uint64_t _poolCapacity = 0;
    std::uint64_t _replicaPool = 0;
    std::unique_ptr<MemoryPoolAllocator> _pool;
    std::unique_ptr<BatchPolicy> _policy;
    std::unique_ptr<ReplicaRouter> _router;
    double _sloSec = 0.0;
    int _maxBatch = 1;
    std::vector<Replica> _replicas;
    std::vector<RequestOutcome> _outcomes;
    /** Arrivals processed; the stream is drained when it hits size. */
    std::size_t _arrived = 0;

    // Co-located training (mirrors cluster/Cluster, FIFO admission).
    std::set<int> _freeTrainDevices;
    std::deque<std::size_t> _jobQueue;
    std::map<std::size_t, ActiveJob> _activeJobs;
    std::vector<JobOutcome> _jobOutcomes;
    bool _ran = false;
};

} // namespace mcdla

#endif // MCDLA_SERVING_SERVING_HH
