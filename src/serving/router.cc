/**
 * @file
 * Replica router implementations.
 */

#include "serving/router.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

RouterKind
parseRouter(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return RouterKind::RoundRobin;
    if (name == "least-loaded" || name == "ll")
        return RouterKind::LeastLoaded;
    if (name == "slo" || name == "slo-aware")
        return RouterKind::SloAware;
    fatal("unknown router '%s' (%s)", name.c_str(),
          routerTokenList().c_str());
}

const char *
routerToken(RouterKind kind)
{
    switch (kind) {
      case RouterKind::RoundRobin: return "rr";
      case RouterKind::LeastLoaded: return "least-loaded";
      case RouterKind::SloAware: return "slo";
    }
    panic("router %d has no token", static_cast<int>(kind));
}

const std::vector<RouterKind> &
allRouters()
{
    static const std::vector<RouterKind> kinds = {
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::SloAware,
    };
    return kinds;
}

const std::string &
routerTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (RouterKind kind : allRouters()) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += routerToken(kind);
        }
        return tokens;
    }();
    return list;
}

const char *
routerDescription(RouterKind kind)
{
    switch (kind) {
      case RouterKind::RoundRobin:
        return "cyclic assignment, load-blind";
      case RouterKind::LeastLoaded:
        return "fewest queued+in-flight samples; blind to per-replica "
               "service speed";
      case RouterKind::SloAware:
        return "lowest predicted completion using each replica's "
               "observed service rate; drives SLO admission";
    }
    panic("router %d has no description", static_cast<int>(kind));
}

namespace
{

class RoundRobinRouter : public ReplicaRouter
{
  public:
    const char *name() const override { return "rr"; }

    std::size_t
    route(const std::vector<ReplicaLoad> &replicas, int) override
    {
        return _cursor++ % replicas.size();
    }

  private:
    std::size_t _cursor = 0;
};

class LeastLoadedRouter : public ReplicaRouter
{
  public:
    const char *name() const override { return "least-loaded"; }

    std::size_t
    route(const std::vector<ReplicaLoad> &replicas, int) override
    {
        std::size_t best = 0;
        int best_load = load(replicas[0]);
        for (std::size_t r = 1; r < replicas.size(); ++r) {
            const int l = load(replicas[r]);
            if (l < best_load) {
                best = r;
                best_load = l;
            }
        }
        return best;
    }

  private:
    static int
    load(const ReplicaLoad &replica)
    {
        return replica.queuedSamples + replica.inflightSamples;
    }
};

class SloAwareRouter : public ReplicaRouter
{
  public:
    const char *name() const override { return "slo"; }

    std::size_t
    route(const std::vector<ReplicaLoad> &replicas, int samples)
        override
    {
        // Before any replica has an observed rate the prediction
        // degenerates to busy-remainder == 0 everywhere; break those
        // warmup ties by queue depth so the policy starts out as
        // least-loaded rather than always-replica-0.
        std::size_t best = 0;
        for (std::size_t r = 1; r < replicas.size(); ++r) {
            const double a = replicas[r].predictedLatencySec(samples);
            const double b =
                replicas[best].predictedLatencySec(samples);
            if (a < b
                || (a == b
                    && replicas[r].queuedSamples
                            + replicas[r].inflightSamples
                        < replicas[best].queuedSamples
                            + replicas[best].inflightSamples))
                best = r;
        }
        return best;
    }
};

} // anonymous namespace

std::unique_ptr<ReplicaRouter>
makeRouter(RouterKind kind)
{
    switch (kind) {
      case RouterKind::RoundRobin:
        return std::make_unique<RoundRobinRouter>();
      case RouterKind::LeastLoaded:
        return std::make_unique<LeastLoadedRouter>();
      case RouterKind::SloAware:
        return std::make_unique<SloAwareRouter>();
    }
    panic("router %d has no factory", static_cast<int>(kind));
}

} // namespace mcdla
