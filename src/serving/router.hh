/**
 * @file
 * Replica routing: which replica an arriving request joins.
 *
 * The router sees a load view of every replica — queue depth, the
 * in-flight batch's predicted remaining time, and the replica's
 * observed per-sample service time (an EWMA the serving cluster keeps
 * per replica) — and names the queue to join:
 *
 *  - round-robin: cyclic, load-blind (the FIFO-ish strawman),
 *  - least-loaded: fewest queued+in-flight samples; blind to the fact
 *    that replicas co-located next to a training job run slower,
 *  - slo-aware: lowest *predicted completion time* using each
 *    replica's own observed service rate, so traffic drains away from
 *    replicas whose memory nodes a training job is hammering. The
 *    same prediction drives admission control: when even the best
 *    replica would blow the SLO by the configured grace factor, the
 *    request is shed at the door instead of poisoning every queue.
 */

#ifndef MCDLA_SERVING_ROUTER_HH
#define MCDLA_SERVING_ROUTER_HH

#include <memory>
#include <string>
#include <vector>

namespace mcdla
{

/** Router policy selector. */
enum class RouterKind
{
    RoundRobin,
    LeastLoaded,
    SloAware,
};

/** Parse a router token ("rr" / "least-loaded" / "slo"); fatal. */
RouterKind parseRouter(const std::string &name);

/** Canonical CLI token of a router kind. */
const char *routerToken(RouterKind kind);

/** Every router the parser accepts. */
const std::vector<RouterKind> &allRouters();

/** Comma-separated accepted tokens (help text). */
const std::string &routerTokenList();

/** One-line description (the --list-batch-policies catalog). */
const char *routerDescription(RouterKind kind);

/** The router's view of one replica's instantaneous load. */
struct ReplicaLoad
{
    /** Samples waiting in the replica's queue. */
    int queuedSamples = 0;
    /** Samples in the in-flight batch (0 when idle). */
    int inflightSamples = 0;
    /** Predicted seconds until the in-flight batch completes. */
    double busyRemainingSec = 0.0;
    /**
     * Observed per-sample service time (EWMA over completed batches);
     * 0 until the replica has served its first batch.
     */
    double ewmaPerSampleSec = 0.0;

    /**
     * Predicted completion time of a @p samples -sample request
     * joining this replica now: the in-flight remainder plus all
     * queued work ahead of it, priced at the observed service rate.
     */
    double
    predictedLatencySec(int samples) const
    {
        return busyRemainingSec
            + static_cast<double>(queuedSamples + samples)
            * ewmaPerSampleSec;
    }
};

/** Request-to-replica routing policy. */
class ReplicaRouter
{
  public:
    virtual ~ReplicaRouter() = default;
    virtual const char *name() const = 0;

    /**
     * Replica index the @p samples -sample request joins, given
     * @p replicas (never empty). Stateful policies (round-robin)
     * advance their cursor per call.
     */
    virtual std::size_t route(const std::vector<ReplicaLoad> &replicas,
                              int samples) = 0;
};

/** Factory over the kind enum. */
std::unique_ptr<ReplicaRouter> makeRouter(RouterKind kind);

} // namespace mcdla

#endif // MCDLA_SERVING_ROUTER_HH
