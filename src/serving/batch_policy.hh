/**
 * @file
 * Server-side batch coalescing policies.
 *
 * When a replica goes idle with requests queued, its BatchPolicy
 * decides how many samples to coalesce into the next forward pass —
 * the batch size that feeds the batch-sensitive roofline model, so the
 * policy trades per-request latency against device efficiency:
 *
 *  - static: launch only full batches; the classic fixed-size server
 *    that leaves the device idle while a partial batch waits for
 *    stragglers (the tail flushes once the stream has drained),
 *  - dynamic: timeout-bounded — launch a full batch immediately, or
 *    whatever is queued once the oldest request has waited the
 *    timeout,
 *  - continuous: launch whatever is queued the moment the replica
 *    idles; batches grow under load and shrink when it fades
 *    (continuous batching a la modern inference servers).
 */

#ifndef MCDLA_SERVING_BATCH_POLICY_HH
#define MCDLA_SERVING_BATCH_POLICY_HH

#include <memory>
#include <string>
#include <vector>

namespace mcdla
{

/** Batch-policy selector. */
enum class BatchPolicyKind
{
    Static,
    Dynamic,
    Continuous,
};

/** Parse a policy token ("static"/"dynamic"/"continuous"); fatal. */
BatchPolicyKind parseBatchPolicy(const std::string &name);

/** Canonical CLI token of a batch policy. */
const char *batchPolicyToken(BatchPolicyKind kind);

/** Every batch policy the parser accepts. */
const std::vector<BatchPolicyKind> &allBatchPolicies();

/** Comma-separated accepted tokens (help text). */
const std::string &batchPolicyTokenList();

/** One-line description (the --list-batch-policies catalog). */
const char *batchPolicyDescription(BatchPolicyKind kind);

/** Per-replica batch coalescing decision logic. */
class BatchPolicy
{
  public:
    virtual ~BatchPolicy() = default;
    virtual const char *name() const = 0;

    /**
     * Samples to launch now, given an idle replica with
     * @p queued_samples waiting, the oldest request having waited
     * @p oldest_wait_sec, and @p drained true once the stream has no
     * future arrivals. 0 means keep waiting. Never exceeds
     * min(queued_samples, maxBatch); every policy flushes the partial
     * tail when @p drained (nothing more can ever fill the batch).
     */
    virtual int launchSamples(int queued_samples,
                              double oldest_wait_sec,
                              bool drained) const = 0;

    /**
     * Longest a non-empty queue may wait before the policy must be
     * re-polled (the dynamic policy's timeout); < 0 when the policy
     * never launches on a timer.
     */
    virtual double maxWaitSec() const { return -1.0; }

    int maxBatchSamples() const { return _maxBatch; }

  protected:
    explicit BatchPolicy(int max_batch) : _maxBatch(max_batch) {}

    int _maxBatch;
};

/**
 * Factory over the kind enum. @p max_batch caps every launch;
 * @p timeout_sec bounds the dynamic policy's queueing wait (ignored by
 * the other policies).
 */
std::unique_ptr<BatchPolicy> makeBatchPolicy(BatchPolicyKind kind,
                                             int max_batch,
                                             double timeout_sec);

} // namespace mcdla

#endif // MCDLA_SERVING_BATCH_POLICY_HH
