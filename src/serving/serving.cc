/**
 * @file
 * ServingCluster implementation.
 */

#include "serving/serving.hh"

#include <algorithm>

#include "sim/causal.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"
#include "sim/trace.hh"
#include "system/analytic_model.hh"

namespace mcdla
{

void
simcheckVerifyRequestOutcomes(
    const std::vector<RequestOutcome> &outcomes)
{
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const RequestOutcome &outcome = outcomes[i];
        if (outcome.completed && outcome.dropped)
            simcheck::failUntimed(
                "serving",
                "request %zu (%s) both completed and was shed", i,
                outcome.request.name.c_str());
        if (!outcome.completed && !outcome.dropped)
            simcheck::failUntimed(
                "serving",
                "request %zu (%s) neither completed nor was shed "
                "(lost in a queue)",
                i, outcome.request.name.c_str());
        if (outcome.completed
            && (outcome.replica < 0 || outcome.dispatchSec < 0.0
                || outcome.doneSec < outcome.dispatchSec))
            simcheck::failUntimed(
                "serving",
                "request %zu (%s) completed with inconsistent "
                "routing/timestamps (replica %d, dispatch %g, done %g)",
                i, outcome.request.name.c_str(), outcome.replica,
                outcome.dispatchSec, outcome.doneSec);
    }
}

ServingCluster::ServingCluster(ServingConfig cfg,
                               std::vector<Request> stream)
    : _cfg(std::move(cfg)), _stream(std::move(stream))
{
    std::stable_sort(_stream.begin(), _stream.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalSec < b.arrivalSec;
                     });

    // Before any schedule: the member queue default-constructs as a
    // heap and may only be re-backed while pristine.
    _eq.setBackend(_cfg.base.base.eventQueueBackend);
    _system = std::make_unique<System>(_eq, _cfg.base.config());
    _sloSec = _cfg.base.sloMs / 1e3;
    if (_sloSec <= 0.0)
        fatal("serving requires a positive SLO (got %g ms)",
              _cfg.base.sloMs);
    _maxBatch = static_cast<int>(_cfg.base.globalBatch);
    if (_maxBatch < 1)
        fatal("serving requires a positive max batch (got %d)",
              _maxBatch);

    const int replicas = _cfg.base.replicas;
    if (replicas < 1)
        fatal("serving requires at least one replica (got %d)",
              replicas);
    if (replicas > _system->numDevices())
        fatal("%d replicas exceed the machine's %d devices", replicas,
              _system->numDevices());
    if (!_cfg.trainingJobs.empty()
        && replicas >= _system->numDevices())
        fatal("co-located training needs at least one non-replica "
              "device (%d replicas on %d devices)",
              replicas, _system->numDevices());

    _net = _networks.network(_cfg.base.workload);
    for (const Request &request : _stream)
        if (request.samples > _maxBatch)
            fatal("request %s carries %d samples but --batch caps "
                  "batches at %d", request.name.c_str(),
                  request.samples, _maxBatch);

    _poolCapacity = sharedPoolCapacityBytes(*_system);
    _pool = makePoolAllocator(_cfg.allocator, _poolCapacity);
    _policy = makeBatchPolicy(_cfg.base.batchPolicy, _maxBatch,
                              _cfg.base.batchTimeoutMs / 1e3);
    _router = makeRouter(_cfg.base.router);

    // The pool replaces the static per-device carve-out, exactly as in
    // the training cluster: capacity is enforced by the allocator, the
    // address spaces only decide placement.
    for (int d = 0; d < _system->numDevices(); ++d)
        _system->addressSpace(d).uncapRemoteRegions(_poolCapacity);

    // Pin each replica's backing store for the whole run: a replica at
    // max batch demands the same remote buffers a single-device
    // training session of that batch would allocate.
    JobSpec replica_spec;
    replica_spec.workload = _cfg.base.workload;
    replica_spec.mode = ParallelMode::DataParallel;
    replica_spec.batch = _maxBatch;
    replica_spec.devices = 1;
    _replicaPool = Cluster::jobPoolBytes(
        replica_spec, *_net, _system->config(),
        _system->addressSpace(0).pageBytes());

    _replicas.resize(static_cast<std::size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
        Replica &replica = _replicas[static_cast<std::size_t>(r)];
        replica.device = r;
        if (_replicaPool == 0)
            continue;
        auto block = _pool->allocate(_replicaPool);
        if (!block)
            fatal("cannot pin replica %d: the pool has no room for "
                  "its %s backing store", r,
                  formatBytes(static_cast<double>(
                      _replicaPool)).c_str());
        replica.block = *block;
        replica.hasBlock = true;
    }

    for (int d = replicas; d < _system->numDevices(); ++d)
        _freeTrainDevices.insert(d);

    _outcomes.resize(_stream.size());
    for (std::size_t i = 0; i < _stream.size(); ++i) {
        if (_stream[i].name.empty())
            _stream[i].name = "req" + std::to_string(i);
        _outcomes[i].request = _stream[i];
    }

    std::stable_sort(_cfg.trainingJobs.begin(),
                     _cfg.trainingJobs.end(),
                     [](const JobSpec &a, const JobSpec &b) {
                         return a.arrivalSec < b.arrivalSec;
                     });
    _jobOutcomes.resize(_cfg.trainingJobs.size());
    for (std::size_t j = 0; j < _cfg.trainingJobs.size(); ++j) {
        if (_cfg.trainingJobs[j].name.empty())
            _cfg.trainingJobs[j].name = "job" + std::to_string(j);
        _jobOutcomes[j].spec = _cfg.trainingJobs[j];
        _jobOutcomes[j].arrivalSec = _cfg.trainingJobs[j].arrivalSec;
    }
}

ServingReport
ServingCluster::run()
{
    if (_ran)
        fatal("a ServingCluster can only run once");
    _ran = true;

    if (_cfg.profiler != nullptr)
        _eq.setProfiler(_cfg.profiler);
    if (_cfg.causal != nullptr)
        _eq.setCausalRecorder(_cfg.causal);
    if (_cfg.trace != nullptr)
        _system->collectives().setTraceSink(_cfg.trace);
    if (_cfg.metrics != nullptr) {
        registerSystemMetrics(*_cfg.metrics, *_system);
        _cfg.metrics->add("pool.used_gib", [this] {
            return static_cast<double>(_pool->usedBytes())
                / (1024.0 * 1024.0 * 1024.0);
        });
        _cfg.metrics->add("serve.queued_samples", [this] {
            int total = 0;
            for (const Replica &replica : _replicas)
                total += replica.queuedSamples;
            return static_cast<double>(total);
        });
        _cfg.metrics->add("serve.inflight_samples", [this] {
            int total = 0;
            for (const Replica &replica : _replicas)
                total += replica.inflightSamples;
            return static_cast<double>(total);
        });
        _cfg.metrics->add("serve.busy_replicas", [this] {
            int busy = 0;
            for (const Replica &replica : _replicas)
                busy += replica.busy ? 1 : 0;
            return static_cast<double>(busy);
        });
        for (std::size_t r = 0; r < _replicas.size(); ++r) {
            _cfg.metrics->add(
                "serve.r" + std::to_string(r) + ".queue", [this, r] {
                    return static_cast<double>(
                        _replicas[r].queuedSamples);
                });
        }
        _cfg.metrics->start(_eq);
    }

    {
        // A request's batch launch hangs off its arrival: the gap is
        // batch-coalescing wait in the serving context.
        CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Batch,
                                 CausalCtx::Serving);
        for (std::size_t i = 0; i < _stream.size(); ++i) {
            _eq.schedule(secondsToTicks(_stream[i].arrivalSec),
                         [this, i] { onRequestArrival(i); },
                         "request_arrival");
        }
    }
    {
        // Co-located training jobs queue on the FIFO scheduler.
        CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Sched,
                                 CausalCtx::Cluster);
        for (std::size_t j = 0; j < _cfg.trainingJobs.size(); ++j) {
            _eq.schedule(
                secondsToTicks(_cfg.trainingJobs[j].arrivalSec),
                [this, j] { onJobArrival(j); }, "job_arrival");
        }
    }
    _eq.run();

    for (const Replica &replica : _replicas) {
        if (!replica.queue.empty() || replica.busy)
            panic("serving drained with replica %d still loaded "
                  "(%zu queued, busy=%d)", replica.device,
                  replica.queue.size(), replica.busy ? 1 : 0);
    }
    if (!_jobQueue.empty() || !_activeJobs.empty())
        panic("serving drained with training jobs still pending "
              "(%zu queued, %zu running)", _jobQueue.size(),
              _activeJobs.size());
    if (simcheck::enabled())
        simcheckVerifyRequestOutcomes(_outcomes);

    ServingReport report;
    report.requests = _outcomes;
    report.trainingJobs = _jobOutcomes;
    report.makespanSec = ticksToSeconds(_eq.now());
    report.batchPolicy = _cfg.base.batchPolicy;
    report.router = _cfg.base.router;
    report.sloSec = _sloSec;
    report.poolCapacity = _poolCapacity;
    report.poolPeakUsed = _pool->peakUsedBytes();
    report.replicas.reserve(_replicas.size());
    for (const Replica &replica : _replicas) {
        ReplicaStats stats;
        stats.device = replica.device;
        stats.batches = replica.batches;
        stats.samplesServed = replica.samplesServed;
        stats.busySec = replica.busySec;
        stats.ewmaPerSampleSec = replica.ewmaPerSampleSec;
        stats.peakQueueSamples = replica.peakQueueSamples;
        report.replicas.push_back(stats);
    }
    return report;
}

ReplicaLoad
ServingCluster::loadView(const Replica &replica) const
{
    ReplicaLoad view;
    view.queuedSamples = replica.queuedSamples;
    view.inflightSamples = replica.inflightSamples;
    view.ewmaPerSampleSec = replica.ewmaPerSampleSec;
    if (replica.busy) {
        const double predicted =
            static_cast<double>(replica.inflightSamples)
            * replica.ewmaPerSampleSec;
        view.busyRemainingSec =
            std::max(0.0, replica.batchStartSec + predicted
                              - ticksToSeconds(_eq.now()));
    }
    return view;
}

void
ServingCluster::onRequestArrival(std::size_t index)
{
    ++_arrived;
    RequestOutcome &outcome = _outcomes[index];
    const int samples = outcome.request.samples;

    std::vector<ReplicaLoad> views;
    views.reserve(_replicas.size());
    for (const Replica &replica : _replicas)
        views.push_back(loadView(replica));
    const std::size_t r = _router->route(views, samples);
    if (r >= _replicas.size())
        panic("router %s picked replica %zu of %zu", _router->name(),
              r, _replicas.size());

    // SLO-headroom admission: when even the chosen replica cannot
    // plausibly make the deadline, shed at the door rather than let a
    // doomed request deepen every subsequent prediction.
    if (_cfg.admitGraceFactor > 0.0
        && views[r].ewmaPerSampleSec > 0.0
        && views[r].predictedLatencySec(samples)
            > _cfg.admitGraceFactor * _sloSec) {
        outcome.dropped = true;
        if (_cfg.progress)
            inform("t=%.4fs shed %s (predicted %.1f ms vs %.1f ms "
                   "SLO)", ticksToSeconds(_eq.now()),
                   outcome.request.name.c_str(),
                   views[r].predictedLatencySec(samples) * 1e3,
                   _sloSec * 1e3);
        if (_cfg.trace != nullptr)
            _cfg.trace->addInstant("serving", "shed",
                                   "shed " + outcome.request.name,
                                   _eq.now(), "request");
    } else {
        outcome.replica = static_cast<int>(r);
        if (_cfg.trace != nullptr)
            _cfg.trace->asyncBegin("serving", "requests",
                                   outcome.request.name,
                                   static_cast<std::uint64_t>(index)
                                       + 1,
                                   _eq.now(), "request");
        Replica &replica = _replicas[r];
        replica.queue.push_back(index);
        replica.queuedSamples += samples;
        replica.peakQueueSamples =
            std::max(replica.peakQueueSamples, replica.queuedSamples);
        maybeLaunch(r);
    }

    // The last arrival flips every policy into drain mode: re-poll
    // every idle replica so partial batches parked behind a
    // not-yet-full static/dynamic threshold flush instead of wedging
    // (shed or not — drain applies to all queues either way).
    if (_arrived == _stream.size())
        for (std::size_t i = 0; i < _replicas.size(); ++i)
            maybeLaunch(i);
}

void
ServingCluster::maybeLaunch(std::size_t r)
{
    Replica &replica = _replicas[r];
    if (replica.busy || replica.queue.empty())
        return;

    const double now = ticksToSeconds(_eq.now());
    const double oldest_wait = std::max(
        0.0, now
            - _outcomes[replica.queue.front()].request.arrivalSec);
    const bool drained = _arrived == _stream.size();
    if (_policy->launchSamples(replica.queuedSamples, oldest_wait,
                               drained) > 0) {
        launchBatch(r);
        return;
    }

    // The dynamic policy launches on a timer: re-poll when the oldest
    // request's wait crosses the timeout. Stale fires are harmless —
    // the re-poll just re-evaluates the policy.
    const double max_wait = _policy->maxWaitSec();
    if (max_wait >= 0.0 && !replica.timerArmed) {
        replica.timerArmed = true;
        const double fire_at =
            _outcomes[replica.queue.front()].request.arrivalSec
            + max_wait;
        // Strictly after now: tick rounding can land the deadline a
        // hair *before* the timeout is satisfied, and a same-tick
        // re-arm would spin forever. One tick forward per re-poll
        // guarantees progress past the rounding gap.
        const Tick fire_tick = std::max(secondsToTicks(fire_at),
                                        _eq.now() + 1);
        CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Batch,
                                 CausalCtx::Serving);
        _eq.schedule(fire_tick,
                     [this, r] {
                         _replicas[r].timerArmed = false;
                         maybeLaunch(r);
                     },
                     "batch_timeout");
    }
}

void
ServingCluster::launchBatch(std::size_t r)
{
    Replica &replica = _replicas[r];

    // Coalesce the maximal queue prefix that fits the batch cap; the
    // intake check guarantees the front request always fits.
    int batch_samples = 0;
    while (!replica.queue.empty()) {
        const std::size_t index = replica.queue.front();
        const int samples = _outcomes[index].request.samples;
        if (batch_samples + samples > _maxBatch)
            break;
        replica.queue.pop_front();
        replica.queuedSamples -= samples;
        batch_samples += samples;
        replica.inflight.push_back(index);
    }
    if (replica.inflight.empty())
        panic("replica %d launched an empty batch", replica.device);

    const double now = ticksToSeconds(_eq.now());
    for (std::size_t index : replica.inflight)
        _outcomes[index].dispatchSec = now;
    replica.busy = true;
    replica.batchStartSec = now;
    replica.batchStartTick = _eq.now();
    replica.inflightSamples = batch_samples;

    replica.session = std::make_unique<TrainingSession>(
        *_system, *_net, ParallelMode::DataParallel, batch_samples,
        /*pipeline_stages=*/0, /*microbatches=*/1,
        std::vector<int>{replica.device}, /*forward_only=*/true);
    if (_cfg.trace != nullptr) {
        // A flow arrow links the batch span (emitted when it
        // completes) to the batch's first compute op on the device.
        replica.session->setTraceSink(_cfg.trace);
        const std::uint64_t flow = _cfg.trace->newFlow();
        _cfg.trace->flowBegin("serving",
                              "replica" + std::to_string(r),
                              "dispatch", _eq.now(), flow, "batch");
        replica.session->setIterationFlow(flow);
    }
    if (_cfg.progress)
        inform("t=%.4fs replica %d launches a %d-sample batch "
               "(%zu requests, %d queued behind)",
               now, replica.device, batch_samples,
               replica.inflight.size(), replica.queuedSamples);
    replica.session->startIteration(
        [this, r](const IterationResult &result) {
            onBatchDone(r, result);
        });
}

void
ServingCluster::onBatchDone(std::size_t r,
                            const IterationResult &result)
{
    Replica &replica = _replicas[r];
    const double now = ticksToSeconds(_eq.now());
    const double service = now - replica.batchStartSec;
    const int batch_samples = replica.inflightSamples;

    for (std::size_t index : replica.inflight) {
        RequestOutcome &outcome = _outcomes[index];
        if (simcheck::enabled() && (outcome.completed || outcome.dropped))
            simcheck::fail("serving", _eq.now(),
                           "request %zu (%s) finishing twice (already "
                           "%s)",
                           index, outcome.request.name.c_str(),
                           outcome.completed ? "completed" : "shed");
        outcome.doneSec = now;
        outcome.batchSamples = batch_samples;
        outcome.computeSec = result.breakdown.computeSec;
        outcome.pagingSec = result.breakdown.vmemSec;
        outcome.completed = true;
        if (_cfg.trace != nullptr)
            _cfg.trace->asyncEnd("serving", "requests",
                                 outcome.request.name,
                                 static_cast<std::uint64_t>(index) + 1,
                                 _eq.now(), "request");
    }
    if (_cfg.trace != nullptr)
        _cfg.trace->addSpan("serving", "replica" + std::to_string(r),
                            "batch x" + std::to_string(batch_samples)
                                + " (" + std::to_string(
                                    replica.inflight.size())
                                + " req)",
                            replica.batchStartTick,
                            _eq.now() - replica.batchStartTick,
                            "batch");

    // Update the replica's observed service rate — the SLO-aware
    // router's whole signal. A short memory (alpha 0.5) tracks the
    // contention swings a co-located training job causes.
    const double observed =
        service / static_cast<double>(batch_samples);
    replica.ewmaPerSampleSec = replica.ewmaPerSampleSec == 0.0
        ? observed
        : 0.5 * (replica.ewmaPerSampleSec + observed);

    ++replica.batches;
    replica.samplesServed += batch_samples;
    replica.busySec += service;
    replica.inflight.clear();
    replica.inflightSamples = 0;
    if (_cfg.progress)
        inform("t=%.4fs replica %d served %d samples in %.2f ms "
               "(%.3f ms/sample EWMA)", now, replica.device,
               batch_samples, service * 1e3,
               replica.ewmaPerSampleSec * 1e3);

    // Tear down from a fresh event: the session is live on the call
    // stack (this runs inside its completion callback). Cleanup
    // launches the next coalesced batch, so queued requests' service
    // hangs off it as batch-wait edges.
    CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Batch,
                             CausalCtx::Serving);
    _eq.schedule(_eq.now(), [this, r] { cleanupBatch(r); },
                 "batch_cleanup");
}

void
ServingCluster::cleanupBatch(std::size_t r)
{
    Replica &replica = _replicas[r];
    replica.session->releaseBuffers();
    replica.session.reset();
    replica.busy = false;
    maybeLaunch(r);
}

// ---------------------------------------------- co-located training

void
ServingCluster::onJobArrival(std::size_t index)
{
    const JobSpec &spec = _cfg.trainingJobs[index];
    JobOutcome &outcome = _jobOutcomes[index];
    const int train_devices = _system->numDevices()
        - static_cast<int>(_replicas.size());

    const Network &net = *_networks.network(spec.workload);
    bool feasible = spec.devices >= 1 && spec.devices <= train_devices;
    if (feasible && spec.mode == ParallelMode::Pipeline) {
        const int stages = spec.pipelineStages > 0 ? spec.pipelineStages
                                                   : spec.devices;
        feasible = stages <= spec.devices
            && static_cast<std::size_t>(stages) <= net.size()
            && spec.microbatches >= 1
            && spec.batch >= spec.microbatches;
    } else if (feasible) {
        feasible = spec.batch >= spec.devices;
    }

    std::uint64_t demand = 0;
    if (feasible) {
        demand = Cluster::jobPoolBytes(
            spec, net, _system->config(),
            _system->addressSpace(0).pageBytes());
        // The replicas' pinned blocks shrink the pool for the whole
        // run; a job that can never fit beside them is rejected.
        if (demand > 0) {
            const auto probe =
                makePoolAllocator(_cfg.allocator, _poolCapacity);
            std::uint64_t pinned = _replicaPool
                * static_cast<std::uint64_t>(_replicas.size());
            feasible = pinned < _poolCapacity
                && probe->canAllocate(demand + pinned);
        }
    }
    if (!feasible) {
        outcome.rejected = true;
        warn("serving cluster rejects %s: its shape (%d devices, %s "
             "pool demand) cannot ever run beside %zu replicas",
             spec.label().c_str(), spec.devices,
             formatBytes(static_cast<double>(demand)).c_str(),
             _replicas.size());
        if (_cfg.trace != nullptr)
            _cfg.trace->addInstant("serving", "rejected",
                                   "reject " + spec.label(), _eq.now(),
                                   "job");
        return;
    }

    SystemConfig job_cfg = _system->config();
    job_cfg.fabric.numDevices = spec.devices;
    const AnalyticEstimate estimate = estimateIteration(
        job_cfg, net, spec.mode, spec.batch, spec.pipelineStages,
        spec.microbatches);
    outcome.estSoloSec = estimate.upperBoundSec()
        * static_cast<double>(spec.iterations);
    outcome.poolBytes = demand;

    _jobQueue.push_back(index);
    tryAdmitJobs();
}

void
ServingCluster::tryAdmitJobs()
{
    // FIFO over the non-replica devices: the serving cluster keeps
    // admission simple — policy studies belong to cluster/Cluster.
    while (!_jobQueue.empty()) {
        const std::size_t index = _jobQueue.front();
        const JobOutcome &outcome = _jobOutcomes[index];
        if (outcome.spec.devices
                > static_cast<int>(_freeTrainDevices.size())
            || (outcome.poolBytes > 0
                && !_pool->canAllocate(outcome.poolBytes)))
            break;
        _jobQueue.pop_front();
        startJob(index);
    }
}

void
ServingCluster::startJob(std::size_t index)
{
    const JobSpec &spec = _cfg.trainingJobs[index];
    JobOutcome &outcome = _jobOutcomes[index];

    ActiveJob active;
    if (outcome.poolBytes > 0) {
        auto block = _pool->allocate(outcome.poolBytes);
        if (!block)
            panic("admitted %s but the pool cannot place %s",
                  spec.label().c_str(),
                  formatBytes(static_cast<double>(
                      outcome.poolBytes)).c_str());
        active.block = *block;
        active.hasBlock = true;
    }

    auto it = _freeTrainDevices.begin();
    for (int d = 0; d < spec.devices; ++d)
        outcome.devices.push_back(*it++);
    for (int d : outcome.devices)
        _freeTrainDevices.erase(d);
    outcome.startSec = ticksToSeconds(_eq.now());

    active.net = _networks.network(spec.workload);
    active.session = std::make_unique<TrainingSession>(
        *_system, *active.net, spec.mode, spec.batch,
        spec.pipelineStages, spec.microbatches, outcome.devices);
    active.remainingIterations = spec.iterations;
    active.startTick = _eq.now();
    if (_cfg.trace != nullptr) {
        active.traceTrack =
            "job" + std::to_string(index) + " " + spec.name;
        const Tick arrival = secondsToTicks(spec.arrivalSec);
        if (_eq.now() > arrival)
            _cfg.trace->addSpan("serving", active.traceTrack,
                                "queued " + spec.label(), arrival,
                                _eq.now() - arrival, "queue");
        active.session->setTraceSink(_cfg.trace);
        const std::uint64_t flow = _cfg.trace->newFlow();
        _cfg.trace->flowBegin("serving", active.traceTrack, "dispatch",
                              _eq.now(), flow, "job");
        active.session->setIterationFlow(flow);
    }
    _activeJobs.emplace(index, std::move(active));

    if (_cfg.progress)
        inform("t=%.4fs start %s beside %zu serving replicas",
               outcome.startSec, spec.label().c_str(),
               _replicas.size());
    stepJob(index);
}

void
ServingCluster::stepJob(std::size_t index)
{
    ActiveJob &active = _activeJobs.at(index);
    active.session->startIteration(
        [this, index](const IterationResult &result) {
            ActiveJob &job = _activeJobs.at(index);
            _jobOutcomes[index].lastIteration = result;
            if (--job.remainingIterations > 0) {
                stepJob(index);
                return;
            }
            finishJob(index);
        });
}

void
ServingCluster::finishJob(std::size_t index)
{
    JobOutcome &outcome = _jobOutcomes[index];
    outcome.finishSec = ticksToSeconds(_eq.now());
    outcome.completed = true;
    if (_cfg.trace != nullptr) {
        const ActiveJob &job = _activeJobs.at(index);
        _cfg.trace->addSpan("serving", job.traceTrack,
                            "run " + outcome.spec.label(),
                            job.startTick, _eq.now() - job.startTick,
                            "job");
    }
    if (_cfg.progress)
        inform("t=%.4fs finish %s (JCT %.3fs)", outcome.finishSec,
               outcome.spec.label().c_str(), outcome.jctSec());
    CausalScope causal_scope(_eq.causalRecorder(), WaitKind::Sched,
                             CausalCtx::Cluster);
    _eq.schedule(_eq.now(), [this, index] { cleanupJob(index); },
                 "job_cleanup");
}

void
ServingCluster::cleanupJob(std::size_t index)
{
    auto it = _activeJobs.find(index);
    if (it == _activeJobs.end())
        panic("cleanup of job %zu which is not active", index);
    it->second.session->releaseBuffers();
    for (int d : _jobOutcomes[index].devices)
        _freeTrainDevices.insert(d);
    if (it->second.hasBlock)
        _pool->release(it->second.block);
    _activeJobs.erase(it);
    tryAdmitJobs();
}

// ------------------------------------------------------------- report

std::size_t
ServingReport::completedRequests() const
{
    std::size_t n = 0;
    for (const RequestOutcome &outcome : requests)
        if (outcome.completed)
            ++n;
    return n;
}

std::size_t
ServingReport::droppedRequests() const
{
    std::size_t n = 0;
    for (const RequestOutcome &outcome : requests)
        if (outcome.dropped)
            ++n;
    return n;
}

double
ServingReport::meanLatencyMs() const
{
    double total = 0.0;
    std::size_t n = 0;
    for (const RequestOutcome &outcome : requests) {
        if (!outcome.completed)
            continue;
        total += outcome.latencySec();
        ++n;
    }
    return n > 0 ? total * 1e3 / static_cast<double>(n) : 0.0;
}

double
ServingReport::latencyPercentileMs(double p) const
{
    std::vector<double> latencies;
    for (const RequestOutcome &outcome : requests)
        if (outcome.completed)
            latencies.push_back(outcome.latencySec() * 1e3);
    return percentile(std::move(latencies), p);
}

double
ServingReport::sloViolationRate() const
{
    std::size_t violated = 0;
    std::size_t n = 0;
    for (const RequestOutcome &outcome : requests) {
        if (!outcome.completed)
            continue;
        ++n;
        if (!outcome.sloMet(sloSec))
            ++violated;
    }
    return n > 0 ? static_cast<double>(violated)
            / static_cast<double>(n)
                 : 0.0;
}

double
ServingReport::throughputRps() const
{
    return makespanSec > 0.0
        ? static_cast<double>(completedRequests()) / makespanSec
        : 0.0;
}

double
ServingReport::meanBatchSamples() const
{
    std::int64_t samples = 0;
    std::int64_t batches = 0;
    for (const ReplicaStats &stats : replicas) {
        samples += stats.samplesServed;
        batches += stats.batches;
    }
    return batches > 0 ? static_cast<double>(samples)
            / static_cast<double>(batches)
                       : 0.0;
}

const std::vector<std::string> &
ServingReport::requestColumns()
{
    static const std::vector<std::string> columns = {
        "request",    "arrival_s", "samples",    "replica",
        "queue_ms",   "service_ms", "latency_ms", "batch",
        "compute_ms", "paging_ms", "slo_met",    "status"};
    return columns;
}

std::vector<ReportValue>
ServingReport::requestRow(const RequestOutcome &outcome,
                          double slo_sec)
{
    const char *status = outcome.dropped
        ? "dropped"
        : (outcome.completed ? "completed" : "incomplete");
    const bool done = outcome.completed;
    return {outcome.request.name,
            outcome.request.arrivalSec,
            static_cast<std::int64_t>(outcome.request.samples),
            static_cast<std::int64_t>(outcome.replica),
            done ? outcome.queueSec() * 1e3 : 0.0,
            done ? outcome.serviceSec() * 1e3 : 0.0,
            done ? outcome.latencySec() * 1e3 : 0.0,
            static_cast<std::int64_t>(outcome.batchSamples),
            done ? outcome.computeSec * 1e3 : 0.0,
            done ? outcome.pagingSec * 1e3 : 0.0,
            static_cast<std::int64_t>(outcome.sloMet(slo_sec) ? 1 : 0),
            std::string(status)};
}

ResultSet
ServingReport::requestTable() const
{
    ResultSet table(requestColumns());
    for (const RequestOutcome &outcome : requests)
        table.addRow(requestRow(outcome, sloSec));
    return table;
}

const std::vector<std::string> &
ServingReport::replicaColumns()
{
    static const std::vector<std::string> columns = {
        "replica",   "device",          "batches",
        "samples",   "mean_batch",      "busy_s",
        "utilization", "ewma_ms_per_sample", "peak_queue_samples"};
    return columns;
}

ResultSet
ServingReport::replicaTable() const
{
    ResultSet table(replicaColumns());
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        const ReplicaStats &stats = replicas[r];
        table.addRow({static_cast<std::int64_t>(r),
                      static_cast<std::int64_t>(stats.device),
                      static_cast<std::int64_t>(stats.batches),
                      stats.samplesServed,
                      stats.meanBatchSamples(),
                      stats.busySec,
                      makespanSec > 0.0 ? stats.busySec / makespanSec
                                        : 0.0,
                      stats.ewmaPerSampleSec * 1e3,
                      static_cast<std::int64_t>(
                          stats.peakQueueSamples)});
    }
    return table;
}

} // namespace mcdla
