/**
 * @file
 * Batch policy implementations.
 */

#include "serving/batch_policy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

BatchPolicyKind
parseBatchPolicy(const std::string &name)
{
    if (name == "static")
        return BatchPolicyKind::Static;
    if (name == "dynamic")
        return BatchPolicyKind::Dynamic;
    if (name == "continuous")
        return BatchPolicyKind::Continuous;
    fatal("unknown batch policy '%s' (%s)", name.c_str(),
          batchPolicyTokenList().c_str());
}

const char *
batchPolicyToken(BatchPolicyKind kind)
{
    switch (kind) {
      case BatchPolicyKind::Static: return "static";
      case BatchPolicyKind::Dynamic: return "dynamic";
      case BatchPolicyKind::Continuous: return "continuous";
    }
    panic("batch policy %d has no token", static_cast<int>(kind));
}

const std::vector<BatchPolicyKind> &
allBatchPolicies()
{
    static const std::vector<BatchPolicyKind> kinds = {
        BatchPolicyKind::Static,
        BatchPolicyKind::Dynamic,
        BatchPolicyKind::Continuous,
    };
    return kinds;
}

const std::string &
batchPolicyTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (BatchPolicyKind kind : allBatchPolicies()) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += batchPolicyToken(kind);
        }
        return tokens;
    }();
    return list;
}

const char *
batchPolicyDescription(BatchPolicyKind kind)
{
    switch (kind) {
      case BatchPolicyKind::Static:
        return "full batches only; partial batches wait for "
               "stragglers (tail flushes at stream drain)";
      case BatchPolicyKind::Dynamic:
        return "full batch, or whatever is queued once the oldest "
               "request has waited the batch timeout";
      case BatchPolicyKind::Continuous:
        return "launch whatever is queued whenever the replica "
               "idles; batches track the instantaneous load";
    }
    panic("batch policy %d has no description", static_cast<int>(kind));
}

namespace
{

class StaticBatchPolicy : public BatchPolicy
{
  public:
    explicit StaticBatchPolicy(int max_batch) : BatchPolicy(max_batch)
    {}

    const char *name() const override { return "static"; }

    int
    launchSamples(int queued_samples, double, bool drained) const
        override
    {
        if (queued_samples >= _maxBatch)
            return _maxBatch;
        return drained ? queued_samples : 0;
    }
};

class DynamicBatchPolicy : public BatchPolicy
{
  public:
    DynamicBatchPolicy(int max_batch, double timeout_sec)
        : BatchPolicy(max_batch), _timeoutSec(timeout_sec)
    {}

    const char *name() const override { return "dynamic"; }

    int
    launchSamples(int queued_samples, double oldest_wait_sec,
                  bool drained) const override
    {
        if (queued_samples >= _maxBatch)
            return _maxBatch;
        if (drained || oldest_wait_sec >= _timeoutSec)
            return queued_samples;
        return 0;
    }

    double maxWaitSec() const override { return _timeoutSec; }

  private:
    double _timeoutSec;
};

class ContinuousBatchPolicy : public BatchPolicy
{
  public:
    explicit ContinuousBatchPolicy(int max_batch)
        : BatchPolicy(max_batch)
    {}

    const char *name() const override { return "continuous"; }

    int
    launchSamples(int queued_samples, double, bool) const override
    {
        return std::min(queued_samples, _maxBatch);
    }
};

} // anonymous namespace

std::unique_ptr<BatchPolicy>
makeBatchPolicy(BatchPolicyKind kind, int max_batch, double timeout_sec)
{
    if (max_batch < 1)
        fatal("batch policy requires a positive max batch (got %d)",
              max_batch);
    switch (kind) {
      case BatchPolicyKind::Static:
        return std::make_unique<StaticBatchPolicy>(max_batch);
      case BatchPolicyKind::Dynamic:
        if (timeout_sec < 0.0)
            fatal("dynamic batch policy requires a non-negative "
                  "timeout (got %g s)", timeout_sec);
        return std::make_unique<DynamicBatchPolicy>(max_batch,
                                                    timeout_sec);
      case BatchPolicyKind::Continuous:
        return std::make_unique<ContinuousBatchPolicy>(max_batch);
    }
    panic("batch policy %d has no factory", static_cast<int>(kind));
}

} // namespace mcdla
