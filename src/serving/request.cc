/**
 * @file
 * Request trace parsing and synthetic arrival generation.
 */

#include "serving/request.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"
#include "workloads/job_mix.hh"

namespace mcdla
{

ArrivalKind
parseArrivalKind(const std::string &name)
{
    if (name == "poisson")
        return ArrivalKind::Poisson;
    if (name == "bursty")
        return ArrivalKind::Bursty;
    if (name == "diurnal")
        return ArrivalKind::Diurnal;
    fatal("unknown arrival process '%s' (%s)", name.c_str(),
          arrivalKindTokenList().c_str());
}

const char *
arrivalKindToken(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
      case ArrivalKind::Diurnal: return "diurnal";
    }
    panic("arrival process %d has no token", static_cast<int>(kind));
}

const std::vector<ArrivalKind> &
allArrivalKinds()
{
    static const std::vector<ArrivalKind> kinds = {
        ArrivalKind::Poisson,
        ArrivalKind::Bursty,
        ArrivalKind::Diurnal,
    };
    return kinds;
}

const std::string &
arrivalKindTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (ArrivalKind kind : allArrivalKinds()) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += arrivalKindToken(kind);
        }
        return tokens;
    }();
    return list;
}

namespace
{

std::int64_t
parseInt(const std::string &value, const std::string &key, int line)
{
    try {
        std::size_t used = 0;
        const long long v = std::stoll(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("request trace line %d: %s=%s is not an integer", line,
              key.c_str(), value.c_str());
    }
}

double
parseDouble(const std::string &value, const std::string &key, int line)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return v;
    } catch (const std::exception &) {
        fatal("request trace line %d: %s=%s is not a number", line,
              key.c_str(), value.c_str());
    }
}

} // anonymous namespace

std::vector<Request>
parseRequestTrace(std::istream &in)
{
    std::vector<Request> requests;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string token;
        Request request;
        bool have_arrival = false;
        bool any = false;
        while (tokens >> token) {
            const auto eq = token.find('=');
            if (eq == std::string::npos)
                fatal("request trace line %d: token '%s' is not "
                      "key=value", line_no, token.c_str());
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            any = true;
            if (key == "arrival") {
                request.arrivalSec = parseDouble(value, key, line_no);
                if (request.arrivalSec < 0.0)
                    fatal("request trace line %d: negative arrival "
                          "time", line_no);
                have_arrival = true;
            } else if (key == "samples") {
                request.samples =
                    static_cast<int>(parseInt(value, key, line_no));
            } else if (key == "name") {
                request.name = value;
            } else {
                fatal("request trace line %d: unknown key '%s'",
                      line_no, key.c_str());
            }
        }
        if (!any)
            continue; // blank / comment-only line
        if (!have_arrival)
            fatal("request trace line %d: arrival= is required",
                  line_no);
        if (request.samples < 1)
            fatal("request trace line %d: non-positive sample count",
                  line_no);
        if (request.name.empty())
            request.name = "req" + std::to_string(requests.size());
        requests.push_back(std::move(request));
    }
    std::stable_sort(requests.begin(), requests.end(),
                     [](const Request &a, const Request &b) {
                         return a.arrivalSec < b.arrivalSec;
                     });
    return requests;
}

std::vector<Request>
loadRequestTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open request trace '%s'", path.c_str());
    return parseRequestTrace(in);
}

std::string
requestLine(const Request &request)
{
    std::ostringstream os;
    // max_digits10 so synthesized arrival times round-trip exactly.
    os << "arrival=" << std::setprecision(17) << request.arrivalSec
       << " samples=" << request.samples;
    if (!request.name.empty())
        os << " name=" << request.name;
    return os.str();
}

std::vector<Request>
synthesizeRequests(int count, double rate, ArrivalKind kind,
                   Random &rng)
{
    if (count < 1)
        fatal("synthetic request stream requires a positive count");
    if (rate <= 0.0)
        fatal("synthetic request stream requires a positive rate");

    // Bursty: two-state MMPP. The ON state runs at kBurstMultiplier x
    // the OFF rate and covers kBurstFraction of the time; the OFF rate
    // is normalized so the long-run mean stays at @p rate. State dwell
    // times are exponential with means of a few mean interarrivals, so
    // bursts span several requests.
    constexpr double kBurstMultiplier = 5.0;
    constexpr double kBurstFraction = 0.2;
    const double base_rate = rate
        / (1.0 - kBurstFraction + kBurstFraction * kBurstMultiplier);
    const double mean_on_dwell = 8.0 / rate;
    const double mean_off_dwell =
        mean_on_dwell * (1.0 - kBurstFraction) / kBurstFraction;

    // Diurnal: sinusoidal rate modulation with one full period over
    // the stream's nominal duration (count/rate seconds of traffic).
    constexpr double kDiurnalAmplitude = 0.8;
    const double period = static_cast<double>(count) / rate;

    auto exponential = [&rng](double r) {
        return -std::log(1.0 - rng.uniform()) / r;
    };

    std::vector<Request> requests;
    requests.reserve(static_cast<std::size_t>(count));
    double clock = 0.0;
    bool burst_on = false;
    double dwell_left = exponential(1.0 / mean_off_dwell);
    for (int i = 0; i < count; ++i) {
        switch (kind) {
          case ArrivalKind::Poisson:
            clock += exponential(rate);
            break;
          case ArrivalKind::Bursty: {
            double gap = exponential(
                burst_on ? base_rate * kBurstMultiplier : base_rate);
            // Walk through state switches the gap straddles, rescaling
            // the residual gap by the rate ratio at each flip.
            while (gap > dwell_left) {
                clock += dwell_left;
                gap = (gap - dwell_left)
                    * (burst_on ? kBurstMultiplier
                                : 1.0 / kBurstMultiplier);
                burst_on = !burst_on;
                dwell_left = exponential(
                    1.0 / (burst_on ? mean_on_dwell : mean_off_dwell));
            }
            dwell_left -= gap;
            clock += gap;
            break;
          }
          case ArrivalKind::Diurnal: {
            // Nonhomogeneous Poisson by local-rate stepping: draw the
            // gap at the instantaneous rate, a good approximation when
            // the modulation period spans many interarrivals.
            const double local = rate
                * (1.0
                   + kDiurnalAmplitude
                       * std::sin(2.0 * 3.14159265358979323846 * clock
                                  / period));
            clock += exponential(std::max(local, 0.05 * rate));
            break;
          }
        }
        Request request;
        request.name = "req" + std::to_string(i);
        request.arrivalSec = clock;
        request.samples =
            sampleRequestMix(defaultRequestMix(), rng).samples;
        requests.push_back(std::move(request));
    }
    return requests;
}

} // namespace mcdla
