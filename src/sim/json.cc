/**
 * @file
 * JSON emission helper implementation.
 */

#include "sim/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mcdla
{

void
jsonEscape(std::ostream &os, std::string_view s)
{
    for (const char ch : s) {
        switch (ch) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\b':
            os << "\\b";
            break;
          case '\f':
            os << "\\f";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                os << buf;
            } else {
                os << ch;
            }
        }
    }
}

void
jsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    jsonEscape(os, s);
    os << '"';
}

std::string
jsonEscaped(std::string_view s)
{
    std::ostringstream os;
    jsonEscape(os, s);
    return os.str();
}

void
jsonNumber(std::ostream &os, double value)
{
    if (std::isnan(value) || std::isinf(value)) {
        os << "null";
        return;
    }
    os << value;
}

} // namespace mcdla
