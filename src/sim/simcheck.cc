/**
 * @file
 * SimCheck engine implementation.
 */

#include "sim/simcheck.hh"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "sim/logging.hh"

namespace mcdla
{
namespace simcheck
{

namespace
{

// The CMake option only moves the default; tests and --simcheck flip
// the toggle at runtime. Set before a run starts — sweeps read it
// concurrently from worker threads.
#ifdef MCDLA_SIMCHECK
bool g_enabled = true;
#else
bool g_enabled = false;
#endif

std::uint64_t g_violations = 0;

std::string
vformat(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string msg(len > 0 ? static_cast<std::size_t>(len) : 0, '\0');
    if (len > 0)
        std::vsnprintf(msg.data(), msg.size() + 1, fmt, args);
    return msg;
}

} // anonymous namespace

bool
enabled()
{
    return g_enabled;
}

void
setEnabled(bool on)
{
    g_enabled = on;
}

std::uint64_t
violationCount()
{
    return g_violations;
}

void
fail(const char *subsystem, Tick tick, const char *fmt, ...)
{
    ++g_violations;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    panic("SimCheck[%s] @ tick %llu: %s", subsystem,
          static_cast<unsigned long long>(tick), msg.c_str());
}

void
failUntimed(const char *subsystem, const char *fmt, ...)
{
    ++g_violations;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vformat(fmt, args);
    va_end(args);
    panic("SimCheck[%s]: %s", subsystem, msg.c_str());
}

} // namespace simcheck
} // namespace mcdla
