/**
 * @file
 * Minimal JSON string-emission helpers shared by every writer in the
 * tree (ResultSet, TraceSink, the bench runners).
 *
 * Lives in sim/ — the bottom layer — so both core/report and sim/trace
 * can use one escaper instead of each growing its own subtly different
 * copy.
 */

#ifndef MCDLA_SIM_JSON_HH
#define MCDLA_SIM_JSON_HH

#include <ostream>
#include <string>
#include <string_view>

namespace mcdla
{

/**
 * Write @p s to @p os with JSON string escaping (no surrounding
 * quotes): backslash, double quote, and the control characters get the
 * usual two-character escapes; any other byte < 0x20 becomes \\u00XX.
 */
void jsonEscape(std::ostream &os, std::string_view s);

/** Write @p s as a complete JSON string literal, quotes included. */
void jsonString(std::ostream &os, std::string_view s);

/** Convenience: escaped copy of @p s (no quotes). */
std::string jsonEscaped(std::string_view s);

/**
 * Write a double as a JSON number. NaN and infinities are not
 * representable in JSON and are emitted as null.
 */
void jsonNumber(std::ostream &os, double value);

} // namespace mcdla

#endif // MCDLA_SIM_JSON_HH
