/**
 * @file
 * SimCheck: the simulation invariant checker.
 *
 * A thin engine behind the conservation-law hooks spread across the
 * stack: EventQueue time monotonicity, Channel byte conservation,
 * MemoryPoolAllocator free-list integrity, PageTable frame accounting,
 * FaultHandler DMA quiescence, and serving request accounting. The
 * hooks are compiled unconditionally and cost one predictable branch
 * while the engine is off; configuring with -DMCDLA_SIMCHECK=ON flips
 * the default of the runtime toggle so a whole build — every bench,
 * test, and the driver — runs checked. Individual runs can opt in via
 * mcdla_sim --simcheck or simcheck::setEnabled().
 *
 * A violation is a simulator bug by definition, so fail() routes
 * through panic(): it aborts with a diagnostic naming the subsystem
 * and the simulated tick ("SimCheck[channel] @ tick 1234: ..."), or
 * throws PanicError under LogConfig::throwOnError so tests can inject
 * violations and assert on the label.
 *
 * This is the safety net the ROADMAP's parallel-DES item requires:
 * the checks prove the accounting the paper's figures rest on holds
 * before and after any event-loop surgery.
 */

#ifndef MCDLA_SIM_SIMCHECK_HH
#define MCDLA_SIM_SIMCHECK_HH

#include <cstdint>

#include "units.hh"

namespace mcdla
{
namespace simcheck
{

/** Whether the invariant engine is active. */
bool enabled();

/** Flip the engine at runtime (before a run starts, not during). */
void setEnabled(bool on);

/**
 * Violations reported so far. Only observable under
 * LogConfig::throwOnError — without it the first fail() aborts.
 */
std::uint64_t violationCount();

/**
 * Report an invariant violation at a simulated tick. Panics with a
 * "SimCheck[subsystem] @ tick N" diagnostic.
 */
[[noreturn]] void fail(const char *subsystem, Tick tick,
                       const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report a violation of a component with no tick context. */
[[noreturn]] void failUntimed(const char *subsystem, const char *fmt,
                              ...)
    __attribute__((format(printf, 2, 3)));

} // namespace simcheck
} // namespace mcdla

#endif // MCDLA_SIM_SIMCHECK_HH
