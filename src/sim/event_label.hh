/**
 * @file
 * Lazily-materialized event labels for the DES hot path.
 *
 * Event labels are pure diagnostics: the profiler's per-label table,
 * the determinism-audit (tick, label) stream hash, and cold warn/panic
 * messages. Building a std::string per scheduled event — especially
 * the `component.suffix` concatenation every SimObject::after does —
 * was one of the kernel's biggest allocation sources, paid even when
 * nothing ever read the label.
 *
 * EventLabel instead captures *how to build* the text: a string
 * literal, or a pointer to a component's stable name plus a literal
 * suffix ("dotted", materializing "name.suffix"). Only labels built
 * from a temporary std::string own heap storage. Materialization
 * (appendTo) happens exactly when a profiler or causal recorder is
 * attached, into a caller-owned scratch buffer that the EventQueue
 * reuses across events — so the default run schedules and executes
 * events without ever touching the allocator for labels.
 *
 * Lifetime: a dotted label borrows the base string. That is the same
 * contract as the event callback capturing `this`: the component must
 * outlive its pending events.
 */

#ifndef MCDLA_SIM_EVENT_LABEL_HH
#define MCDLA_SIM_EVENT_LABEL_HH

#include <string>
#include <utility>

namespace mcdla
{

/** A cheap, possibly-unmaterialized event name (see file comment). */
class EventLabel
{
  public:
    EventLabel() = default;

    /** Static text; not copied (string literals at call sites). */
    EventLabel(const char *literal) // NOLINT: implicit by design
        : _kind(Kind::Literal)
    {
        _literal = literal;
    }

    /** Dynamic text; takes ownership (one allocation, cold paths). */
    EventLabel(std::string text) // NOLINT: implicit by design
        : _kind(Kind::Owned)
    {
        _owned = new std::string(std::move(text));
    }

    /** "base.suffix" without concatenating: borrows @p base, which
        must outlive the event (see lifetime note above). */
    static EventLabel
    dotted(const std::string &base, const char *suffix)
    {
        EventLabel label;
        label._kind = Kind::Dotted;
        label._dotted.base = &base;
        label._dotted.suffix = suffix;
        return label;
    }

    EventLabel(EventLabel &&other) noexcept { moveFrom(other); }

    EventLabel &
    operator=(EventLabel &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    EventLabel(const EventLabel &) = delete;
    EventLabel &operator=(const EventLabel &) = delete;

    ~EventLabel() { destroy(); }

    /** Append the materialized text to @p out (scratch reuse). */
    void
    appendTo(std::string &out) const
    {
        switch (_kind) {
          case Kind::None:
            break;
          case Kind::Literal:
            out += _literal;
            break;
          case Kind::Dotted:
            out += *_dotted.base;
            out += '.';
            out += _dotted.suffix;
            break;
          case Kind::Owned:
            out += *_owned;
            break;
        }
    }

    /** Materialize as a fresh string (cold paths: warnings, panics). */
    std::string
    str() const
    {
        std::string out;
        appendTo(out);
        return out;
    }

  private:
    enum class Kind : unsigned char { None, Literal, Dotted, Owned };

    void
    destroy()
    {
        if (_kind == Kind::Owned)
            delete _owned;
        _kind = Kind::None;
    }

    void
    moveFrom(EventLabel &other) noexcept
    {
        _kind = other._kind;
        switch (_kind) {
          case Kind::None:
            break;
          case Kind::Literal:
            _literal = other._literal;
            break;
          case Kind::Dotted:
            _dotted = other._dotted;
            break;
          case Kind::Owned:
            _owned = other._owned;
            break;
        }
        other._kind = Kind::None;
    }

    struct Dotted
    {
        const std::string *base;
        const char *suffix;
    };

    Kind _kind = Kind::None;
    union
    {
        const char *_literal;
        Dotted _dotted;
        std::string *_owned;
    };
};

} // namespace mcdla

#endif // MCDLA_SIM_EVENT_LABEL_HH
