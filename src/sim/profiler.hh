/**
 * @file
 * Wall-clock profiler for the DES kernel.
 *
 * Attached to an EventQueue (EventQueue::setProfiler), it attributes
 * *host* time — not simulated time — to event labels by timing each
 * callback inside executeHead, and tracks kernel health counters:
 * events/sec, peak heap depth, schedule/deschedule counts. This is the
 * measurement side of the ROADMAP's "make a single simulation fast"
 * item: `mcdla_sim --profile` prints the report, and bench_simcore
 * persists it as BENCH_simcore.json so DES optimizations are judged
 * against a checked-in trajectory.
 */

#ifndef MCDLA_SIM_PROFILER_HH
#define MCDLA_SIM_PROFILER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/** Host-time accounting for one event label. */
struct ProfiledLabel
{
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;

    double
    meanNs() const
    {
        return count > 0
            ? static_cast<double>(wallNs) / static_cast<double>(count)
            : 0.0;
    }
};

/**
 * Collects per-label wall time and kernel counters from an EventQueue.
 * Attach before run(); all counters accumulate until reset().
 */
class DesProfiler
{
  public:
    /// @name EventQueue hooks
    /// @{
    void
    noteSchedule(std::size_t heap_depth)
    {
        ++_schedules;
        if (heap_depth > _peakHeapDepth)
            _peakHeapDepth = heap_depth;
    }

    void noteDeschedule() { ++_deschedules; }

    /** Record one executed callback and its measured host time. */
    void
    noteExecute(const std::string &label, Tick when,
                std::uint64_t wall_ns)
    {
        ++_executed;
        _wallNs += wall_ns;
        // FNV-1a over the (tick, label) stream. Wall time is host
        // noise and deliberately excluded: two runs of the same seed
        // must produce the same hash, which is exactly what
        // `mcdla_sim --audit-determinism` compares.
        std::uint64_t hash = _streamHash;
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (when >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
        for (const char c : label) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
        _streamHash = hash;
        auto &stats =
            _labels[label.empty() ? std::string("(unnamed)") : label];
        ++stats.count;
        stats.wallNs += wall_ns;
    }
    /// @}

    /// @name Aggregates
    /// @{
    std::uint64_t eventsExecuted() const { return _executed; }
    std::uint64_t schedules() const { return _schedules; }
    std::uint64_t deschedules() const { return _deschedules; }
    std::size_t peakHeapDepth() const { return _peakHeapDepth; }
    /** Total host time spent inside event callbacks. */
    double wallSeconds() const { return 1e-9 * static_cast<double>(_wallNs); }

    /** Callbacks executed per host second (0 before any execution). */
    double
    eventsPerSecond() const
    {
        return _wallNs > 0
            ? static_cast<double>(_executed) / wallSeconds()
            : 0.0;
    }

    const std::map<std::string, ProfiledLabel> &
    labels() const
    {
        return _labels;
    }

    /** Labels sorted by descending wall time (ties: by name). */
    std::vector<std::pair<std::string, ProfiledLabel>>
    topLabels(std::size_t limit = 0) const;

    /**
     * FNV-1a digest of the executed (tick, label) event stream. Two
     * runs of the same scenario and seed must agree; the determinism
     * auditor fails when they do not.
     */
    std::uint64_t streamHash() const { return _streamHash; }
    /// @}

    /** Human-readable report (the `--profile` output). */
    void report(std::ostream &os, std::size_t top = 20) const;

    /**
     * Machine-readable report (the `--profile-json` output): one JSON
     * object with the aggregate counters, the stream hash, and every
     * label's count/wall time, sorted by descending wall time.
     */
    void reportJson(std::ostream &os) const;

    void reset();

  private:
    std::uint64_t _executed = 0;
    std::uint64_t _schedules = 0;
    std::uint64_t _deschedules = 0;
    std::uint64_t _wallNs = 0;
    /** FNV-1a offset basis. */
    std::uint64_t _streamHash = 14695981039346656037ULL;
    std::size_t _peakHeapDepth = 0;
    std::map<std::string, ProfiledLabel> _labels;
};

} // namespace mcdla

#endif // MCDLA_SIM_PROFILER_HH
