/**
 * @file
 * Wall-clock profiler for the DES kernel.
 *
 * Attached to an EventQueue (EventQueue::setProfiler), it attributes
 * *host* time — not simulated time — to event labels by timing each
 * callback inside executeHead, and tracks kernel health counters:
 * events/sec, peak heap depth, schedule/deschedule counts. This is the
 * measurement side of the ROADMAP's "make a single simulation fast"
 * item: `mcdla_sim --profile` prints the report, and bench_simcore
 * persists it as BENCH_simcore.json so DES optimizations are judged
 * against a checked-in trajectory.
 */

#ifndef MCDLA_SIM_PROFILER_HH
#define MCDLA_SIM_PROFILER_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/** Host-time accounting for one event label. */
struct ProfiledLabel
{
    std::uint64_t count = 0;
    std::uint64_t wallNs = 0;

    double
    meanNs() const
    {
        return count > 0
            ? static_cast<double>(wallNs) / static_cast<double>(count)
            : 0.0;
    }
};

/**
 * Collects per-label wall time and kernel counters from an EventQueue.
 * Attach before run(); all counters accumulate until reset().
 */
class DesProfiler
{
  public:
    DesProfiler() = default;

    // The label memo points into _labels; drop it when the profiler
    // is copied or moved so it can never reference another instance.
    DesProfiler(const DesProfiler &other) { *this = other; }

    DesProfiler &
    operator=(const DesProfiler &other)
    {
        if (this != &other) {
            copyCounters(other);
            _labels = other._labels;
            _lastKey.clear();
            _last = nullptr;
        }
        return *this;
    }

    DesProfiler(DesProfiler &&other) noexcept
    {
        *this = std::move(other);
    }

    DesProfiler &
    operator=(DesProfiler &&other) noexcept
    {
        if (this != &other) {
            copyCounters(other);
            _labels = std::move(other._labels);
            _lastKey.clear();
            _last = nullptr;
            other._last = nullptr;
        }
        return *this;
    }

    /// @name EventQueue hooks
    /// @{
    void
    noteSchedule(std::size_t heap_depth)
    {
        ++_schedules;
        if (heap_depth > _peakHeapDepth)
            _peakHeapDepth = heap_depth;
    }

    void noteDeschedule() { ++_deschedules; }

    /** Record one executed callback and its measured host time. */
    void
    noteExecute(const std::string &label, Tick when,
                std::uint64_t wall_ns)
    {
        ++_executed;
        _wallNs += wall_ns;
        // FNV-1a over the (tick, label) stream. Wall time is host
        // noise and deliberately excluded: two runs of the same seed
        // must produce the same hash, which is exactly what
        // `mcdla_sim --audit-determinism` compares.
        std::uint64_t hash = _streamHash;
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (when >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
        for (const char c : label) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ULL;
        }
        _streamHash = hash;
        // Consecutive events very often share a label (chunked flows,
        // collective steps): memoize the last map entry so the common
        // case skips the tree lookup. std::map references are stable,
        // so the cached pointer survives later insertions.
        if (_last == nullptr || label != _lastKey) {
            _lastKey = label.empty() ? std::string("(unnamed)") : label;
            _last = &_labels[_lastKey];
            if (label.empty())
                _lastKey.clear(); // memo keys on the *raw* label
        }
        ++_last->count;
        _last->wallNs += wall_ns;
    }
    /// @}

    /// @name Aggregates
    /// @{
    std::uint64_t eventsExecuted() const { return _executed; }
    std::uint64_t schedules() const { return _schedules; }
    std::uint64_t deschedules() const { return _deschedules; }
    std::size_t peakHeapDepth() const { return _peakHeapDepth; }
    /** Total host time spent inside event callbacks. */
    double wallSeconds() const { return 1e-9 * static_cast<double>(_wallNs); }

    /** Callbacks executed per host second (0 before any execution). */
    double
    eventsPerSecond() const
    {
        return _wallNs > 0
            ? static_cast<double>(_executed) / wallSeconds()
            : 0.0;
    }

    const std::map<std::string, ProfiledLabel> &
    labels() const
    {
        return _labels;
    }

    /** Labels sorted by descending wall time (ties: by name). */
    std::vector<std::pair<std::string, ProfiledLabel>>
    topLabels(std::size_t limit = 0) const;

    /**
     * FNV-1a digest of the executed (tick, label) event stream. Two
     * runs of the same scenario and seed must agree; the determinism
     * auditor fails when they do not.
     */
    std::uint64_t streamHash() const { return _streamHash; }
    /// @}

    /** Human-readable report (the `--profile` output). */
    void report(std::ostream &os, std::size_t top = 20) const;

    /**
     * Machine-readable report (the `--profile-json` output): one JSON
     * object with the aggregate counters, the stream hash, and every
     * label's count/wall time, sorted by descending wall time.
     */
    void reportJson(std::ostream &os) const;

    void reset();

  private:
    void
    copyCounters(const DesProfiler &other)
    {
        _executed = other._executed;
        _schedules = other._schedules;
        _deschedules = other._deschedules;
        _wallNs = other._wallNs;
        _streamHash = other._streamHash;
        _peakHeapDepth = other._peakHeapDepth;
    }

    std::uint64_t _executed = 0;
    std::uint64_t _schedules = 0;
    std::uint64_t _deschedules = 0;
    std::uint64_t _wallNs = 0;
    /** FNV-1a offset basis. */
    std::uint64_t _streamHash = 14695981039346656037ULL;
    std::size_t _peakHeapDepth = 0;
    std::map<std::string, ProfiledLabel> _labels;
    /** Memo of the last-touched label entry (see noteExecute). */
    std::string _lastKey;
    ProfiledLabel *_last = nullptr;
};

} // namespace mcdla

#endif // MCDLA_SIM_PROFILER_HH
