/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated system. Events are arbitrary
 * callbacks scheduled at absolute ticks; same-tick events fire in FIFO
 * scheduling order, which keeps component behaviour deterministic without
 * requiring explicit priorities.
 *
 * The hot path is allocation-free: event payloads (an SBO callback, a
 * lazy label, flags) live in a free-list slot pool, the priority
 * structure orders POD (when, seq, slot) keys (see
 * event_queue_backend.hh for the heap and calendar backends), and
 * cancellation is a tombstone flag in the slot — no per-event heap
 * traffic, no hash-set side-tables. Slot state is retired at pop time,
 * so a stale EventId (already executed or cancelled) is detected by a
 * generation check and deschedule() correctly refuses it.
 *
 * The kernel is deliberately minimal: the heavy lifting (bandwidth
 * channels, compute streams, collectives) is built on top of it in the
 * interconnect/device/system libraries.
 */

#ifndef MCDLA_SIM_EVENT_QUEUE_HH
#define MCDLA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event_label.hh"
#include "event_queue_backend.hh"
#include "inline_function.hh"
#include "units.hh"

namespace mcdla
{

class CausalRecorder;
class DesProfiler;

/**
 * Opaque handle identifying a scheduled event (for cancellation).
 * Encodes (generation << 32 | slot); generations start at 1, so no
 * valid handle is ever 0 and handles of retired slots go stale
 * instead of aliasing their successors.
 */
using EventId = std::uint64_t;

/** Sentinel returned for invalid events. */
constexpr EventId invalidEventId = 0;

/**
 * The central event queue of a simulation instance.
 *
 * Typical usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(eq.now() + 100, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    /**
     * Event callback: SBO, one cache line of inline capture. Sized so
     * the hottest simulator event — a channel delivery capturing
     * `this`, a byte count and a Channel::Handler — stays inline; a
     * wrapped std::function (32 bytes) fits too.
     */
    using Callback = InlineFunction<56>;

    EventQueue() : EventQueue(EventQueueBackendKind::Heap) {}
    explicit EventQueue(EventQueueBackendKind kind);
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /**
     * Swap the priority-structure backend. Only legal on a pristine
     * queue (nothing pending, nothing executed, now() == 0): both
     * backends order identically, but swapping mid-run would strand
     * pending items. Lets members constructed as `EventQueue _eq;`
     * apply a configured backend first thing in the owner's body.
     */
    void setBackend(EventQueueBackendKind kind);

    EventQueueBackendKind backend() const { return _backendKind; }

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute firing time; must be >= now(). A tick in
     *             the past is a hard error under SimCheck, and is
     *             otherwise clamped to now() with a warning.
     * @param cb Callback invoked when the event fires.
     * @param label Optional debug label (lazy; see event_label.hh).
     * @return A handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, EventLabel label = {});

    /** Schedule a callback @p delta ticks in the future. */
    EventId
    scheduleAfter(Tick delta, Callback cb, EventLabel label = {})
    {
        return schedule(_now + delta, std::move(cb),
                        std::move(label));
    }

    /**
     * Schedule a *weak* (background) event. Weak events — periodic
     * metric samplers, watchdogs — execute normally while ordinary
     * events exist, but do not keep the simulation alive: the moment
     * only weak events remain pending, run()/step() discard them
     * without executing and stop, leaving now() at the last ordinary
     * event. This lets observers self-reschedule unconditionally
     * without wedging the drain or distorting makespans.
     */
    EventId scheduleWeak(Tick when, Callback cb, EventLabel label = {});

    /**
     * Cancel a pending event.
     *
     * @param id Handle returned by schedule().
     * @return true if the event was pending and is now cancelled;
     *         false for stale handles (already executed or cancelled).
     */
    bool deschedule(EventId id);

    /** Whether any events remain pending (weak ones included). */
    bool empty() const { return _live == 0; }

    /** Number of pending (non-cancelled) events, weak ones included. */
    std::size_t pendingCount() const { return _live; }

    /** Number of pending weak (background) events. */
    std::size_t weakCount() const { return _weakLive; }

    /**
     * Run until the queue drains.
     *
     * @return The number of events executed.
     */
    std::uint64_t run();

    /**
     * Run until simulated time would exceed @p limit; events scheduled at
     * exactly @p limit still execute.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Execute only the next pending event, if any. */
    bool step();

    /** Total events executed since construction or reset(). */
    std::uint64_t executedCount() const { return _executed; }

    /**
     * Size of the payload slot pool (high-water mark of concurrently
     * pending events). Slots are recycled through a free list, so this
     * stays flat across reset()s and arbitrarily long drains — the
     * regression test for the pool pins exactly that.
     */
    std::size_t poolSlots() const { return _slotCount; }

    /**
     * Attach a wall-clock profiler (nullptr detaches). While attached,
     * executeHead times every callback and attributes the host time to
     * the event's label; schedule/deschedule counts and peak heap
     * depth are tracked too. Off by default — the hot path pays only a
     * branch when no profiler is attached.
     */
    void setProfiler(DesProfiler *profiler) { _profiler = profiler; }

    DesProfiler *profiler() const { return _profiler; }

    /**
     * Attach a causal (provenance) recorder (nullptr detaches). While
     * attached, every schedule records its parent — the event
     * executing at the time — plus the wait-edge tags of the active
     * CausalScope; execution is otherwise untouched, so the recorder
     * never perturbs event order or the determinism-audit hash. Off
     * by default — one branch per schedule/execute when detached.
     */
    void
    setCausalRecorder(CausalRecorder *recorder)
    {
        _causal = recorder;
    }

    CausalRecorder *causalRecorder() const { return _causal; }

    /** Clear all pending events and rewind time to zero. */
    void reset();

  private:
    /** Pooled event payload; keys live in the backend. */
    struct Slot
    {
        Callback cb;
        EventLabel label;
        /** CausalRecorder node index; -1 = not recorded. */
        std::int64_t causalNode = -1;
        /** Bumped on release; stale EventIds fail the match. */
        std::uint32_t gen = 1;
        bool weak = false;
        bool cancelled = false;
        bool allocated = false;
    };

    /** Slots live in fixed-size chunks, so growing the pool never
        relocates live payloads (a realloc would move every pending
        callback through its type-erased move op). */
    static constexpr std::size_t kSlotChunkShift = 12;
    static constexpr std::size_t kSlotChunkSize = 1u << kSlotChunkShift;

    Slot &
    slotAt(std::uint32_t index)
    {
        return _slotChunks[index >> kSlotChunkShift]
                          [index & (kSlotChunkSize - 1)];
    }

    static std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu);
    }

    static std::uint32_t
    genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    static EventId
    makeId(std::uint32_t gen, std::uint32_t slot)
    {
        return (static_cast<EventId>(gen) << 32)
               | static_cast<EventId>(slot);
    }

    EventId scheduleEntry(Tick when, Callback cb, EventLabel label,
                          bool weak);

    std::uint32_t allocSlot();
    /** Destroy the payload, bump the generation, recycle the slot. */
    void releaseSlot(std::uint32_t index);

    /** Pop/execute one item. Precondition: live, non-cancelled. */
    void executeItem(const EventItem &item);

    /** Drop every remaining (weak) entry without executing it. */
    void discardPending();

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    std::uint64_t _executed = 0;
    std::size_t _live = 0;
    std::size_t _weakLive = 0;
    EventQueueBackendKind _backendKind;
    std::unique_ptr<EventQueueBackend> _backend;
    std::vector<std::unique_ptr<Slot[]>> _slotChunks;
    std::size_t _slotCount = 0;
    std::vector<std::uint32_t> _freeSlots;
    /** Label materialization scratch for the schedule path (causal)
        and the execute path (profiler); separate buffers because a
        callback schedules while its own label is still in flight. */
    std::string _schedLabelScratch;
    std::string _execLabelScratch;
    DesProfiler *_profiler = nullptr;
    CausalRecorder *_causal = nullptr;
};

} // namespace mcdla

#endif // MCDLA_SIM_EVENT_QUEUE_HH
