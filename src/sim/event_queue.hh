/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives one simulated system. Events are arbitrary
 * callbacks scheduled at absolute ticks; same-tick events fire in FIFO
 * scheduling order, which keeps component behaviour deterministic without
 * requiring explicit priorities.
 *
 * The kernel is deliberately minimal: the heavy lifting (bandwidth
 * channels, compute streams, collectives) is built on top of it in the
 * interconnect/device/system libraries.
 */

#ifndef MCDLA_SIM_EVENT_QUEUE_HH
#define MCDLA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "units.hh"

namespace mcdla
{

class CausalRecorder;
class DesProfiler;

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/** Sentinel returned for invalid events. */
constexpr EventId invalidEventId = 0;

/**
 * The central event queue of a simulation instance.
 *
 * Typical usage:
 * @code
 *   EventQueue eq;
 *   eq.schedule(eq.now() + 100, [&]{ ... });
 *   eq.run();
 * @endcode
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute firing time; must be >= now(). A tick in
     *             the past is a hard error under SimCheck, and is
     *             otherwise clamped to now() with a warning.
     * @param cb Callback invoked when the event fires.
     * @param name Optional debug label.
     * @return A handle usable with deschedule().
     */
    EventId schedule(Tick when, Callback cb, std::string name = {});

    /** Schedule a callback @p delta ticks in the future. */
    EventId
    scheduleAfter(Tick delta, Callback cb, std::string name = {})
    {
        return schedule(_now + delta, std::move(cb), std::move(name));
    }

    /**
     * Schedule a *weak* (background) event. Weak events — periodic
     * metric samplers, watchdogs — execute normally while ordinary
     * events exist, but do not keep the simulation alive: the moment
     * only weak events remain pending, run()/step() discard them
     * without executing and stop, leaving now() at the last ordinary
     * event. This lets observers self-reschedule unconditionally
     * without wedging the drain or distorting makespans.
     */
    EventId scheduleWeak(Tick when, Callback cb, std::string name = {});

    /**
     * Cancel a pending event.
     *
     * @param id Handle returned by schedule().
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** Whether any events remain pending (weak ones included). */
    bool empty() const { return _live == 0; }

    /** Number of pending (non-cancelled) events, weak ones included. */
    std::size_t pendingCount() const { return _live; }

    /** Number of pending weak (background) events. */
    std::size_t weakCount() const { return _weakLive; }

    /**
     * Run until the queue drains.
     *
     * @return The number of events executed.
     */
    std::uint64_t run();

    /**
     * Run until simulated time would exceed @p limit; events scheduled at
     * exactly @p limit still execute.
     *
     * @return The number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Execute only the next pending event, if any. */
    bool step();

    /** Total events executed since construction or reset(). */
    std::uint64_t executedCount() const { return _executed; }

    /**
     * Attach a wall-clock profiler (nullptr detaches). While attached,
     * executeHead times every callback and attributes the host time to
     * the event's label; schedule/deschedule counts and peak heap
     * depth are tracked too. Off by default — the hot path pays only a
     * branch when no profiler is attached.
     */
    void setProfiler(DesProfiler *profiler) { _profiler = profiler; }

    DesProfiler *profiler() const { return _profiler; }

    /**
     * Attach a causal (provenance) recorder (nullptr detaches). While
     * attached, every schedule records its parent — the event
     * executing at the time — plus the wait-edge tags of the active
     * CausalScope; execution is otherwise untouched, so the recorder
     * never perturbs event order or the determinism-audit hash. Off
     * by default — one branch per schedule/execute when detached.
     */
    void
    setCausalRecorder(CausalRecorder *recorder)
    {
        _causal = recorder;
    }

    CausalRecorder *causalRecorder() const { return _causal; }

    /** Clear all pending events and rewind time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        Callback cb;
        std::string name;
        bool weak = false;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Pop/execute the head entry. Precondition: a live entry exists. */
    void executeHead();

    EventId scheduleEntry(Tick when, Callback cb, std::string name,
                          bool weak);

    /** Drop every remaining (weak) entry without executing it. */
    void discardPending();

    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
    EventId _nextId = 1;
    std::uint64_t _executed = 0;
    std::size_t _live = 0;
    std::size_t _weakLive = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<EventId> _cancelled;
    std::unordered_set<EventId> _weakIds;
    DesProfiler *_profiler = nullptr;
    CausalRecorder *_causal = nullptr;
};

} // namespace mcdla

#endif // MCDLA_SIM_EVENT_QUEUE_HH
