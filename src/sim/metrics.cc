/**
 * @file
 * MetricRegistry implementation.
 */

#include "sim/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcdla
{

void
MetricRegistry::add(const std::string &name, Sampler sampler)
{
    if (!sampler)
        panic("metric '%s' registered with empty sampler", name.c_str());
    if (has(name))
        panic("metric '%s' registered twice", name.c_str());
    if (!_samples.empty())
        panic("metric '%s' registered after sampling started",
              name.c_str());
    _names.push_back(name);
    _samplers.push_back(std::move(sampler));
}

bool
MetricRegistry::has(const std::string &name) const
{
    return std::find(_names.begin(), _names.end(), name) != _names.end();
}

void
MetricRegistry::sample(EventQueue &eq)
{
    Sample row;
    row.at = eq.now();
    row.values.reserve(_samplers.size());
    for (std::size_t i = 0; i < _samplers.size(); ++i) {
        const double v = _samplers[i]();
        row.values.push_back(v);
        if (_trace)
            _trace->addCounter("metrics", _names[i], row.at, v);
    }
    _samples.push_back(std::move(row));
}

void
MetricRegistry::scheduleNext(EventQueue &eq)
{
    // Weak events never keep the simulation alive: the kernel discards
    // the pending sampler the moment only background work remains, so
    // sampling cannot wedge run() or stretch a run's makespan.
    eq.scheduleWeak(
        eq.now() + _period,
        [this, &eq] {
            sample(eq);
            scheduleNext(eq);
        },
        "metrics.sample");
}

void
MetricRegistry::start(EventQueue &eq)
{
    if (empty())
        return;
    sample(eq);
    scheduleNext(eq);
}

} // namespace mcdla
