/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include <chrono>

#include "causal.hh"
#include "logging.hh"
#include "profiler.hh"
#include "simcheck.hh"

namespace mcdla
{

EventId
EventQueue::scheduleEntry(Tick when, Callback cb, std::string name,
                          bool weak)
{
    if (when < _now) {
        // Scheduling in the past is a component bug: under SimCheck it
        // is a hard error; otherwise the event is clamped to now()
        // (with a warning) so it at least fires in scheduling order
        // instead of silently reordering history.
        if (simcheck::enabled())
            simcheck::fail("event-queue", _now,
                           "scheduling event '%s' at tick %llu before "
                           "now",
                           name.c_str(),
                           static_cast<unsigned long long>(when));
        warn("scheduling event '%s' at tick %llu before now (%llu); "
             "clamping to now",
             name.c_str(), static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(_now));
        when = _now;
    }
    if (!cb)
        panic("scheduling event '%s' with empty callback", name.c_str());
    const EventId id = _nextId++;
    if (_causal)
        _causal->noteSchedule(id, when, _now, name, weak);
    _heap.push(Entry{when, _nextSeq++, id, std::move(cb),
                     std::move(name), weak});
    ++_live;
    if (weak) {
        ++_weakLive;
        _weakIds.insert(id);
    }
    if (_profiler)
        _profiler->noteSchedule(_heap.size());
    return id;
}

EventId
EventQueue::schedule(Tick when, Callback cb, std::string name)
{
    return scheduleEntry(when, std::move(cb), std::move(name), false);
}

EventId
EventQueue::scheduleWeak(Tick when, Callback cb, std::string name)
{
    return scheduleEntry(when, std::move(cb), std::move(name), true);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    // Lazy deletion: remember the id; skip the entry when popped. The heap
    // entry itself is unreachable from here without a full rebuild.
    if (_cancelled.insert(id).second && _live > 0) {
        --_live;
        if (auto wit = _weakIds.find(id); wit != _weakIds.end()) {
            _weakIds.erase(wit);
            --_weakLive;
        }
        if (_profiler)
            _profiler->noteDeschedule();
        if (_causal)
            _causal->noteDeschedule(id);
        return true;
    }
    return false;
}

void
EventQueue::executeHead()
{
    Entry entry = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    if (simcheck::enabled() && entry.when < _now)
        simcheck::fail("event-queue", _now,
                       "event '%s' fires at tick %llu, in the past "
                       "(time must be monotonic)",
                       entry.name.c_str(),
                       static_cast<unsigned long long>(entry.when));
    _now = entry.when;
    ++_executed;
    if (_causal)
        _causal->noteExecute(entry.id, _now);
    if (_profiler) {
        const auto t0 = std::chrono::steady_clock::now();
        entry.cb();
        const auto t1 = std::chrono::steady_clock::now();
        _profiler->noteExecute(
            entry.name, _now,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count()));
    } else {
        entry.cb();
    }
    if (_causal)
        _causal->noteExecuteEnd();
}

void
EventQueue::discardPending()
{
    _heap = decltype(_heap)();
    _cancelled.clear();
    _weakIds.clear();
    _live = 0;
    _weakLive = 0;
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        const Entry &head = _heap.top();
        if (auto it = _cancelled.find(head.id); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        if (_live == _weakLive) {
            // Only weak (background) events remain: the simulation
            // proper is over. Drop them without advancing time.
            discardPending();
            return false;
        }
        --_live;
        if (head.weak) {
            _weakIds.erase(head.id);
            --_weakLive;
        }
        executeHead();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!_heap.empty()) {
        const Entry &head = _heap.top();
        if (auto it = _cancelled.find(head.id); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        if (_live == _weakLive) {
            discardPending();
            break;
        }
        if (head.when > limit)
            break;
        --_live;
        if (head.weak) {
            _weakIds.erase(head.id);
            --_weakLive;
        }
        executeHead();
        ++n;
    }
    if (_now < limit)
        _now = limit;
    return n;
}

void
EventQueue::reset()
{
    _heap = decltype(_heap)();
    _cancelled.clear();
    _weakIds.clear();
    _now = 0;
    _nextSeq = 0;
    _executed = 0;
    _live = 0;
    _weakLive = 0;
}

} // namespace mcdla
