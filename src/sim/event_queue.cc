/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include "causal.hh"
#include "cycle_timer.hh"
#include "logging.hh"
#include "profiler.hh"
#include "simcheck.hh"

namespace mcdla
{

EventQueue::EventQueue(EventQueueBackendKind kind)
    : _backendKind(kind), _backend(makeEventQueueBackend(kind))
{
}

EventQueue::~EventQueue() = default;

void
EventQueue::setBackend(EventQueueBackendKind kind)
{
    if (!_backend->empty() || _executed != 0 || _now != 0
        || _live != 0)
        panic("EventQueue::setBackend(%s) on a non-pristine queue "
              "(%zu pending, %llu executed, now=%llu)",
              eventQueueBackendToken(kind), _live,
              static_cast<unsigned long long>(_executed),
              static_cast<unsigned long long>(_now));
    _backendKind = kind;
    _backend = makeEventQueueBackend(kind);
}

EventId
EventQueue::scheduleEntry(Tick when, Callback cb, EventLabel label,
                          bool weak)
{
    if (when < _now) {
        // Scheduling in the past is a component bug: under SimCheck it
        // is a hard error; otherwise the event is clamped to now()
        // (with a warning) so it at least fires in scheduling order
        // instead of silently reordering history.
        if (simcheck::enabled())
            simcheck::fail("event-queue", _now,
                           "scheduling event '%s' at tick %llu before "
                           "now",
                           label.str().c_str(),
                           static_cast<unsigned long long>(when));
        warn("scheduling event '%s' at tick %llu before now (%llu); "
             "clamping to now",
             label.str().c_str(),
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(_now));
        when = _now;
    }
    if (!cb)
        panic("scheduling event '%s' with empty callback",
              label.str().c_str());
    const std::uint32_t slot_index = allocSlot();
    Slot &slot = slotAt(slot_index);
    slot.cb = std::move(cb);
    slot.weak = weak;
    slot.cancelled = false;
    slot.allocated = true;
    slot.causalNode = -1;
    if (_causal) {
        _schedLabelScratch.clear();
        label.appendTo(_schedLabelScratch);
        slot.causalNode = _causal->noteSchedule(_now, _schedLabelScratch,
                                                weak);
    }
    slot.label = std::move(label);
    _backend->push(EventItem{when, _nextSeq++, slot_index});
    ++_live;
    if (weak)
        ++_weakLive;
    if (_profiler)
        _profiler->noteSchedule(_backend->size());
    return makeId(slot.gen, slot_index);
}

EventId
EventQueue::schedule(Tick when, Callback cb, EventLabel label)
{
    return scheduleEntry(when, std::move(cb), std::move(label), false);
}

EventId
EventQueue::scheduleWeak(Tick when, Callback cb, EventLabel label)
{
    return scheduleEntry(when, std::move(cb), std::move(label), true);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (!_freeSlots.empty()) {
        const std::uint32_t index = _freeSlots.back();
        _freeSlots.pop_back();
        return index;
    }
    if (_slotCount == _slotChunks.size() * kSlotChunkSize)
        _slotChunks.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    return static_cast<std::uint32_t>(_slotCount++);
}

void
EventQueue::releaseSlot(std::uint32_t index)
{
    Slot &slot = slotAt(index);
    slot.cb = Callback();
    slot.label = EventLabel();
    slot.causalNode = -1;
    slot.weak = false;
    slot.cancelled = false;
    slot.allocated = false;
    if (++slot.gen == 0)
        slot.gen = 1; // Skip 0 on wrap: ids of gen 0 are invalid.
    _freeSlots.push_back(index);
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    const std::uint32_t slot_index = slotOf(id);
    const std::uint32_t gen = genOf(id);
    if (slot_index >= _slotCount)
        return false;
    Slot &slot = slotAt(slot_index);
    // A stale handle — the event already executed (slot retired at pop
    // time, generation bumped) or was already cancelled — is refused
    // without touching any state.
    if (!slot.allocated || slot.gen != gen || slot.cancelled)
        return false;
    // Tombstone: the backend item stays where it is and is discarded
    // when popped; the payload is destroyed right here so captures
    // (and the slot's share of pool memory) free immediately.
    slot.cancelled = true;
    slot.cb = Callback();
    slot.label = EventLabel();
    --_live;
    if (slot.weak)
        --_weakLive;
    if (_profiler)
        _profiler->noteDeschedule();
    if (_causal)
        _causal->noteDeschedule(slot.causalNode);
    return true;
}

void
EventQueue::executeItem(const EventItem &item)
{
    Slot &slot = slotAt(item.slot);
    if (simcheck::enabled() && item.when < _now)
        simcheck::fail("event-queue", _now,
                       "event '%s' fires at tick %llu, in the past "
                       "(time must be monotonic)",
                       slot.label.str().c_str(),
                       static_cast<unsigned long long>(item.when));
    _now = item.when;
    ++_executed;
    // Move the payload out and retire the slot *before* invoking the
    // callback: the callback is free to schedule (growing the pool)
    // or to deschedule its own now-stale id (refused via the bumped
    // generation).
    Callback cb = std::move(slot.cb);
    const std::int64_t causal_node = slot.causalNode;
    if (_profiler) {
        _execLabelScratch.clear();
        slot.label.appendTo(_execLabelScratch);
    }
    releaseSlot(item.slot);
    if (_causal)
        _causal->noteExecute(causal_node, _now);
    if (_profiler) {
        const std::uint64_t t0 = CycleTimer::now();
        cb();
        const std::uint64_t t1 = CycleTimer::now();
        _profiler->noteExecute(_execLabelScratch, _now,
                               CycleTimer::deltaToNs(t1 - t0));
    } else {
        cb();
    }
    if (_causal)
        _causal->noteExecuteEnd();
}

void
EventQueue::discardPending()
{
    _backend->clear();
    for (std::size_t i = 0; i < _slotCount; ++i)
        if (slotAt(static_cast<std::uint32_t>(i)).allocated)
            releaseSlot(static_cast<std::uint32_t>(i));
    _live = 0;
    _weakLive = 0;
}

bool
EventQueue::step()
{
    while (!_backend->empty()) {
        const EventItem head = _backend->peek();
        if (slotAt(head.slot).cancelled) {
            _backend->pop();
            releaseSlot(head.slot);
            continue;
        }
        if (_live == _weakLive) {
            // Only weak (background) events remain: the simulation
            // proper is over. Drop them without advancing time.
            discardPending();
            return false;
        }
        _backend->pop();
        --_live;
        if (slotAt(head.slot).weak)
            --_weakLive;
        executeItem(head);
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!_backend->empty()) {
        const EventItem head = _backend->peek();
        if (slotAt(head.slot).cancelled) {
            _backend->pop();
            releaseSlot(head.slot);
            continue;
        }
        if (_live == _weakLive) {
            discardPending();
            break;
        }
        if (head.when > limit)
            break;
        _backend->pop();
        --_live;
        if (slotAt(head.slot).weak)
            --_weakLive;
        executeItem(head);
        ++n;
    }
    if (_now < limit)
        _now = limit;
    return n;
}

void
EventQueue::reset()
{
    discardPending();
    _now = 0;
    _nextSeq = 0;
    _executed = 0;
}

} // namespace mcdla
