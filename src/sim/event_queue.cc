/**
 * @file
 * EventQueue implementation.
 */

#include "event_queue.hh"

#include "logging.hh"

namespace mcdla
{

EventId
EventQueue::schedule(Tick when, Callback cb, std::string name)
{
    if (when < _now) {
        panic("scheduling event '%s' at tick %llu before now (%llu)",
              name.c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    if (!cb)
        panic("scheduling event '%s' with empty callback", name.c_str());
    const EventId id = _nextId++;
    _heap.push(Entry{when, _nextSeq++, id, std::move(cb), std::move(name)});
    ++_live;
    return id;
}

bool
EventQueue::deschedule(EventId id)
{
    if (id == invalidEventId)
        return false;
    // Lazy deletion: remember the id; skip the entry when popped. The heap
    // entry itself is unreachable from here without a full rebuild.
    if (_cancelled.insert(id).second && _live > 0) {
        --_live;
        return true;
    }
    return false;
}

void
EventQueue::executeHead()
{
    Entry entry = std::move(const_cast<Entry &>(_heap.top()));
    _heap.pop();
    _now = entry.when;
    ++_executed;
    entry.cb();
}

bool
EventQueue::step()
{
    while (!_heap.empty()) {
        const Entry &head = _heap.top();
        if (auto it = _cancelled.find(head.id); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        --_live;
        executeHead();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step())
        ++n;
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t n = 0;
    while (!_heap.empty()) {
        const Entry &head = _heap.top();
        if (auto it = _cancelled.find(head.id); it != _cancelled.end()) {
            _cancelled.erase(it);
            _heap.pop();
            continue;
        }
        if (head.when > limit)
            break;
        --_live;
        executeHead();
        ++n;
    }
    if (_now < limit)
        _now = limit;
    return n;
}

void
EventQueue::reset()
{
    _heap = decltype(_heap)();
    _cancelled.clear();
    _now = 0;
    _nextSeq = 0;
    _executed = 0;
    _live = 0;
}

} // namespace mcdla
