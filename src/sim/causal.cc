/**
 * @file
 * CausalRecorder / CausalAnalysis implementation.
 */

#include "sim/causal.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/report.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/simcheck.hh"
#include "sim/trace.hh"

namespace mcdla
{

const char *
waitKindToken(WaitKind kind)
{
    switch (kind) {
      case WaitKind::Control: return "control";
      case WaitKind::Compute: return "compute";
      case WaitKind::Collective: return "collective_step";
      case WaitKind::ChanXfer: return "chan_xfer";
      case WaitKind::ChanQueue: return "chan_queue";
      case WaitKind::Wire: return "wire";
      case WaitKind::Dma: return "dma";
      case WaitKind::Sched: return "sched";
      case WaitKind::Batch: return "batch";
    }
    return "?";
}

const char *
causalCtxToken(CausalCtx ctx)
{
    switch (ctx) {
      case CausalCtx::None: return "main";
      case CausalCtx::Collective: return "collective";
      case CausalCtx::P2p: return "p2p";
      case CausalCtx::Dma: return "dma";
      case CausalCtx::Cluster: return "cluster";
      case CausalCtx::Serving: return "serving";
    }
    return "?";
}

// ---------------------------------------------------------------------
// CausalRecorder
// ---------------------------------------------------------------------

std::int64_t
CausalRecorder::noteSchedule(Tick now, const std::string &name,
                             bool weak)
{
    Node node;
    node.sched = now;
    node.parent = _current;
    node.weak = weak;
    if (_scope.hasKind)
        node.kind = _scope.kind;
    node.ctx = ctxFromRaw(currentCtxRaw());
    node.resource = _scope.resource;
    node.label = internLabel(name);
    _nodes.push_back(node);
    return static_cast<std::int64_t>(_nodes.size() - 1);
}

std::uint16_t
CausalRecorder::internResource(const std::string &name)
{
    if (_resourceNames.empty())
        _resourceNames.emplace_back();
    auto it = _resourceIds.find(name);
    if (it != _resourceIds.end())
        return it->second;
    if (_resourceNames.size() >= 65535)
        return 0; // Out of ids: degrade to "no resource".
    const auto id = static_cast<std::uint16_t>(_resourceNames.size());
    _resourceNames.push_back(name);
    _resourceIds.emplace(name, id);
    return id;
}

std::uint32_t
CausalRecorder::internLabel(const std::string &name)
{
    if (_labelNames.empty())
        _labelNames.emplace_back();
    auto it = _labelIds.find(name);
    if (it != _labelIds.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(_labelNames.size());
    _labelNames.push_back(name);
    _labelIds.emplace(name, id);
    return id;
}

const std::string &
CausalRecorder::resourceName(std::uint16_t id) const
{
    static const std::string empty;
    return id < _resourceNames.size() ? _resourceNames[id] : empty;
}

const std::string &
CausalRecorder::labelName(std::uint32_t id) const
{
    static const std::string empty;
    return id < _labelNames.size() ? _labelNames[id] : empty;
}

void
CausalRecorder::simcheckVerify() const
{
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < _nodes.size(); ++i) {
        const Node &node = _nodes[i];
        if (node.cancelled)
            ++cancelled;
        if (!node.executed)
            continue;
        ++executed;
        if (node.fire < node.sched)
            simcheck::fail("causal", node.fire,
                           "node %zu fired before it was scheduled",
                           i);
        if (node.parent < 0)
            continue;
        if (static_cast<std::size_t>(node.parent) >= i)
            simcheck::fail("causal", node.fire,
                           "node %zu has a parent (%lld) that was "
                           "scheduled after it",
                           i, static_cast<long long>(node.parent));
        const Node &parent =
            _nodes[static_cast<std::size_t>(node.parent)];
        if (!parent.executed)
            simcheck::fail("causal", node.fire,
                           "node %zu executed but its parent %lld "
                           "never did",
                           i, static_cast<long long>(node.parent));
        if (parent.fire != node.sched)
            simcheck::fail("causal", node.fire,
                           "node %zu was scheduled at tick %llu but "
                           "its parent fired at tick %llu",
                           i,
                           static_cast<unsigned long long>(node.sched),
                           static_cast<unsigned long long>(
                               parent.fire));
        if (parent.fire > node.fire)
            simcheck::fail("causal", node.fire,
                           "edge %lld -> %zu runs backwards in time",
                           static_cast<long long>(node.parent), i);
    }
    if (executed != _executed || cancelled != _cancelled)
        simcheck::fail("causal", 0,
                       "node ledger drift: counted %llu executed / "
                       "%llu cancelled, recorded %llu / %llu",
                       static_cast<unsigned long long>(executed),
                       static_cast<unsigned long long>(cancelled),
                       static_cast<unsigned long long>(_executed),
                       static_cast<unsigned long long>(_cancelled));
}

void
CausalRecorder::reset()
{
    _nodes.clear();
    _current = -1;
    _executed = 0;
    _cancelled = 0;
    _resourceNames.clear();
    _labelNames.clear();
    _resourceIds.clear();
    _labelIds.clear();
}

// ---------------------------------------------------------------------
// What-if spec parsing
// ---------------------------------------------------------------------

std::vector<WhatIfChange>
parseWhatIfSpec(const std::string &spec)
{
    std::vector<WhatIfChange> changes;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        WhatIfChange change;
        const std::size_t colon = item.find(':');
        if (colon == std::string::npos) {
            change.cls = item;
        } else {
            change.cls = item.substr(0, colon);
            const std::string factor = item.substr(colon + 1);
            char *parse_end = nullptr;
            change.factor = std::strtod(factor.c_str(), &parse_end);
            if (factor.empty() || parse_end == nullptr
                || *parse_end != '\0')
                fatal("--whatif: bad factor '%s' in '%s' (want "
                      "class:factor, e.g. compute:0.5)",
                      factor.c_str(), item.c_str());
            if (change.factor <= 0.0)
                fatal("--whatif: factor must be positive (got %g in "
                      "'%s')",
                      change.factor, item.c_str());
        }
        if (change.cls.empty())
            fatal("--whatif: empty class in '%s'", spec.c_str());
        changes.push_back(std::move(change));
    }
    if (changes.empty())
        fatal("--whatif: empty spec (want class:factor"
              "[,class:factor...])");
    return changes;
}

namespace
{

/** A --whatif class resolved against a recorded run. */
struct ResolvedClass
{
    enum class Mode
    {
        Kind,     ///< One WaitKind.
        Chan,     ///< ChanXfer or ChanQueue (channel occupancy).
        Ctx,      ///< A CausalCtx, excluding Wire edges.
        Resource, ///< One interned resource, excluding Wire edges.
    };
    Mode mode = Mode::Kind;
    WaitKind kind = WaitKind::Control;
    CausalCtx ctx = CausalCtx::None;
    std::uint16_t resource = 0;
    double factor = 1.0;

    bool
    matches(const CausalRecorder::Node &node) const
    {
        switch (mode) {
          case Mode::Kind:
            return node.kind == kind;
          case Mode::Chan:
            return node.kind == WaitKind::ChanXfer
                || node.kind == WaitKind::ChanQueue;
          case Mode::Ctx:
            return node.ctx == ctx && node.kind != WaitKind::Wire;
          case Mode::Resource:
            return node.resource == resource
                && node.kind != WaitKind::Wire;
        }
        return false;
    }
};

/** Kind/ctx tokens accepted as --whatif classes. */
const std::pair<const char *, WaitKind> kKindClasses[] = {
    {"compute", WaitKind::Compute}, {"wire", WaitKind::Wire},
    {"sched", WaitKind::Sched},     {"batch", WaitKind::Batch},
    {"control", WaitKind::Control},
};
const std::pair<const char *, CausalCtx> kCtxClasses[] = {
    {"collective", CausalCtx::Collective},
    {"p2p", CausalCtx::P2p},
    {"dma", CausalCtx::Dma},
    {"cluster", CausalCtx::Cluster},
    {"serving", CausalCtx::Serving},
};

bool
resolveClass(const CausalRecorder &rec, const WhatIfChange &change,
             ResolvedClass &out)
{
    out.factor = change.factor;
    if (change.cls == "chan") {
        out.mode = ResolvedClass::Mode::Chan;
        return true;
    }
    for (const auto &kc : kKindClasses) {
        if (change.cls == kc.first) {
            out.mode = ResolvedClass::Mode::Kind;
            out.kind = kc.second;
            return true;
        }
    }
    for (const auto &cc : kCtxClasses) {
        if (change.cls == cc.first) {
            out.mode = ResolvedClass::Mode::Ctx;
            out.ctx = cc.second;
            return true;
        }
    }
    const std::vector<std::string> &resources = rec.resourceNames();
    for (std::size_t i = 1; i < resources.size(); ++i) {
        if (resources[i] == change.cls) {
            out.mode = ResolvedClass::Mode::Resource;
            out.resource = static_cast<std::uint16_t>(i);
            return true;
        }
    }
    return false;
}

std::string
millis(Tick t)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  ticksToSeconds(t) * 1e3);
    return buf;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// CausalAnalysis
// ---------------------------------------------------------------------

CausalAnalysis::CausalAnalysis(const CausalRecorder &rec) : _rec(rec)
{
    if (simcheck::enabled())
        _rec.simcheckVerify();
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    _resourceTicks.assign(std::max<std::size_t>(
                              _rec.resourceNames().size(), 1),
                          0);
    _resourceEdges.assign(_resourceTicks.size(), 0);

    // The makespan-defining event: last executed non-weak node
    // (same-tick ties go to the later-scheduled one, matching FIFO
    // execution order).
    std::int64_t final_idx = -1;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const CausalRecorder::Node &node = nodes[i];
        if (!node.executed || node.weak)
            continue;
        if (final_idx < 0
            || node.fire
                >= nodes[static_cast<std::size_t>(final_idx)].fire)
            final_idx = static_cast<std::int64_t>(i);
    }
    if (final_idx < 0)
        return;
    _makespan = nodes[static_cast<std::size_t>(final_idx)].fire;

    for (std::int64_t idx = final_idx; idx >= 0;
         idx = nodes[static_cast<std::size_t>(idx)].parent)
        _path.push_back(static_cast<std::size_t>(idx));
    std::reverse(_path.begin(), _path.end());
    _origin = nodes[_path.front()].sched;

    for (const std::size_t idx : _path) {
        const CausalRecorder::Node &node = nodes[idx];
        const Tick lat = edgeLatency(idx);
        _kindTicks[static_cast<std::size_t>(node.kind)] += lat;
        ++_kindEdges[static_cast<std::size_t>(node.kind)];
        _ctxTicks[static_cast<std::size_t>(node.ctx)] += lat;
        ++_ctxEdges[static_cast<std::size_t>(node.ctx)];
        if (node.resource != 0
            && node.resource < _resourceTicks.size()) {
            _resourceTicks[node.resource] += lat;
            ++_resourceEdges[node.resource];
        }
    }
}

Tick
CausalAnalysis::edgeLatency(std::size_t node_index) const
{
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    const CausalRecorder::Node &node = nodes[node_index];
    if (node.parent < 0)
        return node.fire - node.sched;
    return node.fire
        - nodes[static_cast<std::size_t>(node.parent)].fire;
}

ResultSet
CausalAnalysis::criticalPathTable() const
{
    ResultSet table({"step", "tick_ms", "wait_ms", "kind",
                     "subsystem", "resource", "label"});
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    std::int64_t step = 0;
    if (_origin > 0) {
        table.addRow({step++, ticksToSeconds(_origin) * 1e3,
                      ticksToSeconds(_origin) * 1e3,
                      std::string("origin"), std::string("origin"),
                      std::string(), std::string()});
    }
    for (const std::size_t idx : _path) {
        const CausalRecorder::Node &node = nodes[idx];
        table.addRow({step++, ticksToSeconds(node.fire) * 1e3,
                      ticksToSeconds(edgeLatency(idx)) * 1e3,
                      std::string(waitKindToken(node.kind)),
                      std::string(causalCtxToken(node.ctx)),
                      _rec.resourceName(node.resource),
                      _rec.labelName(node.label)});
    }
    return table;
}

ResultSet
CausalAnalysis::attributionTable() const
{
    ResultSet table({"group", "class", "wait_ms", "share", "edges"});
    const double total = _makespan > 0
        ? static_cast<double>(_makespan)
        : 1.0;
    auto add = [&](const char *group, const std::string &cls,
                   Tick ticks, std::uint64_t edges) {
        table.addRow({std::string(group), cls,
                      ticksToSeconds(ticks) * 1e3,
                      static_cast<double>(ticks) / total,
                      static_cast<std::int64_t>(edges)});
    };
    for (std::size_t k = 0; k < kWaitKindCount; ++k)
        if (_kindEdges[k] > 0)
            add("kind", waitKindToken(static_cast<WaitKind>(k)),
                _kindTicks[k], _kindEdges[k]);
    if (_origin > 0)
        add("kind", "origin", _origin, 0);
    for (std::size_t c = 0; c < kCausalCtxCount; ++c)
        if (_ctxEdges[c] > 0)
            add("subsystem", causalCtxToken(static_cast<CausalCtx>(c)),
                _ctxTicks[c], _ctxEdges[c]);
    if (_origin > 0)
        add("subsystem", "origin", _origin, 0);
    // Resources sorted by descending path wait (ties: by name) so the
    // bottleneck link/device leads.
    std::vector<std::size_t> order;
    for (std::size_t r = 1; r < _resourceTicks.size(); ++r)
        if (_resourceEdges[r] > 0)
            order.push_back(r);
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  if (_resourceTicks[a] != _resourceTicks[b])
                      return _resourceTicks[a] > _resourceTicks[b];
                  return _rec.resourceName(static_cast<std::uint16_t>(
                             a))
                      < _rec.resourceName(
                          static_cast<std::uint16_t>(b));
              });
    for (const std::size_t r : order)
        add("resource",
            _rec.resourceName(static_cast<std::uint16_t>(r)),
            _resourceTicks[r], _resourceEdges[r]);
    return table;
}

ResultSet
CausalAnalysis::slackTable() const
{
    // Backward pass: latest(n) = min over executed non-weak children
    // of latest(child) - edge latency; nodes nothing waits on can
    // slip to the makespan. Children always carry higher indices than
    // their parent (they were scheduled during its execution), so one
    // reverse sweep relaxes every edge.
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    std::vector<Tick> latest(nodes.size(), 0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        latest[i] = std::max(_makespan, nodes[i].fire);
    for (std::size_t i = nodes.size(); i-- > 0;) {
        const CausalRecorder::Node &node = nodes[i];
        if (!node.executed || node.weak || node.parent < 0)
            continue;
        const auto p = static_cast<std::size_t>(node.parent);
        const Tick lat = node.fire - nodes[p].fire;
        latest[p] = std::min(latest[p], latest[i] - lat);
    }

    // Channel events grouped by resource; slack in microseconds.
    std::vector<std::vector<double>> by_resource(
        _rec.resourceNames().size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const CausalRecorder::Node &node = nodes[i];
        if (!node.executed || node.resource == 0)
            continue;
        if (node.kind != WaitKind::ChanXfer
            && node.kind != WaitKind::ChanQueue
            && node.kind != WaitKind::Wire)
            continue;
        if (node.resource >= by_resource.size())
            continue;
        by_resource[node.resource].push_back(
            ticksToUs(latest[i] - node.fire));
    }

    ResultSet table({"resource", "edges", "min_slack_us",
                     "p50_slack_us", "mean_slack_us", "max_slack_us",
                     "le_1us", "le_10us", "le_100us", "le_1ms",
                     "gt_1ms"});
    for (std::size_t r = 1; r < by_resource.size(); ++r) {
        const std::vector<double> &slacks = by_resource[r];
        if (slacks.empty())
            continue;
        double min_us = slacks[0];
        double max_us = slacks[0];
        double sum_us = 0.0;
        std::int64_t buckets[5] = {};
        for (const double s : slacks) {
            min_us = std::min(min_us, s);
            max_us = std::max(max_us, s);
            sum_us += s;
            const int bucket = s <= 1.0 ? 0
                : s <= 10.0              ? 1
                : s <= 100.0             ? 2
                : s <= 1000.0            ? 3
                                         : 4;
            ++buckets[bucket];
        }
        table.addRow(
            {_rec.resourceName(static_cast<std::uint16_t>(r)),
             static_cast<std::int64_t>(slacks.size()), min_us,
             percentile(slacks, 50.0),
             sum_us / static_cast<double>(slacks.size()), max_us,
             buckets[0], buckets[1], buckets[2], buckets[3],
             buckets[4]});
    }
    return table;
}

WhatIfResult
CausalAnalysis::whatIf(
    const std::vector<WhatIfChange> &changes) const
{
    std::vector<ResolvedClass> resolved;
    resolved.reserve(changes.size());
    for (const WhatIfChange &change : changes) {
        ResolvedClass rc;
        if (!resolveClass(_rec, change, rc)) {
            std::string valid;
            for (const std::string &cls : validClasses()) {
                if (!valid.empty())
                    valid += ", ";
                valid += cls;
            }
            fatal("--whatif: unknown resource class '%s'; valid "
                  "classes: %s",
                  change.cls.c_str(), valid.c_str());
        }
        resolved.push_back(rc);
    }

    // Forward replay in scheduling order: a parent is always
    // scheduled (and indexed) before any of its children, so one
    // pass computes every node's shifted completion time.
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    std::vector<double> shifted(nodes.size(), 0.0);
    WhatIfResult result;
    result.baseline = _makespan;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const CausalRecorder::Node &node = nodes[i];
        if (!node.executed)
            continue;
        double factor = 1.0;
        for (const ResolvedClass &rc : resolved)
            if (rc.matches(node))
                factor *= rc.factor;
        const Tick lat = edgeLatency(i);
        if (factor != 1.0 && lat > 0)
            ++result.scaledEdges;
        const double base = node.parent >= 0
            ? shifted[static_cast<std::size_t>(node.parent)]
            : static_cast<double>(node.sched);
        shifted[i] = base + factor * static_cast<double>(lat);
        if (!node.weak)
            result.predicted = std::max(result.predicted, shifted[i]);
    }
    return result;
}

std::vector<std::string>
CausalAnalysis::validClasses() const
{
    std::vector<std::string> classes = {"chan"};
    for (const auto &kc : kKindClasses)
        classes.emplace_back(kc.first);
    for (const auto &cc : kCtxClasses)
        classes.emplace_back(cc.first);
    const std::vector<std::string> &resources = _rec.resourceNames();
    for (std::size_t i = 1; i < resources.size(); ++i)
        classes.push_back(resources[i]);
    return classes;
}

void
CausalAnalysis::writeJson(std::ostream &os) const
{
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    std::uint64_t roots = 0;
    std::uint64_t edges = 0;
    for (const CausalRecorder::Node &node : nodes) {
        if (!node.executed)
            continue;
        if (node.parent < 0)
            ++roots;
        else
            ++edges;
    }
    const double total = _makespan > 0
        ? static_cast<double>(_makespan)
        : 1.0;

    os << "{\n  \"makespan_ms\": ";
    jsonNumber(os, ticksToSeconds(_makespan) * 1e3);
    os << ",\n  \"nodes\": " << nodes.size()
       << ",\n  \"executed\": " << _rec.executedCount()
       << ",\n  \"cancelled\": " << _rec.cancelledCount()
       << ",\n  \"roots\": " << roots << ",\n  \"edges\": " << edges
       << ",\n  \"critical_path\": {\"edges\": " << _path.size()
       << ", \"origin_ms\": ";
    jsonNumber(os, ticksToSeconds(_origin) * 1e3);
    os << "},\n  \"attribution\": {";

    auto emit_group = [&](const char *name, auto &&rows) {
        os << "\n    \"" << name << "\": [";
        bool first = true;
        for (const auto &row : rows) {
            os << (first ? "" : ", ") << "{\"class\": ";
            jsonString(os, row.first);
            os << ", \"wait_ms\": ";
            jsonNumber(os, ticksToSeconds(row.second) * 1e3);
            os << ", \"share\": ";
            jsonNumber(os, static_cast<double>(row.second) / total);
            os << "}";
            first = false;
        }
        os << "]";
    };

    std::vector<std::pair<std::string, Tick>> kind_rows;
    for (std::size_t k = 0; k < kWaitKindCount; ++k)
        if (_kindEdges[k] > 0)
            kind_rows.emplace_back(
                waitKindToken(static_cast<WaitKind>(k)),
                _kindTicks[k]);
    std::vector<std::pair<std::string, Tick>> ctx_rows;
    for (std::size_t c = 0; c < kCausalCtxCount; ++c)
        if (_ctxEdges[c] > 0)
            ctx_rows.emplace_back(
                causalCtxToken(static_cast<CausalCtx>(c)),
                _ctxTicks[c]);
    if (_origin > 0) {
        kind_rows.emplace_back("origin", _origin);
        ctx_rows.emplace_back("origin", _origin);
    }
    std::vector<std::pair<std::string, Tick>> res_rows;
    for (std::size_t r = 1; r < _resourceTicks.size(); ++r)
        if (_resourceEdges[r] > 0)
            res_rows.emplace_back(
                _rec.resourceName(static_cast<std::uint16_t>(r)),
                _resourceTicks[r]);
    std::sort(res_rows.begin(), res_rows.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });

    emit_group("kind", kind_rows);
    os << ",";
    emit_group("subsystem", ctx_rows);
    os << ",";
    emit_group("resource", res_rows);
    os << "\n  }\n}\n";
}

void
CausalAnalysis::overlayTrace(TraceSink &trace) const
{
    const std::vector<CausalRecorder::Node> &nodes = _rec.nodes();
    for (const std::size_t idx : _path) {
        const CausalRecorder::Node &node = nodes[idx];
        const Tick lat = edgeLatency(idx);
        if (lat == 0)
            continue; // Zero-latency glue would only add clutter.
        const Tick start = node.fire - lat;
        std::string name = waitKindToken(node.kind);
        const std::string &resource =
            _rec.resourceName(node.resource);
        if (!resource.empty())
            name += " " + resource;
        else
            name += " " + _rec.labelName(node.label);
        trace.addSpan("causal", "critical path", name, start, lat,
                      "causal");
    }
}

void
CausalAnalysis::report(std::ostream &os, std::size_t top) const
{
    os << "causal: makespan " << millis(_makespan) << " ms over "
       << _path.size() << " critical-path edges ("
       << _rec.nodes().size() << " events recorded)\n";
    struct Row
    {
        std::string cls;
        Tick ticks;
    };
    auto print_group = [&](const char *name, std::vector<Row> rows) {
        std::sort(rows.begin(), rows.end(),
                  [](const Row &a, const Row &b) {
                      if (a.ticks != b.ticks)
                          return a.ticks > b.ticks;
                      return a.cls < b.cls;
                  });
        os << "  by " << name << ":";
        std::size_t shown = 0;
        for (const Row &row : rows) {
            if (shown++ == top)
                break;
            const double share = _makespan > 0
                ? 100.0 * static_cast<double>(row.ticks)
                    / static_cast<double>(_makespan)
                : 0.0;
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f", share);
            os << " " << row.cls << " " << millis(row.ticks) << "ms ("
               << buf << "%)";
        }
        os << '\n';
    };
    std::vector<Row> kind_rows;
    for (std::size_t k = 0; k < kWaitKindCount; ++k)
        if (_kindEdges[k] > 0)
            kind_rows.push_back(
                {waitKindToken(static_cast<WaitKind>(k)),
                 _kindTicks[k]});
    if (_origin > 0)
        kind_rows.push_back({"origin", _origin});
    print_group("kind", std::move(kind_rows));
    std::vector<Row> ctx_rows;
    for (std::size_t c = 0; c < kCausalCtxCount; ++c)
        if (_ctxEdges[c] > 0)
            ctx_rows.push_back(
                {causalCtxToken(static_cast<CausalCtx>(c)),
                 _ctxTicks[c]});
    if (_origin > 0)
        ctx_rows.push_back({"origin", _origin});
    print_group("subsystem", std::move(ctx_rows));
    std::vector<Row> res_rows;
    for (std::size_t r = 1; r < _resourceTicks.size(); ++r)
        if (_resourceEdges[r] > 0)
            res_rows.push_back(
                {_rec.resourceName(static_cast<std::uint16_t>(r)),
                 _resourceTicks[r]});
    if (!res_rows.empty())
        print_group("resource", std::move(res_rows));
}

} // namespace mcdla
