/**
 * @file
 * Implementation of the panic/fatal/warn/inform reporting entry points.
 */

#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace mcdla
{

bool LogConfig::throwOnError = false;
bool LogConfig::verbose = true;

namespace
{

std::string
vstrfmt(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return std::string();
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

} // anonymous namespace

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vstrfmt(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vstrfmt(fmt, args);
    va_end(args);
    if (LogConfig::throwOnError)
        throw PanicError("panic: " + msg);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vstrfmt(fmt, args);
    va_end(args);
    if (LogConfig::throwOnError)
        throw FatalError("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (!LogConfig::verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!LogConfig::verbose)
        return;
    std::va_list args;
    va_start(args, fmt);
    const std::string msg = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace mcdla
