#include "event_queue_backend.hh"

#include <algorithm>

#include "logging.hh"

namespace mcdla
{

namespace
{

struct KindToken
{
    EventQueueBackendKind kind;
    const char *token;
};

constexpr KindToken kKindTokens[] = {
    {EventQueueBackendKind::Heap, "heap"},
    {EventQueueBackendKind::Calendar, "calendar"},
};

/** Descending (when, seq): the bucket minimum lives at back(). */
bool
bucketDescending(const EventItem &a, const EventItem &b)
{
    return eventItemBefore(b, a);
}

} // namespace

const char *
eventQueueBackendToken(EventQueueBackendKind kind)
{
    for (const KindToken &entry : kKindTokens)
        if (entry.kind == kind)
            return entry.token;
    panic("event-queue backend %d has no token",
          static_cast<int>(kind));
}

EventQueueBackendKind
parseEventQueueBackendKind(const std::string &name)
{
    for (const KindToken &entry : kKindTokens)
        if (name == entry.token)
            return entry.kind;
    fatal("unknown event-queue backend '%s' (%s)", name.c_str(),
          eventQueueBackendTokenList().c_str());
}

const std::string &
eventQueueBackendTokenList()
{
    static const std::string list = [] {
        std::string tokens;
        for (const KindToken &entry : kKindTokens) {
            if (!tokens.empty())
                tokens += ", ";
            tokens += entry.token;
        }
        return tokens;
    }();
    return list;
}

std::unique_ptr<EventQueueBackend>
makeEventQueueBackend(EventQueueBackendKind kind)
{
    switch (kind) {
      case EventQueueBackendKind::Heap:
        return std::make_unique<HeapEventQueueBackend>();
      case EventQueueBackendKind::Calendar:
        return std::make_unique<CalendarEventQueueBackend>();
    }
    panic("event-queue backend %d has no factory",
          static_cast<int>(kind));
}

// ---------------------------------------------------------------------
// HeapEventQueueBackend

void
HeapEventQueueBackend::push(const EventItem &item)
{
    std::size_t hole = _heap.size();
    _heap.push_back(item);
    while (hole > 0) {
        const std::size_t parent = (hole - 1) / kArity;
        if (!eventItemBefore(item, _heap[parent]))
            break;
        _heap[hole] = _heap[parent];
        hole = parent;
    }
    _heap[hole] = item;
}

EventItem
HeapEventQueueBackend::pop()
{
    const EventItem top = _heap.front();
    const EventItem last = _heap.back();
    _heap.pop_back();
    const std::size_t size = _heap.size();
    if (size > 0) {
        // Sift the former last leaf down from the root.
        std::size_t hole = 0;
        for (;;) {
            const std::size_t first_child = hole * kArity + 1;
            if (first_child >= size)
                break;
            std::size_t best = first_child;
            const std::size_t end =
                std::min(first_child + kArity, size);
            for (std::size_t child = first_child + 1; child < end;
                 ++child)
                if (eventItemBefore(_heap[child], _heap[best]))
                    best = child;
            if (!eventItemBefore(_heap[best], last))
                break;
            _heap[hole] = _heap[best];
            hole = best;
        }
        _heap[hole] = last;
    }
    return top;
}

// ---------------------------------------------------------------------
// CalendarEventQueueBackend

CalendarEventQueueBackend::CalendarEventQueueBackend()
    : _buckets(kMinBuckets), _mask(kMinBuckets - 1)
{
}

void
CalendarEventQueueBackend::clear()
{
    _buckets.assign(kMinBuckets, {});
    _mask = kMinBuckets - 1;
    _width = 1;
    _count = 0;
    _lastWhen = 0;
    _minBucket = SIZE_MAX;
}

void
CalendarEventQueueBackend::push(const EventItem &item)
{
    maybeGrow();
    std::vector<EventItem> &bucket = _buckets[bucketOf(item.when)];
    bucket.insert(std::lower_bound(bucket.begin(), bucket.end(), item,
                                   bucketDescending),
                  item);
    ++_count;
    _minBucket = SIZE_MAX;
}

std::size_t
CalendarEventQueueBackend::findMinBucket() const
{
    if (_count == 0)
        return SIZE_MAX;
    // One "year" scan: walk day windows forward from the last popped
    // tick. An item within its day window is the global minimum (all
    // pending items are >= _lastWhen, and any earlier item would have
    // been found in an earlier window).
    const std::size_t nbuckets = _mask + 1;
    const std::uint64_t start_day =
        static_cast<std::uint64_t>(_lastWhen) / _width;
    for (std::size_t i = 0; i < nbuckets; ++i) {
        const std::uint64_t day = start_day + i;
        const std::size_t idx =
            static_cast<std::size_t>(day) & _mask;
        const std::vector<EventItem> &bucket = _buckets[idx];
        if (bucket.empty())
            continue;
        const std::uint64_t bound = (day + 1) * _width;
        if (static_cast<std::uint64_t>(bucket.back().when) < bound)
            return idx;
    }
    // Sparse region: nothing within a year of _lastWhen. Direct scan
    // for the global minimum across all bucket minima.
    std::size_t best = SIZE_MAX;
    for (std::size_t idx = 0; idx < nbuckets; ++idx) {
        const std::vector<EventItem> &bucket = _buckets[idx];
        if (bucket.empty())
            continue;
        if (best == SIZE_MAX
            || eventItemBefore(bucket.back(), _buckets[best].back()))
            best = idx;
    }
    return best;
}

const EventItem &
CalendarEventQueueBackend::peek() const
{
    if (_minBucket == SIZE_MAX)
        _minBucket = findMinBucket();
    return _buckets[_minBucket].back();
}

EventItem
CalendarEventQueueBackend::pop()
{
    if (_minBucket == SIZE_MAX)
        _minBucket = findMinBucket();
    std::vector<EventItem> &bucket = _buckets[_minBucket];
    const EventItem item = bucket.back();
    bucket.pop_back();
    --_count;
    _lastWhen = item.when;
    _minBucket = SIZE_MAX;
    maybeShrink();
    return item;
}

void
CalendarEventQueueBackend::maybeGrow()
{
    if (_count > 2 * (_mask + 1))
        resize(2 * (_mask + 1));
}

void
CalendarEventQueueBackend::maybeShrink()
{
    const std::size_t nbuckets = _mask + 1;
    if (nbuckets > kMinBuckets && _count < nbuckets / 2)
        resize(nbuckets / 2);
}

void
CalendarEventQueueBackend::resize(std::size_t nbuckets)
{
    std::vector<EventItem> items;
    items.reserve(_count);
    for (std::vector<EventItem> &bucket : _buckets) {
        items.insert(items.end(), bucket.begin(), bucket.end());
        bucket.clear();
    }
    _buckets.resize(nbuckets);
    _mask = nbuckets - 1;
    if (!items.empty()) {
        Tick min_when = items.front().when;
        Tick max_when = items.front().when;
        for (const EventItem &item : items) {
            min_when = std::min(min_when, item.when);
            max_when = std::max(max_when, item.when);
        }
        // Width ~= twice the mean inter-event gap: a couple of items
        // per day window on a uniform distribution.
        const std::uint64_t span =
            static_cast<std::uint64_t>(max_when - min_when);
        _width = std::max<std::uint64_t>(1, 2 * span / items.size());
        for (const EventItem &item : items)
            _buckets[bucketOf(item.when)].push_back(item);
        for (std::vector<EventItem> &bucket : _buckets)
            std::sort(bucket.begin(), bucket.end(), bucketDescending);
    }
    _minBucket = SIZE_MAX;
}

} // namespace mcdla
