/**
 * @file
 * Pluggable priority structures for the DES kernel.
 *
 * The EventQueue stores event payloads (callback, label, flags) in a
 * slot pool and keeps only POD EventItem keys — (when, seq, slot) — in
 * the priority structure. That split is what makes the structure
 * swappable: a backend orders 20-byte keys and never touches payloads.
 *
 * Two backends ship: a binary heap (the safe default) and a Brown-style
 * calendar queue whose push/pop are O(1) amortized when event ticks are
 * roughly uniform — the common case for bandwidth-driven simulations.
 * Both produce the exact global (when, seq) order, so same-tick FIFO
 * semantics and the determinism-audit stream hash are identical under
 * either backend (`mcdla_sim --event-queue heap|calendar`).
 */

#ifndef MCDLA_SIM_EVENT_QUEUE_BACKEND_HH
#define MCDLA_SIM_EVENT_QUEUE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "units.hh"

namespace mcdla
{

/** Priority-structure key for one pending event: payload lives in the
 *  EventQueue's slot pool, indexed by @c slot. Ordered by (when, seq):
 *  seq is globally unique and increasing, giving same-tick FIFO. */
struct EventItem
{
    Tick when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
};

/** True when @p a fires strictly before @p b. */
inline bool
eventItemBefore(const EventItem &a, const EventItem &b)
{
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
}

/**
 * A priority structure over EventItems.
 *
 * Contract: pop() returns items in exact (when, seq) order; peek()
 * and pop() must not be called on an empty backend; pushed items are
 * never earlier than the last popped item (the kernel clamps
 * past-tick schedules to now() first).
 */
class EventQueueBackend
{
  public:
    virtual ~EventQueueBackend() = default;

    virtual void push(const EventItem &item) = 0;
    /** The minimum item. Precondition: !empty(). */
    virtual const EventItem &peek() const = 0;
    /** Remove and return the minimum item. Precondition: !empty(). */
    virtual EventItem pop() = 0;
    virtual bool empty() const = 0;
    virtual std::size_t size() const = 0;
    virtual void clear() = 0;
};

/** Selects the EventQueue's priority structure (`--event-queue`). */
enum class EventQueueBackendKind
{
    Heap,     ///< binary heap: O(log n), robust to any tick pattern
    Calendar, ///< calendar queue: O(1) amortized for uniform ticks
};

const char *eventQueueBackendToken(EventQueueBackendKind kind);
EventQueueBackendKind
parseEventQueueBackendKind(const std::string &name);
const std::string &eventQueueBackendTokenList();
std::unique_ptr<EventQueueBackend>
makeEventQueueBackend(EventQueueBackendKind kind);

/**
 * 4-ary implicit min-heap over a flat vector. The baseline backend:
 * O(log n) everything, no distribution assumptions. Four children per
 * node halves the tree depth of a binary heap and keeps siblings on
 * one cache line pair, which is what the deep-queue pop path is
 * bound by.
 */
class HeapEventQueueBackend final : public EventQueueBackend
{
  public:
    void push(const EventItem &item) override;
    const EventItem &peek() const override { return _heap.front(); }
    EventItem pop() override;
    bool empty() const override { return _heap.empty(); }
    std::size_t size() const override { return _heap.size(); }
    void clear() override { _heap.clear(); }

  private:
    static constexpr std::size_t kArity = 4;

    std::vector<EventItem> _heap;
};

/**
 * Brown's calendar queue: a power-of-two array of tick-hashed buckets,
 * each a small vector kept sorted descending (minimum at the back).
 * An item lands in bucket (when / width) & mask; pop scans one "year"
 * of buckets starting from the last popped tick and falls back to a
 * global minimum scan when the year is empty (sparse regions). The
 * bucket count doubles/halves with occupancy and the width is resized
 * to the mean inter-event gap, keeping ~O(1) items per bucket.
 *
 * Same-tick events always hash to the same bucket and buckets are
 * ordered by (when, seq), so the global pop order is exact — not
 * approximate — and matches the heap backend item for item.
 */
class CalendarEventQueueBackend final : public EventQueueBackend
{
  public:
    CalendarEventQueueBackend();

    void push(const EventItem &item) override;
    const EventItem &peek() const override;
    EventItem pop() override;
    bool empty() const override { return _count == 0; }
    std::size_t size() const override { return _count; }
    void clear() override;

  private:
    std::size_t bucketOf(Tick when) const
    {
        return static_cast<std::size_t>(
                   static_cast<std::uint64_t>(when) / _width)
               & _mask;
    }

    /** Locate the minimum item: bucket index, or npos when empty. */
    std::size_t findMinBucket() const;
    void resize(std::size_t nbuckets);
    void maybeGrow();
    void maybeShrink();

    static constexpr std::size_t kMinBuckets = 16;

    std::vector<std::vector<EventItem>> _buckets;
    std::size_t _mask = 0;       ///< bucket count - 1 (power of two)
    std::uint64_t _width = 1;    ///< bucket tick width (>= 1)
    std::size_t _count = 0;      ///< total pending items
    Tick _lastWhen = 0;          ///< last popped tick (scan start)
    /** Cached result of the last peek()'s search, reused by pop(). */
    mutable std::size_t _minBucket = SIZE_MAX;
};

} // namespace mcdla

#endif // MCDLA_SIM_EVENT_QUEUE_BACKEND_HH
