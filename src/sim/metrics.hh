/**
 * @file
 * MetricRegistry: named gauge samplers polled by a periodic DES event.
 *
 * Subsystems register cheap sampler lambdas (channel utilization, pool
 * occupancy, HBM residency, serving queue depth, ...); start() arms a
 * self-rescheduling event on the EventQueue that records one row per
 * period. The time-series feeds two consumers:
 *  - TraceSink counter ("C") tracks when attachTrace() is set, so the
 *    metrics render as stacked-area tracks under the Perfetto timeline;
 *  - the ResultSet CSV/JSON pipeline via core/report metricsTable()
 *    (`mcdla_sim --metrics-csv/--metrics-json`).
 *
 * The sampler rides the kernel's *weak* events (scheduleWeak): it
 * reschedules itself unconditionally, and the EventQueue discards it
 * the moment only background events remain — so sampling can neither
 * wedge EventQueue::run() nor stretch a run's measured makespan.
 */

#ifndef MCDLA_SIM_METRICS_HH
#define MCDLA_SIM_METRICS_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/trace.hh"
#include "sim/units.hh"

namespace mcdla
{

/** Named gauge samplers + the rows sampled so far. */
class MetricRegistry
{
  public:
    using Sampler = std::function<double()>;

    /** One recorded row: the sample time and one value per metric. */
    struct Sample
    {
        Tick at = 0;
        std::vector<double> values;
    };

    explicit MetricRegistry(Tick period = defaultPeriod())
        : _period(period)
    {}

    /** Default sampling period: 100 simulated microseconds. */
    static constexpr Tick defaultPeriod() { return 100 * ticksPerUs; }

    Tick period() const { return _period; }
    void setPeriod(Tick period) { _period = period; }

    /**
     * Register a gauge. Must happen before start(); the column set is
     * frozen by the first sample. Duplicate names are rejected.
     */
    void add(const std::string &name, Sampler sampler);

    bool has(const std::string &name) const;
    std::size_t metricCount() const { return _names.size(); }
    bool empty() const { return _names.empty(); }
    const std::vector<std::string> &names() const { return _names; }

    /**
     * Mirror every sample into @p sink as counter events on the
     * "metrics" process (nullptr detaches).
     */
    void attachTrace(TraceSink *sink) { _trace = sink; }

    /**
     * Take the first sample now and arm periodic sampling on @p eq.
     * No-op when no metrics are registered.
     */
    void start(EventQueue &eq);

    /** Take one sample at @p eq's current time. */
    void sample(EventQueue &eq);

    std::size_t sampleCount() const { return _samples.size(); }
    const std::vector<Sample> &samples() const { return _samples; }

  private:
    void scheduleNext(EventQueue &eq);

    Tick _period;
    std::vector<std::string> _names;
    std::vector<Sampler> _samplers;
    std::vector<Sample> _samples;
    TraceSink *_trace = nullptr;
};

} // namespace mcdla

#endif // MCDLA_SIM_METRICS_HH
