/**
 * @file
 * Fast host-time deltas for per-callback profiling.
 *
 * The DesProfiler brackets every executed callback with two timestamps;
 * at millions of events per second, two std::chrono::steady_clock reads
 * (~25ns each through the vDSO) dominate the measurement itself. On
 * x86 this reads the invariant TSC instead (~7ns) and converts deltas
 * to nanoseconds with a once-per-process calibration against
 * steady_clock; other architectures fall back to steady_clock.
 *
 * Only *deltas* ever leave this interface, and wall time is excluded
 * from the determinism stream hash, so the clock source cannot affect
 * simulation results — just how cheap it is to observe them.
 */

#ifndef MCDLA_SIM_CYCLE_TIMER_HH
#define MCDLA_SIM_CYCLE_TIMER_HH

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace mcdla
{

/** Monotonic host timestamps, as cheap as the platform allows. */
class CycleTimer
{
  public:
    /** Raw timestamp; meaningful only as a difference of two reads. */
    static std::uint64_t
    now()
    {
#if defined(__x86_64__) || defined(__i386__)
        return __rdtsc();
#else
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
#endif
    }

    /** Convert a difference of two now() reads to nanoseconds. */
    static std::uint64_t
    deltaToNs(std::uint64_t delta)
    {
#if defined(__x86_64__) || defined(__i386__)
        return static_cast<std::uint64_t>(
            static_cast<double>(delta) * nsPerTick());
#else
        return delta;
#endif
    }

  private:
#if defined(__x86_64__) || defined(__i386__)
    /** ns per TSC tick, calibrated once against steady_clock. */
    static double
    nsPerTick()
    {
        static const double ns_per_tick = [] {
            using clock = std::chrono::steady_clock;
            const auto wall0 = clock::now();
            const std::uint64_t tsc0 = __rdtsc();
            // ~2ms busy calibration window: long enough that vDSO
            // latency is noise, short enough to be free at startup.
            for (;;) {
                const auto elapsed = clock::now() - wall0;
                if (elapsed >= std::chrono::milliseconds(2)) {
                    const std::uint64_t tsc1 = __rdtsc();
                    const auto ns = std::chrono::duration_cast<
                        std::chrono::nanoseconds>(elapsed);
                    return static_cast<double>(ns.count())
                           / static_cast<double>(tsc1 - tsc0);
                }
            }
        }();
        return ns_per_tick;
    }
#endif
};

} // namespace mcdla

#endif // MCDLA_SIM_CYCLE_TIMER_HH
