/**
 * @file
 * Causal observability for the DES: event provenance, critical-path
 * extraction, per-channel slack, and Coz-style what-if estimation.
 *
 * A CausalRecorder attaches to an EventQueue
 * (EventQueue::setCausalRecorder) and records, for every scheduled
 * event, its *parent* — the event that was executing when it was
 * scheduled — plus a typed wait edge (WaitKind) and a subsystem
 * context (CausalCtx) supplied by CausalScope RAII tags at the
 * instrumentation sites (Channel, CollectiveEngine, DmaEngine,
 * TrainingSession, Cluster, ServingCluster). Because every event chain
 * in this kernel is "last-arrival binds" — a joined continuation runs
 * inside the event that completed last — the parent tree *is* the
 * binding-dependency DAG, and walking it back from the final event
 * yields the simulated-time critical path.
 *
 * The recorder is purely an observer: it never schedules, cancels, or
 * reorders anything, so execution with it attached is event-for-event
 * identical to execution without it (the determinism-audit stream hash
 * is unchanged). Detached, the kernel pays one branch per schedule.
 *
 * CausalAnalysis post-processes a recorded run: critical path with
 * per-kind/per-subsystem/per-resource attribution that sums to the
 * makespan, a backward-pass slack computation whose per-channel
 * minima are the safe lookahead windows for conservative parallel
 * DES, and a what-if engine that rescales one resource class's edge
 * latencies along the recorded DAG to predict the new makespan.
 */

#ifndef MCDLA_SIM_CAUSAL_HH
#define MCDLA_SIM_CAUSAL_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

class ResultSet;
class TraceSink;

/** Opaque handle identifying a scheduled event (see event_queue.hh). */
using EventId = std::uint64_t;

/**
 * What the edge from parent to child *is*, physically: the typed wait
 * taxonomy. The edge latency (child fire - parent fire) is time spent
 * in this kind of wait.
 */
enum class WaitKind : std::uint8_t
{
    Control = 0,  ///< Untyped glue (zero-latency chaining, timers).
    Compute,      ///< Device compute-stream occupancy.
    Collective,   ///< Collective-engine step (degenerate/noop hops).
    ChanXfer,     ///< Channel occupancy, started on an idle channel.
    ChanQueue,    ///< Channel occupancy after queueing behind others.
    Wire,         ///< Propagation latency after occupancy ends.
    Dma,          ///< DMA-engine internal events (empty transfers).
    Sched,        ///< Cluster scheduler: job arrival/start/cleanup.
    Batch,        ///< Serving: request arrival, batch timers/cleanup.
};

/** Number of WaitKind values (array sizing). */
constexpr std::size_t kWaitKindCount = 9;

/** Stable token for CSV/JSON output and --whatif classes. */
const char *waitKindToken(WaitKind kind);

/**
 * Which subsystem caused the chain this event belongs to. Set by the
 * launching scope (a DMA, a collective, a p2p transfer, a cluster
 * scheduler action, a serving action) and *inherited* from the parent
 * otherwise, so e.g. channel events servicing a DMA stay attributed
 * to the vmem subsystem across arbitrarily long hop chains.
 */
enum class CausalCtx : std::uint8_t
{
    None = 0,   ///< Main line of the run ("main" in reports).
    Collective, ///< Collective all-reduce/gather/broadcast traffic.
    P2p,        ///< Pipeline boundary point-to-point transfers.
    Dma,        ///< Memory-virtualization (paging/DMA) traffic.
    Cluster,    ///< Cluster scheduler control path.
    Serving,    ///< Serving router/batcher control path.
};

/** Number of CausalCtx values (array sizing). */
constexpr std::size_t kCausalCtxCount = 6;

/** Stable token for CSV/JSON output and --whatif classes. */
const char *causalCtxToken(CausalCtx ctx);

/**
 * Provenance recorder. Attach with EventQueue::setCausalRecorder
 * *before* the run so every event is captured; all hooks are O(1).
 */
class CausalRecorder
{
  public:
    /** One recorded event. */
    struct Node
    {
        Tick sched = 0;  ///< Tick at which the event was scheduled.
        Tick fire = 0;   ///< Execution tick (valid when executed).
        /** Parent node index; -1 for roots (scheduled outside any
            event, e.g. arrival streams armed before run()). */
        std::int64_t parent = -1;
        std::uint32_t label = 0;     ///< Interned event name.
        std::uint16_t resource = 0;  ///< Interned resource; 0 = none.
        WaitKind kind = WaitKind::Control;
        CausalCtx ctx = CausalCtx::None;
        bool executed = false;
        bool cancelled = false;
        bool weak = false;
    };

    /// @name EventQueue hooks (no-ops must never reach here: the
    /// queue guards every call on the attached pointer). The queue
    /// stores the node index returned by noteSchedule in the event's
    /// pooled slot and hands it back on execute/deschedule; -1 means
    /// "not recorded" (scheduled before the recorder attached) and is
    /// ignored — such events' children become roots.
    /// @{
    std::int64_t noteSchedule(Tick now, const std::string &name,
                              bool weak);

    void
    noteExecute(std::int64_t node, Tick now)
    {
        if (node < 0
            || static_cast<std::size_t>(node) >= _nodes.size()) {
            _current = -1;
            return;
        }
        Node &entry = _nodes[static_cast<std::size_t>(node)];
        entry.fire = now;
        entry.executed = true;
        ++_executed;
        _current = node;
    }

    void noteExecuteEnd() { _current = -1; }

    void
    noteDeschedule(std::int64_t node)
    {
        if (node < 0
            || static_cast<std::size_t>(node) >= _nodes.size())
            return;
        Node &entry = _nodes[static_cast<std::size_t>(node)];
        if (!entry.cancelled && !entry.executed) {
            entry.cancelled = true;
            ++_cancelled;
        }
    }
    /// @}

    /// @name Scope state (used by CausalScope and Channel)
    /// @{
    /** Effective context right now: scope override, else the
        executing event's context, else None. Raw form so components
        can stash it in POD members (Channel's per-transfer capture). */
    std::uint8_t
    currentCtxRaw() const
    {
        if (_scope.hasCtx)
            return static_cast<std::uint8_t>(_scope.ctx);
        if (_current >= 0)
            return static_cast<std::uint8_t>(
                _nodes[static_cast<std::size_t>(_current)].ctx);
        return static_cast<std::uint8_t>(CausalCtx::None);
    }

    static CausalCtx
    ctxFromRaw(std::uint8_t raw)
    {
        return raw < kCausalCtxCount ? static_cast<CausalCtx>(raw)
                                     : CausalCtx::None;
    }
    /// @}

    /// @name Recorded data (analysis / tests)
    /// @{
    const std::vector<Node> &nodes() const { return _nodes; }
    const std::string &resourceName(std::uint16_t id) const;
    const std::string &labelName(std::uint32_t id) const;
    const std::vector<std::string> &resourceNames() const
    {
        return _resourceNames;
    }
    std::uint64_t scheduled() const { return _nodes.size(); }
    std::uint64_t executedCount() const { return _executed; }
    std::uint64_t cancelledCount() const { return _cancelled; }
    /// @}

    /**
     * SimCheck: DAG conservation and monotonicity. Every executed
     * node's parent executed, was executing at the child's schedule
     * tick (parent.fire == child.sched), and fired no later than the
     * child; node counts partition into executed + cancelled +
     * discarded. Panics (SimCheck[causal]) on violation.
     */
    void simcheckVerify() const;

    /** Drop all recorded state (scope tags are kept). */
    void reset();

  private:
    friend class CausalScope;

    struct ScopeState
    {
        bool hasKind = false;
        WaitKind kind = WaitKind::Control;
        bool hasCtx = false;
        CausalCtx ctx = CausalCtx::None;
        std::uint16_t resource = 0;
    };

    std::uint16_t internResource(const std::string &name);
    std::uint32_t internLabel(const std::string &name);

    std::vector<Node> _nodes;
    std::int64_t _current = -1; ///< Node executing now (-1 = none).
    std::uint64_t _executed = 0;
    std::uint64_t _cancelled = 0;
    ScopeState _scope;
    std::vector<std::string> _resourceNames;   // [0] = ""
    std::vector<std::string> _labelNames;      // [0] = ""
    std::unordered_map<std::string, std::uint16_t> _resourceIds;
    std::unordered_map<std::string, std::uint32_t> _labelIds;
};

/**
 * RAII wait-edge tag: events scheduled while the scope is alive get
 * its kind (and context/resource when given) instead of the inherited
 * defaults. Scopes nest; a null recorder makes the scope free.
 */
class CausalScope
{
  public:
    CausalScope(CausalRecorder *rec, WaitKind kind)
        : CausalScope(rec, kind, false, CausalCtx::None, "")
    {}

    CausalScope(CausalRecorder *rec, WaitKind kind, CausalCtx ctx)
        : CausalScope(rec, kind, true, ctx, "")
    {}

    CausalScope(CausalRecorder *rec, WaitKind kind,
                const std::string &resource)
        : CausalScope(rec, kind, false, CausalCtx::None, resource)
    {}

    CausalScope(CausalRecorder *rec, WaitKind kind, CausalCtx ctx,
                const std::string &resource)
        : CausalScope(rec, kind, true, ctx, resource)
    {}

    ~CausalScope()
    {
        if (_rec != nullptr)
            _rec->_scope = _saved;
    }

    CausalScope(const CausalScope &) = delete;
    CausalScope &operator=(const CausalScope &) = delete;

  private:
    CausalScope(CausalRecorder *rec, WaitKind kind, bool has_ctx,
                CausalCtx ctx, const std::string &resource)
        : _rec(rec)
    {
        if (_rec == nullptr)
            return;
        _saved = _rec->_scope;
        _rec->_scope.hasKind = true;
        _rec->_scope.kind = kind;
        if (has_ctx) {
            _rec->_scope.hasCtx = true;
            _rec->_scope.ctx = ctx;
        }
        if (!resource.empty())
            _rec->_scope.resource = _rec->internResource(resource);
    }

    CausalRecorder *_rec;
    CausalRecorder::ScopeState _saved;
};

/** One --whatif change: scale every edge of @p cls by @p factor. */
struct WhatIfChange
{
    std::string cls;      ///< Class token or recorded resource name.
    double factor = 0.5;  ///< Duration multiplier (0.5 = 2x faster).
};

/** Predicted effect of a what-if change set. */
struct WhatIfResult
{
    Tick baseline = 0;        ///< Recorded makespan.
    double predicted = 0.0;   ///< Predicted makespan (ticks).
    std::uint64_t scaledEdges = 0; ///< Edges the change set touched.

    double
    speedup() const
    {
        return predicted > 0.0
            ? static_cast<double>(baseline) / predicted
            : 0.0;
    }
};

/**
 * Parse "class:factor[,class:factor...]"; a missing factor means 0.5.
 * Syntax errors are fatal; class names are validated by whatIf()
 * against the recorded run.
 */
std::vector<WhatIfChange> parseWhatIfSpec(const std::string &spec);

/**
 * Post-run analysis over a CausalRecorder. The recorder must outlive
 * the analysis. Construction walks the DAG once (and runs
 * CausalRecorder::simcheckVerify when SimCheck is enabled).
 */
class CausalAnalysis
{
  public:
    explicit CausalAnalysis(const CausalRecorder &rec);

    /** Fire tick of the last executed non-weak event (0 if none). */
    Tick makespan() const { return _makespan; }

    /** Critical path as node indices, root first. */
    const std::vector<std::size_t> &criticalPath() const
    {
        return _path;
    }

    /** Ticks before the path root was even scheduled (nonzero only
        when the root was armed mid-run, e.g. iterations > 1). */
    Tick originTicks() const { return _origin; }

    /** Wait ticks attributed to @p kind along the critical path. */
    Tick pathKindTicks(WaitKind kind) const
    {
        return _kindTicks[static_cast<std::size_t>(kind)];
    }

    /** Wait ticks attributed to @p ctx along the critical path. */
    Tick pathCtxTicks(CausalCtx ctx) const
    {
        return _ctxTicks[static_cast<std::size_t>(ctx)];
    }

    /**
     * Critical-path steps, root first: step, tick_ms, wait_ms, kind,
     * subsystem, resource, label. wait_ms of step 0 spans from the
     * root's schedule tick; an initial "origin" row covers any time
     * before that, so the wait_ms column sums to makespan().
     */
    ResultSet criticalPathTable() const;

    /**
     * Per-class wait attribution along the critical path: group
     * ("kind" / "subsystem" / "resource"), class, wait_ms, share,
     * edges. Within the kind and subsystem groups the wait_ms rows
     * (including "origin") each sum to makespan().
     */
    ResultSet attributionTable() const;

    /**
     * Per-resource slack over channel events (xfer/queue/wire): how
     * long each event could slip without moving the makespan.
     * Columns: resource, edges, min/p50/mean/max slack (us) and a
     * log-bucket histogram. The min is the measured safe lookahead
     * for conservative parallel DES partitions using that channel.
     */
    ResultSet slackTable() const;

    /**
     * Coz-style virtual speedup: rescale matching edges along the
     * recorded DAG and replay the schedule forward. The recorded
     * parent is assumed to stay the binding dependency, so large
     * factors that would flip a join's winner are underestimated —
     * see README "what-if caveats". Unknown classes are fatal and
     * list validClasses().
     */
    WhatIfResult whatIf(const std::vector<WhatIfChange> &changes) const;

    /** Accepted --whatif classes: static tokens + recorded resources. */
    std::vector<std::string> validClasses() const;

    /** Attribution / slack / DAG summary as one JSON object. */
    void writeJson(std::ostream &os) const;

    /**
     * Mark the critical path on a Perfetto trace: one span per path
     * edge on the "causal" process (category "causal"), aligned with
     * the recorded simulated-time interval it waited through.
     */
    void overlayTrace(TraceSink &trace) const;

    /** Human-readable attribution summary (the --causal stdout). */
    void report(std::ostream &os, std::size_t top = 8) const;

  private:
    Tick edgeLatency(std::size_t node_index) const;

    const CausalRecorder &_rec;
    Tick _makespan = 0;
    Tick _origin = 0;
    std::vector<std::size_t> _path;  // root..final
    Tick _kindTicks[kWaitKindCount] = {};
    Tick _ctxTicks[kCausalCtxCount] = {};
    std::vector<Tick> _resourceTicks;   // path wait per resource id
    std::vector<std::uint64_t> _resourceEdges;
    std::vector<std::uint64_t> _kindEdges =
        std::vector<std::uint64_t>(kWaitKindCount, 0);
    std::vector<std::uint64_t> _ctxEdges =
        std::vector<std::uint64_t>(kCausalCtxCount, 0);
};

} // namespace mcdla

#endif // MCDLA_SIM_CAUSAL_HH
