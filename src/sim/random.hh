/**
 * @file
 * Deterministic pseudo-random number generation for synthetic workloads.
 *
 * A thin xoshiro256** wrapper seeded explicitly so every experiment is
 * reproducible. Not cryptographic; fast and well distributed, which is all
 * the simulator needs (jittered traffic generators, randomized property
 * tests).
 */

#ifndef MCDLA_SIM_RANDOM_HH
#define MCDLA_SIM_RANDOM_HH

#include <cstdint>

namespace mcdla
{

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : _s) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_s[1] * 5, 7) * 9;
        const std::uint64_t t = _s[1] << 17;
        _s[2] ^= _s[0];
        _s[3] ^= _s[1];
        _s[1] ^= _s[2];
        _s[0] ^= _s[3];
        _s[2] ^= t;
        _s[3] = rotl(_s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // simulation purposes (bound << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _s[4];
};

} // namespace mcdla

#endif // MCDLA_SIM_RANDOM_HH
