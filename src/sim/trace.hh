/**
 * @file
 * Chrome-tracing ("trace_event" JSON) event sink.
 *
 * Simulation components append events on named tracks grouped into
 * named processes (one pid per subsystem: device, vmem, collective,
 * cluster, serving, metrics, ...); the resulting file loads directly in
 * Perfetto / chrome://tracing for timeline inspection of anything from
 * a single training iteration to a multi-job cluster or serving run.
 *
 * Supported event kinds:
 *  - complete spans ("X") — ops, DMA transfers, collectives, batches;
 *  - instants ("i") — markers (rejections, arrivals);
 *  - counters ("C") — metric time-series (channel utilization, pool
 *    occupancy, HBM residency, queue depths);
 *  - flow arrows ("s"/"f") — causality across tracks (DMA
 *    write-before-read, batch dispatch → first compute op);
 *  - legacy async spans ("b"/"e") — per-request queue residency, which
 *    may overlap arbitrarily on one track.
 *
 * Categories can be filtered at collection time (enableCategories), and
 * all strings are JSON-escaped on output, so adversarial layer/job
 * names cannot corrupt the file.
 */

#ifndef MCDLA_SIM_TRACE_HH
#define MCDLA_SIM_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/**
 * Chrome-tracing event collector ("trace_event" JSON format).
 *
 * Producers name a process (subsystem) and a track (thread) per event;
 * pids and tids are interned deterministically in first-use order, so
 * two identical runs produce byte-identical files. Timestamps are
 * microseconds derived from ticks.
 */
class TraceSink
{
  public:
    /**
     * Restrict collection to the given categories. An empty list (the
     * default) collects everything. Events in a disabled category are
     * dropped at add-time, before any string interning.
     */
    void enableCategories(const std::vector<std::string> &cats);

    /** Whether events of @p category are currently collected. */
    bool
    categoryEnabled(const std::string &category) const
    {
        return _categories.empty() || _categories.count(category) > 0;
    }

    /** Record a complete ("X") event on @p process / @p track. */
    void addSpan(const std::string &process, const std::string &track,
                 const std::string &name, Tick start, Tick duration,
                 const std::string &category = "op");

    /** Legacy single-process span (process "sim"). */
    void
    addSpan(const std::string &track, const std::string &name,
            Tick start, Tick duration,
            const std::string &category = "op")
    {
        addSpan("sim", track, name, start, duration, category);
    }

    /** Record an instantaneous ("i") event. */
    void addInstant(const std::string &process, const std::string &track,
                    const std::string &name, Tick at,
                    const std::string &category = "mark");

    /** Legacy single-process instant (process "sim"). */
    void
    addInstant(const std::string &track, const std::string &name,
               Tick at)
    {
        addInstant("sim", track, name, at, "mark");
    }

    /**
     * Record a counter ("C") sample. Counters are keyed by
     * (process, counter-name); Perfetto renders each as its own
     * stacked-area track.
     */
    void addCounter(const std::string &process,
                    const std::string &counter, Tick at, double value,
                    const std::string &category = "counter");

    /** Allocate a fresh flow id (never 0). */
    std::uint64_t newFlow() { return _nextFlow++; }

    /**
     * Flow start ("s"). Must coincide (same process/track, ts inside)
     * with a span for Perfetto to draw the arrow tail.
     */
    void flowBegin(const std::string &process, const std::string &track,
                   const std::string &name, Tick at, std::uint64_t flow,
                   const std::string &category = "flow");

    /** Flow end ("f", binding-point "e"); the arrow head. */
    void flowEnd(const std::string &process, const std::string &track,
                 const std::string &name, Tick at, std::uint64_t flow,
                 const std::string &category = "flow");

    /** Legacy async begin ("b"); pairs with asyncEnd by (id, name). */
    void asyncBegin(const std::string &process, const std::string &track,
                    const std::string &name, std::uint64_t id, Tick at,
                    const std::string &category = "async");

    /** Legacy async end ("e"). */
    void asyncEnd(const std::string &process, const std::string &track,
                  const std::string &name, std::uint64_t id, Tick at,
                  const std::string &category = "async");

    std::size_t eventCount() const { return _events.size(); }
    bool empty() const { return _events.empty(); }
    /** Number of distinct processes (pids) seen so far. */
    std::size_t processCount() const { return _processNames.size(); }

    /** Write the "traceEvents" JSON document. */
    void write(std::ostream &os) const;

    void clear();

  private:
    struct Event
    {
        char phase = 'X'; ///< 'X','i','C','s','f','b','e'
        int pid = 0;
        int tid = 0;
        Tick start = 0;
        Tick duration = 0;      ///< 'X' only.
        double value = 0.0;     ///< 'C' only.
        std::uint64_t id = 0;   ///< 's','f','b','e' only.
        std::string name;
        std::string category;
    };

    int internProcess(const std::string &process);
    int internTrack(int pid, const std::string &track);
    void push(char phase, const std::string &process,
              const std::string &track, const std::string &name,
              const std::string &category, Tick start, Tick duration,
              double value, std::uint64_t id);

    std::vector<Event> _events;
    std::set<std::string> _categories;
    std::map<std::string, int> _processIds;
    std::vector<std::string> _processNames;
    std::map<std::pair<int, std::string>, int> _trackIds;
    /** Per pid: tid → track name, in interning order. */
    std::vector<std::vector<std::string>> _trackNames;
    std::uint64_t _nextFlow = 1;
};

} // namespace mcdla

#endif // MCDLA_SIM_TRACE_HH
