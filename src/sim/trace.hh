/**
 * @file
 * Chrome-tracing ("trace_event" JSON) event sink.
 *
 * Simulation components append complete spans (ops, DMA transfers,
 * collectives) on named tracks; the resulting file loads directly in
 * Perfetto / chrome://tracing for timeline inspection of a training
 * iteration.
 */

#ifndef MCDLA_SIM_TRACE_HH
#define MCDLA_SIM_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/units.hh"

namespace mcdla
{

/**
 * Chrome-tracing event collector ("trace_event" JSON format). Producers
 * add complete ("X") events with microsecond timestamps derived from
 * ticks; tracks are (pid, tid) pairs mapped from device / engine names.
 */
class TraceSink
{
  public:
    /** Record a complete event on a named track. */
    void addSpan(const std::string &track, const std::string &name,
                 Tick start, Tick duration,
                 const std::string &category = "op");

    /** Record an instantaneous event. */
    void addInstant(const std::string &track, const std::string &name,
                    Tick at);

    std::size_t eventCount() const { return _events.size(); }
    bool empty() const { return _events.empty(); }

    /** Write the "traceEvents" JSON document. */
    void write(std::ostream &os) const;

    void clear() { _events.clear(); }

  private:
    struct Event
    {
        std::string track;
        std::string name;
        std::string category;
        Tick start = 0;
        Tick duration = 0;
        bool instant = false;
    };

    int trackId(const std::string &track);

    std::vector<Event> _events;
    std::map<std::string, int> _trackIds;
};

} // namespace mcdla

#endif // MCDLA_SIM_TRACE_HH
