/**
 * @file
 * Small-buffer-optimized callable for the DES hot path.
 *
 * InlineFunction<N> is a move-only type-erased `void()` callable whose
 * captures live in an N-byte inline buffer; only captures larger than
 * the buffer (or over-aligned, or with throwing moves) fall back to
 * one heap allocation. Unlike std::function it never allocates for the
 * common case — an event callback capturing `this` plus a few scalars
 * — which is what makes scheduling an event allocation-free.
 *
 * The inline/heap distinction is encoded in the static ops table
 * selected at construction, not in a runtime flag: empty-check, call,
 * move, and destroy are all one indirect call on a 2-pointer-wide
 * vtable-like struct.
 */

#ifndef MCDLA_SIM_INLINE_FUNCTION_HH
#define MCDLA_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mcdla
{

/** Move-only `void()` callable with an @p InlineBytes SBO buffer. */
template <std::size_t InlineBytes>
class InlineFunction
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {} // NOLINT: match std::function

    template <
        class F,
        class = std::enable_if_t<
            !std::is_same<std::decay_t<F>, InlineFunction>::value>>
    InlineFunction(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r<void, Fn &>::value,
                      "InlineFunction target must be callable as "
                      "void()");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(_buf))
                Fn(std::forward<F>(fn));
            _ops = &InlineOpsFor<Fn>::ops;
        } else {
            *reinterpret_cast<Fn **>(_buf) =
                new Fn(std::forward<F>(fn));
            _ops = &HeapOpsFor<Fn>::ops;
        }
    }

    InlineFunction(InlineFunction &&other) noexcept
        : _ops(other._ops)
    {
        if (_ops != nullptr) {
            _ops->relocate(other._buf, _buf);
            other._ops = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            if (_ops != nullptr)
                _ops->destroy(_buf);
            _ops = other._ops;
            if (_ops != nullptr) {
                _ops->relocate(other._buf, _buf);
                other._ops = nullptr;
            }
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction()
    {
        if (_ops != nullptr)
            _ops->destroy(_buf);
    }

    explicit operator bool() const { return _ops != nullptr; }

    void
    operator()()
    {
        _ops->invoke(_buf);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct the target from @p from into @p to and
            destroy the source (one pass: storage is relocated when the
            owning slot pool or heap vector grows). */
        void (*relocate)(void *from, void *to);
        void (*destroy)(void *storage);
    };

    template <class Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= InlineBytes
               && alignof(Fn) <= alignof(std::max_align_t)
               && std::is_nothrow_move_constructible<Fn>::value;
    }

    template <class Fn>
    struct InlineOpsFor
    {
        static void
        invoke(void *storage)
        {
            (*static_cast<Fn *>(storage))();
        }

        static void
        relocate(void *from, void *to)
        {
            Fn *src = static_cast<Fn *>(from);
            ::new (to) Fn(std::move(*src));
            src->~Fn();
        }

        static void
        destroy(void *storage)
        {
            static_cast<Fn *>(storage)->~Fn();
        }

        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    template <class Fn>
    struct HeapOpsFor
    {
        static void
        invoke(void *storage)
        {
            (**static_cast<Fn **>(storage))();
        }

        static void
        relocate(void *from, void *to)
        {
            *static_cast<Fn **>(to) = *static_cast<Fn **>(from);
        }

        static void
        destroy(void *storage)
        {
            delete *static_cast<Fn **>(storage);
        }

        static constexpr Ops ops = {&invoke, &relocate, &destroy};
    };

    alignas(std::max_align_t) unsigned char _buf[InlineBytes];
    const Ops *_ops = nullptr;
};

} // namespace mcdla

#endif // MCDLA_SIM_INLINE_FUNCTION_HH
