/**
 * @file
 * Fundamental simulation units: ticks, bandwidth, and byte sizes.
 *
 * The simulator measures time in integer picoseconds (`Tick`). A 64-bit
 * tick counter overflows after ~213 days of simulated time, far beyond any
 * training-iteration timescale (hundreds of milliseconds). Bandwidth is a
 * plain double in bytes per second; durations of bulk transfers are rounded
 * up to whole ticks so that back-to-back transfers never alias in time.
 */

#ifndef MCDLA_SIM_UNITS_HH
#define MCDLA_SIM_UNITS_HH

#include <cstdint>
#include <string>

namespace mcdla
{

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** The maximum representable tick, used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per second (1 tick == 1 ps). */
constexpr Tick ticksPerSec = 1'000'000'000'000ULL;

/** Ticks per common sub-second units. */
constexpr Tick ticksPerMs = ticksPerSec / 1'000;
constexpr Tick ticksPerUs = ticksPerSec / 1'000'000;
constexpr Tick ticksPerNs = ticksPerSec / 1'000'000'000;

/** Byte-size literals (IEC binary multiples). */
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;
constexpr std::uint64_t kTiB = 1024ULL * kGiB;

/** Decimal multiples, used for datasheet bandwidth/capacity figures. */
constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;
constexpr double kTB = 1e12;

/**
 * Convert seconds (double) to ticks, rounding to nearest.
 *
 * @param seconds Non-negative duration in seconds.
 * @return The duration in ticks.
 */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(ticksPerSec)
                             + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(ticksPerSec);
}

/** Convert ticks to milliseconds. */
constexpr double
ticksToMs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(ticksPerMs);
}

/** Convert ticks to microseconds. */
constexpr double
ticksToUs(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(ticksPerUs);
}

/**
 * Time to move a payload across a fixed-rate resource, rounded up so a
 * non-empty transfer always takes at least one tick.
 *
 * @param bytes Payload size in bytes.
 * @param bytes_per_sec Resource bandwidth; must be positive.
 * @return Occupancy duration in ticks.
 */
constexpr Tick
transferTicks(double bytes, double bytes_per_sec)
{
    if (bytes <= 0.0)
        return 0;
    const double seconds = bytes / bytes_per_sec;
    const double ticks = seconds * static_cast<double>(ticksPerSec);
    Tick whole = static_cast<Tick>(ticks);
    // Round genuine fractions up; ignore floating-point noise so exact
    // durations (e.g. 1 GB at 1 GB/s) stay exact.
    if (ticks - static_cast<double>(whole) > 1e-6)
        ++whole;
    return whole > 0 ? whole : 1;
}

/** Pretty-print a tick count with an adaptive unit (ns/us/ms/s). */
std::string formatTime(Tick ticks);

/** Pretty-print a byte count with an adaptive unit (B/KiB/MiB/GiB/TiB). */
std::string formatBytes(double bytes);

/** Pretty-print bandwidth as GB/s. */
std::string formatBandwidth(double bytes_per_sec);

} // namespace mcdla

#endif // MCDLA_SIM_UNITS_HH
