/**
 * @file
 * DesProfiler implementation.
 */

#include "sim/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "sim/json.hh"

namespace mcdla
{

std::vector<std::pair<std::string, ProfiledLabel>>
DesProfiler::topLabels(std::size_t limit) const
{
    std::vector<std::pair<std::string, ProfiledLabel>> out(
        _labels.begin(), _labels.end());
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.second.wallNs != b.second.wallNs)
            return a.second.wallNs > b.second.wallNs;
        return a.first < b.first;
    });
    if (limit > 0 && out.size() > limit)
        out.resize(limit);
    return out;
}

void
DesProfiler::report(std::ostream &os, std::size_t top) const
{
    os << "---------- DES profile ----------\n";
    os << "events executed   : " << _executed << '\n';
    os << "schedules         : " << _schedules << '\n';
    os << "deschedules       : " << _deschedules << '\n';
    os << "peak heap depth   : " << _peakHeapDepth << '\n';
    os << "callback wall time: " << std::fixed << std::setprecision(3)
       << wallSeconds() * 1e3 << " ms\n";
    os << "events/sec        : " << std::setprecision(0)
       << eventsPerSecond() << '\n';
    os << std::setprecision(3);
    const auto ranked = topLabels(top);
    if (!ranked.empty())
        os << "top labels by callback wall time:\n";
    for (const auto &[label, stats] : ranked) {
        const double pct = _wallNs > 0
            ? 100.0 * static_cast<double>(stats.wallNs)
                / static_cast<double>(_wallNs)
            : 0.0;
        os << "  " << std::setw(6) << pct << "%  "
           << std::setw(10) << stats.count << " ev  "
           << std::setw(12) << stats.wallNs / 1000 << " us  " << label
           << '\n';
    }
    os.unsetf(std::ios::fixed);
    os << "---------------------------------\n";
}

void
DesProfiler::reportJson(std::ostream &os) const
{
    os << "{\n";
    os << "  \"events_executed\": " << _executed << ",\n";
    os << "  \"schedules\": " << _schedules << ",\n";
    os << "  \"deschedules\": " << _deschedules << ",\n";
    os << "  \"peak_heap_depth\": " << _peakHeapDepth << ",\n";
    os << "  \"callback_wall_ms\": ";
    jsonNumber(os, wallSeconds() * 1e3);
    os << ",\n  \"events_per_sec\": ";
    jsonNumber(os, eventsPerSecond());
    // The hash is 64-bit; JSON numbers lose precision past 2^53, so
    // emit it as a hex string like the --audit-determinism output.
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(_streamHash));
    os << ",\n  \"stream_hash\": \"" << hash << "\",\n";
    os << "  \"labels\": [";
    bool first = true;
    for (const auto &[label, stats] : topLabels()) {
        os << (first ? "\n" : ",\n") << "    {\"label\": ";
        jsonString(os, label);
        os << ", \"count\": " << stats.count << ", \"wall_ns\": "
           << stats.wallNs << "}";
        first = false;
    }
    os << "\n  ]\n}\n";
}

void
DesProfiler::reset()
{
    _executed = 0;
    _schedules = 0;
    _deschedules = 0;
    _wallNs = 0;
    _streamHash = 14695981039346656037ULL;
    _peakHeapDepth = 0;
    _labels.clear();
    _lastKey.clear();
    _last = nullptr;
}

} // namespace mcdla
