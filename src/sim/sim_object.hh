/**
 * @file
 * Base class for simulated components.
 *
 * A SimObject has a hierarchical name, a reference to the EventQueue that
 * drives it, and an owned StatSet. Components (channels, devices, memory
 * nodes, engines) derive from it so experiments can enumerate and dump
 * per-component statistics uniformly.
 */

#ifndef MCDLA_SIM_SIM_OBJECT_HH
#define MCDLA_SIM_SIM_OBJECT_HH

#include <string>

#include "event_queue.hh"
#include "stats.hh"
#include "units.hh"

namespace mcdla
{

/** Base class for every named simulation component. */
class SimObject
{
  public:
    /**
     * @param eq The event queue driving this component.
     * @param name Hierarchical instance name (e.g. "system.dev0.hbm").
     */
    SimObject(EventQueue &eq, std::string name)
        : _eq(eq), _name(std::move(name)), _stats(_name + ".")
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &eventQueue() { return _eq; }
    const EventQueue &eventQueue() const { return _eq; }
    Tick now() const { return _eq.now(); }

    StatSet &stats() { return _stats; }
    const StatSet &stats() const { return _stats; }

    /** Hook invoked by owners when a simulation run starts. */
    virtual void startup() {}

    /** Reset component statistics (not structural state). */
    virtual void resetStats() { _stats.reset(); }

  protected:
    /** Convenience: schedule a member callback @p delta ticks from now.
        The "name.label" text is captured lazily (no concatenation
        unless a profiler or causal recorder is attached). */
    EventId
    after(Tick delta, EventQueue::Callback cb, const char *label = "")
    {
        return _eq.scheduleAfter(delta, std::move(cb),
                                 EventLabel::dotted(_name, label));
    }

  private:
    EventQueue &_eq;
    std::string _name;
    StatSet _stats;
};

} // namespace mcdla

#endif // MCDLA_SIM_SIM_OBJECT_HH
