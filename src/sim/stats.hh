/**
 * @file
 * Lightweight statistics framework.
 *
 * Components register named scalar statistics in a StatSet. Scalars behave
 * like doubles with += convenience; derived quantities can be registered as
 * formulas evaluated at dump time. A small streaming histogram supports
 * distribution statistics (e.g., channel-occupancy samples).
 */

#ifndef MCDLA_SIM_STATS_HH
#define MCDLA_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace mcdla
{

/** A named scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name, std::string desc = {})
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    double value() const { return _value; }

    Scalar &operator=(double v) { _value = v; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator-=(double v) { _value -= v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }

    /** Reset to zero. */
    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * Streaming summary of a sampled distribution: count/min/max/mean and a
 * fixed-bucket histogram over [0, ceiling).
 */
class Distribution
{
  public:
    Distribution() = default;

    /**
     * @param name Statistic name.
     * @param ceiling Upper bound of the bucketed range; samples above it
     *                land in the overflow bucket.
     * @param buckets Number of equal-width buckets.
     */
    Distribution(std::string name, double ceiling, std::size_t buckets = 16);

    void sample(double v, std::uint64_t count = 1);

    const std::string &name() const { return _name; }
    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const { return _min; }
    double max() const { return _max; }
    double sum() const { return _sum; }

    const std::vector<std::uint64_t> &buckets() const { return _buckets; }
    std::uint64_t overflow() const { return _overflow; }

    void reset();

  private:
    std::string _name;
    double _ceiling = 1.0;
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _overflow = 0;
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A group of statistics owned by one component.
 *
 * Scalars and formulas are stored by name; dump() emits them in insertion
 * order in a gem5-like `name value # desc` format.
 */
class StatSet
{
  public:
    using Formula = std::function<double()>;

    explicit StatSet(std::string prefix = {}) : _prefix(std::move(prefix)) {}

    /** Register (or fetch) a scalar statistic. */
    Scalar &scalar(const std::string &name, const std::string &desc = {});

    /** Register a formula evaluated lazily at dump()/value() time. */
    void formula(const std::string &name, Formula f,
                 const std::string &desc = {});

    /** Register (or fetch) a distribution statistic. */
    Distribution &distribution(const std::string &name, double ceiling,
                               std::size_t buckets = 16);

    /** Look up any stat's current value; fatal if absent. */
    double value(const std::string &name) const;

    /** Whether a stat with this name exists. */
    bool has(const std::string &name) const;

    /** Reset all scalars and distributions. */
    void reset();

    /** Emit all statistics. */
    void dump(std::ostream &os) const;

    const std::string &prefix() const { return _prefix; }

  private:
    struct FormulaEntry
    {
        Formula fn;
        std::string desc;
    };

    std::string _prefix;
    // Insertion-ordered storage.
    std::vector<std::string> _order;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, FormulaEntry> _formulas;
    std::map<std::string, Distribution> _distributions;
};

} // namespace mcdla

#endif // MCDLA_SIM_STATS_HH
