/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention.
 *
 * - panic():  an internal simulator invariant was violated (a bug in this
 *             codebase). Aborts so a debugger/core dump is available.
 * - fatal():  the simulation cannot continue because of a user error (bad
 *             configuration, impossible topology request). Exits cleanly
 *             with status 1.
 * - warn():   something is approximated or degraded but simulation can
 *             proceed.
 * - inform(): plain status output.
 *
 * All entry points take printf-style format strings. For unit testing,
 * panic/fatal can be redirected to throw exceptions instead of
 * terminating (see LogConfig::throwOnError).
 */

#ifndef MCDLA_SIM_LOGGING_HH
#define MCDLA_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mcdla
{

/** Exception type thrown by panic() when throw-on-error is enabled. */
struct PanicError : std::logic_error
{
    using std::logic_error::logic_error;
};

/** Exception type thrown by fatal() when throw-on-error is enabled. */
struct FatalError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Global logging configuration. */
struct LogConfig
{
    /**
     * When true, panic()/fatal() throw PanicError/FatalError instead of
     * terminating the process. Enabled by the test harness so death paths
     * can be exercised as ordinary assertions.
     */
    static bool throwOnError;

    /** When false, warn()/inform() are suppressed. */
    static bool verbose;
};

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort (or throw PanicError). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user/configuration error and exit (or throw). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a non-fatal modelling concern. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report simulation status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace mcdla

#endif // MCDLA_SIM_LOGGING_HH
