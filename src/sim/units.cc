/**
 * @file
 * Formatting helpers for simulation units.
 */

#include "units.hh"

#include <array>
#include <cstdio>

namespace mcdla
{

namespace
{

std::string
formatWithUnit(double value, const char *unit)
{
    std::array<char, 64> buf;
    std::snprintf(buf.data(), buf.size(), "%.3f %s", value, unit);
    return std::string(buf.data());
}

} // anonymous namespace

std::string
formatTime(Tick ticks)
{
    const double ns = static_cast<double>(ticks)
        / static_cast<double>(ticksPerNs);
    if (ns < 1e3)
        return formatWithUnit(ns, "ns");
    if (ns < 1e6)
        return formatWithUnit(ns / 1e3, "us");
    if (ns < 1e9)
        return formatWithUnit(ns / 1e6, "ms");
    return formatWithUnit(ns / 1e9, "s");
}

std::string
formatBytes(double bytes)
{
    if (bytes < static_cast<double>(kKiB))
        return formatWithUnit(bytes, "B");
    if (bytes < static_cast<double>(kMiB))
        return formatWithUnit(bytes / static_cast<double>(kKiB), "KiB");
    if (bytes < static_cast<double>(kGiB))
        return formatWithUnit(bytes / static_cast<double>(kMiB), "MiB");
    if (bytes < static_cast<double>(kTiB))
        return formatWithUnit(bytes / static_cast<double>(kGiB), "GiB");
    return formatWithUnit(bytes / static_cast<double>(kTiB), "TiB");
}

std::string
formatBandwidth(double bytes_per_sec)
{
    return formatWithUnit(bytes_per_sec / kGB, "GB/s");
}

} // namespace mcdla
