/**
 * @file
 * TraceSink implementation.
 */

#include "sim/trace.hh"

#include <iomanip>

namespace mcdla
{

int
TraceSink::trackId(const std::string &track)
{
    auto it = _trackIds.find(track);
    if (it == _trackIds.end())
        it = _trackIds.emplace(track,
                               static_cast<int>(_trackIds.size()))
                 .first;
    return it->second;
}

void
TraceSink::addSpan(const std::string &track, const std::string &name,
                   Tick start, Tick duration,
                   const std::string &category)
{
    _events.push_back(Event{track, name, category, start, duration,
                            false});
}

void
TraceSink::addInstant(const std::string &track, const std::string &name,
                      Tick at)
{
    _events.push_back(Event{track, name, "mark", at, 0, true});
}

void
TraceSink::write(std::ostream &os) const
{
    // Timestamps are microseconds in the trace_event format.
    auto us = [](Tick t) {
        return static_cast<double>(t)
            / static_cast<double>(ticksPerUs);
    };
    // trackId() is non-const; rebuild ids deterministically here.
    std::map<std::string, int> ids;
    for (const Event &e : _events)
        ids.emplace(e.track, static_cast<int>(ids.size()));

    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &[track, id] : ids) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << id
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << track
           << "\"}}";
    }
    for (const Event &e : _events) {
        os << ",\n{\"ph\":\"" << (e.instant ? 'i' : 'X')
           << "\",\"pid\":0,\"tid\":" << ids.at(e.track) << ",\"ts\":"
           << std::setprecision(12) << us(e.start) << ",\"name\":\""
           << e.name << "\",\"cat\":\"" << e.category << '"';
        if (!e.instant)
            os << ",\"dur\":" << us(e.duration);
        if (e.instant)
            os << ",\"s\":\"t\"";
        os << '}';
    }
    os << "\n]}\n";
}

} // namespace mcdla
