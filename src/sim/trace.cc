/**
 * @file
 * TraceSink implementation.
 */

#include "sim/trace.hh"

#include <iomanip>

#include "sim/json.hh"

namespace mcdla
{

void
TraceSink::enableCategories(const std::vector<std::string> &cats)
{
    _categories.clear();
    _categories.insert(cats.begin(), cats.end());
}

int
TraceSink::internProcess(const std::string &process)
{
    auto it = _processIds.find(process);
    if (it == _processIds.end()) {
        it = _processIds
                 .emplace(process,
                          static_cast<int>(_processNames.size()))
                 .first;
        _processNames.push_back(process);
        _trackNames.emplace_back();
    }
    return it->second;
}

int
TraceSink::internTrack(int pid, const std::string &track)
{
    const auto key = std::make_pair(pid, track);
    auto it = _trackIds.find(key);
    if (it == _trackIds.end()) {
        auto &names = _trackNames[static_cast<std::size_t>(pid)];
        it = _trackIds.emplace(key, static_cast<int>(names.size()))
                 .first;
        names.push_back(track);
    }
    return it->second;
}

void
TraceSink::push(char phase, const std::string &process,
                const std::string &track, const std::string &name,
                const std::string &category, Tick start, Tick duration,
                double value, std::uint64_t id)
{
    if (!categoryEnabled(category))
        return;
    Event e;
    e.phase = phase;
    e.pid = internProcess(process);
    // Counters are keyed by (pid, name); they have no thread track.
    e.tid = phase == 'C' ? 0 : internTrack(e.pid, track);
    e.start = start;
    e.duration = duration;
    e.value = value;
    e.id = id;
    e.name = name;
    e.category = category;
    _events.push_back(std::move(e));
}

void
TraceSink::addSpan(const std::string &process, const std::string &track,
                   const std::string &name, Tick start, Tick duration,
                   const std::string &category)
{
    push('X', process, track, name, category, start, duration, 0.0, 0);
}

void
TraceSink::addInstant(const std::string &process,
                      const std::string &track, const std::string &name,
                      Tick at, const std::string &category)
{
    push('i', process, track, name, category, at, 0, 0.0, 0);
}

void
TraceSink::addCounter(const std::string &process,
                      const std::string &counter, Tick at, double value,
                      const std::string &category)
{
    push('C', process, counter, counter, category, at, 0, value, 0);
}

void
TraceSink::flowBegin(const std::string &process,
                     const std::string &track, const std::string &name,
                     Tick at, std::uint64_t flow,
                     const std::string &category)
{
    push('s', process, track, name, category, at, 0, 0.0, flow);
}

void
TraceSink::flowEnd(const std::string &process, const std::string &track,
                   const std::string &name, Tick at, std::uint64_t flow,
                   const std::string &category)
{
    push('f', process, track, name, category, at, 0, 0.0, flow);
}

void
TraceSink::asyncBegin(const std::string &process,
                      const std::string &track, const std::string &name,
                      std::uint64_t id, Tick at,
                      const std::string &category)
{
    push('b', process, track, name, category, at, 0, 0.0, id);
}

void
TraceSink::asyncEnd(const std::string &process, const std::string &track,
                    const std::string &name, std::uint64_t id, Tick at,
                    const std::string &category)
{
    push('e', process, track, name, category, at, 0, 0.0, id);
}

void
TraceSink::clear()
{
    _events.clear();
    _processIds.clear();
    _processNames.clear();
    _trackIds.clear();
    _trackNames.clear();
    _nextFlow = 1;
}

void
TraceSink::write(std::ostream &os) const
{
    // Timestamps are microseconds in the trace_event format.
    auto us = [](Tick t) {
        return static_cast<double>(t)
            / static_cast<double>(ticksPerUs);
    };
    os << std::setprecision(12);
    os << "{\"traceEvents\":[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    // Metadata: process names/ordering, then per-process track names.
    for (std::size_t pid = 0; pid < _processNames.size(); ++pid) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
        jsonString(os, _processNames[pid]);
        os << "}}";
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"name\":\"process_sort_index\",\"args\":"
           << "{\"sort_index\":" << pid << "}}";
        for (std::size_t tid = 0; tid < _trackNames[pid].size(); ++tid) {
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"name\":\"thread_name\",\"args\":{\"name\":";
            jsonString(os, _trackNames[pid][tid]);
            os << "}}";
            sep();
            os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"name\":\"thread_sort_index\",\"args\":"
               << "{\"sort_index\":" << tid << "}}";
        }
    }
    for (const Event &e : _events) {
        sep();
        os << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << us(e.start)
           << ",\"name\":";
        jsonString(os, e.name);
        os << ",\"cat\":";
        jsonString(os, e.category);
        switch (e.phase) {
          case 'X':
            os << ",\"dur\":" << us(e.duration);
            break;
          case 'i':
            os << ",\"s\":\"t\"";
            break;
          case 'C':
            os << ",\"args\":{\"value\":";
            jsonNumber(os, e.value);
            os << '}';
            break;
          case 's':
            os << ",\"id\":" << e.id;
            break;
          case 'f':
            os << ",\"id\":" << e.id << ",\"bp\":\"e\"";
            break;
          case 'b':
          case 'e':
            os << ",\"id\":" << e.id;
            break;
          default:
            break;
        }
        os << '}';
    }
    os << "\n]}\n";
}

} // namespace mcdla
