/**
 * @file
 * StatSet implementation.
 */

#include "stats.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "logging.hh"

namespace mcdla
{

Distribution::Distribution(std::string name, double ceiling,
                           std::size_t buckets)
    : _name(std::move(name)), _ceiling(ceiling), _buckets(buckets, 0),
      _min(std::numeric_limits<double>::infinity()),
      _max(-std::numeric_limits<double>::infinity())
{
    if (ceiling <= 0.0)
        panic("distribution '%s' requires a positive ceiling",
              _name.c_str());
    if (buckets == 0)
        panic("distribution '%s' requires at least one bucket",
              _name.c_str());
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    _count += count;
    _sum += v * static_cast<double>(count);
    _min = std::min(_min, v);
    _max = std::max(_max, v);
    if (v >= _ceiling || v < 0.0) {
        _overflow += count;
        return;
    }
    const auto idx = static_cast<std::size_t>(
        v / _ceiling * static_cast<double>(_buckets.size()));
    _buckets[std::min(idx, _buckets.size() - 1)] += count;
}

void
Distribution::reset()
{
    std::fill(_buckets.begin(), _buckets.end(), 0);
    _overflow = 0;
    _count = 0;
    _sum = 0.0;
    _min = std::numeric_limits<double>::infinity();
    _max = -std::numeric_limits<double>::infinity();
}

Scalar &
StatSet::scalar(const std::string &name, const std::string &desc)
{
    auto it = _scalars.find(name);
    if (it == _scalars.end()) {
        it = _scalars.emplace(name, Scalar(name, desc)).first;
        _order.push_back(name);
    }
    return it->second;
}

void
StatSet::formula(const std::string &name, Formula f, const std::string &desc)
{
    if (!f)
        panic("formula stat '%s' requires a callable", name.c_str());
    if (_formulas.emplace(name, FormulaEntry{std::move(f), desc}).second)
        _order.push_back(name);
}

Distribution &
StatSet::distribution(const std::string &name, double ceiling,
                      std::size_t buckets)
{
    auto it = _distributions.find(name);
    if (it == _distributions.end()) {
        it = _distributions
                 .emplace(name, Distribution(name, ceiling, buckets))
                 .first;
        _order.push_back(name);
    }
    return it->second;
}

double
StatSet::value(const std::string &name) const
{
    if (auto it = _scalars.find(name); it != _scalars.end())
        return it->second.value();
    if (auto it = _formulas.find(name); it != _formulas.end())
        return it->second.fn();
    if (auto it = _distributions.find(name); it != _distributions.end())
        return it->second.mean();
    fatal("unknown statistic '%s%s'", _prefix.c_str(), name.c_str());
}

bool
StatSet::has(const std::string &name) const
{
    return _scalars.count(name) || _formulas.count(name)
        || _distributions.count(name);
}

void
StatSet::reset()
{
    for (auto &kv : _scalars)
        kv.second.reset();
    for (auto &kv : _distributions)
        kv.second.reset();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &name : _order) {
        if (auto it = _scalars.find(name); it != _scalars.end()) {
            os << _prefix << name << ' ' << it->second.value();
            if (!it->second.desc().empty())
                os << " # " << it->second.desc();
            os << '\n';
        } else if (auto fit = _formulas.find(name); fit != _formulas.end()) {
            os << _prefix << name << ' ' << fit->second.fn();
            if (!fit->second.desc.empty())
                os << " # " << fit->second.desc;
            os << '\n';
        } else if (auto dit = _distributions.find(name);
                   dit != _distributions.end()) {
            const Distribution &d = dit->second;
            os << _prefix << name << ".count " << d.count() << '\n';
            os << _prefix << name << ".mean " << d.mean() << '\n';
            if (d.count()) {
                os << _prefix << name << ".min " << d.min() << '\n';
                os << _prefix << name << ".max " << d.max() << '\n';
            }
        }
    }
}

} // namespace mcdla
