/**
 * @file
 * Parallel training strategies (Section II-C, Figure 3).
 *
 * Data-parallel: every worker trains the full model on 1/P of the batch;
 * the only synchronization is a per-weight-tensor all-reduce of dW during
 * backprop (overlappable with subsequent backward compute).
 *
 * Model-parallel (Krizhevsky-style, [51]): every worker owns 1/P of each
 * weighted layer's output units on the full batch. Following the
 * restricted-connectivity scheme of the original two-tower AlexNet,
 * channel shards flow privately through tower-internal convolution
 * chains; the feature maps are all-gathered only at channel-mixing
 * boundaries — pooling stages, fully-connected layers, classifier,
 * concatenations, and every recurrent timestep (the hidden state feeds
 * the full-width recurrent GEMM). Backward mirrors each gather with a
 * reduce-scatter of the output gradients. This is still far more
 * frequent synchronization than data parallelism (Figure 3b), especially
 * for RNNs, which sync twice per timestep.
 */

#ifndef MCDLA_PARALLEL_STRATEGY_HH
#define MCDLA_PARALLEL_STRATEGY_HH

#include <cstdint>
#include <optional>

#include "collective/ring_collective.hh"
#include "device/compute_model.hh"
#include "dnn/network.hh"

namespace mcdla
{

/** Parallelization mode. */
enum class ParallelMode
{
    DataParallel,
    ModelParallel,
};

const char *parallelModeName(ParallelMode mode);

/** One synchronization requirement attached to a layer. */
struct SyncOp
{
    CollectiveKind kind = CollectiveKind::AllReduce;
    double bytes = 0.0;
    /**
     * Blocking syncs stall the issuing device's compute stream until
     * completion (model-parallel X/dX aggregation); non-blocking syncs
     * only gate the final weight update (data-parallel dW).
     */
    bool blocking = false;
};

/** Strategy facade consumed by the training session. */
class ParallelStrategy
{
  public:
    /**
     * @param net Workload network (drives sync-boundary analysis).
     * @param mode Data- or model-parallel.
     * @param num_devices Worker count.
     * @param global_batch Total minibatch size (512 in the paper).
     */
    ParallelStrategy(const Network &net, ParallelMode mode,
                     int num_devices, std::int64_t global_batch);

    ParallelMode mode() const { return _mode; }
    int numDevices() const { return _numDevices; }
    std::int64_t globalBatch() const { return _globalBatch; }

    /** Per-device batch size. */
    std::int64_t perDeviceBatch() const;

    /** Compute/memory scaling of one layer on one device. */
    LayerScaling scaling(const Layer &layer) const;

    /** Synchronization after a layer's forward pass, if any. */
    std::optional<SyncOp> forwardSync(LayerId id) const;

    /** Synchronization after a layer's backward pass, if any. */
    std::optional<SyncOp> backwardSync(LayerId id) const;

    /**
     * Whether a model-parallel shard boundary follows this layer (its
     * output must be materialized full-width on every device).
     */
    bool isGatherBoundary(LayerId id) const;

    /** Resident weight bytes per device. */
    std::uint64_t weightBytesPerDevice(const Network &net) const;

    /**
     * Per-device bytes migrated per offloaded tensor: data-parallel
     * stashes 1/P of the batch; model-parallel stashes this device's
     * output/aux shard of the full batch.
     */
    double offloadBytesPerDevice(const Layer &layer) const;

  private:
    const Network &_net;
    ParallelMode _mode;
    int _numDevices;
    std::int64_t _globalBatch;
};

} // namespace mcdla

#endif // MCDLA_PARALLEL_STRATEGY_HH
