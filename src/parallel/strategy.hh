/**
 * @file
 * Parallel training strategies (Section II-C, Figure 3).
 *
 * Data-parallel: every worker trains the full model on 1/P of the batch;
 * the only synchronization is a per-weight-tensor all-reduce of dW during
 * backprop (overlappable with subsequent backward compute).
 *
 * Model-parallel (Krizhevsky-style, [51]): every worker owns 1/P of each
 * weighted layer's output units on the full batch. Following the
 * restricted-connectivity scheme of the original two-tower AlexNet,
 * channel shards flow privately through tower-internal convolution
 * chains; the feature maps are all-gathered only at channel-mixing
 * boundaries — pooling stages, fully-connected layers, classifier,
 * concatenations, and every recurrent timestep (the hidden state feeds
 * the full-width recurrent GEMM). Backward mirrors each gather with a
 * reduce-scatter of the output gradients. This is still far more
 * frequent synchronization than data parallelism (Figure 3b), especially
 * for RNNs, which sync twice per timestep.
 *
 * Pipeline-parallel (GPipe-style): the network is split into P
 * contiguous stages balanced by roofline cost; the minibatch is split
 * into M microbatches that stream through the stages. There are no
 * collectives at all — stages exchange boundary activations (forward)
 * and their gradients (backward) point-to-point on the fabric, and
 * each stage owns its slice of the weights, so weight updates are
 * local except for tied weight tensors spanning stages (unrolled RNN
 * cells), whose dW contributions reduce point-to-point to the owning
 * stage before its update. The communication volume is the boundary
 * cut plus those tied-dW exchanges, far smaller than either collective
 * mode, at the price of the fill/drain bubble and per-stage load
 * imbalance.
 */

#ifndef MCDLA_PARALLEL_STRATEGY_HH
#define MCDLA_PARALLEL_STRATEGY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "collective/ring_collective.hh"
#include "device/compute_model.hh"
#include "dnn/network.hh"
#include "dnn/pipeline.hh"

namespace mcdla
{

class OffloadPlan;

/** Parallelization mode. */
enum class ParallelMode
{
    DataParallel,
    ModelParallel,
    Pipeline,
};

const char *parallelModeName(ParallelMode mode);

/** Pipeline-mode knobs (ignored for dp/mp). */
struct PipelineConfig
{
    /** Stage count; 0 resolves to one stage per device. */
    int stages = 0;
    /** GPipe microbatches per iteration (>= 1). */
    int microbatches = 1;
    /** Roofline device used to balance the stage partition. */
    DeviceConfig device;
};

/** One synchronization requirement attached to a layer. */
struct SyncOp
{
    CollectiveKind kind = CollectiveKind::AllReduce;
    double bytes = 0.0;
    /**
     * Blocking syncs stall the issuing device's compute stream until
     * completion (model-parallel X/dX aggregation); non-blocking syncs
     * only gate the final weight update (data-parallel dW).
     */
    bool blocking = false;
};

/** Strategy facade consumed by the training session. */
class ParallelStrategy
{
  public:
    /**
     * @param net Workload network (drives sync-boundary analysis).
     * @param mode Data-, model-, or pipeline-parallel.
     * @param num_devices Worker count.
     * @param global_batch Total minibatch size (512 in the paper).
     * @param pipe Pipeline knobs (stage count, microbatches); ignored
     *        unless @p mode is Pipeline.
     */
    ParallelStrategy(const Network &net, ParallelMode mode,
                     int num_devices, std::int64_t global_batch,
                     PipelineConfig pipe = {});

    ParallelMode mode() const { return _mode; }
    int numDevices() const { return _numDevices; }
    std::int64_t globalBatch() const { return _globalBatch; }

    /**
     * Per-device batch size: the batch one layer execution processes
     * (a microbatch under pipeline parallelism).
     */
    std::int64_t perDeviceBatch() const;

    /** Compute/memory scaling of one layer on one device. */
    LayerScaling scaling(const Layer &layer) const;

    /** Synchronization after a layer's forward pass, if any. */
    std::optional<SyncOp> forwardSync(LayerId id) const;

    /** Synchronization after a layer's backward pass, if any. */
    std::optional<SyncOp> backwardSync(LayerId id) const;

    /**
     * Whether a model-parallel shard boundary follows this layer (its
     * output must be materialized full-width on every device).
     */
    bool isGatherBoundary(LayerId id) const;

    /** Resident weight bytes per device. */
    std::uint64_t weightBytesPerDevice(const Network &net) const;

    /**
     * Per-device bytes migrated per offloaded tensor: data-parallel
     * stashes 1/P of the batch; model-parallel stashes this device's
     * output/aux shard of the full batch; pipeline stashes one
     * microbatch (each of the M microbatch copies is its own page
     * group).
     */
    double offloadBytesPerDevice(const Layer &layer) const;

    /// @name Pipeline queries (meaningful only when isPipeline())
    /// @{
    bool isPipeline() const { return _mode == ParallelMode::Pipeline; }

    /** Resolved stage count (1 for dp/mp). */
    int pipelineStages() const;

    /** Microbatches per iteration (1 for dp/mp). */
    int microbatches() const { return _microbatches; }

    /** Samples per microbatch (globalBatch / microbatches). */
    std::int64_t microbatchSize() const;

    /** The balanced stage partition; panics unless isPipeline(). */
    const PipelinePartition &partition() const;

    /** Stage owning @p id; panics unless isPipeline(). */
    int stageOfLayer(LayerId id) const;

    /**
     * Activation bytes crossing the cut between stage @p boundary and
     * stage boundary+1 for one microbatch: the distinct producer
     * outputs with a consumer on the far side. The backward gradient
     * transfer of the same boundary carries the same volume.
     */
    double boundaryBytesPerMicrobatch(int boundary) const;

    /**
     * Stash tensors paged by stage @p s's device: the stage's own
     * Offload-class layers plus the offloaded boundary inputs whose
     * activations the stage's backward pass re-reads (each becomes M
     * page groups, one per microbatch). Deterministic order.
     */
    std::vector<LayerId> stageStashLayers(int s,
                                          const OffloadPlan &plan) const;

    /**
     * Weight bytes resident on stage @p s's device: untied stage
     * weights plus one copy per tied weight group whose owning cell
     * lives on another stage.
     */
    std::uint64_t stageWeightBytes(int s) const;

    /**
     * Tied weight groups that span stages: owner layer -> sorted
     * distinct stages holding members (owner included). Groups
     * confined to one stage are omitted. Each spanning group requires
     * a cross-stage dW reduction to the owner before its weight
     * update.
     */
    std::map<LayerId, std::vector<int>> tieGroupStages() const;
    /// @}

  private:
    const Network &_net;
    ParallelMode _mode;
    int _numDevices;
    std::int64_t _globalBatch;
    int _microbatches = 1;
    PipelinePartition _partition;
    /** Cut bytes per sample for each of the P-1 stage boundaries. */
    std::vector<double> _boundaryBytesPerSample;
};

} // namespace mcdla

#endif // MCDLA_PARALLEL_STRATEGY_HH
