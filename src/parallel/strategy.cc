/**
 * @file
 * ParallelStrategy implementation.
 */

#include "parallel/strategy.hh"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "sim/logging.hh"
#include "vmem/offload_plan.hh"

namespace mcdla
{

const char *
parallelModeName(ParallelMode mode)
{
    switch (mode) {
      case ParallelMode::DataParallel: return "data-parallel";
      case ParallelMode::ModelParallel: return "model-parallel";
      case ParallelMode::Pipeline: return "pipeline-parallel";
    }
    return "unknown";
}

ParallelStrategy::ParallelStrategy(const Network &net, ParallelMode mode,
                                   int num_devices,
                                   std::int64_t global_batch,
                                   PipelineConfig pipe)
    : _net(net), _mode(mode), _numDevices(num_devices),
      _globalBatch(global_batch)
{
    if (num_devices < 1)
        fatal("parallel strategy requires at least one device");

    if (mode == ParallelMode::Pipeline) {
        const int stages = pipe.stages > 0 ? pipe.stages : num_devices;
        if (stages > num_devices)
            fatal("%d pipeline stages exceed the %d devices",
                  stages, num_devices);
        if (static_cast<std::size_t>(stages) > net.size())
            fatal("%d pipeline stages exceed the %zu layers of %s",
                  stages, net.size(), net.name().c_str());
        if (pipe.microbatches < 1)
            fatal("pipeline parallelism requires at least one "
                  "microbatch (got %d)",
                  pipe.microbatches);
        if (global_batch < pipe.microbatches)
            fatal("global batch %lld smaller than the %d microbatches",
                  static_cast<long long>(global_batch),
                  pipe.microbatches);
        if (global_batch % pipe.microbatches != 0) {
            warn("global batch %lld not divisible by %d microbatches; "
                 "using floor division",
                 static_cast<long long>(global_batch),
                 pipe.microbatches);
        }
        _microbatches = pipe.microbatches;

        // Balance stages by the roofline forward+backward time of one
        // microbatch on the configured device.
        const ComputeModel model(pipe.device);
        LayerScaling scaling;
        scaling.batch = microbatchSize();
        std::vector<double> cost;
        cost.reserve(net.size());
        for (LayerId id = 0; id < static_cast<LayerId>(net.size());
             ++id) {
            const LayerTiming t =
                model.layerTiming(net.layer(id), scaling);
            cost.push_back(static_cast<double>(t.forward + t.backward));
        }
        _partition = PipelinePartition(net, cost, stages);

        // Cut bytes per sample for each boundary: distinct producers
        // on or before the boundary with a consumer beyond it.
        _boundaryBytesPerSample.assign(
            static_cast<std::size_t>(stages > 0 ? stages - 1 : 0), 0.0);
        for (LayerId id = 0; id < static_cast<LayerId>(net.size());
             ++id) {
            const int src = _partition.stageOf(id);
            int furthest = src;
            for (LayerId c : net.consumersOf(id))
                furthest = std::max(furthest, _partition.stageOf(c));
            for (int b = src; b < furthest; ++b)
                _boundaryBytesPerSample[static_cast<std::size_t>(b)] +=
                    static_cast<double>(
                        net.layer(id).outBytesPerSample());
        }
        return;
    }

    if (global_batch < num_devices)
        fatal("global batch %lld smaller than device count %d",
              static_cast<long long>(global_batch), num_devices);
    if (mode == ParallelMode::DataParallel
        && global_batch % num_devices != 0) {
        warn("global batch %lld not divisible by %d devices; using "
             "floor division",
             static_cast<long long>(global_batch), num_devices);
    }
}

std::int64_t
ParallelStrategy::perDeviceBatch() const
{
    if (_mode == ParallelMode::Pipeline)
        return microbatchSize();
    return _mode == ParallelMode::DataParallel
        ? _globalBatch / _numDevices
        : _globalBatch;
}

LayerScaling
ParallelStrategy::scaling(const Layer &layer) const
{
    LayerScaling s;
    s.batch = perDeviceBatch();
    if (_mode == ParallelMode::ModelParallel) {
        // Only weighted heavy layers shard their output units; cheap
        // layers replicate over the gathered full tensors.
        const bool sharded = layer.costClass() == CostClass::Heavy
            && layer.hasWeights();
        s.modelShards = sharded ? _numDevices : 1;
    }
    return s;
}

bool
ParallelStrategy::isGatherBoundary(LayerId id) const
{
    const Layer &layer = _net.layer(id);
    if (layer.costClass() != CostClass::Heavy || !layer.hasWeights())
        return false;
    if (layer.isRecurrent())
        return true; // h_t feeds the full-width recurrent GEMM

    // Walk forward through element-wise (channel-preserving) layers; if
    // every path ends in another sharded convolution, the channel shard
    // can stay private (Krizhevsky tower connectivity). Any channel-
    // mixing consumer — pooling into a classifier, concat, FC, loss, or
    // a recurrent cell — forces a full gather.
    std::vector<LayerId> work(_net.consumersOf(id));
    while (!work.empty()) {
        const LayerId c = work.back();
        work.pop_back();
        const Layer &consumer = _net.layer(c);
        switch (consumer.kind()) {
          case LayerKind::Conv2D:
            continue; // tower-internal; shard flows through
          case LayerKind::Activation:
          case LayerKind::BatchNorm:
          case LayerKind::Dropout:
          case LayerKind::LRN:
          case LayerKind::EltwiseAdd:
            // Channel-wise; keep walking.
            for (LayerId cc : _net.consumersOf(c))
                work.push_back(cc);
            continue;
          default:
            return true; // Pool / FC / Concat / loss / recurrent cell
        }
    }
    return false;
}

std::optional<SyncOp>
ParallelStrategy::forwardSync(LayerId id) const
{
    if (_mode != ParallelMode::ModelParallel || _numDevices < 2)
        return std::nullopt;
    if (!isGatherBoundary(id))
        return std::nullopt;
    const Layer &layer = _net.layer(id);
    SyncOp op;
    op.kind = CollectiveKind::AllGather;
    op.bytes = static_cast<double>(layer.outBytesPerSample())
        * static_cast<double>(_globalBatch);
    op.blocking = true;
    return op;
}

std::optional<SyncOp>
ParallelStrategy::backwardSync(LayerId id) const
{
    if (_numDevices < 2)
        return std::nullopt;
    // Pipeline stages own their weights outright and exchange boundary
    // tensors point-to-point; there are no collectives to launch.
    if (_mode == ParallelMode::Pipeline)
        return std::nullopt;
    const Layer &layer = _net.layer(id);
    if (_mode == ParallelMode::DataParallel) {
        // dW accumulation; tied recurrent cells reduce once via the
        // owning (untied) cell.
        if (!layer.hasWeights() || layer.weightsTied())
            return std::nullopt;
        SyncOp op;
        op.kind = CollectiveKind::AllReduce;
        op.bytes = static_cast<double>(layer.weightBytes());
        op.blocking = false;
        return op;
    }
    // Model parallel: every forward gather is mirrored by a backward
    // reduce-scatter — each device needs only the summed dY slice of
    // its own output shard.
    if (!isGatherBoundary(id))
        return std::nullopt;
    SyncOp op;
    op.kind = CollectiveKind::ReduceScatter;
    op.bytes = static_cast<double>(layer.outBytesPerSample())
        * static_cast<double>(_globalBatch);
    op.blocking = true;
    return op;
}

std::uint64_t
ParallelStrategy::weightBytesPerDevice(const Network &net) const
{
    const std::uint64_t total = net.totalWeightBytes();
    if (_mode == ParallelMode::DataParallel)
        return total;
    if (_mode == ParallelMode::Pipeline) {
        std::uint64_t worst = 0;
        for (int s = 0; s < pipelineStages(); ++s)
            worst = std::max(worst, stageWeightBytes(s));
        return worst;
    }
    return total / static_cast<std::uint64_t>(_numDevices);
}

double
ParallelStrategy::offloadBytesPerDevice(const Layer &layer) const
{
    const double batch = static_cast<double>(perDeviceBatch());
    const double out = static_cast<double>(layer.outBytesPerSample());
    const double aux = static_cast<double>(
        layer.auxStashBytesPerSample());
    if (_mode == ParallelMode::DataParallel
        || _mode == ParallelMode::Pipeline)
        return (out + aux) * batch; // One microbatch per group for pp.
    // Model parallel: each device stashes only its shard.
    const double shards =
        static_cast<double>(scaling(layer).modelShards);
    return (out + aux) * batch / shards;
}

int
ParallelStrategy::pipelineStages() const
{
    return isPipeline() ? _partition.numStages() : 1;
}

std::int64_t
ParallelStrategy::microbatchSize() const
{
    return _globalBatch / static_cast<std::int64_t>(_microbatches);
}

const PipelinePartition &
ParallelStrategy::partition() const
{
    if (!isPipeline())
        panic("stage partition requested for %s training",
              parallelModeName(_mode));
    return _partition;
}

int
ParallelStrategy::stageOfLayer(LayerId id) const
{
    return partition().stageOf(id);
}

double
ParallelStrategy::boundaryBytesPerMicrobatch(int boundary) const
{
    if (!isPipeline())
        panic("boundary bytes requested for %s training",
              parallelModeName(_mode));
    if (boundary < 0
        || static_cast<std::size_t>(boundary)
            >= _boundaryBytesPerSample.size())
        panic("pipeline boundary %d out of range [0, %zu)", boundary,
              _boundaryBytesPerSample.size());
    return _boundaryBytesPerSample[static_cast<std::size_t>(boundary)]
        * static_cast<double>(microbatchSize());
}

std::vector<LayerId>
ParallelStrategy::stageStashLayers(int s, const OffloadPlan &plan) const
{
    const PipelineStage &stage = partition().stage(s);
    std::vector<LayerId> out;
    std::set<LayerId> seen;
    auto add = [&](LayerId id) {
        if (plan.entry(id).action == TensorAction::Offload
            && seen.insert(id).second)
            out.push_back(id);
    };
    for (LayerId id : stage.layers)
        add(id);
    // Boundary inputs: offloaded activations produced upstream that
    // this stage's backward pass re-reads (the stage keeps the copy it
    // received during forward).
    for (LayerId id : stage.layers)
        for (LayerId p : _net.effectiveProducers(id))
            if (_partition.stageOf(p) < s)
                add(p);
    return out;
}

std::uint64_t
ParallelStrategy::stageWeightBytes(int s) const
{
    const PipelineStage &stage = partition().stage(s);
    std::uint64_t bytes = 0;
    // Tied recurrent cells share one weight tensor; a stage holding
    // any cell of a tie group needs one resident copy, counted via the
    // owner's weights when the owning cell lives elsewhere.
    std::set<LayerId> remote_owners;
    for (LayerId id : stage.layers) {
        const Layer &layer = _net.layer(id);
        if (!layer.hasWeights())
            continue;
        if (layer.weightsTied()) {
            const LayerId owner = layer.tiedOwner();
            if (owner == invalidLayerId)
                panic("tied layer %d of %s has no owner", id,
                      _net.name().c_str());
            if (_partition.stageOf(owner) != s)
                remote_owners.insert(owner);
        } else {
            bytes += layer.weightBytes();
        }
    }
    for (LayerId owner : remote_owners)
        bytes += _net.layer(owner).weightBytes();
    return bytes;
}

std::map<LayerId, std::vector<int>>
ParallelStrategy::tieGroupStages() const
{
    partition(); // isPipeline() guard
    std::map<LayerId, std::set<int>> stages;
    for (LayerId id = 0; id < static_cast<LayerId>(_net.size()); ++id) {
        const Layer &layer = _net.layer(id);
        if (!layer.hasWeights() || !layer.weightsTied())
            continue;
        const LayerId owner = layer.tiedOwner();
        auto &members = stages[owner];
        members.insert(_partition.stageOf(owner));
        members.insert(_partition.stageOf(id));
    }
    std::map<LayerId, std::vector<int>> spanning;
    for (const auto &[owner, members] : stages)
        if (members.size() > 1)
            spanning.emplace(owner, std::vector<int>(members.begin(),
                                                     members.end()));
    return spanning;
}

} // namespace mcdla
