/**
 * @file
 * ParallelStrategy implementation.
 */

#include "parallel/strategy.hh"

#include <vector>

#include "sim/logging.hh"

namespace mcdla
{

const char *
parallelModeName(ParallelMode mode)
{
    switch (mode) {
      case ParallelMode::DataParallel: return "data-parallel";
      case ParallelMode::ModelParallel: return "model-parallel";
    }
    return "unknown";
}

ParallelStrategy::ParallelStrategy(const Network &net, ParallelMode mode,
                                   int num_devices,
                                   std::int64_t global_batch)
    : _net(net), _mode(mode), _numDevices(num_devices),
      _globalBatch(global_batch)
{
    if (num_devices < 1)
        fatal("parallel strategy requires at least one device");
    if (global_batch < num_devices)
        fatal("global batch %lld smaller than device count %d",
              static_cast<long long>(global_batch), num_devices);
    if (mode == ParallelMode::DataParallel
        && global_batch % num_devices != 0) {
        warn("global batch %lld not divisible by %d devices; using "
             "floor division",
             static_cast<long long>(global_batch), num_devices);
    }
}

std::int64_t
ParallelStrategy::perDeviceBatch() const
{
    return _mode == ParallelMode::DataParallel
        ? _globalBatch / _numDevices
        : _globalBatch;
}

LayerScaling
ParallelStrategy::scaling(const Layer &layer) const
{
    LayerScaling s;
    s.batch = perDeviceBatch();
    if (_mode == ParallelMode::ModelParallel) {
        // Only weighted heavy layers shard their output units; cheap
        // layers replicate over the gathered full tensors.
        const bool sharded = layer.costClass() == CostClass::Heavy
            && layer.hasWeights();
        s.modelShards = sharded ? _numDevices : 1;
    }
    return s;
}

bool
ParallelStrategy::isGatherBoundary(LayerId id) const
{
    const Layer &layer = _net.layer(id);
    if (layer.costClass() != CostClass::Heavy || !layer.hasWeights())
        return false;
    if (layer.isRecurrent())
        return true; // h_t feeds the full-width recurrent GEMM

    // Walk forward through element-wise (channel-preserving) layers; if
    // every path ends in another sharded convolution, the channel shard
    // can stay private (Krizhevsky tower connectivity). Any channel-
    // mixing consumer — pooling into a classifier, concat, FC, loss, or
    // a recurrent cell — forces a full gather.
    std::vector<LayerId> work(_net.consumersOf(id));
    while (!work.empty()) {
        const LayerId c = work.back();
        work.pop_back();
        const Layer &consumer = _net.layer(c);
        switch (consumer.kind()) {
          case LayerKind::Conv2D:
            continue; // tower-internal; shard flows through
          case LayerKind::Activation:
          case LayerKind::BatchNorm:
          case LayerKind::Dropout:
          case LayerKind::LRN:
          case LayerKind::EltwiseAdd:
            // Channel-wise; keep walking.
            for (LayerId cc : _net.consumersOf(c))
                work.push_back(cc);
            continue;
          default:
            return true; // Pool / FC / Concat / loss / recurrent cell
        }
    }
    return false;
}

std::optional<SyncOp>
ParallelStrategy::forwardSync(LayerId id) const
{
    if (_mode != ParallelMode::ModelParallel || _numDevices < 2)
        return std::nullopt;
    if (!isGatherBoundary(id))
        return std::nullopt;
    const Layer &layer = _net.layer(id);
    SyncOp op;
    op.kind = CollectiveKind::AllGather;
    op.bytes = static_cast<double>(layer.outBytesPerSample())
        * static_cast<double>(_globalBatch);
    op.blocking = true;
    return op;
}

std::optional<SyncOp>
ParallelStrategy::backwardSync(LayerId id) const
{
    if (_numDevices < 2)
        return std::nullopt;
    const Layer &layer = _net.layer(id);
    if (_mode == ParallelMode::DataParallel) {
        // dW accumulation; tied recurrent cells reduce once via the
        // owning (untied) cell.
        if (!layer.hasWeights() || layer.weightsTied())
            return std::nullopt;
        SyncOp op;
        op.kind = CollectiveKind::AllReduce;
        op.bytes = static_cast<double>(layer.weightBytes());
        op.blocking = false;
        return op;
    }
    // Model parallel: every forward gather is mirrored by a backward
    // reduce-scatter — each device needs only the summed dY slice of
    // its own output shard.
    if (!isGatherBoundary(id))
        return std::nullopt;
    SyncOp op;
    op.kind = CollectiveKind::ReduceScatter;
    op.bytes = static_cast<double>(layer.outBytesPerSample())
        * static_cast<double>(_globalBatch);
    op.blocking = true;
    return op;
}

std::uint64_t
ParallelStrategy::weightBytesPerDevice(const Network &net) const
{
    const std::uint64_t total = net.totalWeightBytes();
    if (_mode == ParallelMode::DataParallel)
        return total;
    return total / static_cast<std::uint64_t>(_numDevices);
}

double
ParallelStrategy::offloadBytesPerDevice(const Layer &layer) const
{
    const double batch = static_cast<double>(perDeviceBatch());
    const double out = static_cast<double>(layer.outBytesPerSample());
    const double aux = static_cast<double>(
        layer.auxStashBytesPerSample());
    if (_mode == ParallelMode::DataParallel)
        return (out + aux) * batch;
    // Model parallel: each device stashes only its shard.
    const double shards =
        static_cast<double>(scaling(layer).modelShards);
    return (out + aux) * batch / shards;
}

} // namespace mcdla
