/**
 * @file
 * Topology explorer: builds every fabric of Section III-B plus the
 * generic Topology generators (mesh, torus, fat-tree), prints each
 * graph's node census, logical rings, and Router hop-count matrix,
 * and runs a microbenchmark of collective latency and vmem bandwidth
 * on each — a textual rendition of Figures 5, 7, 8, and 15 extended
 * to the new wirings.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

std::string
stageName(const RingStage &stage)
{
    return (stage.isDevice ? "D" : "M") + std::to_string(stage.index);
}

void
describe(const char *title, Fabric &fabric, EventQueue &eq)
{
    std::cout << "== " << title << " ==\n";

    // Node census + Router hop-count matrix over the topology graph.
    const Topology &topo = fabric.topology();
    if (!topo.empty()) {
        std::cout << "  graph: " << topo.count(NodeKind::Device)
                  << " devices, " << topo.count(NodeKind::MemoryNode)
                  << " memory-nodes, " << topo.count(NodeKind::Switch)
                  << " switches, " << topo.links().size()
                  << " links\n  hops from D0:";
        for (int d = 1; d < topo.count(NodeKind::Device); ++d)
            std::cout << " D" << d << "="
                      << fabric.deviceHopCount(0, d);
        std::cout << '\n';
    }

    int idx = 0;
    for (const RingPath &ring : fabric.rings()) {
        std::cout << "  ring " << idx++ << " (" << ring.stageCount()
                  << " hops): ";
        for (std::size_t i = 0; i < ring.stages.size(); ++i) {
            if (i)
                std::cout << "->";
            std::cout << stageName(ring.stages[i]);
            if (i == 11 && ring.stages.size() > 14) {
                std::cout << "->...";
                break;
            }
        }
        std::cout << '\n';
    }

    // Collective microbenchmark: 8 MB all-reduce across all rings.
    CollectiveEngine engine(eq, std::string(title) + ".nccl", fabric);
    Tick done = 0;
    const Tick start = eq.now();
    engine.launch(CollectiveKind::AllReduce, 8e6,
                  [&] { done = eq.now() - start; });
    eq.run();
    if (!fabric.rings().empty())
        std::cout << "  8 MB all-reduce: " << formatTime(done) << '\n';

    // vmem microbenchmark: 150 MB offload from device 0.
    if (!fabric.vmemPaths(0).empty()) {
        DmaEngine dma(eq, std::string(title) + ".dma",
                      fabric.vmemPaths(0));
        const Tick mark = eq.now();
        Tick dma_done = 0;
        dma.transfer(150e6, DmaDirection::LocalToRemote,
                     [&] { dma_done = eq.now() - mark; });
        eq.run();
        std::cout << "  150 MB offload: " << formatTime(dma_done)
                  << " ("
                  << formatBandwidth(150e6 / ticksToSeconds(dma_done))
                  << ")\n";
    }
    std::cout << '\n';
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    FabricConfig cfg;

    {
        EventQueue eq;
        auto fab = buildDcdlaFabric(eq, cfg);
        describe("DC-DLA cube-mesh rings (Fig 5)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildHcdlaFabric(eq, cfg);
        describe("HC-DLA (half links to host)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaStarAFabric(eq, cfg);
        describe("MC-DLA star-A (Fig 7a: 8/8/24)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaStarFabric(eq, cfg);
        describe("MC-DLA star (Fig 7b: 8/12/20)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaRingFabric(eq, cfg);
        describe("MC-DLA ring (Fig 7c/8: 16/16/16)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMesh2dFabric(eq, cfg, /*wrap=*/false);
        describe("2-D mesh (generic generator)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMesh2dFabric(eq, cfg, /*wrap=*/true);
        describe("2-D torus (generic generator)", *fab, eq);
    }
    {
        EventQueue eq;
        // Default radix 18: 32 node slots spread over two 9-slot
        // leaves plus nine spines — a genuine two-level tree.
        auto fab = buildFatTreeFabric(eq, cfg);
        describe("fat-tree, radix 18 (generic generator)", *fab, eq);
    }

    std::cout << "The ring design keeps every ring balanced and turns "
                 "all six links into virtualization bandwidth "
                 "(150 GB/s vs 50 GB/s for the star designs); the "
                 "generic generators (--topology) open the wiring "
                 "itself as a sweep axis.\n";
    return 0;
}
