/**
 * @file
 * Topology explorer: builds every fabric of Section III-B, prints its
 * logical rings with their stage sequences and hop counts, and runs a
 * microbenchmark of collective latency and vmem bandwidth on each —
 * a textual rendition of Figures 5, 7, and 8.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

namespace
{

std::string
stageName(const RingStage &stage)
{
    return (stage.isDevice ? "D" : "M") + std::to_string(stage.index);
}

void
describe(const char *title, Fabric &fabric, EventQueue &eq)
{
    std::cout << "== " << title << " ==\n";
    int idx = 0;
    for (const RingPath &ring : fabric.rings()) {
        std::cout << "  ring " << idx++ << " (" << ring.stageCount()
                  << " hops): ";
        for (std::size_t i = 0; i < ring.stages.size(); ++i) {
            if (i)
                std::cout << "->";
            std::cout << stageName(ring.stages[i]);
            if (i == 11 && ring.stages.size() > 14) {
                std::cout << "->...";
                break;
            }
        }
        std::cout << '\n';
    }

    // Collective microbenchmark: 8 MB all-reduce across all rings.
    CollectiveEngine engine(eq, std::string(title) + ".nccl", fabric);
    Tick done = 0;
    const Tick start = eq.now();
    engine.launch(CollectiveKind::AllReduce, 8e6,
                  [&] { done = eq.now() - start; });
    eq.run();
    if (!fabric.rings().empty())
        std::cout << "  8 MB all-reduce: " << formatTime(done) << '\n';

    // vmem microbenchmark: 150 MB offload from device 0.
    if (!fabric.vmemPaths(0).empty()) {
        DmaEngine dma(eq, std::string(title) + ".dma",
                      fabric.vmemPaths(0));
        const Tick mark = eq.now();
        Tick dma_done = 0;
        dma.transfer(150e6, DmaDirection::LocalToRemote,
                     [&] { dma_done = eq.now() - mark; });
        eq.run();
        std::cout << "  150 MB offload: " << formatTime(dma_done)
                  << " ("
                  << formatBandwidth(150e6 / ticksToSeconds(dma_done))
                  << ")\n";
    }
    std::cout << '\n';
}

} // anonymous namespace

int
main()
{
    LogConfig::verbose = false;
    FabricConfig cfg;

    {
        EventQueue eq;
        auto fab = buildDcdlaFabric(eq, cfg);
        describe("DC-DLA cube-mesh rings (Fig 5)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildHcdlaFabric(eq, cfg);
        describe("HC-DLA (half links to host)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaStarAFabric(eq, cfg);
        describe("MC-DLA star-A (Fig 7a: 8/8/24)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaStarFabric(eq, cfg);
        describe("MC-DLA star (Fig 7b: 8/12/20)", *fab, eq);
    }
    {
        EventQueue eq;
        auto fab = buildMcdlaRingFabric(eq, cfg);
        describe("MC-DLA ring (Fig 7c/8: 16/16/16)", *fab, eq);
    }

    std::cout << "The ring design keeps every ring balanced and turns "
                 "all six links into virtualization bandwidth "
                 "(150 GB/s vs 50 GB/s for the star designs).\n";
    return 0;
}
