/**
 * @file
 * Quickstart: simulate one training iteration of AlexNet (batch 512,
 * data-parallel, 8 devices) on all six system design points and print
 * the latency breakdown — a one-screen tour of the library.
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    Simulator sim;
    std::cout << sim.network("AlexNet")->summary() << '\n';

    TablePrinter table({"Design", "Iter(ms)", "Compute(ms)", "Sync(ms)",
                        "Vmem(ms)", "HostAvg(GB/s)", "HostPeak(GB/s)",
                        "Speedup vs DC"});

    double dc_time = 0.0;
    for (SystemDesign design : kAllDesigns) {
        Scenario sc;
        sc.design = design;
        sc.workload = "AlexNet";
        sc.mode = ParallelMode::DataParallel;
        sc.globalBatch = kDefaultBatch;

        const IterationResult r = sim.run(sc);
        if (design == SystemDesign::DcDla)
            dc_time = r.iterationSeconds();

        table.addRow({
            systemDesignName(design),
            TablePrinter::num(r.iterationSeconds() * 1e3, 2),
            TablePrinter::num(r.breakdown.computeSec * 1e3, 2),
            TablePrinter::num(r.breakdown.syncSec * 1e3, 2),
            TablePrinter::num(r.breakdown.vmemSec * 1e3, 2),
            TablePrinter::num(r.hostAvgBwPerSocket / kGB, 1),
            TablePrinter::num(r.hostPeakBwPerSocket / kGB, 1),
            TablePrinter::num(dc_time / r.iterationSeconds(), 2),
        });
    }
    table.print(std::cout);

    // Capacity expansion headline (Section V-C): 8 memory-nodes of
    // 128 GB LRDIMMs add ~10.4 TB to the node.
    SystemPowerModel power;
    MemoryNodeConfig node;
    std::cout << "\nMC-DLA pooled memory with 128GB LRDIMM nodes: "
              << formatBytes(static_cast<double>(
                     power.pooledCapacity(node)))
              << " (+" << TablePrinter::num(
                     100.0 * power.powerOverhead(node), 0)
              << "% system power)\n";
    return 0;
}
