/**
 * @file
 * Example: exploring the paged device-memory subsystem.
 *
 * Runs the same workload under the three prefetch policies on a
 * deliberately small HBM and prints the paging counters each one
 * produced — the quickest way to see how the static vDNN plan,
 * fault-driven on-demand paging, and history-based prefetching differ
 * on the simulator's hottest path.
 *
 * Build: part of the default cmake build (example_paging_explorer).
 */

#include <iostream>

#include "core/mcdla.hh"

using namespace mcdla;

int
main()
{
    LogConfig::verbose = false;

    Simulator sim;
    TablePrinter table({"Policy", "Iter(ms)", "Vmem(ms)", "Hit%",
                        "Faults", "Writebacks", "Stall(ms)"});

    for (PrefetchPolicyKind policy : {PrefetchPolicyKind::StaticPlan,
                                      PrefetchPolicyKind::OnDemand,
                                      PrefetchPolicyKind::History}) {
        Scenario sc;
        sc.design = SystemDesign::McDlaB;
        sc.workload = "VGG-E";
        sc.globalBatch = 256;
        // Two iterations so the history policy reaches steady state.
        sc.iterations = 2;
        sc.base.paging.prefetch = policy;
        // Shrink HBM to 3 GiB so capacity pressure actually pages.
        sc.base.device.memCapacity =
            static_cast<std::uint64_t>(3 * kGiB);

        const IterationResult r = sim.run(sc);
        table.addRow(
            {prefetchPolicyToken(policy),
             TablePrinter::num(r.iterationSeconds() * 1e3, 2),
             TablePrinter::num(r.breakdown.vmemSec * 1e3, 2),
             TablePrinter::num(r.paging.hitRate() * 100.0, 1),
             std::to_string(r.paging.demandFills),
             std::to_string(r.paging.writebacks),
             TablePrinter::num(r.paging.stallSec * 1e3, 2)});
    }

    std::cout << "VGG-E on MC-DLA(B), batch 256, 3 GiB HBM, "
                 "steady-state iteration:\n\n";
    table.print(std::cout);
    std::cout << "\nThe static plan migrates every stash "
                 "unconditionally; on-demand only pages\nwhat "
                 "pressure evicts (but stalls on every fault); "
                 "history prefetches ahead\nof the recorded access "
                 "sequence and hides the fault latency again.\n";
    return 0;
}
